"""A guided walkthrough of the paper's lower-bound argument.

Reproduces, step by step and with live executions, the chain of
reasoning of Section 4:

* the leader's knowledge as the linear system ``m_r = M_r s_r``;
* the kernel vector ``k_r`` and the Lemma 4 sum identities;
* two multigraphs related by a kernel step that the leader literally
  cannot tell apart (Figure 4, executed through the message-passing
  engine);
* the resulting ambiguity horizon and the Theorem 2 growth curve.

Run:  python examples/lower_bound_walkthrough.py
"""

import numpy as np

from repro import (
    ambiguity_horizon,
    closed_form_kernel,
    feasible_size_interval,
    rounds_to_count,
    twin_multigraphs,
)
from repro.analysis.tables import render_table
from repro.core.lowerbound.matrices import (
    build_matrix,
    configuration_vector,
    observation_vector,
)
from repro.core.lowerbound.kernel import sum_negative, sum_positive


def show_linear_system() -> None:
    print("=== The leader's linear system at round 1 ===")
    matrix = build_matrix(1)
    print(f"M_1 is {matrix.shape[0]} x {matrix.shape[1]} "
          "(equations (4)/(5) of the paper):")
    print(matrix)
    kernel = closed_form_kernel(1)
    print(f"\nker(M_1) is spanned by k_1 = {kernel.tolist()}")
    print(f"M_1 @ k_1 = {(matrix @ kernel).tolist()}  (all zeros)")
    print(f"sum+ k_1 = {sum_positive(1)},  sum- k_1 = {sum_negative(1)},  "
          f"sum k_1 = {sum_positive(1) - sum_negative(1)}\n")


def show_twins() -> None:
    print("=== Figure 4: two networks the leader cannot tell apart ===")
    smaller, larger = twin_multigraphs(1, 4)
    s = configuration_vector(smaller.configuration(2), 1)
    s_prime = configuration_vector(larger.configuration(2), 1)
    print(f"s_1  = {s.tolist()}   (|W| = {smaller.n})")
    print(f"s'_1 = {s_prime.tolist()}   (|W| = {larger.n})")
    matrix = build_matrix(1)
    m = observation_vector(smaller.observations(2), 1)
    print(f"M_1 s_1 = M_1 s'_1 = m_1 = {m.tolist()}")
    print(f"identical: {np.array_equal(matrix @ s, matrix @ s_prime)}")

    for rounds in (1, 2, 3):
        same = smaller.observations(rounds) == larger.observations(rounds)
        interval = feasible_size_interval(smaller.observations(rounds))
        print(f"after round {rounds - 1}: leader states equal = {same}, "
              f"feasible sizes = [{interval.lo}, {interval.hi}]")
    print()


def show_growth_curve() -> None:
    print("=== Theorem 2: the ambiguity horizon grows with log3(n) ===")
    rows = []
    for n in (1, 4, 13, 40, 121, 364, 1093):
        rows.append(
            {
                "n": n,
                "last ambiguous round": ambiguity_horizon(n),
                "rounds to count": rounds_to_count(n),
            }
        )
    print(render_table(rows))
    print("\nThe thresholds are exactly n = (3^(r+1) - 1)/2: the size of "
          "the negative support of k_r (Lemma 4).")


def main() -> None:
    show_linear_system()
    show_twins()
    show_growth_curve()


if __name__ == "__main__":
    main()
