"""Scenario: auditing an anonymous edge cluster behind a relay backbone.

An operator's console (the leader) reaches an anonymous pool of edge
workers only through a static chain of relays -- the Corollary 1
topology.  The audit question: *how many rounds must the console wait
before its worker count is provably correct?*

The answer decomposes into (relay depth) + (anonymity cost), which this
example measures by real protocol executions at several depths and pool
sizes, and cross-checks against the closed-form bound
``rounds_to_count(n) + depth + 1``.  It also measures plain
dissemination (flooding) time on the same networks to show that the
counting cost strictly exceeds the network's communication cost.

Run:  python examples/relay_backbone_audit.py
"""

from repro import max_ambiguity_multigraph
from repro.analysis.tables import render_table
from repro.core.counting.chain import count_chain_pd2
from repro.core.lowerbound.bounds import corollary1_bound
from repro.networks.generators.chains import chain_pd2_network
from repro.networks.properties import dynamic_diameter, flood_completion_time


def main() -> None:
    print("=== Relay backbone audit: rounds until a provable count ===\n")
    rows = []
    for workers in (10, 40, 160):
        for depth in (0, 4, 12):
            core = max_ambiguity_multigraph(workers)
            network, layout = chain_pd2_network(core, depth)
            outcome = count_chain_pd2(core, depth)
            rows.append(
                {
                    "workers": workers,
                    "relay depth": depth,
                    "|V|": layout.n,
                    "dynamic diameter": dynamic_diameter(
                        network, start_rounds=2
                    ),
                    "flood time": flood_completion_time(network, 0),
                    "audit rounds": outcome.rounds,
                    "closed form": corollary1_bound(workers, depth),
                    "count ok": outcome.count == workers,
                }
            )
    print(render_table(rows))
    print(
        "\naudit rounds = (relay depth + 1) + rounds_to_count(workers): the "
        "backbone adds its depth, anonymity adds its log -- and flooding "
        "alone is always cheaper than counting."
    )


if __name__ == "__main__":
    main()
