"""Quickstart: counting anonymous nodes on a dynamic network.

Runs the three headline capabilities of the library in under a second:

1. count a ``G(PD)_1`` star in one round;
2. count a worst-case anonymous ``G(PD)_2`` network with the optimal
   algorithm and see the logarithmic anonymity cost predicted by
   Di Luna & Baldoni (PODC 2015);
3. break the lower bound with the paper's degree oracle (O(1) rounds).

Run:  python examples/quickstart.py
"""

from repro import (
    count_mdbl2,
    count_pd2_with_degree_oracle,
    count_star,
    max_ambiguity_multigraph,
    rounds_to_count,
    theorem1_bound,
    worst_case_pd2_network,
)


def main() -> None:
    n = 100

    print("=== 1. G(PD)_1 star: anonymity is free ===")
    outcome = count_star(n)
    print(f"star with {n} nodes -> leader outputs {outcome.count} "
          f"after {outcome.rounds} round(s)\n")

    print("=== 2. G(PD)_2 worst case: anonymity costs log rounds ===")
    adversary = max_ambiguity_multigraph(n)
    outcome = count_mdbl2(adversary)
    print(f"worst-case adversary, {n} anonymous nodes")
    print(f"leader outputs {outcome.count} after {outcome.rounds} rounds")
    print(f"theory: no algorithm can output before round "
          f"{theorem1_bound(n) + 1}; optimum is {rounds_to_count(n)} rounds")
    widths = [interval.width for interval in outcome.detail["intervals"]]
    print(f"feasible-size interval width per round: {widths}")
    print("(the leader literally cannot tell n from n+1 while width > 0)\n")

    print("=== 3. Degree oracle: the same network in O(1) rounds ===")
    network, layout = worst_case_pd2_network(n)
    outcome = count_pd2_with_degree_oracle(network)
    print(f"same dynamics, nodes know their degree before sending:")
    print(f"leader outputs {outcome.count} (= {n} outer + 2 middle + leader) "
          f"after {outcome.rounds} rounds")


if __name__ == "__main__":
    main()
