"""Scenario: censusing an anonymous sensor fleet under churny links.

A base station (the leader) must determine how many identical,
ID-less sensors are alive.  Radio links reshuffle every beacon interval
-- a *fair* dynamic network.  The operator has two tools:

* **push-sum gossip** (Kempe et al. '03): anytime estimate, converges
  fast, but can never *guarantee* the count;
* the **optimal exact counter**: terminates with a proof, in a number of
  rounds that -- per Di Luna & Baldoni -- cannot be beaten in the worst
  case by *any* algorithm.

This example runs both on the same fleet and prints the convergence
trace, then shows what happens to the exact counter when the link layer
turns adversarial.

Run:  python examples/sensor_fleet_census.py
"""

from repro import (
    RandomLabelAdversary,
    count_mdbl2_abstract,
    gossip_size_estimates,
    max_ambiguity_multigraph,
    rounds_to_count,
)
from repro.analysis.tables import render_table
from repro.core.counting.optimal import (
    AnonymousStateProcess,
    OptimalLeaderProcess,
)
from repro.networks.generators.random_dynamic import RandomConnectedAdversary
from repro.simulation.labeled import LabeledStarEngine

FLEET_SIZE = 60
SEED = 2026


def gossip_census() -> None:
    print(f"=== Gossip census of {FLEET_SIZE} sensors (fair churn) ===")
    links = RandomConnectedAdversary(FLEET_SIZE, seed=SEED)
    estimates = gossip_size_estimates(links, FLEET_SIZE, 30)
    rows = [
        {
            "round": round_no,
            "estimate": estimates[round_no],
            "relative error": abs(estimates[round_no] - FLEET_SIZE) / FLEET_SIZE,
        }
        for round_no in (1, 3, 5, 10, 20, 29)
    ]
    print(render_table(rows))
    print("converges quickly -- but never terminates with certainty\n")


def exact_census_fair() -> None:
    print("=== Exact census, fair link layer ===")
    links = RandomLabelAdversary(2, FLEET_SIZE, seed=SEED)
    leader = OptimalLeaderProcess()
    sensors = [AnonymousStateProcess() for _ in range(FLEET_SIZE)]
    result = LabeledStarEngine(leader, sensors, links, max_rounds=64).run()
    print(f"leader proves the count {result.leader_output} after "
          f"{result.rounds} rounds (fair links are easy)\n")


def exact_census_adversarial() -> None:
    print("=== Exact census, adversarial link layer ===")
    adversary = max_ambiguity_multigraph(FLEET_SIZE)
    outcome = count_mdbl2_abstract(adversary)
    print(f"against a worst-case scheduler the same counter needs "
          f"{outcome.rounds} rounds (theory: {rounds_to_count(FLEET_SIZE)})")
    widths = [interval.width for interval in outcome.detail["intervals"]]
    rows = [
        {
            "round": round_no,
            "sizes still possible": width + 1,
        }
        for round_no, width in enumerate(widths)
    ]
    print(render_table(rows))
    print("no census protocol -- gossip included -- can commit earlier: "
          "that is the cost of the sensors having no IDs")


def main() -> None:
    gossip_census()
    exact_census_fair()
    exact_census_adversarial()


if __name__ == "__main__":
    main()
