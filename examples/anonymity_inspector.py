"""Scenario: inspecting a dynamic network's anonymity structure.

Before deploying a protocol on an anonymous dynamic network, an
engineer wants to know: *which nodes can ever be told apart, can they
be named, how long does ambiguity about the size persist, and what does
resolving it cost in bandwidth?*  This example is that inspection tool,
run on the paper's own Figure 1 network and on a worst-case adversary.

Run:  python examples/anonymity_inspector.py
"""

from repro import max_ambiguity_multigraph
from repro.analysis.bandwidth import measure_labeled_bandwidth
from repro.analysis.tables import render_table
from repro.adversaries.worst_case import measured_ambiguity_curve
from repro.core.counting.optimal import (
    AnonymousStateProcess,
    OptimalLeaderProcess,
)
from repro.core.naming import earliest_naming_round, naming_is_possible
from repro.core.views import symmetry_degree, view_classes
from repro.networks.generators.figures import paper_figure1
from repro.networks.render import (
    render_ambiguity_curve,
    render_dynamic_graph,
    render_multigraph_round,
)

FLEET = 40


def inspect_figure1() -> None:
    figure = paper_figure1()
    print("=== Figure 1 network: three rounds of topology ===")
    labels = {0: "vl", 1: "m1", 2: "m2", 3: "v0", 4: "w", 5: "v3"}
    print(render_dynamic_graph(figure.graph, 3, labels=labels))

    print("\n=== Who can ever be told apart? (view classes by depth) ===")
    rows = []
    for depth in range(5):
        classes = view_classes(figure.graph, depth, leader=0)
        rows.append(
            {
                "depth": depth,
                "classes": [
                    [labels[node] for node in members] for members in classes
                ],
                "largest symmetric class": symmetry_degree(
                    figure.graph, depth, leader=0
                ),
            }
        )
    print(render_table(rows))
    naming_round = earliest_naming_round(figure.graph, leader=0)
    print(f"\nnaming possible: {naming_is_possible(figure.graph, 8, leader=0)}"
          f" (views separate all nodes at depth {naming_round})")


def inspect_worst_case() -> None:
    print(f"\n=== Worst-case adversary, {FLEET} anonymous nodes ===")
    adversary = max_ambiguity_multigraph(FLEET)
    print(render_multigraph_round(adversary, 0))

    widths = measured_ambiguity_curve(adversary)
    print("\nhow long does size ambiguity persist?")
    print(render_ambiguity_curve(widths))

    traffic = measure_labeled_bandwidth(
        OptimalLeaderProcess(),
        [AnonymousStateProcess() for _ in range(FLEET)],
        max_ambiguity_multigraph(FLEET),
    )
    print("\nand what does resolving it cost? (atoms broadcast per round)")
    print(render_ambiguity_curve(traffic))
    print("\npayloads grow every round: the optimal anonymous counter "
          "spends bandwidth to buy back what anonymity hides.")


def main() -> None:
    inspect_figure1()
    inspect_worst_case()


if __name__ == "__main__":
    main()
