"""``repro serve``: the stdlib-only HTTP experiment service.

One :class:`ReproService` wraps a ``ThreadingHTTPServer`` (handler
threads) around a :class:`~repro.service.jobs.JobManager` (one worker
thread + the digest-addressed result cache).  No third-party web
framework: the container's stdlib is the whole dependency surface.

Endpoints (all JSON unless noted; see ``docs/SCENARIOS.md`` for curl
examples)::

    GET  /healthz            liveness + version
    GET  /experiments        registry ids a scenario may target
    GET  /metrics            the server's metrics snapshot
                             (counters/gauges/histograms) -- the
                             counter-equality proof that repeat
                             submissions never touch the engine
    POST /scenarios          submit a scenario document
                             200 -> served from cache, results inline
                             202 -> queued, poll /jobs/<id>
                             400 -> schema violation / non-JSON param
                             (the error names the offending key)
    GET  /jobs               every job, submission order
    GET  /jobs/<id>          one job's status
    GET  /jobs/<id>/result   results (409 until the job is terminal)
    GET  /jobs/<id>/events   the job's JSONL progress stream
                             (``?follow=1`` keeps the connection open
                             until the job finishes, tail -f style)

Scenario identity is the cache digest: submitting the same scenario
twice answers the second request straight from :class:`ResultCache`
with ``state == "cached"`` and zero engine work -- ``make serve-smoke``
asserts ``engine.*``/``runtime.*`` counters are byte-equal across the
resubmission.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any
from urllib.parse import parse_qs, urlparse

from repro import __version__
from repro.analysis.registry import available_experiments
from repro.obs.logger import get_logger
from repro.obs.metrics import counter, get_registry
from repro.scenarios.schema import Scenario, ScenarioError
from repro.service.jobs import JobManager

_log = get_logger("service.server")

__all__ = ["ReproService", "serve"]

#: Maximum accepted request body (a scenario document is tiny; anything
#: bigger is a mistake or abuse).
_MAX_BODY_BYTES = 1 << 20


class _Handler(BaseHTTPRequestHandler):
    """Routes requests onto the owning :class:`ReproService`."""

    protocol_version = "HTTP/1.1"
    server_version = f"repro-serve/{__version__}"
    service: "ReproService"  # injected by ReproService._make_handler

    # -- plumbing ----------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        _log.debug(
            "http", extra={"request": format % args, "client": self.client_address[0]}
        )

    def _send_json(self, status: int, payload: dict[str, Any]) -> None:
        body = (json.dumps(payload, indent=1) + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        counter("service.http.errors")
        self._send_json(status, {"error": message})

    # -- routes ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 -- http.server API
        counter("service.http.requests")
        url = urlparse(self.path)
        parts = [part for part in url.path.split("/") if part]
        try:
            if parts == ["healthz"]:
                self._send_json(
                    200, {"status": "ok", "version": __version__}
                )
            elif parts == ["experiments"]:
                self._send_json(
                    200, {"experiments": available_experiments()}
                )
            elif parts == ["metrics"]:
                self._send_json(200, get_registry().snapshot())
            elif parts == ["jobs"]:
                self._send_json(
                    200, {"jobs": self.service.manager.list_jobs()}
                )
            elif len(parts) >= 2 and parts[0] == "jobs":
                self._job_route(parts[1], parts[2:], url)
            else:
                self._error(404, f"no such endpoint: {url.path}")
        except BrokenPipeError:
            pass  # client went away mid-response
        except Exception as exc:  # noqa: BLE001 -- handler must answer
            _log.error(
                "handler error",
                extra={"path": self.path, "error": f"{type(exc).__name__}: {exc}"},
            )
            self._error(500, f"{type(exc).__name__}: {exc}")

    def _job_route(self, job_id: str, rest: list[str], url: Any) -> None:
        job = self.service.manager.get(job_id)
        if job is None:
            self._error(404, f"unknown job {job_id!r}")
            return
        if not rest:
            self._send_json(200, job.status())
        elif rest == ["result"]:
            if not job.done:
                self._error(
                    409,
                    f"job {job_id} is still {job.state}; poll "
                    f"/jobs/{job_id} or stream /jobs/{job_id}/events",
                )
            elif job.results is None:
                self._error(409, f"job {job_id} failed: {job.error}")
            else:
                payload = job.status()
                payload["results"] = job.results
                self._send_json(200, payload)
        elif rest == ["events"]:
            query = parse_qs(url.query)
            follow = query.get("follow", ["0"])[-1] not in ("0", "", "false")
            self._stream_events(job, follow=follow)
        else:
            self._error(404, f"no such endpoint: {url.path}")

    def _stream_events(self, job: Any, *, follow: bool) -> None:
        """Send the job's JSONL progress file, optionally tail -f style.

        The stream is close-delimited (``Connection: close``): with
        ``follow`` the handler keeps polling the file and flushing new
        whole lines until the job reaches a terminal state and the
        file is drained.  A torn trailing line on a *finished* job can
        never be completed by the writer, so after a short grace period
        (two 20 ms re-reads, under one 50 ms poll interval) the partial
        tail is flushed as-is and the stream closes -- it must not spin
        waiting for a newline that will never arrive.
        """
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True
        offset = 0
        grace = 2
        while True:
            chunk = b""
            try:
                with open(job.events_path, "rb") as stream:
                    stream.seek(offset)
                    chunk = stream.read()
            except OSError:
                pass  # not started yet: nothing to send this tick
            # Only forward whole lines; a torn trailing line is re-read
            # once the writer finishes it.
            cut = chunk.rfind(b"\n") + 1 if chunk else 0
            if cut:
                self.wfile.write(chunk[:cut])
                self.wfile.flush()
                offset += cut
            tail = chunk[cut:]
            if not follow:
                return
            if job.done:
                if not chunk:
                    return
                if not tail:
                    continue  # drain what accumulated after the flip
                if grace > 0:
                    # The writer may be mid-line; give it a beat.
                    grace -= 1
                    time.sleep(0.02)
                    continue
                self.wfile.write(tail)
                self.wfile.flush()
                return
            time.sleep(0.02 if chunk else 0.05)

    def do_POST(self) -> None:  # noqa: N802 -- http.server API
        counter("service.http.requests")
        url = urlparse(self.path)
        if url.path.rstrip("/") != "/scenarios":
            self._error(404, f"no such endpoint: {url.path}")
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            self._error(400, "invalid Content-Length")
            return
        if length > _MAX_BODY_BYTES:
            self._error(413, f"scenario document over {_MAX_BODY_BYTES} bytes")
            return
        body = self.rfile.read(length)
        try:
            payload = json.loads(body or b"null")
        except ValueError as exc:
            self._error(400, f"invalid JSON: {exc}")
            return
        # The schema boundary: violations (unknown keys/versions, bad
        # execution options, non-JSON-serialisable params) are rejected
        # here with the key-naming message -- never a 500 from a worker.
        try:
            scenario = Scenario.from_dict(payload)
            submission = self.service.manager.submit(scenario)
        except (ScenarioError, TypeError) as exc:
            counter("service.submissions.rejected")
            self._error(400, str(exc))
            return
        status = 200 if submission["state"] == "cached" else 202
        self._send_json(status, submission)


class ReproService:
    """The HTTP server + job manager pair behind ``repro serve``.

    Usable embedded (tests, notebooks)::

        service = ReproService(state_dir, port=0)
        service.start()          # background thread
        ... HTTP against service.url ...
        service.close()
    """

    def __init__(
        self,
        state_dir: str | Path,
        *,
        host: str = "127.0.0.1",
        port: int = 8765,
    ) -> None:
        self.manager = JobManager(state_dir)
        handler = type("BoundHandler", (_Handler,), {"service": self})
        self.server = ThreadingHTTPServer((host, port), handler)
        self.server.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self.server.server_address[0]

    @property
    def port(self) -> int:
        return self.server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ReproService":
        """Serve on a background thread (embedded use); returns self."""
        self._thread = threading.Thread(
            target=self.server.serve_forever,
            name="repro-service-http",
            daemon=True,
        )
        self._thread.start()
        _log.info("service started", extra={"url": self.url})
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted (the CLI)."""
        _log.info("service started", extra={"url": self.url})
        self.server.serve_forever()

    def close(self) -> None:
        """Stop accepting, finish the current job, release the port."""
        self.server.shutdown()
        self.server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
        self.manager.shutdown()


def serve(
    state_dir: str | Path,
    *,
    host: str = "127.0.0.1",
    port: int = 8765,
) -> None:
    """Run the service until interrupted (the ``repro serve`` command)."""
    service = ReproService(state_dir, host=host, port=port)
    print(
        f"repro service on {service.url} "
        f"(state in {Path(state_dir).resolve()}; Ctrl-C to stop)"
    )
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        service.close()
