"""A stdlib HTTP client for the experiment service.

:class:`ServiceClient` speaks the wire format documented in
``docs/SCENARIOS.md`` using nothing but :mod:`urllib` -- it backs
``repro submit``, the serve smoke driver, and the service tests, and
is small enough to vendor into a notebook.
"""

from __future__ import annotations

import json
import time
from typing import Any, Iterator
from urllib.error import HTTPError, URLError
from urllib.request import Request, urlopen

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """A non-2xx service response; carries the server's error message."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """Talk to a running ``repro serve`` instance.

    Args:
        base_url: e.g. ``http://127.0.0.1:8765``.
        timeout_s: Per-request socket timeout.
    """

    def __init__(self, base_url: str, *, timeout_s: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    # -- plumbing ----------------------------------------------------------

    def _request(
        self, path: str, *, payload: dict[str, Any] | None = None
    ) -> dict[str, Any]:
        request = Request(f"{self.base_url}{path}")
        if payload is not None:
            request.data = json.dumps(payload).encode()
            request.add_header("Content-Type", "application/json")
        try:
            with urlopen(request, timeout=self.timeout_s) as response:
                return json.loads(response.read())
        except HTTPError as exc:
            body = exc.read()
            try:
                message = json.loads(body)["error"]
            except (ValueError, KeyError, TypeError):
                message = body.decode(errors="replace") or exc.reason
            raise ServiceError(exc.code, message) from None
        except URLError as exc:
            raise ServiceError(
                0, f"cannot reach {self.base_url}: {exc.reason}"
            ) from None

    # -- endpoints ---------------------------------------------------------

    def healthz(self) -> dict[str, Any]:
        return self._request("/healthz")

    def experiments(self) -> list[str]:
        return self._request("/experiments")["experiments"]

    def metrics(self) -> dict[str, Any]:
        """The server's metrics snapshot (counters/gauges/histograms)."""
        return self._request("/metrics")

    def submit(self, scenario: dict[str, Any]) -> dict[str, Any]:
        """POST a scenario document; returns the submission response.

        ``state == "cached"`` means results came back inline with zero
        engine work; ``state == "queued"`` means poll ``job``.

        Raises:
            ServiceError: Rejected at the schema boundary (the message
                names the offending key) or transport failure.
        """
        return self._request("/scenarios", payload=scenario)

    def jobs(self) -> list[dict[str, Any]]:
        return self._request("/jobs")["jobs"]

    def job(self, job_id: str) -> dict[str, Any]:
        return self._request(f"/jobs/{job_id}")

    def result(self, job_id: str) -> dict[str, Any]:
        """The terminal job's status + results (409 while running)."""
        return self._request(f"/jobs/{job_id}/result")

    def wait(self, job_id: str, *, timeout_s: float = 120.0) -> dict[str, Any]:
        """Poll until the job is terminal; returns its final status.

        Raises:
            TimeoutError: Still running after ``timeout_s``.
        """
        deadline = time.monotonic() + timeout_s
        while True:
            status = self.job(job_id)
            if status["state"] in ("completed", "failed", "cached"):
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']} after {timeout_s}s"
                )
            time.sleep(0.1)

    def stream_events(
        self, job_id: str, *, follow: bool = True
    ) -> Iterator[dict[str, Any]]:
        """Yield the job's JSONL progress events as they arrive.

        With ``follow`` the stream ends when the job reaches a terminal
        state and the file is drained (the server closes the
        connection).
        """
        suffix = "?follow=1" if follow else ""
        request = Request(f"{self.base_url}/jobs/{job_id}/events{suffix}")
        try:
            with urlopen(request, timeout=self.timeout_s) as response:
                for line in response:
                    line = line.strip()
                    if line:
                        yield json.loads(line)
        except HTTPError as exc:
            body = exc.read()
            try:
                message = json.loads(body)["error"]
            except (ValueError, KeyError, TypeError):
                message = body.decode(errors="replace") or exc.reason
            raise ServiceError(exc.code, message) from None
