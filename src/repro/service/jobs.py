"""Job lifecycle for the experiment service.

A *job* is one accepted scenario submission.  The :class:`JobManager`
owns the digest-addressed :class:`ResultCache`, a FIFO queue, and one
background worker thread that executes jobs through
:func:`repro.scenarios.run_scenario` -- so a job retries, journals,
degrades, and shards exactly like a CLI sweep.

The serving-layer contract (the "millions of users" path):

* **Submission is cheap.**  ``submit`` validates, compiles, and checks
  the cache; if *every* compiled request is already cached the results
  are returned immediately (``state == "cached"``) without touching
  the queue -- zero engine work, provable by ``engine.*`` /
  ``runtime.*`` counter equality across resubmissions.
* **Progress is a stream.**  Each executing job gets its own JSONL
  events file: a :class:`~repro.obs.spans.JsonlSink` registered for
  the duration of the run captures the ``service.job`` span tree, log
  records, and ``--telemetry``-style round events -- with the job's
  ``trace_id`` propagated into worker processes by the sweep runtime,
  so the streamed file stitches to a single trace root.
* **Journals survive.**  Each scenario digest keeps its own journal
  under the state directory; resubmitting a crashed scenario with
  ``execution.resume = true`` picks up where it died.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.analysis.runtime.cache import ResultCache
from repro.analysis.runtime.journal import Journal
from repro.obs.logger import get_logger
from repro.obs.metrics import counter
from repro.obs.spans import JsonlSink, add_sink, remove_sink, span
from repro.scenarios.runner import run_scenario
from repro.scenarios.schema import Scenario

_log = get_logger("service.jobs")

__all__ = ["Job", "JobManager"]

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
COMPLETED = "completed"
FAILED = "failed"
CACHED = "cached"

_TERMINAL = (COMPLETED, FAILED, CACHED)


@dataclass
class Job:
    """One accepted submission and everything known about it."""

    id: str
    scenario: Scenario
    task_keys: list[str]
    events_path: Path
    journal_path: Path
    state: str = QUEUED
    submitted_ts: float = field(default_factory=time.time)
    started_ts: float | None = None
    finished_ts: float | None = None
    error: str | None = None
    provenance: list[str] = field(default_factory=list)
    results: list[dict[str, Any]] | None = None

    @property
    def done(self) -> bool:
        """Whether the job reached a terminal state."""
        return self.state in _TERMINAL

    def status(self) -> dict[str, Any]:
        """The job-status wire format (``GET /jobs/<id>``)."""
        payload: dict[str, Any] = {
            "job": self.id,
            "state": self.state,
            "scenario": self.scenario.name,
            "experiment": self.scenario.experiment,
            "scenario_digest": self.scenario.digest(),
            "tasks": list(self.task_keys),
            "submitted_ts": round(self.submitted_ts, 6),
        }
        if self.started_ts is not None:
            payload["started_ts"] = round(self.started_ts, 6)
        if self.finished_ts is not None:
            payload["finished_ts"] = round(self.finished_ts, 6)
        if self.error is not None:
            payload["error"] = self.error
        if self.provenance:
            payload["provenance"] = list(self.provenance)
        if self.results is not None:
            payload["passed"] = all(
                all(result.get("checks", {}).values())
                for result in self.results
            )
        return payload


class JobManager:
    """Queue, worker thread, cache, and state directory for the service.

    Layout under ``state_dir``::

        cache/                     ResultCache + per-scenario journals
        cache/scenario-<digest>.journal.jsonl
        jobs/<job-id>.events.jsonl streamed JSONL progress

    Thread model: HTTP handler threads call :meth:`submit` /
    :meth:`get` / :meth:`list_jobs`; one daemon worker thread executes
    jobs strictly in submission order (experiment concurrency belongs
    to the sweep runtime's ``jobs`` option, not to overlapping
    sweeps).
    """

    def __init__(self, state_dir: str | Path) -> None:
        self.state_dir = Path(state_dir)
        self.cache_dir = self.state_dir / "cache"
        self.jobs_dir = self.state_dir / "jobs"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self.cache = ResultCache(self.cache_dir)
        self._jobs: dict[str, Job] = {}
        self._order: list[str] = []
        self._queue: "queue.Queue[Job | None]" = queue.Queue()
        self._lock = threading.Lock()
        self._sequence = 0
        self._worker = threading.Thread(
            target=self._work, name="repro-service-worker", daemon=True
        )
        self._worker.start()

    # -- submission --------------------------------------------------------

    def submit(self, scenario: Scenario) -> dict[str, Any]:
        """Accept one scenario; returns the submission wire format.

        Validation runs first (schema errors and non-JSON params raise
        here, before anything is queued).  If every compiled request is
        already cached the cached results are returned inline with
        ``state == "cached"`` and no job is queued -- the engine is
        never touched.

        Raises:
            ScenarioError: Schema violation.
            TypeError: Non-JSON-serialisable parameter (the
                :meth:`ResultCache.key` key-naming error).
        """
        task_keys = scenario.task_keys()  # validates, names bad keys
        counter("service.submissions")
        cached = self._cache_served(scenario)
        if cached is not None:
            counter("service.cache_served")
            _log.info(
                "submission served from cache",
                extra={
                    "scenario": scenario.name,
                    "tasks": len(task_keys),
                },
            )
            return {
                "state": CACHED,
                "job": None,
                "scenario": scenario.name,
                "scenario_digest": scenario.digest(),
                "tasks": task_keys,
                "results": cached,
            }
        with self._lock:
            self._sequence += 1
            job_id = f"job-{self._sequence:04d}"
            job = Job(
                id=job_id,
                scenario=scenario,
                task_keys=task_keys,
                events_path=self.jobs_dir / f"{job_id}.events.jsonl",
                journal_path=self.cache_dir
                / f"scenario-{scenario.digest()}.journal.jsonl",
            )
            self._jobs[job_id] = job
            self._order.append(job_id)
        counter("service.jobs.queued")
        # Snapshot before enqueueing: once the worker can see the job
        # it may flip it to "running" at any moment, and the submission
        # answer should deterministically read "queued".
        status = job.status()
        self._queue.put(job)
        _log.info(
            "job queued",
            extra={"job": job_id, "scenario": scenario.name},
        )
        return status

    def _cache_served(self, scenario: Scenario) -> list[dict[str, Any]] | None:
        """All requests' cached results, or ``None`` if any is missing.

        Only ``reuse`` submissions are eligible; ``refresh``/``off``
        always reach the engine by definition.
        """
        if scenario.cache_policy != "reuse":
            return None
        results = []
        for request in scenario.compile():
            result = self.cache.load(
                request.experiment, request.effective_params()
            )
            if result is None:
                return None
            results.append(result.to_dict())
        return results

    # -- queries -----------------------------------------------------------

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def list_jobs(self) -> list[dict[str, Any]]:
        """Status of every job, in submission order."""
        with self._lock:
            return [self._jobs[job_id].status() for job_id in self._order]

    def wait(self, job_id: str, timeout_s: float = 60.0) -> Job:
        """Block until ``job_id`` is terminal (tests/clients).

        Raises:
            KeyError: Unknown job id.
            TimeoutError: Still running after ``timeout_s``.
        """
        job = self.get(job_id)
        if job is None:
            raise KeyError(f"unknown job {job_id!r}")
        deadline = time.monotonic() + timeout_s
        while not job.done:
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {job.state} after {timeout_s}s"
                )
            time.sleep(0.02)
        return job

    # -- execution ---------------------------------------------------------

    def _work(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            self._run_job(job)

    def _run_job(self, job: Job) -> None:
        job.state = RUNNING
        job.started_ts = time.time()
        counter("service.jobs.started")
        # The sink is registered before the sweep spawns workers, so
        # forked attempt processes inherit it and append to the same
        # file; the `service.job` root span gives the stream one trace
        # id that run_sweep propagates into every worker.
        sink = add_sink(JsonlSink(str(job.events_path)))
        try:
            with span(
                "service.job",
                job=job.id,
                scenario=job.scenario.name,
                experiment=job.scenario.experiment,
                tasks=len(job.task_keys),
            ):
                with Journal(job.journal_path) as journal:
                    outcome = run_scenario(
                        job.scenario, cache=self.cache, journal=journal
                    )
            job.results = [result.to_dict() for result in outcome.results]
            job.provenance = list(outcome.provenance)
            job.state = COMPLETED
            counter("service.jobs.completed")
            _log.info(
                "job completed",
                extra={
                    "job": job.id,
                    "passed": outcome.passed,
                    "skipped": outcome.skipped,
                    "failed": outcome.failed,
                },
            )
        except BaseException as exc:  # noqa: BLE001 -- worker must survive
            job.error = f"{type(exc).__name__}: {exc}"
            job.state = FAILED
            counter("service.jobs.failed")
            _log.error(
                "job failed", extra={"job": job.id, "error": job.error}
            )
        finally:
            job.finished_ts = time.time()
            remove_sink(sink)
            sink.close()

    def shutdown(self) -> None:
        """Stop the worker after the current job (idempotent)."""
        self._queue.put(None)
        self._worker.join(timeout=5)
