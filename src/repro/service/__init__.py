"""The ``repro serve`` experiment service (see ``docs/SCENARIOS.md``).

* :mod:`~repro.service.server` -- the stdlib-only HTTP layer
  (:class:`ReproService`, the blocking :func:`serve` entry point).
* :mod:`~repro.service.jobs` -- :class:`JobManager`: the submission
  queue, the background sweep worker, and the digest-addressed result
  cache that lets repeat submissions skip the engine entirely.
* :mod:`~repro.service.client` -- :class:`ServiceClient`, the urllib
  client behind ``repro submit`` and the smoke driver.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import Job, JobManager
from repro.service.server import ReproService, serve

__all__ = [
    "Job",
    "JobManager",
    "ReproService",
    "ServiceClient",
    "ServiceError",
    "serve",
]
