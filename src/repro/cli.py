"""Command-line interface: run any registered experiment.

Usage::

    python -m repro list
    python -m repro run tab-kernel-structure
    python -m repro run fig-counting-rounds-vs-n --param max_n=200
    python -m repro run tab-star-pd1 --backend fast
    python -m repro all
    python -m repro all --jobs 4 --cache-dir .repro-cache
    python -m repro all --jobs 4 --cache-dir .repro-cache --resume
    python -m repro all --backend fast --timeout 600 --retries 3
    python -m repro all --backend fast --jit on --max-lane-nodes 200000
    python -m repro report out/report.md --jobs 4
    python -m repro all --cache-dir shard-a --shard 0/2
    python -m repro merge-journals merged.jsonl shard-*/journal.jsonl
    python -m repro run tab-kernel-structure --metrics-out m.json
    python -m repro all --log-level debug --log-json events.jsonl
    python -m repro run tab-star-pd1 --telemetry every=10 --log-json e.jsonl
    python -m repro stats m.json worker-*.json
    python -m repro trace events.jsonl
    python -m repro trace events.jsonl --flame > folded.txt
    python -m repro tail .repro-cache/journal.jsonl events.jsonl --follow
    python -m repro bench-report
    python -m repro verify --fuzz 200 --seed 0
    python -m repro verify --suite kernel --suite backend
    python -m repro verify --self-test
    python -m repro verify --replay .repro-verify/kernel-...json
    python -m repro scenario validate scenarios/*.toml
    python -m repro scenario run scenarios/smoke.json --cache-dir .repro-cache
    python -m repro serve --port 8765 --state-dir .repro-service
    python -m repro submit scenarios/smoke.json --url http://127.0.0.1:8765

Parameters given as ``--param name=value`` are parsed as Python literals
and forwarded to the experiment function.  Every command builds typed
:class:`~repro.analysis.registry.ExperimentRequest` values and executes
them through the fault-tolerant runtime
(:func:`repro.analysis.runtime.run_sweep`).

Execution options (``run`` / ``all`` / ``report`` share one group, built
from :data:`repro.scenarios.options.EXECUTION_FIELDS` -- the same table
that defines a scenario file's ``execution`` section, so CLI flags and
schema fields cannot drift):

* ``--backend {object,fast}`` -- simulation backend, applied to the
  experiments that declare support for it.
* ``--jobs N`` -- worker processes (``run``: granted to the
  experiment's internal sweeps; ``all``/``report``: across
  experiments).
* ``--seed S`` -- randomness seed, applied to the experiments that
  declare support for it.
* ``--cache-dir PATH`` -- JSON result cache *and* the checkpoint
  journal (``PATH/journal.jsonl``).
* ``--resume`` -- replay the journal: skip completed tasks, re-queue
  in-flight ones (requires ``--cache-dir``).
* ``--timeout S`` / ``--retries N`` / ``--max-failures N`` -- per-task
  wall-clock budget, retry budget for transient failures, and the
  number of fatally-failed tasks tolerated before aborting.
* ``--inject-fault KIND@K`` -- deterministic fault injection for
  testing the above (see ``docs/ROBUSTNESS.md``).
* ``--max-lane-nodes N`` -- stream the fast backend's lane batches in
  chunks of at most ``N`` stacked nodes (memory-bounded mega-scale
  runs; see ``docs/PERFORMANCE.md``).
* ``--jit {auto,on,off}`` -- use the optional numba-compiled receive
  kernel for fast-backend matvecs (``auto`` falls back silently when
  numba is absent, ``on`` warns, ``off`` never compiles).
* ``--shard I/N`` -- run only the tasks this shard owns (deterministic
  journal-key hash partition); fold the per-shard journals back with
  ``repro merge-journals OUT IN...`` and ``--resume``.
* ``--telemetry [EVERY]`` -- emit one ``kind: "telemetry"`` event per
  sampled engine round (informed/terminated counts, traffic, graph
  size) to the JSONL sinks; ``EVERY`` is ``K`` or ``every=K``.

Scenarios and the experiment service (see ``docs/SCENARIOS.md``):

* ``repro scenario validate FILE...`` -- strict-validate scenario
  files, print their digests and compiled task counts.
* ``repro scenario run FILE`` -- compile a scenario and execute it on
  the sweep runtime locally (``--cache-dir`` / ``--resume`` /
  ``--inject-fault`` stay CLI-side; everything else comes from the
  file's ``execution`` section).
* ``repro serve`` -- the stdlib HTTP experiment service; accepts
  scenario submissions, streams JSONL progress, serves repeat
  submissions from the result cache with zero engine work.
* ``repro submit FILE`` -- send a scenario to a running service and
  (by default) wait for and render the results.

Observability (same commands):

* ``--log-level LEVEL`` -- human-readable ``repro.*`` logs on stderr.
* ``--log-json PATH`` -- append every log record *and* span event to a
  JSONL file (one JSON object per line).
* ``--metrics-out PATH`` -- write the command's metrics snapshot
  (counters, gauges, histograms) as JSON.
* ``--profile`` / ``--profile-mem`` -- cProfile / tracemalloc report on
  stderr when the command finishes.

``repro stats PATH...`` summarises the artifacts back into tables
(several paths/globs merge into one report).  ``repro trace PATH...``
stitches JSONL event files -- including a multi-process sweep's -- into
span trees (``--flame`` emits folded stacks for flamegraph tooling).
``repro tail`` renders a sweep's journal and event files as one
human-readable feed (``--follow`` keeps polling).  ``repro
bench-report`` diffs the latest recorded benchmark run against its
same-mode baseline (see ``benchmarks/BENCH_trajectory.json``).

``repro verify`` fuzzes the property-based verification suites of
:mod:`repro.verify` (model invariants, the paper's kernel identities,
object-vs-fast backend equivalence, sweep-runtime equivalence); failing
cases are shrunk and persisted as replayable fixtures.  See
``docs/VERIFICATION.md``.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from contextlib import ExitStack
from pathlib import Path
from typing import Any

from repro.analysis.registry import available_experiments

__all__ = ["main"]

_LOG_LEVELS = ["debug", "info", "warning", "error", "critical"]


def _parse_params(params: list[str]) -> dict[str, Any]:
    parsed: dict[str, Any] = {}
    for param in params:
        name, sep, raw = param.partition("=")
        if not sep:
            raise SystemExit(f"--param expects name=value, got {param!r}")
        try:
            parsed[name] = ast.literal_eval(raw)
        except (ValueError, SyntaxError):
            parsed[name] = raw
    return parsed


def _observability_options() -> argparse.ArgumentParser:
    """Shared ``--log-*`` / ``--metrics-out`` / ``--profile*`` options."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("observability")
    group.add_argument(
        "--log-level",
        choices=_LOG_LEVELS,
        default=None,
        help="print repro.* logs at this level to stderr",
    )
    group.add_argument(
        "--log-json",
        default=None,
        metavar="PATH",
        help="append log records and span events to PATH as JSON lines",
    )
    group.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write the run's metrics snapshot (JSON) to PATH",
    )
    group.add_argument(
        "--profile",
        action="store_true",
        help="run under cProfile and print the top functions to stderr",
    )
    group.add_argument(
        "--profile-mem",
        action="store_true",
        help="run under tracemalloc and print top allocation sites to stderr",
    )
    return parent


def _execution_options() -> argparse.ArgumentParser:
    """Shared backend/jobs/cache/fault-tolerance options.

    Built from :data:`repro.scenarios.options.EXECUTION_FIELDS` -- the
    same table the scenario schema validates against -- so ``run`` /
    ``all`` / ``report`` flags and a scenario file's ``execution``
    section are one surface and cannot drift.
    """
    from repro.scenarios.options import add_execution_arguments

    parent = argparse.ArgumentParser(add_help=False)
    add_execution_arguments(parent)
    return parent


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce the experiments of 'Investigating the Cost of "
            "Anonymity on Dynamic Networks' (PODC 2015)"
        ),
    )
    obs_options = _observability_options()
    exec_options = _execution_options()
    shared = [obs_options, exec_options]
    commands = parser.add_subparsers(dest="command", required=True)
    commands.add_parser("list", help="list available experiments")
    run = commands.add_parser("run", parents=shared, help="run one experiment")
    run.add_argument("experiment", help="experiment id (see `repro list`)")
    run.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="override an experiment parameter (repeatable)",
    )
    commands.add_parser("all", parents=shared, help="run every experiment")
    report = commands.add_parser(
        "report",
        parents=shared,
        help="run every experiment and write a Markdown report",
    )
    report.add_argument("path", help="output file (e.g. report.md)")
    report.add_argument(
        "--experiment",
        action="append",
        default=None,
        help="restrict to specific experiment ids (repeatable)",
    )
    stats = commands.add_parser(
        "stats",
        help="summarise --metrics-out snapshots / --log-json event files",
    )
    stats.add_argument(
        "path",
        nargs="+",
        help=(
            "metrics JSON or JSONL event files (paths or globs); "
            "several merge into one report"
        ),
    )
    trace = commands.add_parser(
        "trace",
        help="stitch JSONL event file(s) into span trees",
    )
    trace.add_argument(
        "paths",
        nargs="+",
        help="JSONL event files or globs (--log-json outputs)",
    )
    trace.add_argument(
        "--flame",
        action="store_true",
        help="emit folded stacks (span self-time) for flamegraph tooling",
    )
    tail = commands.add_parser(
        "tail",
        help="render a sweep's journal/event JSONL files as one feed",
    )
    tail.add_argument(
        "paths",
        nargs="+",
        help="journal.jsonl and/or --log-json event files",
    )
    tail.add_argument(
        "--follow",
        action="store_true",
        help="keep polling for appended lines (interrupt to stop)",
    )
    merge = commands.add_parser(
        "merge-journals",
        help="merge per-shard checkpoint journals into one resumable file",
    )
    merge.add_argument("out", help="merged journal to write")
    merge.add_argument(
        "sources",
        nargs="+",
        help="shard journal files (e.g. shard-*/journal.jsonl)",
    )
    bench_report = commands.add_parser(
        "bench-report",
        help="diff the latest recorded benchmark run against its baseline",
    )
    bench_report.add_argument(
        "path",
        nargs="?",
        default="benchmarks/BENCH_trajectory.json",
        help="bench trajectory file (default: %(default)s)",
    )
    bench_report.add_argument(
        "--threshold",
        type=float,
        default=0.8,
        metavar="R",
        help=(
            "flag a workload whose speedup fell below R times the "
            "baseline's (default: %(default)s)"
        ),
    )
    bench_report.add_argument(
        "--mode",
        choices=["quick", "full"],
        default=None,
        help="restrict the trajectory to one bench mode",
    )
    verify = commands.add_parser(
        "verify",
        parents=[obs_options],
        help="fuzz the property-based verification suites",
    )
    verify.add_argument(
        "--fuzz",
        type=int,
        default=50,
        metavar="N",
        help=(
            "cases per suite (the runtime suite draws N/40: each of its "
            "cases runs a workload three full times; default: 50)"
        ),
    )
    verify.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="S",
        help="master seed; the generated case list is a pure function "
        "of it (default: 0)",
    )
    verify.add_argument(
        "--suite",
        action="append",
        default=None,
        choices=["model", "kernel", "backend", "runtime", "counting"],
        help="restrict to specific suites (repeatable; default: all)",
    )
    verify.add_argument(
        "--fixtures-dir",
        default=".repro-verify",
        metavar="PATH",
        help="persist shrunk counterexamples as replayable JSON "
        "fixtures under PATH (default: .repro-verify)",
    )
    verify.add_argument(
        "--no-shrink",
        action="store_true",
        help="report failing cases as generated, without minimising",
    )
    verify.add_argument(
        "--self-test",
        action="store_true",
        help=(
            "arm each seeded mutant and prove the harness detects the "
            "injected violation, shrinks it to the minimum, and emits "
            "a replayable fixture (runs instead of the fuzz suites)"
        ),
    )
    verify.add_argument(
        "--replay",
        default=None,
        metavar="FIXTURE",
        help="re-run one persisted fixture instead of fuzzing",
    )
    scenario = commands.add_parser(
        "scenario",
        help="validate / run declarative scenario files",
    )
    scenario_sub = scenario.add_subparsers(
        dest="scenario_command", required=True
    )
    validate = scenario_sub.add_parser(
        "validate",
        help="strict-validate scenario files and print their digests",
    )
    validate.add_argument(
        "paths",
        nargs="+",
        help="scenario files (.json or .toml)",
    )
    scenario_run = scenario_sub.add_parser(
        "run",
        parents=[obs_options],
        help="compile a scenario file and run it on the sweep runtime",
    )
    scenario_run.add_argument(
        "path", help="scenario file (.json or .toml)"
    )
    scenario_run.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help=(
            "cache results under PATH and keep the scenario's "
            "digest-keyed checkpoint journal there (enables --resume)"
        ),
    )
    scenario_run.add_argument(
        "--resume",
        action="store_true",
        default=None,
        help=(
            "override the scenario's execution.resume and replay the "
            "checkpoint journal (requires --cache-dir)"
        ),
    )
    scenario_run.add_argument(
        "--inject-fault",
        default=None,
        metavar="KIND@K",
        help=(
            "testing: deterministically inject a fault "
            "(raise|fatal|hang|kill) into the K-th pending task's "
            "first attempt"
        ),
    )
    serve = commands.add_parser(
        "serve",
        parents=[obs_options],
        help="run the HTTP experiment service",
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default: %(default)s)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8765,
        help="bind port; 0 picks an ephemeral one (default: %(default)s)",
    )
    serve.add_argument(
        "--state-dir",
        default=".repro-service",
        metavar="PATH",
        help=(
            "result cache, per-scenario journals, and job event "
            "streams live here (default: %(default)s)"
        ),
    )
    submit = commands.add_parser(
        "submit",
        parents=[obs_options],
        help="submit a scenario file to a running service",
    )
    submit.add_argument(
        "scenario", help="scenario file (.json or .toml)"
    )
    submit.add_argument(
        "--url",
        default="http://127.0.0.1:8765",
        help="service base URL (default: %(default)s)",
    )
    submit.add_argument(
        "--no-wait",
        action="store_true",
        help="return right after submission instead of waiting for results",
    )
    submit.add_argument(
        "--events",
        action="store_true",
        help="stream the job's JSONL progress events to stdout while waiting",
    )
    return parser


def _runtime_setup(args: argparse.Namespace) -> dict[str, Any]:
    """Shared ``run_sweep`` keyword arguments from the execution flags."""
    from repro.analysis.runtime import (
        FaultPlan,
        Journal,
        ResultCache,
        RetryPolicy,
        parse_shard,
    )

    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    journal = (
        Journal(Path(args.cache_dir) / "journal.jsonl")
        if args.cache_dir
        else None
    )
    if args.resume and journal is None:
        raise SystemExit(
            "--resume requires --cache-dir: the checkpoint journal and "
            "the completed results live there"
        )
    try:
        policy = RetryPolicy(
            retries=args.retries,
            timeout_s=args.timeout,
            max_failures=args.max_failures,
        )
        faults = (
            FaultPlan.parse(args.inject_fault) if args.inject_fault else None
        )
        shard = parse_shard(args.shard) if args.shard else None
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc
    return {
        "cache": cache,
        "journal": journal,
        "resume": args.resume,
        "policy": policy,
        "faults": faults,
        "shard": shard,
    }


def _execute_verify(args: argparse.Namespace) -> int:
    """Run the ``verify`` command (fuzz, self-test, or fixture replay)."""
    from repro.verify import replay_fixture, run_self_test, run_verify

    if args.replay:
        violations = replay_fixture(args.replay)
        if violations:
            print(f"fixture {args.replay} still fails:")
            for message in violations:
                print(f"  {message}")
            return 1
        print(
            f"fixture {args.replay} passes -- the bug it captured is "
            f"fixed; promote it to a regression test"
        )
        return 0
    if args.self_test:
        problems = run_self_test(
            seed=args.seed, fixtures_dir=args.fixtures_dir
        )
        if problems:
            print("self-test FAILED:")
            for problem in problems:
                print(f"  {problem}")
            return 1
        print(
            "self-test passed: every seeded mutant was detected, "
            "shrunk to a minimal case, and replayed from its fixture"
        )
        return 0
    report = run_verify(
        fuzz=args.fuzz,
        seed=args.seed,
        suites=args.suite,
        fixtures_dir=args.fixtures_dir,
        do_shrink=not args.no_shrink,
    )
    print(report.render())
    return 0 if report.passed else 1


def _print_wire_results(results: list[dict[str, Any]]) -> int:
    """Render service wire-format results; exit code from their checks."""
    from repro.analysis.registry import ExperimentResult

    parsed = [ExperimentResult.from_dict(payload) for payload in results]
    for result in parsed:
        print(result.render())
        print()
    return 0 if all(result.passed for result in parsed) else 1


def _execute_scenario_validate(args: argparse.Namespace) -> int:
    """``repro scenario validate``: strict-check files, print digests."""
    from repro.scenarios import ScenarioError, load_scenario

    status = 0
    for path in args.paths:
        try:
            scenario = load_scenario(path)
            tasks = scenario.task_keys()
        except (OSError, ScenarioError, TypeError) as exc:
            print(f"{path}: INVALID: {exc}")
            status = 1
            continue
        print(
            f"{path}: ok -- scenario {scenario.name!r} "
            f"({scenario.experiment}), {len(tasks)} task(s), "
            f"digest {scenario.digest()}"
        )
    return status


def _execute_scenario_run(args: argparse.Namespace) -> int:
    """``repro scenario run``: execute a scenario file locally."""
    from repro.analysis.runtime import FaultPlan, Journal, ResultCache
    from repro.scenarios import ScenarioError, load_scenario, run_scenario

    try:
        scenario = load_scenario(args.path)
    except (OSError, ScenarioError) as exc:
        raise SystemExit(str(exc)) from exc
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    journal = (
        Journal(
            Path(args.cache_dir)
            / f"scenario-{scenario.digest()}.journal.jsonl"
        )
        if args.cache_dir
        else None
    )
    resume = (
        scenario.execution.resume if args.resume is None else args.resume
    )
    if resume and journal is None:
        raise SystemExit(
            "--resume requires --cache-dir: the checkpoint journal and "
            "the completed results live there"
        )
    try:
        faults = (
            FaultPlan.parse(args.inject_fault) if args.inject_fault else None
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc
    try:
        outcome = run_scenario(
            scenario,
            cache=cache,
            journal=journal,
            resume=resume,
            faults=faults,
        )
    except (ScenarioError, TypeError) as exc:
        raise SystemExit(str(exc)) from exc
    for result in outcome.results:
        print(result.render())
        print()
    for line in outcome.provenance:
        print(f"provenance: {line}")
    return 0 if outcome.passed else 1


def _execute_serve(args: argparse.Namespace) -> int:
    """``repro serve``: run the HTTP experiment service until killed."""
    from repro.service.server import serve as serve_service

    serve_service(args.state_dir, host=args.host, port=args.port)
    return 0


def _execute_submit(args: argparse.Namespace) -> int:
    """``repro submit``: send a scenario to a running service."""
    from repro.scenarios import ScenarioError, load_scenario
    from repro.service.client import ServiceClient, ServiceError

    try:
        scenario = load_scenario(args.scenario)
    except (OSError, ScenarioError) as exc:
        raise SystemExit(str(exc)) from exc
    client = ServiceClient(args.url)
    try:
        submission = client.submit(scenario.to_dict())
    except ServiceError as exc:
        raise SystemExit(str(exc)) from exc
    if submission["state"] == "cached":
        print(
            f"served from cache: {len(submission['results'])} result(s), "
            f"zero engine work (digest {submission['scenario_digest']})"
        )
        return _print_wire_results(submission["results"])
    job_id = submission["job"]
    print(
        f"queued as {job_id} "
        f"(scenario digest {submission['scenario_digest']})"
    )
    if args.no_wait:
        print(f"poll with: curl {args.url}/jobs/{job_id}")
        return 0
    try:
        if args.events:
            for event in client.stream_events(job_id):
                print(json.dumps(event))
        final = client.wait(job_id)
        if final["state"] == "failed":
            print(f"job {job_id} failed: {final.get('error')}")
            return 1
        return _print_wire_results(client.result(job_id)["results"])
    except (ServiceError, TimeoutError) as exc:
        raise SystemExit(str(exc)) from exc


def _execute(args: argparse.Namespace) -> int:
    """Run the instrumented command (``run`` / ``all`` / ``report``)."""
    if args.command == "verify":
        return _execute_verify(args)
    if args.command == "scenario":
        return _execute_scenario_run(args)
    if args.command == "serve":
        return _execute_serve(args)
    if args.command == "submit":
        return _execute_submit(args)

    from repro.analysis.registry import ExperimentRequest, experiment_options
    from repro.analysis.runtime import run_sweep
    from repro.scenarios.options import ExecutionOptions

    try:
        options = ExecutionOptions.from_namespace(args)
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc
    backend = options.request_backend()
    runtime = _runtime_setup(args)
    if args.command == "run":
        params = _parse_params(args.param)
        if backend is not None and "backend" not in experiment_options(
            args.experiment
        ):
            raise SystemExit(
                f"experiment {args.experiment!r} does not support "
                f"--backend {args.backend} (it never touches the "
                "simulation engine)"
            )
        request = ExperimentRequest(
            experiment=args.experiment,
            params=params,
            backend=backend,
            jobs=args.jobs if args.jobs > 1 else None,
            seed=options.seed,
        )
        outcome = run_sweep([request], jobs=1, **runtime)
        if not outcome.results:  # the task belongs to another shard
            print(
                f"experiment {args.experiment!r} is not owned by "
                f"--shard {args.shard}; nothing ran"
            )
            for line in outcome.provenance:
                print(f"provenance: {line}")
            return 0
        result = outcome.results[0]
        print(result.render())
        for line in outcome.provenance:
            print(f"provenance: {line}")
        return 0 if result.passed else 1
    if args.command == "report":
        from repro.analysis.reporting import write_report

        names = args.experiment or available_experiments()
        requests = [
            ExperimentRequest(
                experiment=name, backend=backend, seed=options.seed
            )
            for name in names
        ]
        path = write_report(
            args.path, requests=requests, jobs=args.jobs, **runtime
        )
        print(f"report written to {path}")
        return 0
    # command == "all"
    requests = [
        ExperimentRequest(
            experiment=name, backend=backend, seed=options.seed
        )
        for name in available_experiments()
    ]
    outcome = run_sweep(requests, jobs=args.jobs, **runtime)
    for result in outcome.results:
        print(result.render())
        print()
    for line in outcome.provenance:
        print(f"provenance: {line}")
    return 0 if outcome.passed else 1


def _execute_trace(args: argparse.Namespace) -> int:
    """Run the ``trace`` command: stitch JSONL files into span trees."""
    from repro.obs.trace import (
        folded_stacks,
        read_events,
        render_trace,
        stitch,
    )

    try:
        events, bad = read_events(args.paths)
    except FileNotFoundError as exc:
        raise SystemExit(str(exc)) from exc
    traces = stitch(events)
    if not traces:
        print("no events")
        return 1
    if args.flame:
        for trace in traces:
            for line in folded_stacks(trace):
                print(line)
    else:
        print("\n\n".join(render_trace(trace) for trace in traces))
    if bad:
        print(f"({bad} unparseable line(s) skipped)", file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for experiment in available_experiments():
            print(experiment)
        return 0
    if args.command == "stats":
        from repro.obs.stats import summarize_stats_files

        try:
            print(summarize_stats_files(args.path))
        except FileNotFoundError as exc:
            raise SystemExit(str(exc)) from exc
        return 0
    if args.command == "trace":
        return _execute_trace(args)
    if args.command == "tail":
        from repro.obs.tail import tail as tail_files

        try:
            tail_files(args.paths, follow=args.follow, stream=sys.stdout)
        except FileNotFoundError as exc:
            raise SystemExit(str(exc)) from exc
        except (KeyboardInterrupt, BrokenPipeError):
            pass  # interrupted follow / output piped into `head`
        return 0
    if args.command == "merge-journals":
        from repro.analysis.runtime import merge_journals

        try:
            lines = merge_journals(args.out, args.sources)
        except (OSError, ValueError) as exc:
            raise SystemExit(str(exc)) from exc
        print(
            f"merged {len(args.sources)} journal(s), {lines} line(s), "
            f"into {args.out}"
        )
        return 0
    if args.command == "scenario" and args.scenario_command == "validate":
        return _execute_scenario_validate(args)
    if args.command == "bench-report":
        from repro.obs.bench import render_report

        try:
            text, status = render_report(
                args.path, threshold=args.threshold, mode=args.mode
            )
        except (OSError, ValueError) as exc:
            raise SystemExit(str(exc)) from exc
        print(text)
        return status

    from repro.obs import telemetry as telemetry_mod
    from repro.obs.logger import configure_logging, teardown_logging
    from repro.obs.metrics import MetricsRegistry, use_registry
    from repro.obs.profiling import memory_profiled, profiled

    telemetry_arg = getattr(args, "telemetry", None)
    if telemetry_arg is not None:
        try:
            telemetry_every = telemetry_mod.parse_every(telemetry_arg)
        except ValueError as exc:
            raise SystemExit(str(exc)) from exc

    handlers = configure_logging(args.log_level, json_path=args.log_json)
    try:
        with use_registry(MetricsRegistry()) as registry, ExitStack() as stack:
            if args.profile:
                stack.enter_context(profiled())
            if args.profile_mem:
                stack.enter_context(memory_profiled())
            if telemetry_arg is not None:
                stack.enter_context(
                    telemetry_mod.telemetry_enabled(telemetry_every)
                )
            # `verify` shares the observability group only, so the
            # execution flags default via getattr.
            max_lane_nodes = getattr(args, "max_lane_nodes", None)
            if max_lane_nodes is not None:
                from repro.simulation import fast as fast_mod

                try:
                    stack.enter_context(
                        fast_mod.lane_budget_enabled(max_lane_nodes)
                    )
                except ValueError as exc:
                    raise SystemExit(str(exc)) from exc
            jit_mode = getattr(args, "jit", None)
            if jit_mode is not None:
                from repro.simulation import jit as jit_mod

                stack.enter_context(jit_mod.jit_enabled(jit_mode))
            try:
                return _execute(args)
            finally:
                if args.metrics_out:
                    with open(args.metrics_out, "w", encoding="utf-8") as out:
                        json.dump(registry.snapshot(), out, indent=1)
                        out.write("\n")
    finally:
        teardown_logging(handlers)


if __name__ == "__main__":
    sys.exit(main())
