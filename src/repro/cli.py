"""Command-line interface: run any registered experiment.

Usage::

    python -m repro list
    python -m repro run tab-kernel-structure
    python -m repro run fig-counting-rounds-vs-n --param max_n=200
    python -m repro run tab-star-pd1 --backend fast
    python -m repro all
    python -m repro all --jobs 4 --cache-dir .repro-cache
    python -m repro all --backend fast
    python -m repro report out/report.md --jobs 4
    python -m repro run tab-kernel-structure --metrics-out m.json
    python -m repro all --log-level debug --log-json events.jsonl
    python -m repro stats m.json

Parameters given as ``--param name=value`` are parsed as Python literals
and forwarded to the experiment function.

Observability (``run`` / ``all`` / ``report``):

* ``--log-level LEVEL`` -- human-readable ``repro.*`` logs on stderr.
* ``--log-json PATH`` -- append every log record *and* span event to a
  JSONL file (one JSON object per line).
* ``--metrics-out PATH`` -- write the command's metrics snapshot
  (counters, gauges, histograms) as JSON.
* ``--profile`` / ``--profile-mem`` -- cProfile / tracemalloc report on
  stderr when the command finishes.

``repro stats PATH`` summarises either artifact back into tables.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from contextlib import ExitStack
from typing import Any

from repro.analysis.registry import available_experiments

__all__ = ["main"]

_LOG_LEVELS = ["debug", "info", "warning", "error", "critical"]


def _parse_params(params: list[str]) -> dict[str, Any]:
    parsed: dict[str, Any] = {}
    for param in params:
        name, sep, raw = param.partition("=")
        if not sep:
            raise SystemExit(f"--param expects name=value, got {param!r}")
        try:
            parsed[name] = ast.literal_eval(raw)
        except (ValueError, SyntaxError):
            parsed[name] = raw
    return parsed


def _observability_options() -> argparse.ArgumentParser:
    """Shared ``--log-*`` / ``--metrics-out`` / ``--profile*`` options."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("observability")
    group.add_argument(
        "--log-level",
        choices=_LOG_LEVELS,
        default=None,
        help="print repro.* logs at this level to stderr",
    )
    group.add_argument(
        "--log-json",
        default=None,
        metavar="PATH",
        help="append log records and span events to PATH as JSON lines",
    )
    group.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write the run's metrics snapshot (JSON) to PATH",
    )
    group.add_argument(
        "--profile",
        action="store_true",
        help="run under cProfile and print the top functions to stderr",
    )
    group.add_argument(
        "--profile-mem",
        action="store_true",
        help="run under tracemalloc and print top allocation sites to stderr",
    )
    return parent


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce the experiments of 'Investigating the Cost of "
            "Anonymity on Dynamic Networks' (PODC 2015)"
        ),
    )
    obs_options = _observability_options()
    commands = parser.add_subparsers(dest="command", required=True)
    commands.add_parser("list", help="list available experiments")
    run = commands.add_parser(
        "run", parents=[obs_options], help="run one experiment"
    )
    run.add_argument("experiment", help="experiment id (see `repro list`)")
    run.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="override an experiment parameter (repeatable)",
    )
    run.add_argument(
        "--backend",
        choices=["object", "fast"],
        default="object",
        help=(
            "simulation backend: 'object' drives one process object per "
            "node, 'fast' the vectorized batch engine (default: object)"
        ),
    )
    run_all = commands.add_parser(
        "all", parents=[obs_options], help="run every experiment"
    )
    run_all.add_argument(
        "--backend",
        choices=["object", "fast"],
        default="object",
        help=(
            "simulation backend for the experiments that support one "
            "(default: object)"
        ),
    )
    run_all.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run experiments over N worker processes (default: serial)",
    )
    run_all.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help=(
            "cache results as JSON under PATH, keyed by (experiment, "
            "params); cached experiments are not re-run"
        ),
    )
    report = commands.add_parser(
        "report",
        parents=[obs_options],
        help="run every experiment and write a Markdown report",
    )
    report.add_argument("path", help="output file (e.g. report.md)")
    report.add_argument(
        "--experiment",
        action="append",
        default=None,
        help="restrict to specific experiment ids (repeatable)",
    )
    report.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run the report's experiments over N worker processes",
    )
    report.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help="reuse/store experiment results under PATH (see `all`)",
    )
    report.add_argument(
        "--backend",
        choices=["object", "fast"],
        default="object",
        help="simulation backend for supporting experiments (see `all`)",
    )
    stats = commands.add_parser(
        "stats",
        help="summarise a --metrics-out snapshot or --log-json event file",
    )
    stats.add_argument("path", help="metrics JSON or JSONL event file")
    return parser


def _sweep_params(args: argparse.Namespace) -> dict[str, Any] | None:
    """Sweep-wide overrides from CLI flags (``None`` when all-default).

    Returning ``None`` for a default (``object``) run keeps cache keys
    identical to pre-``--backend`` invocations.
    """
    return {"backend": args.backend} if args.backend != "object" else None


def _execute(args: argparse.Namespace) -> int:
    """Run the instrumented command (``run`` / ``all`` / ``report``)."""
    if args.command == "run":
        from repro.analysis.parallel import timed_run
        from repro.analysis.registry import experiment_accepts

        params = _parse_params(args.param)
        if args.backend != "object":
            if not experiment_accepts(args.experiment, "backend"):
                raise SystemExit(
                    f"experiment {args.experiment!r} does not support "
                    f"--backend {args.backend} (it never touches the "
                    "simulation engine)"
                )
            params.setdefault("backend", args.backend)
        result = timed_run(args.experiment, **params)
        print(result.render())
        return 0 if result.passed else 1
    if args.command == "report":
        from repro.analysis.reporting import write_report

        path = write_report(
            args.path,
            experiments=args.experiment,
            jobs=args.jobs,
            cache=args.cache_dir,
            params=_sweep_params(args),
        )
        print(f"report written to {path}")
        return 0
    # command == "all"
    from repro.analysis.parallel import ResultCache, run_experiments

    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    all_passed = True
    for result in run_experiments(
        jobs=args.jobs, cache=cache, params=_sweep_params(args)
    ):
        print(result.render())
        print()
        all_passed &= result.passed
    return 0 if all_passed else 1


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for experiment in available_experiments():
            print(experiment)
        return 0
    if args.command == "stats":
        from repro.obs.stats import summarize_stats_file

        print(summarize_stats_file(args.path))
        return 0

    from repro.obs.logger import configure_logging, teardown_logging
    from repro.obs.metrics import MetricsRegistry, use_registry
    from repro.obs.profiling import memory_profiled, profiled

    handlers = configure_logging(args.log_level, json_path=args.log_json)
    try:
        with use_registry(MetricsRegistry()) as registry, ExitStack() as stack:
            if args.profile:
                stack.enter_context(profiled())
            if args.profile_mem:
                stack.enter_context(memory_profiled())
            try:
                return _execute(args)
            finally:
                if args.metrics_out:
                    with open(args.metrics_out, "w", encoding="utf-8") as out:
                        json.dump(registry.snapshot(), out, indent=1)
                        out.write("\n")
    finally:
        teardown_logging(handlers)


if __name__ == "__main__":
    sys.exit(main())
