"""Command-line interface: run any registered experiment.

Usage::

    python -m repro list
    python -m repro run tab-kernel-structure
    python -m repro run fig-counting-rounds-vs-n --param max_n=200
    python -m repro all
    python -m repro all --jobs 4 --cache-dir .repro-cache
    python -m repro report out/report.md

Parameters given as ``--param name=value`` are parsed as Python literals
and forwarded to the experiment function.
"""

from __future__ import annotations

import argparse
import ast
import sys
from typing import Any

from repro.analysis.registry import available_experiments, run_experiment

__all__ = ["main"]


def _parse_params(params: list[str]) -> dict[str, Any]:
    parsed: dict[str, Any] = {}
    for param in params:
        name, sep, raw = param.partition("=")
        if not sep:
            raise SystemExit(f"--param expects name=value, got {param!r}")
        try:
            parsed[name] = ast.literal_eval(raw)
        except (ValueError, SyntaxError):
            parsed[name] = raw
    return parsed


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce the experiments of 'Investigating the Cost of "
            "Anonymity on Dynamic Networks' (PODC 2015)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)
    commands.add_parser("list", help="list available experiments")
    run = commands.add_parser("run", help="run one experiment")
    run.add_argument("experiment", help="experiment id (see `repro list`)")
    run.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="override an experiment parameter (repeatable)",
    )
    run_all = commands.add_parser("all", help="run every experiment")
    run_all.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run experiments over N worker processes (default: serial)",
    )
    run_all.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help=(
            "cache results as JSON under PATH, keyed by (experiment, "
            "params); cached experiments are not re-run"
        ),
    )
    report = commands.add_parser(
        "report", help="run every experiment and write a Markdown report"
    )
    report.add_argument("path", help="output file (e.g. report.md)")
    report.add_argument(
        "--experiment",
        action="append",
        default=None,
        help="restrict to specific experiment ids (repeatable)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for experiment in available_experiments():
            print(experiment)
        return 0
    if args.command == "run":
        result = run_experiment(args.experiment, **_parse_params(args.param))
        print(result.render())
        return 0 if result.passed else 1
    if args.command == "report":
        from repro.analysis.reporting import write_report

        path = write_report(args.path, experiments=args.experiment)
        print(f"report written to {path}")
        return 0
    # command == "all"
    from repro.analysis.parallel import ResultCache, run_experiments

    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    all_passed = True
    for result in run_experiments(jobs=args.jobs, cache=cache):
        print(result.render())
        print()
        all_passed &= result.passed
    return 0 if all_passed else 1


if __name__ == "__main__":
    sys.exit(main())
