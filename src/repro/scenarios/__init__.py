"""Declarative scenarios: runs as data (see ``docs/SCENARIOS.md``).

* :mod:`~repro.scenarios.schema` -- the versioned, strictly-validated
  JSON/TOML scenario schema; :class:`Scenario` compiles
  deterministically into typed
  :class:`~repro.analysis.registry.ExperimentRequest` values with
  cache/journal identity byte-identical to hand-built requests.
* :mod:`~repro.scenarios.options` -- :class:`ExecutionOptions`, the
  single execution-option surface shared by the CLI flag group, the
  scenario schema, and ``repro serve``.
* :mod:`~repro.scenarios.runner` -- :func:`run_scenario`, the bridge
  onto the fault-tolerant sweep runtime.
"""

from repro.scenarios.options import (
    EXECUTION_FIELDS,
    ExecutionOptions,
    add_execution_arguments,
    schema_fields,
)
from repro.scenarios.runner import run_scenario
from repro.scenarios.schema import (
    SCHEMA_VERSION,
    Scenario,
    ScenarioError,
    load_scenario,
)

__all__ = [
    "EXECUTION_FIELDS",
    "ExecutionOptions",
    "SCHEMA_VERSION",
    "Scenario",
    "ScenarioError",
    "add_execution_arguments",
    "load_scenario",
    "run_scenario",
    "schema_fields",
]
