"""The one execution-option surface shared by CLI, scenarios, and service.

``run`` / ``all`` / ``report`` / ``scenario run`` / ``repro serve`` and
the declarative scenario schema all execute sweeps with the same knobs:
backend, jobs, seed, timeouts, retries, failure budgets, sharding,
telemetry, lane budgets, JIT.  Before this module each surface wired
its own copy of those options and they drifted (the CLI had no
``--seed``; ``--telemetry`` lived in a different group than the rest).

:class:`ExecutionOptions` is now the single definition.  Each field is
described once in :data:`EXECUTION_FIELDS` -- name, CLI flag, argparse
configuration, scenario-schema visibility -- and everything else is
derived from that table:

* :func:`add_execution_arguments` builds the CLI flag group,
* :meth:`ExecutionOptions.from_namespace` reads parsed CLI args,
* :meth:`ExecutionOptions.from_dict` validates a scenario file's
  ``execution`` section (unknown keys rejected by name),
* :func:`schema_fields` names the fields a scenario may set,

so a test can assert CLI flags and schema fields are the *same set*
(``tests/scenarios/test_options.py``) and they can never drift again.

The CLI-only flags ``--cache-dir`` / ``--inject-fault`` ride in the
same group but are not execution options: where results live and which
fault to inject are properties of one invocation, not of a scenario.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, fields as dataclass_fields
from typing import Any, Mapping

from repro.analysis.runtime.journal import parse_shard
from repro.analysis.runtime.retry import RetryPolicy
from repro.obs.telemetry import parse_every

__all__ = [
    "EXECUTION_FIELDS",
    "ExecutionOptions",
    "add_execution_arguments",
    "schema_fields",
]


@dataclass(frozen=True)
class FieldSpec:
    """One execution option: its CLI flag and its schema visibility."""

    name: str
    flag: str
    kwargs: Mapping[str, Any]
    #: ``False`` for per-invocation flags (``--cache-dir``,
    #: ``--inject-fault``) that a scenario file must not set.
    schema: bool = True


#: The single source of truth for the execution-option surface.
EXECUTION_FIELDS: tuple[FieldSpec, ...] = (
    FieldSpec(
        "backend",
        "--backend",
        {
            "choices": ["object", "fast"],
            "default": "object",
            "help": (
                "simulation backend: 'object' drives one process object "
                "per node, 'fast' the vectorized batch engine; applied "
                "to the experiments that declare support for it "
                "(default: object)"
            ),
        },
    ),
    FieldSpec(
        "jobs",
        "--jobs",
        {
            "type": int,
            "default": 1,
            "metavar": "N",
            "help": (
                "worker processes (default: serial); for `run` this is "
                "granted to the experiment's internal sweeps"
            ),
        },
    ),
    FieldSpec(
        "seed",
        "--seed",
        {
            "type": int,
            "default": None,
            "metavar": "S",
            "help": (
                "randomness seed, applied to the experiments that "
                "declare support for it (default: each experiment's own "
                "default)"
            ),
        },
    ),
    FieldSpec(
        "cache_dir",
        "--cache-dir",
        {
            "default": None,
            "metavar": "PATH",
            "help": (
                "cache results as JSON under PATH, keyed by "
                "(experiment, params), and keep the checkpoint journal "
                "at PATH/journal.jsonl; cached experiments are not re-run"
            ),
        },
        schema=False,
    ),
    FieldSpec(
        "resume",
        "--resume",
        {
            "action": "store_true",
            "help": (
                "replay the checkpoint journal: skip completed tasks, "
                "re-queue in-flight ones (requires --cache-dir)"
            ),
        },
    ),
    FieldSpec(
        "timeout",
        "--timeout",
        {
            "type": float,
            "default": None,
            "metavar": "S",
            "help": (
                "wall-clock budget per task attempt in seconds; hung "
                "workers are terminated and retried (needs --jobs >= 2)"
            ),
        },
    ),
    FieldSpec(
        "retries",
        "--retries",
        {
            "type": int,
            "default": 2,
            "metavar": "N",
            "help": (
                "extra attempts per task after a transient failure "
                "(worker crash, timeout, I/O); deterministic bugs never "
                "retry (default: 2)"
            ),
        },
    ),
    FieldSpec(
        "max_failures",
        "--max-failures",
        {
            "type": int,
            "default": 0,
            "metavar": "N",
            "help": (
                "fatally-failed tasks tolerated before the sweep "
                "aborts; tolerated failures appear as failing results "
                "in the output (default: 0, fail fast)"
            ),
        },
    ),
    FieldSpec(
        "inject_fault",
        "--inject-fault",
        {
            "default": None,
            "metavar": "KIND@K",
            "help": (
                "testing: deterministically inject a fault "
                "(raise|fatal|hang|kill) into the K-th pending task's "
                "first attempt"
            ),
        },
        schema=False,
    ),
    FieldSpec(
        "max_lane_nodes",
        "--max-lane-nodes",
        {
            "type": int,
            "default": None,
            "metavar": "N",
            "help": (
                "fast backend: stream lane batches in chunks of at most "
                "N stacked nodes instead of materialising one "
                "block-diagonal stack (results are identical; peak "
                "memory is bounded by the chunk, see "
                "docs/PERFORMANCE.md)"
            ),
        },
    ),
    FieldSpec(
        "jit",
        "--jit",
        {
            "choices": ["auto", "on", "off"],
            "default": "auto",
            "help": (
                "fast backend: compile the receive-phase matvec kernel "
                "with numba when importable ('auto', the default, falls "
                "back to scipy silently; 'on' warns on fallback; 'off' "
                "never compiles)"
            ),
        },
    ),
    FieldSpec(
        "shard",
        "--shard",
        {
            "default": None,
            "metavar": "I/N",
            "help": (
                "run only the sweep tasks shard I of N owns "
                "(deterministic journal-key hash partition, stable "
                "across machines); merge the per-shard journals with "
                "`repro merge-journals` and --resume to fold shards "
                "back together"
            ),
        },
    ),
    FieldSpec(
        "telemetry",
        "--telemetry",
        {
            "nargs": "?",
            "const": "1",
            "default": None,
            "metavar": "EVERY",
            "help": (
                "emit per-round engine telemetry events every EVERY "
                "rounds ('K' or 'every=K'; bare flag samples every "
                "round); pair with --log-json to capture them"
            ),
        },
    ),
)


def schema_fields() -> frozenset[str]:
    """The execution-option names a scenario file may set."""
    return frozenset(spec.name for spec in EXECUTION_FIELDS if spec.schema)


def add_execution_arguments(
    parser: argparse.ArgumentParser,
) -> argparse.ArgumentParser:
    """Attach the shared execution flag group to ``parser``; returns it."""
    group = parser.add_argument_group("execution")
    for spec in EXECUTION_FIELDS:
        group.add_argument(spec.flag, **dict(spec.kwargs))
    return parser


def _default(name: str) -> Any:
    for spec in EXECUTION_FIELDS:
        if spec.name == name:
            return spec.kwargs.get("default", False)
    raise KeyError(name)


@dataclass(frozen=True)
class ExecutionOptions:
    """Validated execution options for one sweep (see module docstring).

    Attributes mirror the CLI flags one-to-one; string-shaped values
    (``shard``, ``telemetry``) keep their surface syntax so a scenario
    file and a command line read identically, and are parsed on demand
    by :meth:`shard_tuple` / :meth:`telemetry_every`.
    """

    backend: str = "object"
    jobs: int = 1
    seed: int | None = None
    resume: bool = False
    timeout: float | None = None
    retries: int = 2
    max_failures: int = 0
    max_lane_nodes: int | None = None
    jit: str = "auto"
    shard: str | None = None
    telemetry: int | str | None = None

    def __post_init__(self) -> None:
        if self.backend not in ("object", "fast"):
            raise ValueError(
                f"backend must be 'object' or 'fast', got {self.backend!r}"
            )
        if self.jit not in ("auto", "on", "off"):
            raise ValueError(
                f"jit must be 'auto', 'on' or 'off', got {self.jit!r}"
            )
        if not isinstance(self.jobs, int) or isinstance(self.jobs, bool):
            raise ValueError(f"jobs must be an integer, got {self.jobs!r}")
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if self.seed is not None and (
            not isinstance(self.seed, int) or isinstance(self.seed, bool)
        ):
            raise ValueError(f"seed must be an integer, got {self.seed!r}")
        if not isinstance(self.resume, bool):
            raise ValueError(f"resume must be a boolean, got {self.resume!r}")
        if self.max_lane_nodes is not None and (
            not isinstance(self.max_lane_nodes, int)
            or isinstance(self.max_lane_nodes, bool)
            or self.max_lane_nodes < 1
        ):
            raise ValueError(
                f"max_lane_nodes must be a positive integer, got "
                f"{self.max_lane_nodes!r}"
            )
        # Delegated validators: the same parsers the runtime uses, so
        # error text (and accepted syntax) cannot diverge.
        self.retry_policy()
        self.shard_tuple()
        self.telemetry_every()

    # -- derived runtime values -------------------------------------------

    def retry_policy(self) -> RetryPolicy:
        """The :class:`RetryPolicy` these options resolve to."""
        return RetryPolicy(
            retries=self.retries,
            timeout_s=self.timeout,
            max_failures=self.max_failures,
        )

    def shard_tuple(self) -> tuple[int, int] | None:
        """Parsed ``(index, count)`` shard selector, or ``None``."""
        return parse_shard(self.shard) if self.shard is not None else None

    def telemetry_every(self) -> int | None:
        """Telemetry sampling period, or ``None`` when disabled."""
        if self.telemetry is None:
            return None
        return parse_every(str(self.telemetry))

    def request_backend(self) -> str | None:
        """The backend an :class:`ExperimentRequest` should carry.

        ``"object"`` (the engine default) normalises to ``None`` so
        cache keys stay identical to pre-``--backend`` runs.
        """
        return self.backend if self.backend != "object" else None

    # -- construction / serialisation -------------------------------------

    @classmethod
    def from_namespace(cls, args: argparse.Namespace) -> "ExecutionOptions":
        """Build from parsed CLI arguments (the shared flag group)."""
        return cls(
            **{
                name: getattr(args, name)
                for name in cls.field_names()
            }
        )

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExecutionOptions":
        """Build from a scenario file's ``execution`` section.

        Raises:
            ValueError: ``payload`` is not a mapping, names an unknown
                option (the message names the offending key and lists
                the valid ones), or sets an invalid value.
        """
        if not isinstance(payload, Mapping):
            raise ValueError(
                f"execution must be a table/object of options, got "
                f"{type(payload).__name__}"
            )
        allowed = schema_fields()
        for key in payload:
            if key not in allowed:
                raise ValueError(
                    f"unknown execution option {key!r}; valid options: "
                    f"{', '.join(sorted(allowed))}"
                )
        return cls(**dict(payload))

    @classmethod
    def field_names(cls) -> tuple[str, ...]:
        """The dataclass field names (== the schema-visible options)."""
        return tuple(f.name for f in dataclass_fields(cls))

    def to_dict(self) -> dict[str, Any]:
        """Non-default options as a JSON/TOML-ready dict.

        Inverse of :meth:`from_dict`:
        ``from_dict(options.to_dict()) == options``.
        """
        return {
            name: getattr(self, name)
            for name in self.field_names()
            if getattr(self, name) != _default(name)
        }
