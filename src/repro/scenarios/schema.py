"""The versioned, strictly-validated declarative scenario schema.

A *scenario* is a run described as data: one experiment, an optional
parameter grid, and the execution options -- in a JSON or TOML file a
human can diff, review, and resubmit, instead of a bespoke command
line or Python script::

    {
      "schema_version": 1,
      "name": "star-sweep",
      "experiment": "tab-star-pd1",
      "params": {"sizes": [2, 5]},
      "grid": {"backend": ["object", "fast"]},
      "execution": {"jobs": 2, "retries": 1}
    }

Compilation is deterministic: :meth:`Scenario.compile` expands the
grid through :func:`repro.analysis.sweep.grid_requests` into the same
typed :class:`~repro.analysis.registry.ExperimentRequest` values a
Python caller would hand-build -- byte-identical cache/journal
identity included (the golden-digest tests in
``tests/scenarios/test_schema.py`` pin this), so a scenario submitted
to ``repro serve`` hits exactly the cache entries an earlier CLI run
populated.

Validation is strict and names the offender:

* an unsupported ``schema_version`` is rejected (files from a future
  schema must not be silently misread),
* unknown top-level keys and unknown ``execution`` options are
  rejected by name,
* grid values must be lists of parameter values,
* parameter values must be JSON-serialisable -- checked here at the
  schema boundary with the exact :meth:`ResultCache.key` error, so a
  bad submission fails the submitter, not the worker.

``to_dict`` / ``from_dict`` round-trip losslessly; ``loads`` / ``dumps``
and :func:`load_scenario` add the file formats (JSON always, TOML via
the stdlib ``tomllib``).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.analysis.registry import ExperimentRequest, get_spec
from repro.analysis.runtime.cache import ResultCache
from repro.analysis.runtime.journal import Journal
from repro.analysis.sweep import grid_requests
from repro.obs.logger import get_logger
from repro.scenarios.options import ExecutionOptions

_log = get_logger("scenarios.schema")

__all__ = [
    "SCHEMA_VERSION",
    "Scenario",
    "ScenarioError",
    "load_scenario",
]

#: The schema generation this build understands.
SCHEMA_VERSION = 1

#: Top-level keys a scenario document may carry.
_SCENARIO_KEYS = (
    "schema_version",
    "name",
    "experiment",
    "params",
    "grid",
    "execution",
    "cache_policy",
)


class ScenarioError(ValueError):
    """A scenario document violates the schema (message names the key)."""


def _require_mapping(value: Any, what: str) -> dict[str, Any]:
    if not isinstance(value, Mapping):
        raise ScenarioError(
            f"{what} must be a table/object, got {type(value).__name__}"
        )
    for key in value:
        if not isinstance(key, str):
            raise ScenarioError(
                f"{what} keys must be strings, got {key!r}"
            )
    return dict(value)


@dataclass(frozen=True)
class Scenario:
    """One declaratively-described run (see module docstring).

    Attributes:
        experiment: Registry id every compiled request targets.
        name: Human-readable label (defaults to the experiment id);
            shows up in service job listings and spans.
        params: Base parameters shared by every grid point.
        grid: Parameter grid; each key maps to the *list of values* to
            sweep (cartesian product, last key fastest -- the
            :func:`~repro.analysis.sweep.grid_requests` order).  Keys
            naming declarative option fields (``backend``/``jobs``/
            ``seed``) become request fields, exactly as a hand-built
            sweep would set them.
        execution: The :class:`ExecutionOptions` for the run.
            ``backend`` and ``seed`` flow into each request;
            ``jobs`` is sweep-level concurrency (the ``repro all
            --jobs`` meaning).
        cache_policy: Per-request cache policy (``reuse`` / ``refresh``
            / ``off``).
        schema_version: The schema generation of the source document.
    """

    experiment: str
    name: str = ""
    params: Mapping[str, Any] = field(default_factory=dict)
    grid: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    execution: ExecutionOptions = field(default_factory=ExecutionOptions)
    cache_policy: str = "reuse"
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        if self.schema_version != SCHEMA_VERSION:
            raise ScenarioError(
                f"unsupported schema_version {self.schema_version!r}; "
                f"this build understands version {SCHEMA_VERSION}"
            )
        if not isinstance(self.experiment, str) or not self.experiment:
            raise ScenarioError(
                f"experiment must be a non-empty string, got "
                f"{self.experiment!r}"
            )
        object.__setattr__(
            self, "params", _require_mapping(self.params, "params")
        )
        grid = _require_mapping(self.grid, "grid")
        for key, values in grid.items():
            if isinstance(values, str) or not isinstance(values, Sequence):
                raise ScenarioError(
                    f"grid key {key!r} must map to a list of values to "
                    f"sweep, got {type(values).__name__}"
                )
            grid[key] = list(values)
        object.__setattr__(self, "grid", grid)
        if not isinstance(self.name, str):
            raise ScenarioError(f"name must be a string, got {self.name!r}")
        if not self.name:
            object.__setattr__(self, "name", self.experiment)
        if self.cache_policy not in ("reuse", "refresh", "off"):
            raise ScenarioError(
                f"cache_policy must be 'reuse', 'refresh' or 'off', got "
                f"{self.cache_policy!r}"
            )

    # -- compilation -------------------------------------------------------

    def compile(self) -> list[ExperimentRequest]:
        """Expand the grid into typed requests (deterministic order).

        Raises:
            ScenarioError: Unknown experiment id (the message lists the
                registry).
        """
        try:
            get_spec(self.experiment)
        except KeyError as exc:
            # KeyError quotes its message; unwrap for a clean sentence.
            raise ScenarioError(exc.args[0]) from None
        base: dict[str, Any] = {
            "params": self.params,
            "cache_policy": self.cache_policy,
        }
        backend = self.execution.request_backend()
        if backend is not None:
            base["backend"] = backend
        if self.execution.seed is not None:
            base["seed"] = self.execution.seed
        requests = grid_requests(self.experiment, self.grid, **base)
        _log.debug(
            "scenario compiled",
            extra={"scenario": self.name, "requests": len(requests)},
        )
        return requests

    def task_keys(self) -> list[str]:
        """The journal/cache identity of every compiled request.

        Computing the keys forces every parameter through
        :meth:`ResultCache.key`, so a non-JSON-serialisable value is
        rejected *here*, at the schema boundary, with the cache's own
        key-naming ``TypeError`` -- not as a 500 from inside a worker.
        """
        return [
            Journal.task_key(
                request.experiment,
                ResultCache.key(request.experiment, request.effective_params()),
            )
            for request in self.compile()
        ]

    def validate(self) -> "Scenario":
        """Full semantic validation beyond document shape; returns self.

        Raises:
            ScenarioError: Unknown experiment.
            TypeError: A parameter is not JSON-serialisable (the
                :meth:`ResultCache.key` error, naming the key).
        """
        self.task_keys()
        return self

    def digest(self) -> str:
        """16-hex identity of the whole scenario (schema + execution).

        Two scenarios that would run the same tasks under the same
        execution options share a digest; the service keys per-scenario
        journals by it so a resubmitted crashed scenario can resume.
        """
        blob = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(blob.encode()).hexdigest()[:16]

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """A JSON/TOML-ready document; inverse of :meth:`from_dict`.

        Defaults are omitted (a round-tripped file stays as terse as
        the one the user wrote); ``schema_version`` and ``experiment``
        are always present.
        """
        payload: dict[str, Any] = {
            "schema_version": self.schema_version,
            "experiment": self.experiment,
        }
        if self.name != self.experiment:
            payload["name"] = self.name
        if self.params:
            payload["params"] = dict(self.params)
        if self.grid:
            payload["grid"] = {k: list(v) for k, v in self.grid.items()}
        execution = self.execution.to_dict()
        if execution:
            payload["execution"] = execution
        if self.cache_policy != "reuse":
            payload["cache_policy"] = self.cache_policy
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Scenario":
        """Parse and strictly validate one scenario document.

        Raises:
            ScenarioError: Not a mapping, missing ``schema_version`` /
                ``experiment``, an unsupported version, or an unknown
                key anywhere (the message names the offending key).
        """
        document = _require_mapping(payload, "scenario")
        for key in document:
            if key not in _SCENARIO_KEYS:
                raise ScenarioError(
                    f"unknown scenario key {key!r}; valid keys: "
                    f"{', '.join(_SCENARIO_KEYS)}"
                )
        if "schema_version" not in document:
            raise ScenarioError(
                "scenario is missing the required key 'schema_version' "
                f"(this build understands version {SCHEMA_VERSION})"
            )
        if "experiment" not in document:
            raise ScenarioError(
                "scenario is missing the required key 'experiment'"
            )
        try:
            execution = ExecutionOptions.from_dict(
                document.get("execution", {})
            )
        except ScenarioError:
            raise
        except ValueError as exc:
            raise ScenarioError(f"execution: {exc}") from None
        try:
            return cls(
                experiment=document["experiment"],
                name=document.get("name", ""),
                params=document.get("params", {}),
                grid=document.get("grid", {}),
                execution=execution,
                cache_policy=document.get("cache_policy", "reuse"),
                schema_version=document["schema_version"],
            )
        except TypeError as exc:
            raise ScenarioError(str(exc)) from None

    def dumps(self) -> str:
        """The scenario as canonical JSON text."""
        return json.dumps(self.to_dict(), indent=1, sort_keys=True) + "\n"

    @classmethod
    def loads(cls, text: str, *, format: str = "json") -> "Scenario":
        """Parse scenario text in ``json`` or ``toml`` format.

        Raises:
            ScenarioError: Unparseable text or a schema violation.
        """
        if format == "toml":
            try:
                import tomllib
            except ModuleNotFoundError:  # Python < 3.11
                raise ScenarioError(
                    "TOML scenarios need Python 3.11+ (stdlib tomllib); "
                    "use the JSON form instead"
                ) from None
            try:
                payload = tomllib.loads(text)
            except tomllib.TOMLDecodeError as exc:
                raise ScenarioError(f"invalid TOML: {exc}") from None
        elif format == "json":
            try:
                payload = json.loads(text)
            except ValueError as exc:
                raise ScenarioError(f"invalid JSON: {exc}") from None
        else:
            raise ScenarioError(
                f"unknown scenario format {format!r} (json or toml)"
            )
        return cls.from_dict(payload)


def load_scenario(path: str | Path) -> Scenario:
    """Load a scenario file; the suffix picks JSON (default) or TOML.

    Raises:
        ScenarioError: Unreadable file, unparseable text, or a schema
            violation (message includes the path).
    """
    path = Path(path)
    format = "toml" if path.suffix.lower() == ".toml" else "json"
    try:
        text = path.read_text()
    except OSError as exc:
        raise ScenarioError(f"cannot read scenario {path}: {exc}") from None
    try:
        return Scenario.loads(text, format=format)
    except ScenarioError as exc:
        raise ScenarioError(f"{path}: {exc}") from None
