"""Execute a compiled scenario on the fault-tolerant sweep runtime.

:func:`run_scenario` is the one bridge from *scenario as data* to the
runtime: it applies the scenario's ambient execution options
(telemetry sampling, fast-backend lane budget, JIT mode) as scoped
contexts, builds the retry policy and shard selector, and hands the
compiled requests to :func:`repro.analysis.runtime.run_sweep` under a
``scenario.run`` span -- so a scenario run traces, journals, retries,
resumes, and shards exactly like the equivalent hand-built CLI
invocation.  Both ``repro scenario run`` and the ``repro serve`` job
worker go through here.
"""

from __future__ import annotations

from contextlib import ExitStack

from repro.analysis.runtime.cache import ResultCache
from repro.analysis.runtime.faults import FaultPlan
from repro.analysis.runtime.journal import Journal
from repro.analysis.runtime.runner import SweepOutcome, run_sweep
from repro.obs.logger import get_logger
from repro.obs.metrics import counter
from repro.obs.spans import span
from repro.scenarios.schema import Scenario

_log = get_logger("scenarios.runner")

__all__ = ["run_scenario"]


def run_scenario(
    scenario: Scenario,
    *,
    cache: ResultCache | None = None,
    journal: Journal | None = None,
    resume: bool | None = None,
    faults: FaultPlan | None = None,
    degrade_after: int = 3,
) -> SweepOutcome:
    """Validate, compile, and run one scenario; returns the outcome.

    Args:
        scenario: The scenario to execute (validated first -- schema
            violations and non-JSON params fail here, before any
            engine work).
        cache: Optional result cache; the scenario's ``cache_policy``
            decides per-request reuse.
        journal: Optional checkpoint journal for crash/resume.
        resume: Override the scenario's ``execution.resume`` (the CLI
            ``--resume`` flag); ``None`` keeps the scenario's value.
        faults: Deterministic fault injection (tests/CI only).
        degrade_after: Worker deaths tolerated before degrading to
            serial (see :func:`run_sweep`).

    Raises:
        ScenarioError: The scenario fails validation.
        TypeError: A parameter is not JSON-serialisable (the
            :meth:`ResultCache.key` key-naming error).
        SweepAborted: The sweep exceeded its failure budget.
    """
    scenario.validate()
    requests = scenario.compile()
    execution = scenario.execution
    with ExitStack() as stack:
        every = execution.telemetry_every()
        if every is not None:
            from repro.obs.telemetry import telemetry_enabled

            stack.enter_context(telemetry_enabled(every))
        if execution.max_lane_nodes is not None:
            from repro.simulation.fast import lane_budget_enabled

            stack.enter_context(lane_budget_enabled(execution.max_lane_nodes))
        if execution.jit != "auto":
            from repro.simulation.jit import jit_enabled

            stack.enter_context(jit_enabled(execution.jit))
        counter("scenario.runs")
        with span(
            "scenario.run",
            scenario=scenario.name,
            experiment=scenario.experiment,
            tasks=len(requests),
        ):
            _log.info(
                "running scenario",
                extra={
                    "scenario": scenario.name,
                    "experiment": scenario.experiment,
                    "tasks": len(requests),
                    "sweep_jobs": execution.jobs,
                },
            )
            return run_sweep(
                requests,
                jobs=execution.jobs,
                cache=cache,
                journal=journal,
                resume=execution.resume if resume is None else resume,
                policy=execution.retry_policy(),
                faults=faults,
                degrade_after=degrade_after,
                shard=execution.shard_tuple(),
            )
