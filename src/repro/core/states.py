"""State histories and leader observations for ``M(DBL)_k`` executions.

This module is the shared vocabulary of the whole library:

* A **label set** ``L(v, r)`` (Definition 5) is the non-empty set of edge
  labels connecting node ``v`` to the leader at round ``r`` -- a
  ``frozenset`` of ints drawn from ``{1, ..., k}``.
* A **history** (the paper's node state ``S(v, r)``, Definition 6) is the
  ordered list ``[L(v, 0), ..., L(v, r-1)]`` -- a tuple of label sets.
  The initial ``(⊥)`` element is implicit, as in the paper's own
  convention (footnote 4).
* A **leader observation** at round ``r`` (one entry ``C(v_l, r)`` of the
  leader state, Definition 7) is the multiset of ``(j, S(v, r))`` pairs,
  one per edge with label ``j`` incident to a node with state
  ``S(v, r)``.

The module also fixes the paper's *lexicographic ordering* of label sets
and histories (``{1} < {2} < {1,2}``, first round most significant),
which is what makes the explicit matrices of
:mod:`repro.core.lowerbound.matrices` match equations (2) and (5) of the
paper symbol for symbol.
"""

from __future__ import annotations

import itertools
from collections import Counter
from collections.abc import Iterable, Iterator, Mapping, Sequence
from functools import lru_cache

from repro.simulation.errors import ModelError

__all__ = [
    "LabelSet",
    "History",
    "label_set",
    "all_label_sets",
    "label_set_index",
    "n_label_sets",
    "all_histories",
    "n_histories",
    "history_index",
    "history_from_index",
    "validate_label_set",
    "leader_observation",
    "ObservationSequence",
]

LabelSet = frozenset
"""Type alias for a set of edge labels (``frozenset[int]``)."""

History = tuple
"""Type alias for a node state history (``tuple[LabelSet, ...]``)."""


def label_set(*labels: int) -> frozenset:
    """Build a label set from individual labels: ``label_set(1, 2)``."""
    return frozenset(labels)


def validate_label_set(labels: frozenset, k: int) -> frozenset:
    """Check that ``labels`` is a legal ``M(DBL)_k`` label set.

    Raises:
        ModelError: ``labels`` is empty or not a subset of ``{1..k}``.
    """
    if not isinstance(labels, frozenset):
        labels = frozenset(labels)
    if not labels:
        raise ModelError("a label set must be non-empty (1 <= |E^v(r)|)")
    if not all(isinstance(lab, int) and 1 <= lab <= k for lab in labels):
        raise ModelError(
            f"label set {set(labels)!r} is not a subset of {{1..{k}}}"
        )
    return labels


@lru_cache(maxsize=None)
def all_label_sets(k: int) -> tuple:
    """All non-empty subsets of ``{1..k}`` in the paper's order.

    For ``k = 2`` this is exactly ``{1} < {2} < {1,2}`` (Section 4.2).
    For general ``k`` the order extends naturally: subsets are sorted by
    size first, then lexicographically by sorted contents.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    subsets = []
    for size in range(1, k + 1):
        for combo in itertools.combinations(range(1, k + 1), size):
            subsets.append(frozenset(combo))
    return tuple(subsets)


@lru_cache(maxsize=None)
def _label_set_positions(k: int) -> dict:
    return {labels: index for index, labels in enumerate(all_label_sets(k))}


def label_set_index(labels: frozenset, k: int) -> int:
    """Position of ``labels`` in the canonical order of :func:`all_label_sets`."""
    try:
        return _label_set_positions(k)[frozenset(labels)]
    except KeyError:
        raise ModelError(
            f"{set(labels)!r} is not a valid non-empty subset of {{1..{k}}}"
        ) from None


def n_label_sets(k: int) -> int:
    """Number of possible label sets: ``2**k - 1``."""
    return 2**k - 1


def n_histories(k: int, length: int) -> int:
    """Number of possible histories of the given length: ``(2**k - 1)**length``."""
    return n_label_sets(k) ** length


def all_histories(k: int, length: int) -> Iterator:
    """Yield every history of ``length`` rounds in lexicographic order.

    The first round is the most significant position, so for ``k = 2``
    the first history is ``[{1}, ..., {1}]`` and the last is
    ``[{1,2}, ..., {1,2}]`` -- the column order of the paper's ``M_r``.
    """
    yield from itertools.product(all_label_sets(k), repeat=length)


def history_index(history: Sequence, k: int) -> int:
    """Mixed-radix rank of ``history`` in the order of :func:`all_histories`."""
    base = n_label_sets(k)
    index = 0
    for labels in history:
        index = index * base + label_set_index(labels, k)
    return index


def history_from_index(index: int, k: int, length: int) -> tuple:
    """Inverse of :func:`history_index`."""
    base = n_label_sets(k)
    if not 0 <= index < base**length:
        raise ValueError(
            f"index {index} out of range for {base ** length} histories"
        )
    sets = all_label_sets(k)
    digits = []
    for _ in range(length):
        index, digit = divmod(index, base)
        digits.append(sets[digit])
    return tuple(reversed(digits))


def leader_observation(
    label_sets: Iterable[frozenset],
    histories: Iterable[tuple],
) -> Counter:
    """Build one round's leader observation ``C(v_l, r)``.

    Args:
        label_sets: For each node of ``W``, its label set at round ``r``.
        histories: For each node of ``W`` (same order), its state
            ``S(v, r)`` -- the history of rounds ``0..r-1``.

    Returns:
        A multiset (Counter) over ``(label, history)`` pairs with one
        entry per *edge*, matching Definition 7: ``(j, S(v, r))`` appears
        once for every edge labeled ``j`` incident to ``v``.
    """
    observation: Counter = Counter()
    for labels, history in zip(label_sets, histories):
        for label in labels:
            observation[(label, tuple(history))] += 1
    return observation


class ObservationSequence:
    """The leader state ``S(v_l, r)`` as a sequence of round observations.

    ``sequence[i]`` is the Counter ``C(v_l, i)`` over ``(label, history)``
    pairs observed at round ``i``.  Two executions are indistinguishable
    to the leader through round ``r`` exactly when their observation
    sequences compare equal -- this is the object the lower bound reasons
    about, and the only input the solver and the optimal counting
    algorithm are allowed to read.
    """

    def __init__(self, k: int, observations: Sequence[Mapping] = ()) -> None:
        if k < 1:
            raise ValueError("k must be at least 1")
        self.k = k
        self._observations: list[Counter] = [
            Counter(observation) for observation in observations
        ]
        for round_no, observation in enumerate(self._observations):
            self._validate_round(round_no, observation)

    def _validate_round(self, round_no: int, observation: Counter) -> None:
        for (label, history), count in observation.items():
            if not 1 <= label <= self.k:
                raise ModelError(
                    f"round {round_no}: label {label} outside 1..{self.k}"
                )
            if len(history) != round_no:
                raise ModelError(
                    f"round {round_no}: history {history!r} has length "
                    f"{len(history)}, expected {round_no}"
                )
            if count < 0:
                raise ModelError(
                    f"round {round_no}: negative multiplicity {count}"
                )

    def append(self, observation: Mapping) -> None:
        """Append the observation of the next round."""
        observation = Counter(observation)
        self._validate_round(len(self._observations), observation)
        self._observations.append(observation)

    def __len__(self) -> int:
        return len(self._observations)

    def __getitem__(self, round_no: int) -> Counter:
        return self._observations[round_no]

    def __iter__(self) -> Iterator[Counter]:
        return iter(self._observations)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ObservationSequence):
            return NotImplemented
        return self.k == other.k and self._observations == other._observations

    def __repr__(self) -> str:
        return (
            f"ObservationSequence(k={self.k}, rounds={len(self._observations)})"
        )

    @property
    def rounds(self) -> int:
        """Number of observed rounds."""
        return len(self._observations)

    def edge_count(self, round_no: int) -> int:
        """Total number of leader-incident edges observed at ``round_no``."""
        return sum(self._observations[round_no].values())

    def count(self, round_no: int, label: int, history: Sequence) -> int:
        """Multiplicity ``|(label, history)|`` at ``round_no`` (0 if absent)."""
        return self._observations[round_no].get((label, tuple(history)), 0)

    def prefix(self, rounds: int) -> "ObservationSequence":
        """The observation sequence truncated to the first ``rounds`` rounds."""
        return ObservationSequence(self.k, self._observations[:rounds])
