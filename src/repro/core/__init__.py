"""Core contribution of the paper: states, the equation solver, bounds.

* :mod:`repro.core.states` -- node state histories ``S(v, r)`` and leader
  observation multisets ``C(v_l, r)`` (Definitions 5-7).
* :mod:`repro.core.solver` -- the leader's feasibility problem
  ``m_r = M_r s, s >= 0`` solved exactly on the observation prefix tree.
* :mod:`repro.core.lowerbound` -- explicit ``M_r`` matrices, integer
  kernels, indistinguishable-pair construction, and the closed-form
  bounds (Lemmas 2-5, Theorems 1-2).
* :mod:`repro.core.counting` -- executable counting algorithms (optimal
  anonymous counter, star counter, degree-oracle counter, baselines).
"""

from repro.core.solver import SizeInterval, feasible_size_interval
from repro.core.states import (
    History,
    LabelSet,
    ObservationSequence,
    all_histories,
    all_label_sets,
    history_from_index,
    history_index,
    label_set,
    leader_observation,
)

__all__ = [
    "History",
    "LabelSet",
    "ObservationSequence",
    "SizeInterval",
    "all_histories",
    "all_label_sets",
    "feasible_size_interval",
    "history_from_index",
    "history_index",
    "label_set",
    "leader_observation",
]
