"""The naming problem: assigning distinct identifiers anonymously.

Naming (Michail, Chatzigiannakis & Spirakis, DISC 2012 / SSS 2013 --
the papers this work builds on) asks every node to terminate with a
*unique* identifier.  Naming is strictly harder than counting in
anonymous networks: a node can only acquire a name that distinguishes
it if its **view** differs from every other node's, whereas the leader
can count populations of identical-view nodes in bulk.

This module connects the two through the view machinery:

* :func:`naming_is_possible` -- the exact feasibility test: a
  deterministic anonymous protocol can name the network by round ``d``
  iff all depth-``d`` views are distinct (view-equal nodes are in
  identical states under *every* protocol, so they would output the
  same name);
* :func:`name_by_views` -- the generic naming protocol achieving it:
  output the rank of your canonical view (runnable through the engine
  via :class:`ViewNamingProcess`, which computes its view online from
  the anonymous transcript);
* the star paradox used by the experiments: in ``G(PD)_1`` counting
  takes one round but naming is *impossible forever* -- spokes stay
  view-equal at every depth -- the cleanest illustration that the cost
  of anonymity depends on the question asked, not just the network.
"""

from __future__ import annotations

from repro.core.views import view_classes, view_table
from repro.networks.dynamic_graph import DynamicGraph
from repro.simulation.engine import EngineConfig, SynchronousEngine
from repro.simulation.messages import Inbox
from repro.simulation.node import Process

__all__ = [
    "naming_is_possible",
    "earliest_naming_round",
    "name_by_views",
    "ViewNamingProcess",
    "run_view_naming",
]


def naming_is_possible(
    dynamic_graph: DynamicGraph,
    depth: int,
    *,
    leader: int | None = None,
) -> bool:
    """Whether any protocol can name the network within ``depth`` rounds."""
    classes = view_classes(dynamic_graph, depth, leader=leader)
    return all(len(members) == 1 for members in classes)


def earliest_naming_round(
    dynamic_graph: DynamicGraph,
    *,
    leader: int | None = None,
    max_depth: int = 64,
) -> int | None:
    """First round by which views separate all nodes, or ``None``.

    ``None`` means views did not separate within ``max_depth`` rounds;
    for networks with persistent symmetry (stars, vertex-transitive
    dynamics) they never will.
    """
    for depth in range(max_depth + 1):
        if naming_is_possible(dynamic_graph, depth, leader=leader):
            return depth
    return None


def name_by_views(
    dynamic_graph: DynamicGraph,
    depth: int,
    *,
    leader: int | None = None,
) -> dict[int, int] | None:
    """The generic naming assignment: rank of each node's view.

    Returns ``node -> name`` if depth-``depth`` views are all distinct,
    else ``None``.  Names are dense in ``0..n-1`` and deterministic
    (sorted by canonical view id), so every node can compute its own
    name from its own view -- no coordination needed.
    """
    table = view_table(dynamic_graph, depth, leader=leader)[depth]
    if len(set(table.values())) != dynamic_graph.n:
        return None
    ranked = {
        view_id: rank
        for rank, view_id in enumerate(sorted(set(table.values())))
    }
    return {node: ranked[table[node]] for node in table}


class ViewNamingProcess(Process):
    """Engine protocol computing the node's own view online.

    Each round the process broadcasts its current view (as a nested
    canonical structure) and folds the received multiset of views into
    the next level -- after ``horizon`` rounds it outputs its view
    structure, which is its tentative name.  Distinctness of outputs
    across nodes is exactly :func:`naming_is_possible`; the test suite
    checks the engine-computed views induce the same partition as the
    graph-level :func:`repro.core.views.view_classes`.
    """

    def __init__(self, is_leader: bool, horizon: int) -> None:
        if horizon < 1:
            raise ValueError("horizon must be at least 1")
        self.view: tuple = ("root", is_leader)
        self.horizon = horizon
        self._output = None

    def compose(self, round_no: int) -> tuple:
        return self.view

    def deliver(self, round_no: int, inbox: Inbox) -> None:
        self.view = ("node", self.view, inbox.as_tuple())
        if round_no + 1 >= self.horizon and self._output is None:
            self._output = self.view


def run_view_naming(
    dynamic_graph: DynamicGraph,
    horizon: int,
    *,
    leader: int | None = 0,
) -> dict[int, tuple]:
    """Run the view-naming protocol through the engine.

    Returns each node's output view structure.  Two nodes receive the
    same "name" exactly when they are view-equal at depth ``horizon``
    -- i.e. when naming them apart is impossible.
    """
    processes = [
        ViewNamingProcess(node == leader, horizon)
        for node in range(dynamic_graph.n)
    ]
    engine = SynchronousEngine(
        processes,
        dynamic_graph,
        leader=None,
        config=EngineConfig(max_rounds=horizon, stop_when="budget"),
    )
    engine.run()
    return {
        node: process.output() for node, process in enumerate(processes)
    }
