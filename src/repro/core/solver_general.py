"""Exact feasible-size solver for general ``M(DBL)_k`` observations.

For ``k = 2`` the kernel of the leader's system is one-dimensional, the
feasible sizes form an interval, and interval propagation solves the
problem in linear time (:mod:`repro.core.solver`).  For ``k >= 3`` the
kernel has many dimensions (see
:func:`repro.core.lowerbound.general.general_nullity`) and the feasible
set no longer has obvious structure, so this module computes it
*exactly as a set* by dynamic programming over the observation prefix
tree:

at a prefix ``p`` with round-``i`` counts ``a_j = |(j, p)|``, the
children are the ``2^k - 1`` label-set extensions ``p·S``; a feasible
assignment gives each child a total ``n_S`` from its own feasible set
such that ``Σ_{S ∋ j} n_S = a_j`` for every label ``j``, and
contributes ``Σ_S n_S`` to the parent's feasible set.  The per-node
combination is a depth-first search over children with label-budget
pruning -- exponential in the worst case (the problem contains
multidimensional subset-sum), but fast for the moderate ``n`` and ``k``
used in experiments, and exact.

``feasible_sizes_general`` specialises to the interval solver's answer
for ``k = 2`` (asserted by the test suite), and
:func:`count_mdblk_abstract` is the optimal counter for any ``k``.
"""

from __future__ import annotations

from collections import Counter

from repro.core.counting.base import CountingOutcome
from repro.core.states import ObservationSequence, all_label_sets
from repro.networks.multigraph import DynamicMultigraph
from repro.simulation.errors import InfeasibleObservationError, TerminationError
from repro.simulation.messages import LabeledInbox
from repro.simulation.node import Process

__all__ = [
    "feasible_sizes_general",
    "count_mdblk_abstract",
    "count_mdblk",
    "GeneralLeaderProcess",
]


def feasible_sizes_general(observations: ObservationSequence) -> frozenset:
    """All network sizes consistent with a general-k leader state.

    Args:
        observations: The leader's observation sequence for any
            ``k >= 1`` (rounds ``0..r``).

    Returns:
        The exact set of totals ``|W|`` over configurations inducing
        these observations.

    Raises:
        InfeasibleObservationError: No configuration matches.
    """
    if observations.rounds < 1:
        raise ValueError("need at least one observed round")
    solver = _TreeSolver(observations)
    sizes = solver.feasible((), 0)
    if not sizes:
        raise InfeasibleObservationError(
            "no configuration matches the observations"
        )
    return frozenset(sizes)


class _TreeSolver:
    """DFS-with-memoisation solver over the observation prefix tree."""

    def __init__(self, observations: ObservationSequence) -> None:
        self.observations = observations
        self.k = observations.k
        self.label_sets = all_label_sets(self.k)
        self._memo: dict[tuple, frozenset] = {}

    def counts_at(self, prefix: tuple, depth: int) -> tuple[int, ...]:
        return tuple(
            self.observations.count(depth, label, prefix)
            for label in range(1, self.k + 1)
        )

    def feasible(self, prefix: tuple, depth: int) -> frozenset:
        key = (prefix, depth)
        if key in self._memo:
            return self._memo[key]
        result = self._feasible_uncached(prefix, depth)
        self._memo[key] = result
        return result

    def _feasible_uncached(self, prefix: tuple, depth: int) -> frozenset:
        budgets = self.counts_at(prefix, depth)
        if all(budget == 0 for budget in budgets):
            return frozenset({0})
        last_round = depth == self.observations.rounds - 1
        child_sets: list[frozenset | None] = []
        if not last_round:
            child_sets = [
                self.feasible(prefix + (labels,), depth + 1)
                for labels in self.label_sets
            ]
        totals: set[int] = set()
        self._search(
            prefix,
            depth,
            0,
            budgets,
            0,
            child_sets if not last_round else None,
            totals,
        )
        return frozenset(totals)

    def _search(
        self,
        prefix: tuple,
        depth: int,
        child_index: int,
        budgets: tuple[int, ...],
        running_total: int,
        child_sets: list | None,
        totals: set[int],
    ) -> None:
        """Assign totals to children ``child_index..`` within label budgets."""
        if child_index == len(self.label_sets):
            if all(budget == 0 for budget in budgets):
                totals.add(running_total)
            return
        labels = self.label_sets[child_index]
        # Upper bound on this child's total: every remaining unit of a
        # label this child carries must be coverable.
        cap = min(budgets[label - 1] for label in labels)
        if child_sets is None:
            candidate_totals = range(cap + 1)
        else:
            candidate_totals = sorted(
                value for value in child_sets[child_index] if value <= cap
            )
        remaining_sets = self.label_sets[child_index + 1 :]
        for value in candidate_totals:
            new_budgets = list(budgets)
            for label in labels:
                new_budgets[label - 1] -= value
            # Prune: any remaining budget must still be coverable by
            # some later child carrying that label.
            feasible = True
            for label in range(1, self.k + 1):
                if new_budgets[label - 1] > 0 and not any(
                    label in later for later in remaining_sets
                ):
                    feasible = False
                    break
            if not feasible:
                continue
            self._search(
                prefix,
                depth,
                child_index + 1,
                tuple(new_budgets),
                running_total + value,
                child_sets,
                totals,
            )


def count_mdblk_abstract(
    multigraph: DynamicMultigraph, *, max_rounds: int = 32
) -> CountingOutcome:
    """Optimal counting for any ``k``: output when the size set is a point.

    The general-k analogue of
    :func:`repro.core.counting.optimal.count_mdbl2_abstract`.  Uses the
    exact set solver, so it is limited to moderate instance sizes; the
    experiments use it to confirm that richer label alphabets do not
    help the adversary beyond the ``k = 2`` bound.
    """
    observations = ObservationSequence(multigraph.k)
    size_history: list[int] = []
    for round_no in range(max_rounds):
        observations.append(multigraph.observation(round_no))
        sizes = feasible_sizes_general(observations)
        size_history.append(len(sizes))
        if len(sizes) == 1:
            return CountingOutcome(
                count=next(iter(sizes)),
                output_round=round_no,
                rounds=round_no + 1,
                algorithm=f"optimal-anonymous-k{multigraph.k}",
                detail={"candidate_counts": size_history},
            )
    raise TerminationError(
        f"feasible size set did not collapse within {max_rounds} rounds"
    )


class GeneralLeaderProcess(Process):
    """Leader protocol for any ``k``: accumulate, solve, output.

    The general-k sibling of
    :class:`repro.core.counting.optimal.OptimalLeaderProcess`, for the
    labeled engine.  Kept here with the solver it depends on.
    """

    def __init__(self, k: int) -> None:
        self.observations = ObservationSequence(k)
        self.size_history: list[int] = []
        self._output = None

    def compose(self, round_no: int) -> str:
        return "beacon"

    def deliver(self, round_no: int, inbox: LabeledInbox) -> None:
        observation: Counter = Counter()
        for label, state in inbox:
            observation[(label, state)] += 1
        self.observations.append(observation)
        sizes = feasible_sizes_general(self.observations)
        self.size_history.append(len(sizes))
        if len(sizes) == 1 and self._output is None:
            self._output = next(iter(sizes))


def count_mdblk(
    multigraph: DynamicMultigraph, *, max_rounds: int = 32
) -> CountingOutcome:
    """Engine-level optimal counting for any ``k``.

    Runs the same broadcast-your-state protocol as the ``k = 2`` counter
    through :class:`repro.simulation.labeled.LabeledStarEngine`, with
    the general-k set solver at the leader.  The test suite pins this
    path to :func:`count_mdblk_abstract` round for round.
    """
    from repro.core.counting.optimal import AnonymousStateProcess
    from repro.simulation.labeled import LabeledStarEngine

    leader = GeneralLeaderProcess(multigraph.k)
    nodes = [AnonymousStateProcess() for _ in range(multigraph.n)]
    engine = LabeledStarEngine(leader, nodes, multigraph, max_rounds=max_rounds)
    result = engine.run()
    return CountingOutcome(
        count=result.leader_output,
        output_round=result.rounds - 1,
        rounds=result.rounds,
        algorithm=f"optimal-anonymous-k{multigraph.k}-engine",
        detail={"candidate_counts": list(leader.size_history)},
    )
