"""k-token dissemination -- the related problem behind the bounds.

Section 2 of the paper frames its contribution against *k-token
dissemination* (Kuhn, Lynch & Oshman, STOC 2010): ``k`` tokens start at
nodes of ``V`` and must reach every node.  Two regimes matter:

* with **unlimited bandwidth** (the paper's model) dissemination is
  trivial -- flooding completes in ``D`` rounds, which is exactly why
  the paper's ``D + Ω(log |V|)`` counting bound is interesting: in this
  model *information transport* is cheap and the log-cost is pure
  anonymity;
* with **one token per message** (the token-forwarding class for which
  the ``Ω(n log k)`` / ``Ω(nk / log n)`` lower bounds are proved),
  dissemination itself is expensive.  The classic upper bound with
  known ``n`` is implemented here: repeat ``k`` times "everyone
  broadcasts the smallest uncommitted token it knows, for ``n``
  rounds, then commits it".  1-interval connectivity guarantees the
  globally smallest uncommitted token reaches at least one new node per
  round, so each phase completes and the total is ``n·k`` rounds.

The ``tab-token-dissemination`` experiment runs both on the same
dynamics and tabulates the regime gap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.networks.dynamic_graph import DynamicGraph
from repro.simulation.engine import EngineConfig, SynchronousEngine
from repro.simulation.errors import ModelError
from repro.simulation.messages import Inbox
from repro.simulation.node import Process

__all__ = [
    "DisseminationResult",
    "TokenFloodProcess",
    "MinTokenForwardProcess",
    "disseminate_by_flooding",
    "disseminate_by_token_forwarding",
]


@dataclass(frozen=True)
class DisseminationResult:
    """Outcome of a dissemination run.

    Attributes:
        rounds: Executed rounds until every node held every token.
        tokens: Number of distinct tokens disseminated.
        messages: Total token-copies transmitted (bandwidth proxy).
    """

    rounds: int
    tokens: int
    messages: int


def _validate_assignment(
    network: DynamicGraph, assignment: dict[int, int]
) -> set[int]:
    if not assignment:
        raise ModelError("need at least one token")
    for node in assignment:
        if not 0 <= node < network.n:
            raise ModelError(f"token holder {node} outside the node set")
    return set(assignment.values())


class TokenFloodProcess(Process):
    """Unlimited bandwidth: broadcast every known token every round."""

    def __init__(self, initial: frozenset, total: int) -> None:
        self.known = initial
        self.total = total
        self.sent = 0
        self._output = None
        self._check_done()

    def _check_done(self) -> None:
        if len(self.known) == self.total and self._output is None:
            self._output = True

    def compose(self, round_no: int) -> frozenset:
        self.sent += len(self.known)
        return self.known

    def deliver(self, round_no: int, inbox: Inbox) -> None:
        for payload in inbox:
            self.known |= payload
        self._check_done()


def disseminate_by_flooding(
    network: DynamicGraph,
    assignment: dict[int, int],
    *,
    max_rounds: int = 10_000,
) -> DisseminationResult:
    """Disseminate by flooding (the paper's-model trivial algorithm).

    Args:
        network: A 1-interval connected dynamic graph.
        assignment: ``node -> token`` initial placement (one token per
            listed node; nodes may share a token value).

    Returns:
        The result; ``rounds`` is at most the dynamic diameter ``D``.
    """
    tokens = _validate_assignment(network, assignment)
    processes = [
        TokenFloodProcess(
            frozenset({assignment[node]}) if node in assignment else frozenset(),
            len(tokens),
        )
        for node in range(network.n)
    ]
    engine = SynchronousEngine(
        processes,
        network,
        leader=None,
        config=EngineConfig(max_rounds=max_rounds, stop_when="all"),
    )
    result = engine.run()
    return DisseminationResult(
        rounds=result.rounds,
        tokens=len(tokens),
        messages=sum(process.sent for process in processes),
    )


class MinTokenForwardProcess(Process):
    """Token forwarding with known ``n``: one token per message.

    Phase ``p`` spans rounds ``[p·n, (p+1)·n)``; throughout a phase the
    process broadcasts the smallest *uncommitted* token it knows.  At a
    phase boundary every process commits the smallest uncommitted token
    it knows -- by the one-new-node-per-round argument that token is,
    by then, common knowledge.  After ``k`` phases all tokens are
    committed everywhere.
    """

    def __init__(self, initial: frozenset, n: int, total: int) -> None:
        self.known: set[int] = set(initial)
        self.committed: set[int] = set()
        self.n = n
        self.total = total
        self.sent = 0
        self._output = None

    def _uncommitted_min(self) -> int | None:
        open_tokens = self.known - self.committed
        return min(open_tokens) if open_tokens else None

    def compose(self, round_no: int) -> int | None:
        token = self._uncommitted_min()
        if token is not None:
            self.sent += 1
        return token

    def deliver(self, round_no: int, inbox: Inbox) -> None:
        for payload in inbox:
            self.known.add(payload)
        if (round_no + 1) % self.n == 0:
            token = self._uncommitted_min()
            if token is not None:
                self.committed.add(token)
            if len(self.committed) == self.total and self._output is None:
                self._output = True


def disseminate_by_token_forwarding(
    network: DynamicGraph,
    assignment: dict[int, int],
) -> DisseminationResult:
    """The known-``n`` token-forwarding algorithm (``n·k`` rounds).

    Every message carries exactly one token, matching the
    token-forwarding model of the ``Ω(n log k)`` lower bound.  The run
    executes exactly ``n·k`` rounds and the test suite asserts every
    node then knows (and has committed) every token.
    """
    tokens = _validate_assignment(network, assignment)
    n, k = network.n, len(tokens)
    processes = [
        MinTokenForwardProcess(
            frozenset({assignment[node]}) if node in assignment else frozenset(),
            n,
            k,
        )
        for node in range(network.n)
    ]
    engine = SynchronousEngine(
        processes,
        network,
        leader=None,
        config=EngineConfig(max_rounds=n * k, stop_when="budget"),
    )
    result = engine.run()
    incomplete = [
        index
        for index, process in enumerate(processes)
        if len(process.known) != k or len(process.committed) != k
    ]
    if incomplete:
        raise ModelError(
            f"token forwarding incomplete at nodes {incomplete[:5]} after "
            f"{n * k} rounds -- connectivity assumption violated?"
        )
    return DisseminationResult(
        rounds=result.rounds,
        tokens=k,
        messages=sum(process.sent for process in processes),
    )
