"""k-token dissemination -- the related problem behind the bounds.

Section 2 of the paper frames its contribution against *k-token
dissemination* (Kuhn, Lynch & Oshman, STOC 2010): ``k`` tokens start at
nodes of ``V`` and must reach every node.  Two regimes matter:

* with **unlimited bandwidth** (the paper's model) dissemination is
  trivial -- flooding completes in ``D`` rounds, which is exactly why
  the paper's ``D + Ω(log |V|)`` counting bound is interesting: in this
  model *information transport* is cheap and the log-cost is pure
  anonymity;
* with **one token per message** (the token-forwarding class for which
  the ``Ω(n log k)`` / ``Ω(nk / log n)`` lower bounds are proved),
  dissemination itself is expensive.  The classic upper bound with
  known ``n`` is implemented here: repeat ``k`` times "everyone
  broadcasts the smallest uncommitted token it knows, for ``n``
  rounds, then commits it".  1-interval connectivity guarantees the
  globally smallest uncommitted token reaches at least one new node per
  round, so each phase completes and the total is ``n·k`` rounds.

The ``tab-token-dissemination`` experiment runs both on the same
dynamics and tabulates the regime gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.networks.dynamic_graph import DynamicGraph
from repro.simulation.engine import EngineConfig, SynchronousEngine
from repro.simulation.errors import ModelError
from repro.simulation.fast import (
    FastEngine,
    FastLane,
    LaneLayout,
    VectorizedProtocol,
    resolve_backend,
)
from repro.simulation.messages import Inbox
from repro.simulation.node import Process

__all__ = [
    "DisseminationResult",
    "TokenFloodProcess",
    "VectorizedTokenFlood",
    "MinTokenForwardProcess",
    "disseminate_by_flooding",
    "disseminate_by_flooding_batch",
    "disseminate_by_token_forwarding",
]


@dataclass(frozen=True)
class DisseminationResult:
    """Outcome of a dissemination run.

    Attributes:
        rounds: Executed rounds until every node held every token.
        tokens: Number of distinct tokens disseminated.
        messages: Total token-copies transmitted (bandwidth proxy).
    """

    rounds: int
    tokens: int
    messages: int


def _validate_assignment(
    network: DynamicGraph, assignment: dict[int, int]
) -> set[int]:
    if not assignment:
        raise ModelError("need at least one token")
    for node in assignment:
        if not 0 <= node < network.n:
            raise ModelError(f"token holder {node} outside the node set")
    return set(assignment.values())


class TokenFloodProcess(Process):
    """Unlimited bandwidth: broadcast every known token every round."""

    def __init__(self, initial: frozenset, total: int) -> None:
        self.known = initial
        self.total = total
        self.sent = 0
        self._output = None
        self._check_done()

    def _check_done(self) -> None:
        if len(self.known) == self.total and self._output is None:
            self._output = True

    def compose(self, round_no: int) -> frozenset:
        self.sent += len(self.known)
        return self.known

    def deliver(self, round_no: int, inbox: Inbox) -> None:
        for payload in inbox:
            self.known |= payload
        self._check_done()


class VectorizedTokenFlood(VectorizedProtocol):
    """Token flooding on the fast backend.

    Per-node token sets are rows of a boolean matrix (stacked nodes by
    lane-local token columns); a round of set unions is one
    sparse-by-dense matmul.  A node is done when its row is full; the
    message total (token-copies transmitted, the object protocol's
    ``sent`` accounting) sums the row populations of every active lane
    at each send phase -- including the terminal round, exactly as the
    object protocol's ``compose`` does.

    Args:
        assignments: Per-lane ``node -> token`` initial placement.
        token_counts: Per-lane number of distinct tokens.
    """

    def __init__(
        self,
        assignments: Sequence[dict[int, int]],
        token_counts: Sequence[int],
    ) -> None:
        self._assignments = list(assignments)
        self._token_counts = [int(count) for count in token_counts]
        self.messages: list[int] = []

    def allocate(self, layouts: Sequence[LaneLayout]) -> None:
        if len(self._assignments) != len(layouts):
            raise ValueError("one assignment per lane required")
        self._layouts = list(layouts)
        total = layouts[-1].stop
        width = max(self._token_counts)
        self.known = np.zeros((total, width), dtype=bool)
        self._required = np.zeros(total, dtype=np.int64)
        for layout, assignment, count in zip(
            layouts, self._assignments, self._token_counts
        ):
            columns = {
                token: column
                for column, token in enumerate(sorted(set(assignment.values())))
            }
            for node, token in assignment.items():
                self.known[layout.offset + node, columns[token]] = True
            self._required[layout.offset : layout.stop] = count
        self.messages = [0 for _ in layouts]

    def step(
        self, round_no: int, adjacency, active: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        total = self.known.shape[0]
        # Send phase: every node broadcasts its (possibly empty) token
        # set -- an empty frozenset is still a non-None payload in the
        # object protocol, so every node counts as sending.
        held = self.known.sum(axis=1)
        for layout in self._layouts:
            if active[layout.offset]:
                self.messages[layout.index] += int(
                    held[layout.offset : layout.stop].sum()
                )
        sending = np.ones(total, dtype=bool)
        delivered = adjacency.degrees
        self.known |= adjacency.matmul(self.known.astype(np.float64)) > 0.0
        return sending, delivered

    def output_mask(self) -> np.ndarray:
        return self.known.sum(axis=1) == self._required

    def outputs_for(self, layout: LaneLayout) -> dict[int, bool]:
        rows = slice(layout.offset, layout.stop)
        full = self.known[rows].sum(axis=1) == self._required[rows]
        return {index: True for index in range(layout.n) if full[index]}

    def subset(self, indices: Sequence[int]) -> "VectorizedTokenFlood":
        return VectorizedTokenFlood(
            [self._assignments[i] for i in indices],
            [self._token_counts[i] for i in indices],
        )

    def absorb(
        self, sub: "VectorizedTokenFlood", indices: Sequence[int]
    ) -> None:
        for local, index in enumerate(indices):
            while len(self.messages) <= index:
                self.messages.append(0)
            self.messages[index] = sub.messages[local]


def disseminate_by_flooding(
    network: DynamicGraph,
    assignment: dict[int, int],
    *,
    max_rounds: int = 10_000,
    backend: str = "object",
    max_lane_nodes: int | None = None,
) -> DisseminationResult:
    """Disseminate by flooding (the paper's-model trivial algorithm).

    Args:
        network: A 1-interval connected dynamic graph.
        assignment: ``node -> token`` initial placement (one token per
            listed node; nodes may share a token value).
        max_rounds: Engine round budget.
        backend: ``"object"`` or ``"fast"``; same result either way.

    Returns:
        The result; ``rounds`` is at most the dynamic diameter ``D``.
    """
    resolve_backend(backend)
    if backend == "fast":
        return disseminate_by_flooding_batch(
            [(network, assignment)],
            max_rounds=max_rounds,
            max_lane_nodes=max_lane_nodes,
        )[0]
    tokens = _validate_assignment(network, assignment)
    processes = [
        TokenFloodProcess(
            frozenset({assignment[node]}) if node in assignment else frozenset(),
            len(tokens),
        )
        for node in range(network.n)
    ]
    engine = SynchronousEngine(
        processes,
        network,
        leader=None,
        config=EngineConfig(max_rounds=max_rounds, stop_when="all"),
    )
    result = engine.run()
    return DisseminationResult(
        rounds=result.rounds,
        tokens=len(tokens),
        messages=sum(process.sent for process in processes),
    )


def disseminate_by_flooding_batch(
    jobs: Sequence[tuple[DynamicGraph, dict[int, int]]],
    *,
    max_rounds: int = 10_000,
    max_lane_nodes: int | None = None,
) -> list[DisseminationResult]:
    """Flood-dissemination over many networks, fused into one fast batch.

    Every ``(network, assignment)`` job becomes one lane; equivalent to
    :func:`disseminate_by_flooding` per job with ``backend="fast"``.
    """
    if not jobs:
        return []
    token_sets = [
        _validate_assignment(network, assignment)
        for network, assignment in jobs
    ]
    protocol = VectorizedTokenFlood(
        [assignment for _, assignment in jobs],
        [len(tokens) for tokens in token_sets],
    )
    lanes = [FastLane(network, network.n, leader=None) for network, _ in jobs]
    engine = FastEngine(
        protocol,
        lanes,
        config=EngineConfig(max_rounds=max_rounds, stop_when="all"),
        max_lane_nodes=max_lane_nodes,
    )
    return [
        DisseminationResult(
            rounds=result.rounds,
            tokens=len(tokens),
            messages=protocol.messages[index],
        )
        for index, (result, tokens) in enumerate(
            zip(engine.run(), token_sets)
        )
    ]


class MinTokenForwardProcess(Process):
    """Token forwarding with known ``n``: one token per message.

    Phase ``p`` spans rounds ``[p·n, (p+1)·n)``; throughout a phase the
    process broadcasts the smallest *uncommitted* token it knows.  At a
    phase boundary every process commits the smallest uncommitted token
    it knows -- by the one-new-node-per-round argument that token is,
    by then, common knowledge.  After ``k`` phases all tokens are
    committed everywhere.
    """

    def __init__(self, initial: frozenset, n: int, total: int) -> None:
        self.known: set[int] = set(initial)
        self.committed: set[int] = set()
        self.n = n
        self.total = total
        self.sent = 0
        self._output = None

    def _uncommitted_min(self) -> int | None:
        open_tokens = self.known - self.committed
        return min(open_tokens) if open_tokens else None

    def compose(self, round_no: int) -> int | None:
        token = self._uncommitted_min()
        if token is not None:
            self.sent += 1
        return token

    def deliver(self, round_no: int, inbox: Inbox) -> None:
        for payload in inbox:
            self.known.add(payload)
        if (round_no + 1) % self.n == 0:
            token = self._uncommitted_min()
            if token is not None:
                self.committed.add(token)
            if len(self.committed) == self.total and self._output is None:
                self._output = True


def disseminate_by_token_forwarding(
    network: DynamicGraph,
    assignment: dict[int, int],
) -> DisseminationResult:
    """The known-``n`` token-forwarding algorithm (``n·k`` rounds).

    Every message carries exactly one token, matching the
    token-forwarding model of the ``Ω(n log k)`` lower bound.  The run
    executes exactly ``n·k`` rounds and the test suite asserts every
    node then knows (and has committed) every token.
    """
    tokens = _validate_assignment(network, assignment)
    n, k = network.n, len(tokens)
    processes = [
        MinTokenForwardProcess(
            frozenset({assignment[node]}) if node in assignment else frozenset(),
            n,
            k,
        )
        for node in range(network.n)
    ]
    engine = SynchronousEngine(
        processes,
        network,
        leader=None,
        config=EngineConfig(max_rounds=n * k, stop_when="budget"),
    )
    result = engine.run()
    incomplete = [
        index
        for index, process in enumerate(processes)
        if len(process.known) != k or len(process.committed) != k
    ]
    if incomplete:
        raise ModelError(
            f"token forwarding incomplete at nodes {incomplete[:5]} after "
            f"{n * k} rounds -- connectivity assumption violated?"
        )
    return DisseminationResult(
        rounds=result.rounds,
        tokens=k,
        messages=sum(process.sent for process in processes),
    )
