"""Exact solver for the leader's feasibility problem in ``M(DBL)_2``.

After observing rounds ``0..r``, the leader knows the multiset of
``(label, state)`` connections of every round -- the vector ``m_r`` of
the paper's system ``m_r = M_r s_r`` -- and must decide which network
sizes ``Σ s`` are achievable by *some* non-negative integer solution
``s``.  Because ``ker(M_r)`` is one-dimensional (Lemma 2) and
``Σ k_r = 1`` (Lemma 4), the achievable sizes form a contiguous integer
interval; counting succeeds exactly when that interval collapses to a
point.

Rather than materialising the exponentially large ``M_r``, the solver
works on the **observation prefix tree**: the nodes of depth ``i`` are
the node states (histories) observed at round ``i``, and the two
equations the leader knows about a prefix ``p`` of depth ``i`` are

    ``n(p·{1})   + n(p·{1,2}) = |(1, p)|``
    ``n(p·{2})   + n(p·{1,2}) = |(2, p)|``

where ``n(q)`` counts the nodes whose history starts with ``q``.
Sibling subtrees share no other constraint, so the set of feasible
``n(p)`` values propagates bottom-up as an integer interval:

* at the deepest observed prefixes, ``n(p) ∈ [max(a1, a2), a1 + a2]``
  (the overlap ``x12 = n(p·{1,2})`` ranges over ``[0, min(a1, a2)]``);
* one level up, the overlap is additionally pinched by the children's
  intervals, and ``n(p) = a1 + a2 - x12`` again maps an interval to an
  interval.

The root interval is the answer, computed in
``O(#observed states · 3)`` time -- polynomial in the actual execution,
not in the ``3^{r+1}`` state space.  Its equivalence with brute-force
enumeration over the dense system is covered by the test suite.

The module also provides *witness extraction* (a concrete configuration
achieving any feasible size), which is what turns Lemma 5 from a
feasibility statement into runnable twin networks.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core.states import ObservationSequence
from repro.simulation.errors import InfeasibleObservationError

__all__ = [
    "SizeInterval",
    "feasible_size_interval",
    "feasible_configuration",
    "feasible_size_set_bruteforce",
]

_ONE = frozenset({1})
_TWO = frozenset({2})
_BOTH = frozenset({1, 2})


@dataclass(frozen=True)
class SizeInterval:
    """A contiguous interval of feasible network sizes ``[lo, hi]``."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi or self.lo < 0:
            raise ValueError(f"invalid size interval [{self.lo}, {self.hi}]")

    @property
    def width(self) -> int:
        """Number of feasible sizes beyond the first (0 means unique)."""
        return self.hi - self.lo

    @property
    def is_unique(self) -> bool:
        """Whether exactly one network size is consistent."""
        return self.lo == self.hi

    def __contains__(self, size: int) -> bool:
        return self.lo <= size <= self.hi

    def __iter__(self):
        return iter(range(self.lo, self.hi + 1))

    def __repr__(self) -> str:
        return f"SizeInterval({self.lo}, {self.hi})"


def _require_mdbl2(observations: ObservationSequence) -> None:
    if observations.k != 2:
        raise ValueError(
            "the exact interval solver handles M(DBL)_2; for k > 2 the "
            "lower bound is inherited from the k = 2 sub-family"
        )
    if observations.rounds < 1:
        raise ValueError("need at least one observed round")


def feasible_size_interval(observations: ObservationSequence) -> SizeInterval:
    """All network sizes consistent with a leader state, as an interval.

    Args:
        observations: The leader's observation sequence (rounds
            ``0..r``); must be for ``k = 2``.

    Returns:
        The interval of totals ``Σ s`` over non-negative integer
        solutions of ``m_r = M_r s``.

    Raises:
        InfeasibleObservationError: No configuration matches (possible
            only for hand-crafted observation sequences).
    """
    _require_mdbl2(observations)
    lo, hi = _subtree_interval(observations, (), 0)
    return SizeInterval(lo, hi)


def _subtree_interval(
    observations: ObservationSequence, prefix: tuple, depth: int
) -> tuple[int, int]:
    """Feasible ``[lo, hi]`` for the node count with history prefix ``prefix``."""
    a1 = observations.count(depth, 1, prefix)
    a2 = observations.count(depth, 2, prefix)
    if a1 == 0 and a2 == 0:
        return (0, 0)
    if depth == observations.rounds - 1:
        return (max(a1, a2), a1 + a2)
    lo_x12, hi_x12 = _overlap_range(observations, prefix, depth, a1, a2)
    return (a1 + a2 - hi_x12, a1 + a2 - lo_x12)


def _overlap_range(
    observations: ObservationSequence,
    prefix: tuple,
    depth: int,
    a1: int,
    a2: int,
) -> tuple[int, int]:
    """Feasible range of ``x12 = n(prefix·{1,2})`` given child intervals."""
    lo1, hi1 = _subtree_interval(observations, prefix + (_ONE,), depth + 1)
    lo2, hi2 = _subtree_interval(observations, prefix + (_TWO,), depth + 1)
    lo12, hi12 = _subtree_interval(observations, prefix + (_BOTH,), depth + 1)
    lo_x12 = max(lo12, a1 - hi1, a2 - hi2)
    hi_x12 = min(hi12, a1 - lo1, a2 - lo2)
    if lo_x12 > hi_x12:
        raise InfeasibleObservationError(
            f"no configuration matches the observations below state "
            f"{prefix!r} at round {depth}"
        )
    return lo_x12, hi_x12


def feasible_configuration(
    observations: ObservationSequence, size: int | None = None
) -> Counter:
    """Extract a configuration (history multiset) achieving ``size``.

    Args:
        observations: A leader state for ``k = 2`` covering rounds
            ``0..r``.
        size: The target total; defaults to the smallest feasible size.

    Returns:
        A Counter over histories of length ``r + 1`` summing to ``size``
        whose induced leader state equals ``observations``.

    Raises:
        InfeasibleObservationError: ``size`` is outside the feasible
            interval (or the observations are inconsistent).
    """
    _require_mdbl2(observations)
    interval = feasible_size_interval(observations)
    if size is None:
        size = interval.lo
    if size not in interval:
        raise InfeasibleObservationError(
            f"size {size} outside feasible interval {interval}"
        )
    configuration: Counter = Counter()
    _realise(observations, (), 0, size, configuration)
    return configuration


def _realise(
    observations: ObservationSequence,
    prefix: tuple,
    depth: int,
    target: int,
    configuration: Counter,
) -> None:
    """Assign ``target`` nodes below ``prefix``, recursing into children."""
    a1 = observations.count(depth, 1, prefix)
    a2 = observations.count(depth, 2, prefix)
    if a1 == 0 and a2 == 0:
        if target:
            raise InfeasibleObservationError(
                f"cannot place {target} nodes below unobserved state {prefix!r}"
            )
        return
    # target = a1 + a2 - x12 fixes the overlap; child totals follow.
    x12 = a1 + a2 - target
    n1, n2 = a1 - x12, a2 - x12
    if depth == observations.rounds - 1:
        if x12 < 0 or n1 < 0 or n2 < 0:
            raise InfeasibleObservationError(
                f"target {target} infeasible below state {prefix!r}"
            )
        for labels, count in ((_ONE, n1), (_TWO, n2), (_BOTH, x12)):
            if count:
                configuration[prefix + (labels,)] += count
        return
    lo_x12, hi_x12 = _overlap_range(observations, prefix, depth, a1, a2)
    if not lo_x12 <= x12 <= hi_x12:
        raise InfeasibleObservationError(
            f"target {target} infeasible below state {prefix!r}"
        )
    # Each child's total must land inside its own feasible interval;
    # the overlap-range pinching above guarantees this.
    _realise(observations, prefix + (_ONE,), depth + 1, n1, configuration)
    _realise(observations, prefix + (_TWO,), depth + 1, n2, configuration)
    _realise(observations, prefix + (_BOTH,), depth + 1, x12, configuration)


def feasible_size_set_bruteforce(
    observations: ObservationSequence, *, max_size: int | None = None
) -> set[int]:
    """Feasible sizes by exhaustive enumeration (small instances only).

    Enumerates every non-negative integer solution of the prefix-tree
    equations by branching on each overlap variable instead of
    propagating intervals.  Exponential in the number of observed
    states; used by the test suite to certify
    :func:`feasible_size_interval` (the two must agree exactly, and the
    set must be contiguous -- the combinatorial face of Lemma 2).
    """
    _require_mdbl2(observations)
    sizes = _enumerate_sizes(observations, (), 0)
    if max_size is not None:
        sizes = {size for size in sizes if size <= max_size}
    return sizes


def _enumerate_sizes(
    observations: ObservationSequence, prefix: tuple, depth: int
) -> set[int]:
    a1 = observations.count(depth, 1, prefix)
    a2 = observations.count(depth, 2, prefix)
    if a1 == 0 and a2 == 0:
        return {0}
    if depth == observations.rounds - 1:
        return {a1 + a2 - x12 for x12 in range(min(a1, a2) + 1)}
    sizes1 = _enumerate_sizes(observations, prefix + (_ONE,), depth + 1)
    sizes2 = _enumerate_sizes(observations, prefix + (_TWO,), depth + 1)
    sizes12 = _enumerate_sizes(observations, prefix + (_BOTH,), depth + 1)
    feasible: set[int] = set()
    for x12 in sizes12:
        if a1 - x12 in sizes1 and a2 - x12 in sizes2:
            feasible.add(a1 + a2 - x12)
    return feasible
