"""Reference solver over the dense linear system (cross-validation).

An independent implementation of the leader's feasibility problem used
to certify :mod:`repro.core.solver`: instead of interval propagation on
the observation prefix tree, this solver works directly on the paper's
dense system ``m_r = M_r s``:

1. materialise ``M_r`` and ``m_r``;
2. find the minimum-norm real solution ``s*`` with
   :func:`numpy.linalg.lstsq` and check consistency;
3. because ``ker(M_r) = span(k_r)`` (Lemma 2), every real solution is
   ``s* + t·k_r``; the components of ``k_r`` are ``±1``, so integer
   solutions require ``t ≡ -(k_r)_j·(s*)_j (mod 1)`` for every ``j``,
   pinning the fractional part of ``t``;
4. non-negativity bounds ``t`` from both sides, and the achievable
   sizes are ``Σ s* + t`` over the surviving lattice points (Lemma 4's
   ``Σ k_r = 1`` makes each kernel step change the size by exactly 1).

Exponential in ``r`` (the matrix has ``3^{r+1}`` columns), so only
usable for small rounds -- which is exactly its role: an independent
oracle for the test suite and the ablation benchmark, not a production
path.  The production path is the ``O(states · r)`` tree solver.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.lowerbound.kernel import closed_form_kernel
from repro.core.lowerbound.matrices import (
    MAX_DENSE_ROUND,
    build_matrix,
    observation_vector,
)
from repro.core.solver import SizeInterval
from repro.core.states import ObservationSequence
from repro.simulation.errors import InfeasibleObservationError

__all__ = ["feasible_size_interval_dense", "feasible_size_interval_sparse"]

_TOL = 1e-7


def feasible_size_interval_dense(
    observations: ObservationSequence,
) -> SizeInterval:
    """Feasible network sizes via the dense ``m_r = M_r s`` system.

    Args:
        observations: A leader state for ``k = 2`` with
            ``rounds - 1 <= MAX_DENSE_ROUND`` (the dense matrix must be
            materialisable).

    Returns:
        The same interval :func:`repro.core.solver.feasible_size_interval`
        returns -- the test suite asserts they agree on every fuzzed
        execution.

    Raises:
        InfeasibleObservationError: No non-negative integer solution
            exists.
        ValueError: The instance is too large for the dense path.
    """
    if observations.k != 2:
        raise ValueError("the dense reference solver handles M(DBL)_2")
    if observations.rounds < 1:
        raise ValueError("need at least one observed round")
    r = observations.rounds - 1
    if r > MAX_DENSE_ROUND:
        raise ValueError(
            f"dense solving at round {r} would need a 3^{r + 1}-column "
            f"matrix; use the tree solver instead"
        )

    matrix = build_matrix(r).astype(float)
    target = observation_vector(observations, r).astype(float)
    solution, _residuals, _rank, _sv = np.linalg.lstsq(
        matrix, target, rcond=None
    )
    if not np.allclose(matrix @ solution, target, atol=_TOL):
        raise InfeasibleObservationError(
            "observations are inconsistent: the linear system has no "
            "real solution"
        )
    return _lattice_interval(solution, closed_form_kernel(r).astype(float))


def feasible_size_interval_sparse(
    observations: ObservationSequence,
) -> SizeInterval:
    """Feasible sizes via the sparse ``m_r = M_r s`` system (LSQR).

    The sparse sibling of :func:`feasible_size_interval_dense`: solves
    the same linear system with
    :func:`repro.core.lowerbound.sparse.build_sparse_matrix` and
    :func:`scipy.sparse.linalg.lsqr`, extending the cross-validation
    path past ``MAX_DENSE_ROUND`` (up to ``MAX_SPARSE_ROUND``).  The
    lattice step is shared with the dense solver, and any real solution
    of the consistent system works for it -- LSQR's iterate qualifies
    once the residual check passes.
    """
    from scipy.sparse.linalg import lsqr

    from repro.core.lowerbound.sparse import (
        MAX_SPARSE_ROUND,
        build_sparse_matrix,
        sparse_observation_vector,
    )

    if observations.k != 2:
        raise ValueError("the sparse reference solver handles M(DBL)_2")
    if observations.rounds < 1:
        raise ValueError("need at least one observed round")
    r = observations.rounds - 1
    if r > MAX_SPARSE_ROUND:
        raise ValueError(
            f"sparse solving at round {r} would need a 3^{r + 1}-column "
            f"matrix; use the tree solver instead"
        )

    matrix = build_sparse_matrix(r).astype(float)
    target = sparse_observation_vector(observations, r).astype(float)
    solution = lsqr(matrix, target, atol=1e-12, btol=1e-12, conlim=0.0)[0]
    if not np.allclose(matrix @ solution, target, atol=_TOL):
        raise InfeasibleObservationError(
            "observations are inconsistent: the linear system has no "
            "real solution"
        )
    return _lattice_interval(solution, closed_form_kernel(r).astype(float))


def _lattice_interval(
    solution: np.ndarray, kernel: np.ndarray
) -> SizeInterval:
    """Steps 3-4 of the module docstring, shared by both backends.

    Given any real solution ``s*`` and the kernel ``k_r``, pins the
    fractional part of ``t``, bounds it by non-negativity, and maps the
    surviving lattice points to sizes.
    """
    # Integer lattice: t must satisfy t ≡ -(k_r)_j (s*)_j (mod 1) for
    # every component j; all requirements must agree on frac(t).
    requirements = np.mod(-kernel * solution, 1.0)
    fraction = float(requirements[0])
    deviation = np.abs(requirements - fraction)
    deviation = np.minimum(deviation, 1.0 - deviation)  # wrap-around
    if not np.all(deviation < 1e-5):
        raise InfeasibleObservationError(
            "observations admit no integer solution"
        )

    # Non-negativity: (s*)_j + t (k_r)_j >= 0 bounds t on both sides.
    positive = kernel > 0
    lo_t = float(np.max(-solution[positive], initial=-math.inf))
    hi_t = float(np.min(solution[~positive], initial=math.inf))

    first = math.ceil(lo_t - fraction - 1e-5)
    last = math.floor(hi_t - fraction + 1e-5)
    if first > last:
        raise InfeasibleObservationError(
            "observations admit no non-negative integer solution"
        )

    total = float(solution.sum())
    lo_size = round(total + fraction + first)
    hi_size = round(total + fraction + last)
    return SizeInterval(int(lo_size), int(hi_size))
