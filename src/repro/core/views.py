"""Views and indistinguishability in anonymous dynamic networks.

The classic tool for reasoning about anonymous computation (Yamashita &
Kameda, PODC 1988, adapted here to dynamic graphs): the **view** of a
node at depth ``d`` is the tree of everything it could possibly have
learned after ``d`` rounds -- its leader flag at the root and, per
round, the multiset of its neighbours' views one level shallower.  Two
nodes with equal depth-``d`` views have exchanged identical information
with an identical environment, so *no deterministic anonymous protocol
whatsoever* can put them in different states after ``d`` rounds.

This is the semantic foundation under the paper's Section 4: the
ambiguity among "multiple dynamic paths" in ``G(PD)_2`` is precisely
view-equality of distinct middle/outer nodes.  The module provides

* :func:`view` -- the canonical (hash-consed) view of a node;
* :func:`view_classes` -- the partition of nodes into
  indistinguishability classes per depth;
* :func:`indistinguishable` -- the pairwise test;
* :func:`symmetry_degree` -- the size of the largest class, a lower
  bound on how many nodes must behave identically.

Views are computed bottom-up per round and hash-consed (equal subtrees
share one canonical object), so comparing views is O(1) after
construction and the construction itself is polynomial in
``n · rounds · edges`` rather than exponential in the tree size.
"""

from __future__ import annotations

from repro.networks.dynamic_graph import DynamicGraph

__all__ = [
    "view",
    "view_table",
    "view_classes",
    "indistinguishable",
    "symmetry_degree",
]


def view_table(
    dynamic_graph: DynamicGraph,
    depth: int,
    *,
    leader: int | None = None,
) -> list[dict[int, int]]:
    """Canonical view ids of every node at depths ``0..depth``.

    Returns ``tables`` where ``tables[d][v]`` is an integer id such that
    two nodes (of this network) have equal depth-``d`` views iff their
    ids are equal.

    Args:
        dynamic_graph: The network.
        depth: Maximum view depth (= number of communication rounds).
        leader: Optional distinguished node; its root label differs,
            which is how the model's unique leader breaks symmetry.
    """
    if depth < 0:
        raise ValueError("depth must be non-negative")
    n = dynamic_graph.n
    interner: dict[tuple, int] = {}

    def intern(key: tuple) -> int:
        if key not in interner:
            interner[key] = len(interner)
        return interner[key]

    # Depth 0: only the initial asymmetry (leader flag) is visible.
    current = {
        node: intern(("root", node == leader)) for node in range(n)
    }
    tables = [dict(current)]
    # Depth d views extend depth d-1 views with the multiset of
    # neighbours' depth d-1 views, round by round *backwards from the
    # last round*: after rounds 0..d-1 a node has seen its round-(d-1)
    # neighbours' states-after-rounds-0..d-2, and so on.  Computing
    # forward with re-interning per level realises exactly that
    # recursion.
    for level in range(1, depth + 1):
        graph = dynamic_graph.at(level - 1)
        previous = tables[level - 1]
        current = {}
        for node in range(n):
            neighbour_views = tuple(
                sorted(previous[other] for other in graph.neighbors(node))
            )
            current[node] = intern(
                ("node", previous[node], neighbour_views)
            )
        tables.append(dict(current))
    return tables


def view(
    dynamic_graph: DynamicGraph,
    node: int,
    depth: int,
    *,
    leader: int | None = None,
) -> int:
    """Canonical id of one node's depth-``depth`` view."""
    return view_table(dynamic_graph, depth, leader=leader)[depth][node]


def view_classes(
    dynamic_graph: DynamicGraph,
    depth: int,
    *,
    leader: int | None = None,
) -> list[list[int]]:
    """Indistinguishability classes after ``depth`` rounds.

    Returns the partition of nodes by depth-``depth`` view, each class
    sorted, classes sorted by their smallest member.  Nodes in one
    class are in identical protocol states after ``depth`` rounds under
    *every* deterministic anonymous protocol.
    """
    table = view_table(dynamic_graph, depth, leader=leader)[depth]
    classes: dict[int, list[int]] = {}
    for node in range(dynamic_graph.n):
        classes.setdefault(table[node], []).append(node)
    return sorted(classes.values(), key=lambda members: members[0])


def indistinguishable(
    dynamic_graph: DynamicGraph,
    node_a: int,
    node_b: int,
    depth: int,
    *,
    leader: int | None = None,
) -> bool:
    """Whether two nodes have equal views after ``depth`` rounds."""
    table = view_table(dynamic_graph, depth, leader=leader)[depth]
    return table[node_a] == table[node_b]


def symmetry_degree(
    dynamic_graph: DynamicGraph,
    depth: int,
    *,
    leader: int | None = None,
) -> int:
    """Size of the largest indistinguishability class after ``depth`` rounds.

    1 means the network is fully de-anonymised (every node could, in
    principle, act uniquely); ``n`` means total symmetry.  In a star
    with a centre leader this stays ``n - 1`` forever -- the spokes can
    never be told apart, which is why naming is impossible there even
    though counting takes one round.
    """
    return max(
        len(members)
        for members in view_classes(dynamic_graph, depth, leader=leader)
    )
