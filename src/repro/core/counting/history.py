"""History-tree (view) machinery shared by the DV and KM counters.

Di Luna & Viglietta (arXiv 2204.02128) count anonymous 1-interval
connected networks in linear time by having every node maintain its
*view*: the full unfolding of what it has observed.  Two nodes share a
level-``t`` view exactly when no sequence of ``t`` rounds can have
distinguished them, so the views at level ``t`` partition the nodes
into *classes*; the leader reconstructs the class multiplicities -- and
hence ``n`` -- from three families of exact linear constraints:

* **anchor** -- the marked classes (the unique leader, or the ``ell``
  indistinguishable supervisors of the Kowalski-Mosteiro relaxation,
  arXiv 2104.02937) have known total multiplicity;
* **refinement** -- a class's multiplicity is the sum of its children's
  (views only ever split);
* **edge balance** -- for classes ``A``, ``B`` at level ``t``, the
  round-``t`` adjacencies between them counted from ``A``'s side equal
  those counted from ``B``'s side (every edge has two endpoints).

This module implements the executable adaptation: hash-consed view
records (:class:`ViewTable`), the full-information flooding process
(:class:`HistoryProcess`), and the exact multiplicity solver
(:func:`solve_multiplicities`).  Termination follows the paper's
*linear margin*: a solution counting ``N`` nodes from level-``T``
classes is only trusted once ``T + N + slack`` rounds have elapsed --
by then every level-``T`` record has had time to flood to the decider
(knowledge expands by at least one node per round in a connected
round), and the level-``T`` and level-``T+1`` systems must agree.  The
margin is our adaptation of the paper's ``O(n)``-round guarantee; the
``repro.verify`` counting suite fuzzes it across every network family.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.simulation.messages import Inbox
from repro.simulation.node import Process

__all__ = [
    "HistoryProcess",
    "ViewRecord",
    "ViewTable",
    "solve_multiplicities",
]


@dataclass(frozen=True)
class ViewRecord:
    """One hash-consed view: a node's indistinguishability class.

    Attributes:
        level: Refinement depth; the level-``t`` view exists after the
            receive phase of round ``t - 1`` (level 0 is the initial
            marked/unmarked split).
        marked: Whether the node carries the distinguished bit (the
            leader, or one of the KM supervisors).
        parent: Table id of the node's level-``level - 1`` view
            (``None`` at level 0).
        inbox: The anonymous receive profile that refined the parent:
            sorted ``(neighbour view id, multiplicity)`` pairs over
            level-``level - 1`` views.
    """

    level: int
    marked: bool
    parent: int | None
    inbox: tuple[tuple[int, int], ...]


class ViewTable:
    """Interning table mapping structurally equal views to one id.

    One table is shared by all processes of a run (an implementation
    convenience only -- ids never travel between runs, and equality of
    ids coincides with structural equality of views, which is exactly
    the anonymity relation the protocol reasons about).
    """

    def __init__(self) -> None:
        self._ids: dict[ViewRecord, int] = {}
        self._records: list[ViewRecord] = []

    def __len__(self) -> int:
        return len(self._records)

    def intern(self, record: ViewRecord) -> int:
        """The canonical id of ``record``, creating it if new."""
        found = self._ids.get(record)
        if found is not None:
            return found
        view_id = len(self._records)
        self._ids[record] = view_id
        self._records.append(record)
        return view_id

    def record(self, view_id: int) -> ViewRecord:
        return self._records[view_id]

    def records(self, ids: Iterable[int]) -> list[tuple[int, ViewRecord]]:
        return [(view_id, self._records[view_id]) for view_id in ids]


def solve_multiplicities(
    table: ViewTable,
    known: Iterable[int],
    *,
    level: int,
    anchor_total: int,
) -> int | None:
    """Solve for the class multiplicities at ``level``; ``None`` if open.

    Builds the anchor/refinement/balance system over every known view
    of level at most ``level`` and accepts only a *fully determined*
    solution: unique (full column rank), consistent (zero residual),
    integral, positive (every known class is inhabited), and exactly
    satisfying every constraint under integer arithmetic.

    Returns:
        The total multiplicity of the level-``level`` classes (the
        node count those classes account for), or ``None`` when the
        system is underdetermined, inconsistent, or non-integral.
    """
    by_level: dict[int, list[tuple[int, ViewRecord]]] = {}
    for view_id, record in table.records(known):
        if record.level <= level:
            by_level.setdefault(record.level, []).append((view_id, record))
    if level not in by_level:
        return None
    ids = sorted(
        view_id for entries in by_level.values() for view_id, _ in entries
    )
    column = {view_id: index for index, view_id in enumerate(ids)}
    rows: list[dict[int, int]] = []
    rhs: list[int] = []

    for t in range(level + 1):
        anchor_row = {
            column[view_id]: 1
            for view_id, record in by_level.get(t, [])
            if record.marked
        }
        rows.append(anchor_row)
        rhs.append(anchor_total)

    for t in range(level):
        children = by_level.get(t + 1, [])
        for parent_id, _record in by_level.get(t, []):
            row = {column[parent_id]: 1}
            for child_id, child in children:
                if child.parent == parent_id:
                    row[column[child_id]] = row.get(column[child_id], 0) - 1
            rows.append(row)
            rhs.append(0)
        # Edge balance: round-t adjacencies between classes A and B,
        # counted from both sides through their level-(t+1) children.
        incidence: dict[tuple[int, int], dict[int, int]] = {}
        for child_id, child in children:
            if child.parent is None:
                continue
            for neighbour_id, count in child.inbox:
                incidence.setdefault((child.parent, neighbour_id), {})[
                    child_id
                ] = count
        for (side_a, side_b), from_a in sorted(incidence.items()):
            if side_a >= side_b:
                continue  # each unordered pair once; A == B is trivial
            row: dict[int, int] = {}
            for child_id, count in from_a.items():
                row[column[child_id]] = row.get(column[child_id], 0) + count
            for child_id, count in incidence.get((side_b, side_a), {}).items():
                row[column[child_id]] = row.get(column[child_id], 0) - count
            rows.append(row)
            rhs.append(0)

    matrix = np.zeros((len(rows), len(ids)), dtype=np.float64)
    for row_index, row in enumerate(rows):
        for col, coefficient in row.items():
            matrix[row_index, col] = coefficient
    vector = np.asarray(rhs, dtype=np.float64)
    if np.linalg.matrix_rank(matrix) < len(ids):
        return None  # underdetermined: some multiplicity is still free
    solution = np.linalg.lstsq(matrix, vector, rcond=None)[0]
    rounded = np.rint(solution)
    if np.max(np.abs(solution - rounded)) > 1e-6:
        return None
    counts = [int(value) for value in rounded]
    if any(value < 1 for value in counts):
        return None  # every known class is inhabited by a real node
    residual = matrix @ rounded - vector
    if np.max(np.abs(residual)) > 1e-6:
        return None
    # Exact integer re-check: float round-off must not certify a wrong
    # solution, so every constraint is re-evaluated in integer math.
    for row, target in zip(rows, rhs):
        if sum(coefficient * counts[col] for col, coefficient in row.items()) != target:
            return None
    return sum(
        counts[column[view_id]] for view_id, _record in by_level[level]
    )


class HistoryProcess(Process):
    """Full-information view flooding with the linear-margin decider.

    Every round the process broadcasts its current view id plus the
    set of every view record it has ever heard of; on receive it
    refines its view with the anonymous inbox profile and, when it is
    a decider, attempts the multiplicity solve at every level.

    Args:
        table: The run-shared interning table.
        marked: Whether this node carries the distinguished bit.
        anchor_total: How many marked nodes exist network-wide (1 for
            the DV leader, ``ell`` for KM supervisors).
        decide: Whether this process runs the solver (deciders are the
            marked nodes; others only flood).
        slack: Extra rounds added to the ``T + N`` margin before an
            agreeing solution is trusted.
    """

    def __init__(
        self,
        table: ViewTable,
        *,
        marked: bool,
        anchor_total: int,
        decide: bool,
        slack: int = 2,
    ) -> None:
        if anchor_total < 1:
            raise ValueError("anchor_total must be at least 1")
        if slack < 1:
            raise ValueError("slack must be at least 1")
        self.table = table
        self.marked = marked
        self.anchor_total = anchor_total
        self.decide = decide
        self.slack = slack
        self.view = table.intern(
            ViewRecord(level=0, marked=marked, parent=None, inbox=())
        )
        self.known: set[int] = {self.view}
        self.level = 0
        self.decided_level: int | None = None
        self._solve_cache: dict[tuple[int, frozenset[int]], int | None] = {}
        self._output: int | None = None

    def compose(self, round_no: int) -> tuple[int, frozenset[int]]:
        return (self.view, frozenset(self.known))

    def deliver(self, round_no: int, inbox: Inbox) -> None:
        profile = Counter()
        for view, known in inbox:
            profile[view] += 1
            self.known |= known
        self.view = self.table.intern(
            ViewRecord(
                level=self.level + 1,
                marked=self.marked,
                parent=self.view,
                inbox=tuple(sorted(profile.items())),
            )
        )
        self.level += 1
        self.known.add(self.view)
        if self.decide and self._output is None:
            self._try_decide(rounds_done=round_no + 1)

    def output(self) -> int | None:
        return self._output

    def _solve(self, level: int) -> int | None:
        relevant = frozenset(
            view_id
            for view_id in self.known
            if self.table.record(view_id).level <= level
        )
        key = (level, relevant)
        if key not in self._solve_cache:
            self._solve_cache[key] = solve_multiplicities(
                self.table,
                relevant,
                level=level,
                anchor_total=self.anchor_total,
            )
        return self._solve_cache[key]

    def _try_decide(self, *, rounds_done: int) -> None:
        # Deepest candidate level first costs nothing: levels above the
        # margin cannot fire, so only small T are ever attempted early.
        for level in range(self.level):
            count = self._solve(level)
            if count is None:
                continue
            if rounds_done < level + 1 + count + self.slack:
                continue  # records of level T+1 may still be in flight
            if self._solve(level + 1) != count:
                continue  # cross-level agreement filters partial views
            self._output = count
            self.decided_level = level
            return
