"""Counting with identifiers: the ``O(D)`` token-dissemination baseline.

"It is well known that in networks with IDs, n (all-to-all) token
dissemination solves counting" (Section 2, citing Abshoff et al.).  With
unlimited bandwidth the algorithm is plain flooding of ID sets: every
node repeatedly broadcasts the set of identifiers it has heard of; after
``D`` rounds (the dynamic diameter) every identifier has reached every
node, so the leader outputs the size of its set.

This baseline quantifies what anonymity costs: on the same dynamic
graphs where the anonymous optimal counter needs ``Ω(log |V|)`` rounds
-- or where counting is outright ambiguous -- identifiers collapse the
problem to dissemination time.  The paper's headline result is precisely
that this collapse is impossible without IDs even when ``D`` is a small
constant.

On the fast backend (:class:`VectorizedIdFlood`, ``backend="fast"``) the
known-ID sets are the rows of a boolean node-by-ID matrix and a round of
set unions is one sparse-by-dense matmul; :func:`count_with_ids_batch`
stacks several networks (different sizes and horizons) into one fused
execution.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.counting.base import CountingOutcome
from repro.networks.dynamic_graph import DynamicGraph
from repro.simulation.engine import EngineConfig, SynchronousEngine
from repro.simulation.fast import (
    FastEngine,
    FastLane,
    LaneLayout,
    VectorizedProtocol,
    resolve_backend,
)
from repro.simulation.messages import Inbox
from repro.simulation.node import Process

__all__ = [
    "IdFloodProcess",
    "VectorizedIdFlood",
    "count_with_ids",
    "count_with_ids_batch",
]


class IdFloodProcess(Process):
    """Flood the set of known identifiers; output after a fixed horizon.

    Args:
        own_id: This node's unique identifier (IDs break anonymity by
            design here -- this is the with-IDs baseline).
        horizon: Number of rounds after which the known set is complete;
            correctness requires ``horizon >= D``.
    """

    def __init__(self, own_id: int, horizon: int) -> None:
        if horizon < 1:
            raise ValueError("horizon must be at least 1")
        self.known: frozenset[int] = frozenset({own_id})
        self.horizon = horizon
        self._output = None

    def compose(self, round_no: int) -> frozenset:
        return self.known

    def deliver(self, round_no: int, inbox: Inbox) -> None:
        for payload in inbox:
            self.known |= payload
        if round_no + 1 >= self.horizon and self._output is None:
            self._output = len(self.known)


class VectorizedIdFlood(VectorizedProtocol):
    """ID flooding on the fast backend.

    Known-ID sets are rows of a boolean matrix ``K`` (stacked nodes by
    lane-local IDs); a round of pairwise set unions is
    ``K |= A @ K > 0``.  Each lane commits every node's count at its own
    horizon, so lanes with different horizons batch together (run under
    ``stop_when="leader"`` with ``max_rounds = max(horizons) + 1``).

    Args:
        horizons: Per-lane output horizon (``>= 1`` each).
    """

    def __init__(self, horizons: Sequence[int]) -> None:
        self._horizons = [int(horizon) for horizon in horizons]
        if any(horizon < 1 for horizon in self._horizons):
            raise ValueError("horizon must be at least 1")

    def allocate(self, layouts: Sequence[LaneLayout]) -> None:
        if len(self._horizons) != len(layouts):
            raise ValueError("one horizon per lane required")
        self._layouts = list(layouts)
        total = layouts[-1].stop
        width = max(layout.n for layout in layouts)
        self.known = np.zeros((total, width), dtype=bool)
        for layout in layouts:
            rows = np.arange(layout.offset, layout.stop)
            self.known[rows, rows - layout.offset] = True
        self._counts = np.zeros(total, dtype=np.int64)
        self._mask = np.zeros(total, dtype=bool)

    def step(
        self, round_no: int, adjacency, active: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        total = self.known.shape[0]
        sending = np.ones(total, dtype=bool)
        delivered = adjacency.degrees
        self.known |= adjacency.matmul(self.known.astype(np.float64)) > 0.0
        for layout, horizon in zip(self._layouts, self._horizons):
            if round_no + 1 >= horizon and not self._mask[layout.offset]:
                rows = slice(layout.offset, layout.stop)
                self._counts[rows] = self.known[rows].sum(axis=1)
                self._mask[rows] = True
        return sending, delivered

    def output_mask(self) -> np.ndarray:
        return self._mask

    def outputs_for(self, layout: LaneLayout) -> dict[int, int]:
        if not self._mask[layout.offset]:
            return {}
        return {
            index: int(self._counts[layout.offset + index])
            for index in range(layout.n)
        }

    def subset(self, indices: Sequence[int]) -> "VectorizedIdFlood":
        # The chunk-local known matrix narrows to the chunk's widest
        # lane; outputs only ever read a lane's own columns.
        return VectorizedIdFlood([self._horizons[i] for i in indices])


def count_with_ids(
    network: DynamicGraph,
    horizon: int,
    *,
    leader: int = 0,
    backend: str = "object",
    max_lane_nodes: int | None = None,
) -> CountingOutcome:
    """Count a dynamic network *with identifiers* in ``horizon`` rounds.

    Args:
        network: Any 1-interval connected dynamic graph.
        horizon: The round budget, which must be at least the network's
            dynamic diameter ``D`` for the count to be exact (measure it
            with :func:`repro.networks.dynamic_diameter`).
        leader: The node whose output is reported (with IDs every node
            terminates with the same count).
        backend: ``"object"`` or ``"fast"``; same outcome either way.
    """
    resolve_backend(backend)
    if backend == "fast":
        return count_with_ids_batch(
            [(network, horizon)],
            leader=leader,
            max_lane_nodes=max_lane_nodes,
        )[0]
    processes = [IdFloodProcess(index, horizon) for index in range(network.n)]
    engine = SynchronousEngine(
        processes,
        network,
        leader=leader,
        config=EngineConfig(max_rounds=horizon + 1, stop_when="leader"),
    )
    result = engine.run()
    return CountingOutcome(
        count=result.leader_output,
        output_round=result.rounds - 1,
        rounds=result.rounds,
        algorithm="token-dissemination-ids",
    )


def count_with_ids_batch(
    jobs: Sequence[tuple[DynamicGraph, int]],
    *,
    leader: int = 0,
    max_lane_nodes: int | None = None,
) -> list[CountingOutcome]:
    """With-IDs counts for many networks, fused into one fast batch.

    Every ``(network, horizon)`` job becomes one lane; lanes whose
    horizon passes stop advancing while longer-horizon lanes continue.
    Equivalent to :func:`count_with_ids` per job with ``backend="fast"``.
    """
    if not jobs:
        return []
    lanes = [
        FastLane(network, network.n, leader=leader) for network, _ in jobs
    ]
    engine = FastEngine(
        VectorizedIdFlood([horizon for _, horizon in jobs]),
        lanes,
        config=EngineConfig(
            max_rounds=max(horizon for _, horizon in jobs) + 1,
            stop_when="leader",
        ),
        max_lane_nodes=max_lane_nodes,
    )
    return [
        CountingOutcome(
            count=result.leader_output,
            output_round=result.rounds - 1,
            rounds=result.rounds,
            algorithm="token-dissemination-ids",
        )
        for result in engine.run()
    ]
