"""Counting with identifiers: the ``O(D)`` token-dissemination baseline.

"It is well known that in networks with IDs, n (all-to-all) token
dissemination solves counting" (Section 2, citing Abshoff et al.).  With
unlimited bandwidth the algorithm is plain flooding of ID sets: every
node repeatedly broadcasts the set of identifiers it has heard of; after
``D`` rounds (the dynamic diameter) every identifier has reached every
node, so the leader outputs the size of its set.

This baseline quantifies what anonymity costs: on the same dynamic
graphs where the anonymous optimal counter needs ``Ω(log |V|)`` rounds
-- or where counting is outright ambiguous -- identifiers collapse the
problem to dissemination time.  The paper's headline result is precisely
that this collapse is impossible without IDs even when ``D`` is a small
constant.
"""

from __future__ import annotations

from repro.core.counting.base import CountingOutcome
from repro.networks.dynamic_graph import DynamicGraph
from repro.simulation.engine import EngineConfig, SynchronousEngine
from repro.simulation.messages import Inbox
from repro.simulation.node import Process

__all__ = ["IdFloodProcess", "count_with_ids"]


class IdFloodProcess(Process):
    """Flood the set of known identifiers; output after a fixed horizon.

    Args:
        own_id: This node's unique identifier (IDs break anonymity by
            design here -- this is the with-IDs baseline).
        horizon: Number of rounds after which the known set is complete;
            correctness requires ``horizon >= D``.
    """

    def __init__(self, own_id: int, horizon: int) -> None:
        if horizon < 1:
            raise ValueError("horizon must be at least 1")
        self.known: frozenset[int] = frozenset({own_id})
        self.horizon = horizon
        self._output = None

    def compose(self, round_no: int) -> frozenset:
        return self.known

    def deliver(self, round_no: int, inbox: Inbox) -> None:
        for payload in inbox:
            self.known |= payload
        if round_no + 1 >= self.horizon and self._output is None:
            self._output = len(self.known)


def count_with_ids(
    network: DynamicGraph, horizon: int, *, leader: int = 0
) -> CountingOutcome:
    """Count a dynamic network *with identifiers* in ``horizon`` rounds.

    Args:
        network: Any 1-interval connected dynamic graph.
        horizon: The round budget, which must be at least the network's
            dynamic diameter ``D`` for the count to be exact (measure it
            with :func:`repro.networks.dynamic_diameter`).
        leader: The node whose output is reported (with IDs every node
            terminates with the same count).
    """
    processes = [IdFloodProcess(index, horizon) for index in range(network.n)]
    engine = SynchronousEngine(
        processes,
        network,
        leader=leader,
        config=EngineConfig(max_rounds=horizon + 1, stop_when="leader"),
    )
    result = engine.run()
    return CountingOutcome(
        count=result.leader_output,
        output_round=result.rounds - 1,
        rounds=result.rounds,
        algorithm="token-dissemination-ids",
    )
