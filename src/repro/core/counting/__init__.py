"""Executable counting algorithms and baselines.

* :mod:`repro.core.counting.optimal` -- the information-theoretically
  optimal leader protocol for anonymous ``M(DBL)_2`` networks, built on
  the exact interval solver.  Its termination round *is* the measured
  lower bound.
* :mod:`repro.core.counting.star` -- one-round counting in ``G(PD)_1``.
* :mod:`repro.core.counting.degree_oracle` -- the ``O(1)``-round
  fractional-mass algorithm for restricted ``G(PD)_2`` networks with a
  local degree detector (the paper's Discussion).
* :mod:`repro.core.counting.token_ids` -- counting by full token
  dissemination in networks *with* identifiers (the ``O(D)`` baseline).
* :mod:`repro.core.counting.gossip` -- Kempe-style push-sum size
  *estimation* under fair adversaries (anonymous, approximate).
* :mod:`repro.core.counting.flooding` -- protocol-level flooding, used
  to measure dissemination time / the dynamic diameter through the real
  engine.

The *algorithm zoo* -- published anonymous counting upper bounds raced
against the paper's Theorem 1 horizon by the ``upper-vs-lower``
experiment:

* :mod:`repro.core.counting.history` -- shared history-tree views and
  the exact multiplicity solver.
* :mod:`repro.core.counting.diluna_viglietta` -- Di Luna-Viglietta
  linear-time counting with a unique leader (arXiv 2204.02128).
* :mod:`repro.core.counting.kowalski_mosteiro` -- Kowalski-Mosteiro
  counting with ``ell`` indistinguishable supervisors instead of a
  leader (arXiv 2104.02937).
* :mod:`repro.core.counting.drain` -- the Milani-Mosteiro doubling
  drain (arXiv 1509.02140) and Chakraborty-Milani-Mosteiro Incremental
  Counting (arXiv 1603.05459), exact fixed-point mass draining with a
  bit-identical fast backend.
"""

from repro.core.counting.base import CountingOutcome
from repro.core.counting.degree_oracle import count_pd2_with_degree_oracle
from repro.core.counting.diluna_viglietta import count_diluna_viglietta
from repro.core.counting.drain import (
    count_chakraborty_mm,
    count_chakraborty_mm_batch,
    count_milani_mosteiro,
    count_milani_mosteiro_batch,
)
from repro.core.counting.flooding import flood_time_via_protocol, flood_times_batch
from repro.core.counting.gossip import (
    gossip_size_estimates,
    gossip_size_estimates_batch,
)
from repro.core.counting.kowalski_mosteiro import count_kowalski_mosteiro
from repro.core.counting.optimal import (
    OptimalLeaderProcess,
    count_mdbl2,
    count_mdbl2_abstract,
)
from repro.core.counting.star import count_star, make_star_processes
from repro.core.counting.token_ids import count_with_ids, count_with_ids_batch

__all__ = [
    "CountingOutcome",
    "OptimalLeaderProcess",
    "count_chakraborty_mm",
    "count_chakraborty_mm_batch",
    "count_diluna_viglietta",
    "count_kowalski_mosteiro",
    "count_mdbl2",
    "count_mdbl2_abstract",
    "count_milani_mosteiro",
    "count_milani_mosteiro_batch",
    "count_pd2_with_degree_oracle",
    "count_star",
    "count_with_ids",
    "count_with_ids_batch",
    "flood_time_via_protocol",
    "flood_times_batch",
    "gossip_size_estimates",
    "gossip_size_estimates_batch",
    "make_star_processes",
]
