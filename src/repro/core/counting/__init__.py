"""Executable counting algorithms and baselines.

* :mod:`repro.core.counting.optimal` -- the information-theoretically
  optimal leader protocol for anonymous ``M(DBL)_2`` networks, built on
  the exact interval solver.  Its termination round *is* the measured
  lower bound.
* :mod:`repro.core.counting.star` -- one-round counting in ``G(PD)_1``.
* :mod:`repro.core.counting.degree_oracle` -- the ``O(1)``-round
  fractional-mass algorithm for restricted ``G(PD)_2`` networks with a
  local degree detector (the paper's Discussion).
* :mod:`repro.core.counting.token_ids` -- counting by full token
  dissemination in networks *with* identifiers (the ``O(D)`` baseline).
* :mod:`repro.core.counting.gossip` -- Kempe-style push-sum size
  *estimation* under fair adversaries (anonymous, approximate).
* :mod:`repro.core.counting.flooding` -- protocol-level flooding, used
  to measure dissemination time / the dynamic diameter through the real
  engine.
"""

from repro.core.counting.base import CountingOutcome
from repro.core.counting.degree_oracle import count_pd2_with_degree_oracle
from repro.core.counting.flooding import flood_time_via_protocol, flood_times_batch
from repro.core.counting.gossip import (
    gossip_size_estimates,
    gossip_size_estimates_batch,
)
from repro.core.counting.optimal import (
    OptimalLeaderProcess,
    count_mdbl2,
    count_mdbl2_abstract,
)
from repro.core.counting.star import count_star, make_star_processes
from repro.core.counting.token_ids import count_with_ids, count_with_ids_batch

__all__ = [
    "CountingOutcome",
    "OptimalLeaderProcess",
    "count_mdbl2",
    "count_mdbl2_abstract",
    "count_pd2_with_degree_oracle",
    "count_star",
    "count_with_ids",
    "count_with_ids_batch",
    "flood_time_via_protocol",
    "flood_times_batch",
    "gossip_size_estimates",
    "gossip_size_estimates_batch",
    "make_star_processes",
]
