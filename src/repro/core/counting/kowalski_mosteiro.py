"""Kowalski-Mosteiro counting without a unique leader.

Kowalski & Mosteiro (arXiv 2104.02937) give the first polynomial-time
counting algorithm for anonymous dynamic networks *without a
distinguished leader*: instead, some known number ``ell >= 1`` of
indistinguishable *supervisor* nodes exists.  Fully leaderless
anonymous counting is impossible -- a symmetric network is
indistinguishable from its double -- so the known-``ell`` relaxation is
exactly what makes the problem solvable, and it strictly generalises
the single-leader setting (``ell = 1`` recovers DV).

Our adaptation reuses the history-tree machinery of
:mod:`repro.core.counting.history` with the anchor constraint
"the marked classes hold ``ell`` nodes in total" instead of "the
leader class holds exactly one".  Every supervisor runs the decider;
the engine stops as soon as *any* node outputs, and the outcome takes
the minimum-index decider's count.  Notably this handles networks the
single-leader anchors cannot, e.g. the all-supervisors symmetric cycle
where every node shares one view class of multiplicity ``ell = n``.

Object-engine only, like DV: the view state does not vectorize.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.counting.base import CountingOutcome
from repro.core.counting.diluna_viglietta import default_history_budget
from repro.core.counting.history import HistoryProcess, ViewTable
from repro.networks.dynamic_graph import DynamicGraph
from repro.simulation.engine import EngineConfig, SynchronousEngine

__all__ = ["count_kowalski_mosteiro"]


def count_kowalski_mosteiro(
    network: DynamicGraph,
    *,
    supervisors: int | Sequence[int] = 1,
    max_rounds: int | None = None,
    slack: int = 2,
) -> CountingOutcome:
    """Count ``network`` with ``ell`` indistinguishable supervisors.

    Args:
        network: Dynamic graph to count; must stay connected each round.
        supervisors: Either the number of supervisors (taken as nodes
            ``0 .. ell-1``; indices are a simulation convenience only,
            the supervisors never learn them) or an explicit sequence
            of supervisor node indices.
        max_rounds: Engine round budget; defaults to
            :func:`~repro.core.counting.diluna_viglietta.default_history_budget`.
        slack: Termination-margin slack for the history decider.

    Returns:
        A :class:`CountingOutcome`; ``detail`` records the supervisor
        count and how many supervisors had decided by the final round.
    """
    n = network.n
    if isinstance(supervisors, int):
        marked = tuple(range(supervisors))
    else:
        marked = tuple(sorted(set(supervisors)))
    if not marked:
        raise ValueError("at least one supervisor is required")
    if marked[0] < 0 or marked[-1] >= n:
        raise ValueError(f"supervisor indices {marked} out of range for n={n}")
    ell = len(marked)
    budget = default_history_budget(n) if max_rounds is None else max_rounds
    table = ViewTable()
    marked_set = set(marked)
    processes = [
        HistoryProcess(
            table,
            marked=(index in marked_set),
            anchor_total=ell,
            decide=(index in marked_set),
            slack=slack,
        )
        for index in range(n)
    ]
    engine = SynchronousEngine(
        processes,
        network,
        leader=None,
        config=EngineConfig(max_rounds=budget, stop_when="any"),
    )
    result = engine.run()
    decided = dict(result.outputs)
    first = min(decided)
    return CountingOutcome(
        count=int(decided[first]),
        output_round=result.rounds - 1,
        rounds=result.rounds,
        algorithm="kowalski-mosteiro",
        detail={
            "supervisors": ell,
            "deciders": len(decided),
            "solve_level": processes[first].decided_level,
            "slack": slack,
        },
    )
