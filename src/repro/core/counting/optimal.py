"""The optimal leader protocol for anonymous ``M(DBL)_2`` networks.

The protocol is the "simple message passing protocol" the paper notes
after Definition 7: every anonymous node broadcasts its full state
``S(v, r)`` each round (bandwidth is unlimited) while the leader sends a
beacon, so each node can read its own label set off the beacon's edge
labels.  The leader accumulates the observation sequence and, after
every round, computes the exact interval of feasible network sizes with
:func:`repro.core.solver.feasible_size_interval`; it outputs the moment
the interval collapses.

This algorithm is *information-theoretically optimal*: the observation
sequence is a lossless summary of everything any deterministic leader
algorithm could know (anonymous nodes with identical histories are
permutable), and the solver returns exactly the set of sizes consistent
with that knowledge.  Its termination round against the worst-case
adversary therefore *is* the true cost of counting -- which is how the
benchmarks measure the paper's ``Ω(log |V|)`` bound from above and
below at once.

Two equivalent execution paths are provided:

* :func:`count_mdbl2` drives real processes through the labeled
  message-passing engine (full fidelity);
* :func:`count_mdbl2_abstract` reads the ground-truth observations off
  the :class:`repro.networks.DynamicMultigraph` directly (fast path for
  large sweeps).

The test suite checks the two paths agree round for round.
"""

from __future__ import annotations

from collections import Counter

from repro.core.counting.base import CountingOutcome
from repro.core.solver import feasible_size_interval
from repro.core.states import ObservationSequence
from repro.networks.multigraph import DynamicMultigraph
from repro.simulation.labeled import LabeledStarEngine
from repro.simulation.messages import LabeledInbox
from repro.simulation.node import Process
from repro.simulation.errors import TerminationError

__all__ = [
    "AnonymousStateProcess",
    "OptimalLeaderProcess",
    "count_mdbl2",
    "count_mdbl2_abstract",
]

_BEACON = "beacon"


class AnonymousStateProcess(Process):
    """A non-leader node: broadcast the state history, learn labels.

    The node's state at round ``r`` is ``S(v, r) = [L(v,0), ...,
    L(v,r-1)]`` (Definition 6).  It broadcasts that state during the
    send phase and extends it during the receive phase by reading its
    current label set off the labels attached to the leader's beacon.
    """

    def __init__(self) -> None:
        self.state: tuple = ()

    def compose(self, round_no: int) -> tuple:
        return self.state

    def deliver(self, round_no: int, inbox: LabeledInbox) -> None:
        labels = frozenset(inbox.labels())
        self.state = self.state + (labels,)


class OptimalLeaderProcess(Process):
    """The leader: accumulate observations, output when the size is pinned.

    Attributes:
        observations: The accumulated
            :class:`repro.core.states.ObservationSequence`.
        interval_history: The feasible-size interval after every round --
            the measured "ambiguity curve" reported by the lower-bound
            benchmarks.
    """

    def __init__(self) -> None:
        self.observations = ObservationSequence(2)
        self.interval_history: list = []
        self._output = None

    def compose(self, round_no: int) -> str:
        return _BEACON

    def deliver(self, round_no: int, inbox: LabeledInbox) -> None:
        observation: Counter = Counter()
        for label, state in inbox:
            observation[(label, state)] += 1
        self.observations.append(observation)
        interval = feasible_size_interval(self.observations)
        self.interval_history.append(interval)
        if interval.is_unique and self._output is None:
            self._output = interval.lo


def count_mdbl2(
    multigraph: DynamicMultigraph, *, max_rounds: int = 64
) -> CountingOutcome:
    """Count an ``M(DBL)_2`` instance through the labeled engine.

    Returns the size of ``W`` (the non-leader nodes), the convention of
    Section 4; the full transformed ``G(PD)_2`` network would have
    ``|W| + 3`` nodes.

    Raises:
        TerminationError: The leader did not terminate within
            ``max_rounds`` (cannot happen for ``extend='full'``
            schedules of bounded prefix).
    """
    if multigraph.k != 2:
        raise ValueError("count_mdbl2 requires an M(DBL)_2 instance")
    leader = OptimalLeaderProcess()
    nodes = [AnonymousStateProcess() for _ in range(multigraph.n)]
    engine = LabeledStarEngine(leader, nodes, multigraph, max_rounds=max_rounds)
    result = engine.run()
    return CountingOutcome(
        count=result.leader_output,
        output_round=result.rounds - 1,
        rounds=result.rounds,
        algorithm="optimal-anonymous",
        detail={"intervals": list(leader.interval_history)},
    )


def count_mdbl2_abstract(
    multigraph: DynamicMultigraph, *, max_rounds: int = 64
) -> CountingOutcome:
    """Count an ``M(DBL)_2`` instance from ground-truth observations.

    Semantically identical to :func:`count_mdbl2` but skips the
    message-passing machinery: the observation sequence is read directly
    off the multigraph.  Used for large parameter sweeps.
    """
    if multigraph.k != 2:
        raise ValueError("count_mdbl2_abstract requires an M(DBL)_2 instance")
    observations = ObservationSequence(2)
    intervals = []
    for round_no in range(max_rounds):
        observations.append(multigraph.observation(round_no))
        interval = feasible_size_interval(observations)
        intervals.append(interval)
        if interval.is_unique:
            return CountingOutcome(
                count=interval.lo,
                output_round=round_no,
                rounds=round_no + 1,
                algorithm="optimal-anonymous-abstract",
                detail={"intervals": intervals},
            )
    raise TerminationError(
        f"size interval did not collapse within {max_rounds} rounds"
    )
