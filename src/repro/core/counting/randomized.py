"""Randomised counting and why it fails against the adversary.

The classic randomised fix for anonymity is self-assigned identifiers:
every node draws a long random bit-string as a tentative ID, all IDs
are flooded for ``D`` rounds, and the leader outputs the number of
distinct IDs -- correct with high probability when coins are fair and
the ID space is large.

Footnote 2 of the paper rules this out in the worst-case model: the
adversary governs the randomness, answers every node's draws
identically, and the network stays perfectly symmetric -- the leader
then sees exactly one ID no matter how many nodes exist.  This module
implements the protocol so both regimes can be executed.
"""

from __future__ import annotations

from repro.core.counting.base import CountingOutcome
from repro.networks.dynamic_graph import DynamicGraph
from repro.simulation.engine import EngineConfig, SynchronousEngine
from repro.simulation.messages import Inbox
from repro.simulation.node import Process
from repro.simulation.randomness import AdversarialCoins, CoinSource, FairCoins

__all__ = ["RandomIdProcess", "count_with_random_ids"]

_ID_BITS = 48


class RandomIdProcess(Process):
    """Draw a random tentative ID, flood known IDs, output after ``horizon``."""

    def __init__(self, coins: CoinSource, horizon: int) -> None:
        if horizon < 1:
            raise ValueError("horizon must be at least 1")
        self.known: frozenset[tuple[int, ...]] = frozenset(
            {coins.draw_bits(_ID_BITS)}
        )
        self.horizon = horizon
        self._output = None

    def compose(self, round_no: int) -> frozenset:
        return self.known

    def deliver(self, round_no: int, inbox: Inbox) -> None:
        for payload in inbox:
            self.known |= payload
        if round_no + 1 >= self.horizon and self._output is None:
            self._output = len(self.known)


def count_with_random_ids(
    network: DynamicGraph,
    horizon: int,
    *,
    coins: str = "fair",
    seed: int = 0,
    leader: int = 0,
) -> CountingOutcome:
    """Randomised counting by self-assigned IDs.

    Args:
        network: Any 1-interval connected dynamic graph.
        horizon: Dissemination budget; must be at least the dynamic
            diameter for every ID to reach the leader.
        coins: ``"fair"`` gives each process an independent stream
            (correct with probability ``1 - O(n² / 2^48)``);
            ``"adversarial"`` lets the worst-case adversary answer all
            draws -- identically -- so the output is always 1
            regardless of the true size (the paper's footnote 2).
        seed: Seed for the fair streams.
        leader: Node whose output is reported.
    """
    if coins == "fair":
        sources: list[CoinSource] = [
            FairCoins(seed, stream) for stream in range(network.n)
        ]
    elif coins == "adversarial":
        sources = [AdversarialCoins() for _ in range(network.n)]
    else:
        raise ValueError("coins must be 'fair' or 'adversarial'")
    processes = [RandomIdProcess(source, horizon) for source in sources]
    engine = SynchronousEngine(
        processes,
        network,
        leader=leader,
        config=EngineConfig(max_rounds=horizon + 1),
    )
    result = engine.run()
    return CountingOutcome(
        count=result.leader_output,
        output_round=result.rounds - 1,
        rounds=result.rounds,
        algorithm=f"random-ids-{coins}",
    )
