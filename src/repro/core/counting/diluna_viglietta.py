"""Di Luna-Viglietta linear-time counting for anonymous dynamic nets.

Di Luna & Viglietta, "Brief Announcement: A Stronger Model for Dynamic
Networks" / "Optimal computation in anonymous dynamic networks"
(arXiv 2204.02128) show that a single leader suffices to count an
anonymous 1-interval-connected network in ``O(n)`` rounds using
*history trees*: every node floods its full view, and the leader
recovers the class multiplicities from exact linear constraints.

This module is the thin leader-anchored wrapper over the shared
machinery in :mod:`repro.core.counting.history` -- the anchor is the
unique leader (``anchor_total=1``) and only the leader decides.  The
protocol is *object-engine only*: the per-node state is an unbounded
recursively-defined view plus a growing knowledge set, which does not
vectorize into fixed-width lanes (the drain-based counters in
:mod:`repro.core.counting.drain` are the fast-backend members of the
zoo).

The implementation is an honest adaptation, not a line-by-line
transcription: termination uses the linear margin + cross-level
agreement rule documented in :mod:`repro.core.counting.history`, and
the ``repro.verify`` counting suite fuzzes ``count == n`` across every
network family.
"""

from __future__ import annotations

from repro.core.counting.base import CountingOutcome
from repro.core.counting.history import HistoryProcess, ViewTable
from repro.networks.dynamic_graph import DynamicGraph
from repro.simulation.engine import EngineConfig, SynchronousEngine

__all__ = ["count_diluna_viglietta", "default_history_budget"]


def default_history_budget(n: int) -> int:
    """Round budget for the history-tree counters: comfortably linear."""
    return 4 * n + 16


def count_diluna_viglietta(
    network: DynamicGraph,
    *,
    leader: int = 0,
    max_rounds: int | None = None,
    slack: int = 2,
) -> CountingOutcome:
    """Count ``network`` with the DV history-tree protocol.

    Args:
        network: Dynamic graph to count; must stay connected each round.
        leader: Index of the unique distinguished node.
        max_rounds: Engine round budget; defaults to
            :func:`default_history_budget`.
        slack: Termination-margin slack forwarded to
            :class:`~repro.core.counting.history.HistoryProcess`.

    Returns:
        A :class:`CountingOutcome` whose ``detail`` records the level
        the winning multiplicity solve used.
    """
    n = network.n
    if not 0 <= leader < n:
        raise ValueError(f"leader {leader} out of range for n={n}")
    budget = default_history_budget(n) if max_rounds is None else max_rounds
    table = ViewTable()
    processes = [
        HistoryProcess(
            table,
            marked=(index == leader),
            anchor_total=1,
            decide=(index == leader),
            slack=slack,
        )
        for index in range(n)
    ]
    engine = SynchronousEngine(
        processes,
        network,
        leader=leader,
        config=EngineConfig(max_rounds=budget, stop_when="leader"),
    )
    result = engine.run()
    decider = processes[leader]
    return CountingOutcome(
        count=int(result.leader_output),
        output_round=result.rounds - 1,
        rounds=result.rounds,
        algorithm="diluna-viglietta",
        detail={
            "solve_level": decider.decided_level,
            "slack": slack,
            "views_interned": len(table),
        },
    )
