"""Mass-drain counting: Milani-Mosteiro and Chakraborty-Milani-Mosteiro.

The second family of the algorithm zoo counts by *draining potential
into the leader*.  Every non-leader starts a phase with potential 1;
each round it broadcasts the share ``phi / (k + 1)`` for the current
candidate count ``k``, subtracts one share per neighbour, and adds the
shares it received; the leader only absorbs (``rho += received``).
Broadcast symmetry conserves total mass exactly, so ``rho`` climbs
toward ``n - 1`` while the residual potential decays.  A phase ends
with a *certify* window: nodes snapshot their residual potential,
max-flood it (max is the one aggregate anonymous duplication cannot
corrupt), and the leader accepts candidate ``k`` when the interval
``[rho, rho_stamp + k * max_residual]`` pins a unique integer ``q`` --
for ``k >= n - 1`` that integer is provably ``n - 1``.

Milani & Mosteiro (arXiv 1509.02140) run the candidate schedule
geometrically (``k = 1, 2, 4, ...``); Chakraborty, Milani & Mosteiro
(arXiv 1603.05459) probe every candidate (``k = 1, 2, 3, ...``) --
their *Incremental Counting* -- and demonstrate empirically that it is
polynomial in practice.  Phases for too-small ``k`` are guarded the
way the papers suggest: a clamp of a would-be-negative potential
(possible only when a degree exceeds ``k + 1``) raises a sticky
*dirty* flag that is OR-flooded with the snapshots, and ``rho > k``
vetoes the phase outright.  As in the source papers, sub-``n``
candidates are conjectured (and here fuzz-verified) not to certify a
wrong count; candidates at or above ``n - 1`` are exact.

All arithmetic is exact *fixed-point*: a phase with candidate ``k``
works on the grid ``1/(k+1)^4``, every potential is the integer number
of grid units, and the broadcast share is ``phi // (k+1)`` -- the
papers' bounded-message practicality taken literally.  Rounding a
share down only slows the drain; conservation stays exact, and the
quantisation stall floor ``(k+1)/(k+1)^4`` sits far below the ``1/k``
resolution the certify interval needs.  Integer state is also what
makes the fast backend (:class:`VectorizedDrain`) *bit-identical* to
the object engine: integer sums are associative, so CSR-order
``np.add.reduceat`` neighbour sums equal the object engine's
multiset-order inbox sums, and the object/fast differential in
``repro.verify`` can demand full equality rather than tolerances.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Iterator, Sequence

import numpy as np

from repro.core.counting.base import CountingOutcome
from repro.networks.csr import CSRAdjacency
from repro.networks.dynamic_graph import DynamicGraph
from repro.simulation.engine import EngineConfig, SynchronousEngine
from repro.simulation.fast import (
    FastEngine,
    FastLane,
    LaneLayout,
    VectorizedProtocol,
    resolve_backend,
)
from repro.simulation.messages import Inbox
from repro.simulation.node import Process

__all__ = [
    "DrainPhase",
    "DrainProcess",
    "VectorizedDrain",
    "count_chakraborty_mm",
    "count_chakraborty_mm_batch",
    "count_milani_mosteiro",
    "count_milani_mosteiro_batch",
    "doubling_candidates",
    "incremental_candidates",
    "plan_phases",
]

@dataclass(frozen=True)
class DrainPhase:
    """One candidate-``k`` phase of the round-indexed schedule.

    The schedule is a pure function of the round number -- every node
    derives it without knowing ``n``, which is what keeps the phases
    synchronized in an anonymous network.

    Attributes:
        candidate: The candidate count ``k`` probed by this phase.
        drain: Rounds of pure draining before the snapshot.
        flood: Certify-window rounds (drain continues; snapshots and
            dirty flags flood on top).
        start: First global round of the phase.
    """

    candidate: int
    drain: int
    flood: int
    start: int

    @property
    def length(self) -> int:
        return self.drain + self.flood

    @property
    def stop(self) -> int:
        return self.start + self.length

    @property
    def grid(self) -> int:
        """Fixed-point denominator: potentials are ints over this grid."""
        return (self.candidate + 1) ** 4


def _drain_rounds(k: int) -> int:
    # Quadratic in k on purpose: one round moves only a 1/(k+1) mass
    # fraction, so (k+2)^2 rounds amount to ~k units of diffusion time.
    # Phases then certify once k reaches the topology's mixing time --
    # immediately at k ~ n on expanders, k ~ n^2 on paths -- keeping the
    # worst case polynomial without any knowledge of n in the schedule.
    return (k + 2) * (k + 2)


def _flood_rounds(k: int) -> int:
    # k + 2 >= n + 1 hops whenever k >= n - 1: the max-flood provably
    # covers the network in every phase whose candidate is large enough.
    return k + 2


def doubling_candidates() -> Iterator[int]:
    """Milani-Mosteiro candidate schedule: ``1, 2, 4, 8, ...``."""
    k = 1
    while True:
        yield k
        k *= 2


def incremental_candidates() -> Iterator[int]:
    """Chakraborty-Milani-Mosteiro Incremental Counting: ``1, 2, 3, ...``."""
    k = 1
    while True:
        yield k
        k += 1


def plan_phases(
    candidates: Iterator[int], *, until_candidate: int
) -> tuple[DrainPhase, ...]:
    """Materialise the phase schedule up to the first ``k`` at the target.

    The infinite schedule is truncated for simulation only -- the round
    budget of a run is the total length of the planned phases, so a run
    that exhausts it raises the engine's ``TerminationError`` rather
    than looping forever.
    """
    if until_candidate < 1:
        raise ValueError("until_candidate must be at least 1")
    phases: list[DrainPhase] = []
    start = 0
    for k in candidates:
        phase = DrainPhase(k, _drain_rounds(k), _flood_rounds(k), start)
        phases.append(phase)
        start = phase.stop
        if k >= until_candidate:
            return tuple(phases)
    raise ValueError("candidate iterator exhausted early")  # pragma: no cover


def default_drain_target(n: int) -> int:
    """Candidate ceiling for the default budget: well past ``n - 1``,
    with quadratic headroom for slow-mixing topologies where exact
    phases fail to certify until ``k`` reaches the mixing time (the
    residual max decays with the conductance, not with ``k``)."""
    return n * n + 4 * n + 8


class DrainProcess(Process):
    """Object-engine mass drain: one node of the MM/CMM protocols.

    Args:
        phases: The (shared, round-indexed) candidate schedule.
        is_leader: Whether this node absorbs mass instead of holding it.
        confirmations: How many consecutive phases must certify the
            same count before the leader outputs.  ``1`` is the papers'
            behaviour; higher values trade rounds for robustness
            against a sub-``n`` candidate certifying spuriously.
    """

    def __init__(
        self,
        phases: Sequence[DrainPhase],
        *,
        is_leader: bool,
        confirmations: int = 1,
    ) -> None:
        if not phases:
            raise ValueError("need at least one phase")
        if confirmations < 1:
            raise ValueError("confirmations must be at least 1")
        self.phases = tuple(phases)
        self.is_leader = is_leader
        self.confirmations = confirmations
        self._cursor = 0
        self._share = 0
        self._candidate_q: int | None = None
        self._streak = 0
        self._output: int | None = None
        self.decision_detail: dict[str, Any] | None = None
        self._reset(self.phases[0])

    def _reset(self, phase: DrainPhase) -> None:
        # All quantities are integer counts of 1/grid units.
        self.phi = 0 if self.is_leader else phase.grid
        self.rho = 0
        self.rho_stamp = 0
        self.flood = 0
        self.dirty = False

    def compose(self, round_no: int) -> tuple[int, int, int | None, bool]:
        phase = self.phases[self._cursor]
        if round_no >= phase.stop:
            self._cursor += 1
            phase = self.phases[self._cursor]
            self._reset(phase)
        local = round_no - phase.start
        self._share = self.phi // (phase.candidate + 1)
        flood = self.flood if local >= phase.drain else None
        return (self._cursor, self._share, flood, self.dirty)

    def deliver(self, round_no: int, inbox: Inbox) -> None:
        phase = self.phases[self._cursor]
        local = round_no - phase.start
        received = 0
        for _phase_index, share, flood, dirty in inbox:
            received += share
            if flood is not None and flood > self.flood:
                self.flood = flood
            if dirty:
                self.dirty = True
        if self.is_leader:
            self.rho += received
        else:
            residual = self.phi - len(inbox) * self._share
            if residual < 0:
                residual = 0
                self.dirty = True
            self.phi = residual + received
        if local == phase.drain - 1:
            self.flood = self.phi
            self.rho_stamp = self.rho
        if (
            self.is_leader
            and local == phase.length - 1
            and self._output is None
        ):
            self._decide(phase)

    def output(self) -> int | None:
        return self._output

    def _decide(self, phase: DrainPhase) -> None:
        q = certify(
            phase,
            rho=self.rho,
            rho_stamp=self.rho_stamp,
            residual_max=self.flood,
            dirty=self.dirty,
        )
        if q is None or q != self._candidate_q:
            self._candidate_q = q
            self._streak = 0 if q is None else 1
        else:
            self._streak += 1
        if q is not None and self._streak >= self.confirmations:
            self._output = q + 1
            self.decision_detail = {
                "candidate": phase.candidate,
                "phases": self._cursor + 1,
                "confirmations": self._streak,
            }


def certify(
    phase: DrainPhase,
    *,
    rho: int,
    rho_stamp: int,
    residual_max: int,
    dirty: bool,
) -> int | None:
    """The phase-end acceptance test, shared by both backends.

    Accepts iff the phase saw no clamp, absorbed no more mass than the
    candidate allows, and the interval ``[rho, rho_stamp + k * M]``
    (in grid units) contains exactly one integer ``q`` -- the claimed
    ``n - 1``.
    """
    k = phase.candidate
    if dirty or rho > k * phase.grid:
        return None
    low = math.ceil(Fraction(rho, phase.grid))
    high = math.floor(Fraction(rho_stamp + k * residual_max, phase.grid))
    return low if low == high else None


class VectorizedDrain(VectorizedProtocol):
    """Fast-backend mass drain, bit-identical to :class:`DrainProcess`.

    State lives in object-dtype arrays of exact grid-unit integers
    (Python ints: unbounded, so huge candidates cannot overflow); the
    receive phase gathers neighbour values through the CSR index array
    and reduces with ``np.add.reduceat`` / ``np.maximum.reduceat``.
    Exactness makes summation order irrelevant, so outputs, rounds and
    engine counters match the object engine byte-for-byte.

    All lanes share one schedule (it is ``n``-independent), so phase
    bookkeeping is a single cursor; per-lane state is only the leader
    scalars (``rho``, ``rho_stamp``) and the decision bookkeeping.
    """

    def __init__(
        self, phases: Sequence[DrainPhase], *, confirmations: int = 1
    ) -> None:
        if not phases:
            raise ValueError("need at least one phase")
        if confirmations < 1:
            raise ValueError("confirmations must be at least 1")
        self.phases = tuple(phases)
        self.confirmations = confirmations
        self.details: list[dict[str, Any] | None] = []

    def allocate(self, layouts: Sequence[LaneLayout]) -> None:
        self._layouts = list(layouts)
        total = layouts[-1].stop
        self._total = total
        leaders = []
        for layout in layouts:
            if layout.leader is None:
                raise ValueError("the drain protocols require a leader")
            leaders.append(layout.leader)
        self._leaders = np.asarray(leaders, dtype=np.int64)
        self._phi = np.empty(total, dtype=object)
        self._flood = np.empty(total, dtype=object)
        self._dirty = np.zeros(total, dtype=np.int8)
        lanes = len(layouts)
        self._rho: list[int] = [0] * lanes
        self._rho_stamp: list[int] = [0] * lanes
        self._candidate_q: list[int | None] = [None] * lanes
        self._streak = [0] * lanes
        self._counts = np.zeros(lanes, dtype=np.int64)
        self._done = np.zeros(lanes, dtype=bool)
        self._mask = np.zeros(total, dtype=bool)
        self.details = [None] * lanes
        self._cursor = 0
        self._reset_phase(self.phases[0])

    def _reset_phase(self, phase: DrainPhase) -> None:
        self._phi[:] = phase.grid
        self._phi[self._leaders] = 0
        self._flood[:] = 0
        self._dirty[:] = 0
        lanes = len(self._layouts)
        self._rho = [0] * lanes
        self._rho_stamp = [0] * lanes

    @staticmethod
    def _gather_reduce(
        adjacency: CSRAdjacency,
        values: np.ndarray,
        reducer: np.ufunc,
        fill: Any,
    ) -> np.ndarray:
        """Per-node reduction of neighbour ``values`` in CSR order.

        ``reduceat`` needs two fixes for empty neighbourhoods: a
        sentinel appended to the gather keeps trailing empty segments
        in bounds, and rows with degree 0 are overwritten with ``fill``
        (``reduceat`` yields the *next* element there, not the unit).
        """
        indptr = adjacency.matrix.indptr
        total = len(indptr) - 1
        gathered = values[adjacency.matrix.indices]
        gathered = np.append(gathered, np.asarray([fill], dtype=values.dtype))
        reduced = reducer.reduceat(gathered, indptr[:-1])
        empty = np.diff(indptr) == 0
        if empty.any():
            reduced[empty] = fill
        return reduced

    def step(
        self, round_no: int, adjacency: CSRAdjacency, active: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        phase = self.phases[self._cursor]
        if round_no >= phase.stop:
            self._cursor += 1
            phase = self.phases[self._cursor]
            self._reset_phase(phase)
        local = round_no - phase.start
        k = phase.candidate
        degrees = adjacency.degrees

        shares = self._phi // (k + 1)
        received = self._gather_reduce(adjacency, shares, np.add, 0)
        # Dirty flags and certify floods travel as composed *before*
        # this round's update, so gather from the pre-update state.
        neighbour_dirty = self._gather_reduce(
            adjacency, self._dirty, np.maximum, np.int8(0)
        )
        if local >= phase.drain:
            neighbour_flood = self._gather_reduce(
                adjacency, self._flood, np.maximum, 0
            )
            self._flood = np.maximum(self._flood, neighbour_flood)

        residual = self._phi - shares * degrees
        negative = np.less(residual, 0).astype(bool)
        if negative.any():
            residual[negative] = 0
            self._dirty[negative] = 1
        self._dirty = np.maximum(self._dirty, neighbour_dirty)
        for lane, leader in enumerate(self._leaders):
            self._rho[lane] = self._rho[lane] + received[leader]
        self._phi = residual + received
        self._phi[self._leaders] = 0

        if local == phase.drain - 1:
            self._flood = self._phi.copy()
            for lane, leader in enumerate(self._leaders):
                self._rho_stamp[lane] = self._rho[lane]
        if local == phase.length - 1:
            self._decide(phase)

        sending = np.ones(self._total, dtype=bool)
        return sending, degrees

    def _decide(self, phase: DrainPhase) -> None:
        for lane, layout in enumerate(self._layouts):
            if self._done[lane]:
                continue
            leader = layout.leader
            q = certify(
                phase,
                rho=self._rho[lane],
                rho_stamp=self._rho_stamp[lane],
                residual_max=int(self._flood[leader]),
                dirty=bool(self._dirty[leader]),
            )
            if q is None or q != self._candidate_q[lane]:
                self._candidate_q[lane] = q
                self._streak[lane] = 0 if q is None else 1
            else:
                self._streak[lane] += 1
            if q is not None and self._streak[lane] >= self.confirmations:
                self._counts[lane] = q + 1
                self._done[lane] = True
                self._mask[leader] = True
                self.details[lane] = {
                    "candidate": phase.candidate,
                    "phases": self._cursor + 1,
                    "confirmations": self._streak[lane],
                }

    def output_mask(self) -> np.ndarray:
        return self._mask

    def outputs_for(self, layout: LaneLayout) -> dict[int, int]:
        if not self._mask[layout.leader]:
            return {}
        return {
            layout.leader - layout.offset: int(self._counts[layout.index])
        }

    def subset(self, indices: Sequence[int]) -> "VectorizedDrain":
        return VectorizedDrain(
            self.phases, confirmations=self.confirmations
        )

    def absorb(self, sub: "VectorizedDrain", indices: Sequence[int]) -> None:
        # Chunks arrive in ascending lane order; align decision details
        # with their batch-level lane indices.
        for local, index in enumerate(indices):
            while len(self.details) <= index:
                self.details.append(None)
            self.details[index] = sub.details[local]


def _schedule_for(kind: str, n: int, max_rounds: int | None) -> tuple[
    tuple[DrainPhase, ...], int
]:
    """The planned phases and round budget for one network of size ``n``.

    The plan always covers the requested round budget, so the phase
    cursor can never run off the end of the schedule mid-run.
    """
    candidates = (
        doubling_candidates() if kind == "doubling" else incremental_candidates()
    )
    target = default_drain_target(n)
    phases: list[DrainPhase] = []
    start = 0
    for k in candidates:
        phase = DrainPhase(k, _drain_rounds(k), _flood_rounds(k), start)
        phases.append(phase)
        start = phase.stop
        if k >= target and (max_rounds is None or start >= max_rounds):
            break
    return tuple(phases), (start if max_rounds is None else max_rounds)


def _count_drain(
    network: DynamicGraph,
    *,
    kind: str,
    algorithm: str,
    leader: int,
    backend: str,
    max_rounds: int | None,
    max_lane_nodes: int | None,
    confirmations: int,
) -> CountingOutcome:
    resolve_backend(backend)
    if backend == "fast":
        return _count_drain_batch(
            [network],
            kind=kind,
            algorithm=algorithm,
            leader=leader,
            max_rounds=max_rounds,
            max_lane_nodes=max_lane_nodes,
            confirmations=confirmations,
        )[0]
    n = network.n
    if not 0 <= leader < n:
        raise ValueError(f"leader {leader} out of range for n={n}")
    phases, budget = _schedule_for(kind, n, max_rounds)
    processes = [
        DrainProcess(
            phases, is_leader=(index == leader), confirmations=confirmations
        )
        for index in range(n)
    ]
    engine = SynchronousEngine(
        processes,
        network,
        leader=leader,
        config=EngineConfig(max_rounds=budget, stop_when="leader"),
    )
    result = engine.run()
    return CountingOutcome(
        count=int(result.leader_output),
        output_round=result.rounds - 1,
        rounds=result.rounds,
        algorithm=algorithm,
        detail=processes[leader].decision_detail or {},
    )


def _count_drain_batch(
    networks: Sequence[DynamicGraph],
    *,
    kind: str,
    algorithm: str,
    leader: int,
    max_rounds: int | None,
    max_lane_nodes: int | None,
    confirmations: int,
) -> list[CountingOutcome]:
    if not networks:
        return []
    schedules = [
        _schedule_for(kind, network.n, max_rounds) for network in networks
    ]
    # One shared schedule: it is n-independent, so the largest plan
    # covers every lane and keeps the phase cursor global.
    phases = max((plan for plan, _ in schedules), key=lambda plan: plan[-1].stop)
    budget = max(budget for _, budget in schedules)
    protocol = VectorizedDrain(phases, confirmations=confirmations)
    lanes = [FastLane(network, network.n, leader=leader) for network in networks]
    engine = FastEngine(
        protocol,
        lanes,
        config=EngineConfig(max_rounds=budget, stop_when="leader"),
        max_lane_nodes=max_lane_nodes,
    )
    return [
        CountingOutcome(
            count=int(result.leader_output),
            output_round=result.rounds - 1,
            rounds=result.rounds,
            algorithm=algorithm,
            detail=protocol.details[index] or {},
        )
        for index, result in enumerate(engine.run())
    ]


def count_milani_mosteiro(
    network: DynamicGraph,
    *,
    leader: int = 0,
    backend: str = "object",
    max_rounds: int | None = None,
    max_lane_nodes: int | None = None,
    confirmations: int = 1,
) -> CountingOutcome:
    """Count with the Milani-Mosteiro doubling-candidate drain."""
    return _count_drain(
        network,
        kind="doubling",
        algorithm="milani-mosteiro",
        leader=leader,
        backend=backend,
        max_rounds=max_rounds,
        max_lane_nodes=max_lane_nodes,
        confirmations=confirmations,
    )


def count_milani_mosteiro_batch(
    networks: Sequence[DynamicGraph],
    *,
    leader: int = 0,
    max_rounds: int | None = None,
    max_lane_nodes: int | None = None,
    confirmations: int = 1,
) -> list[CountingOutcome]:
    """MM counts for many networks, fused into one fast batch."""
    return _count_drain_batch(
        networks,
        kind="doubling",
        algorithm="milani-mosteiro",
        leader=leader,
        max_rounds=max_rounds,
        max_lane_nodes=max_lane_nodes,
        confirmations=confirmations,
    )


def count_chakraborty_mm(
    network: DynamicGraph,
    *,
    leader: int = 0,
    backend: str = "object",
    max_rounds: int | None = None,
    max_lane_nodes: int | None = None,
    confirmations: int = 1,
) -> CountingOutcome:
    """Count with Chakraborty-Milani-Mosteiro Incremental Counting."""
    return _count_drain(
        network,
        kind="incremental",
        algorithm="chakraborty-milani-mosteiro",
        leader=leader,
        backend=backend,
        max_rounds=max_rounds,
        max_lane_nodes=max_lane_nodes,
        confirmations=confirmations,
    )


def count_chakraborty_mm_batch(
    networks: Sequence[DynamicGraph],
    *,
    leader: int = 0,
    max_rounds: int | None = None,
    max_lane_nodes: int | None = None,
    confirmations: int = 1,
) -> list[CountingOutcome]:
    """CMM counts for many networks, fused into one fast batch."""
    return _count_drain_batch(
        networks,
        kind="incremental",
        algorithm="chakraborty-milani-mosteiro",
        leader=leader,
        max_rounds=max_rounds,
        max_lane_nodes=max_lane_nodes,
        confirmations=confirmations,
    )
