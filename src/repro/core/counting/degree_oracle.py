"""``O(1)``-round counting in restricted ``G(PD)_2`` with a degree oracle.

The Discussion in Section 4.2: take the *restricted* ``G(PD)_2`` model
(no edges inside a layer, so every edge joins adjacent layers) and give
each node a local degree detector -- it learns ``|N(v, r)|`` *before*
the receive phase of round ``r``.  Then counting needs only a constant
number of rounds:

* round 0 -- the leader broadcasts a beacon; a node that hears it learns
  it is in ``V_1`` (only ``V_1`` is adjacent to the leader), everyone
  else knows it is in ``V_2``; the leader's inbox size is ``|V_1|``.
* round 1 -- every ``V_2`` node broadcasts the fraction
  ``1 / |N(v, 1)|``.  All its neighbours are in ``V_1`` (restriction),
  so each ``V_2`` node injects total mass exactly 1 into ``V_1``.
* round 2 -- every ``V_1`` node broadcasts the sum of fractions it
  received; the leader adds them up.  By conservation of mass the total
  is exactly ``|V_2|``, and the leader outputs
  ``1 + |V_1| + |V_2|``.

Fractions are exact (:class:`fractions.Fraction`), so the count is exact
-- no floating-point tolerance is involved.  The same adversary that
forces ``Ω(log |V|)`` rounds without the oracle is answered in 3 rounds
with it: that gap is the point of the paper's Discussion and is measured
by ``benchmarks/bench_oracle.py``.
"""

from __future__ import annotations

from fractions import Fraction

from repro.core.counting.base import CountingOutcome
from repro.networks.dynamic_graph import DynamicGraph
from repro.simulation.engine import DegreeOracleEngine, EngineConfig
from repro.simulation.messages import Inbox
from repro.simulation.node import Process

__all__ = [
    "OracleLeaderProcess",
    "OracleMemberProcess",
    "count_pd2_with_degree_oracle",
]

_BEACON = "beacon"
_PROBE = "probe"


class OracleLeaderProcess(Process):
    """Leader: beacon at round 0, read ``|V_1|``, sum ``V_1`` reports."""

    def __init__(self) -> None:
        self._output = None
        self._v1_size: int | None = None

    def observe_degree(self, round_no: int, degree: int) -> None:
        pass  # The leader does not need the oracle.

    def compose(self, round_no: int) -> str | None:
        return _BEACON if round_no == 0 else None

    def deliver(self, round_no: int, inbox: Inbox) -> None:
        if round_no == 0:
            self._v1_size = len(inbox)
        elif round_no == 2:
            total = sum(
                (payload for payload in inbox if isinstance(payload, Fraction)),
                start=Fraction(0),
            )
            if total.denominator != 1:
                raise AssertionError(
                    f"mass conservation violated: leader collected {total}"
                )
            self._output = 1 + self._v1_size + int(total)


class OracleMemberProcess(Process):
    """Anonymous node: infer the layer at round 0, then run the protocol."""

    def __init__(self) -> None:
        self._in_v1: bool | None = None
        self._degree: int | None = None
        self._collected = Fraction(0)

    def observe_degree(self, round_no: int, degree: int) -> None:
        self._degree = degree

    def compose(self, round_no: int) -> object:
        if round_no == 0:
            return _PROBE
        if round_no == 1 and self._in_v1 is False:
            # All neighbours of a V2 node are in V1 (restricted model),
            # so this injects exactly degree * (1/degree) = 1 into V1.
            return Fraction(1, self._degree)
        if round_no == 2 and self._in_v1 is True:
            return self._collected
        return None

    def deliver(self, round_no: int, inbox: Inbox) -> None:
        if round_no == 0:
            self._in_v1 = _BEACON in inbox
        elif round_no == 1 and self._in_v1:
            self._collected = sum(
                (payload for payload in inbox if isinstance(payload, Fraction)),
                start=Fraction(0),
            )


def count_pd2_with_degree_oracle(
    network: DynamicGraph, *, leader: int = 0
) -> CountingOutcome:
    """Count a restricted ``G(PD)_2`` network in 3 rounds, exactly.

    Args:
        network: A dynamic graph in restricted ``G(PD)_2`` (no
            intra-layer edges) with the leader at ``leader``.  Both
            :func:`repro.networks.generators.pd.random_pd_network` with
            ``intra_layer_p=0`` and transformed multigraphs qualify.
        leader: The leader's node index.

    Returns:
        The exact total node count, always with ``rounds == 3``.
    """
    processes: list[Process] = [
        OracleLeaderProcess() if index == leader else OracleMemberProcess()
        for index in range(network.n)
    ]
    engine = DegreeOracleEngine(
        processes,
        network,
        leader=leader,
        config=EngineConfig(max_rounds=4),
    )
    result = engine.run()
    return CountingOutcome(
        count=result.leader_output,
        output_round=result.rounds - 1,
        rounds=result.rounds,
        algorithm="degree-oracle",
    )
