"""Anonymous gossip size estimation (Kempe-style push-sum baseline).

Kempe, Dobra & Gehrke (FOCS 2003) compute aggregates on dynamic networks
with a *fair* adversary by exploiting conservation of mass.  Adapted to
size estimation in our broadcast model: every node starts with value
``x = 1``; the leader additionally holds weight ``w = 1`` (everyone else
``w = 0``).  Each round a node splits its ``(x, w)`` mass evenly over
itself and its current neighbours -- this requires knowing the degree
before sending, so the protocol runs under the degree oracle (Kempe's
point-to-point gossip implicitly knows its recipient count).  Masses are
conserved, and under fair dynamics every node's ratio ``x / w``
converges to ``Σx / Σw = |V|``.

The protocol never *terminates with certainty* -- it is an anonymous
estimator, not an exact counter, and the paper's lower bound explains
why exactness is unattainable quickly: against the worst-case adversary
no anonymous algorithm, gossip included, can pin ``|V|`` in ``o(log |V|)``
rounds.  The baseline benchmark records the estimation error per round
under fair adversaries.
"""

from __future__ import annotations

from repro.simulation.engine import (
    DegreeOracleEngine,
    EngineConfig,
    TopologyProvider,
)
from repro.simulation.messages import Inbox
from repro.simulation.node import Process

__all__ = ["PushSumProcess", "gossip_size_estimates"]


class PushSumProcess(Process):
    """One push-sum participant; the leader starts with weight 1."""

    def __init__(self, is_leader: bool) -> None:
        self.x = 1.0
        self.w = 1.0 if is_leader else 0.0
        self._degree = 0
        self._share: tuple[float, float] = (0.0, 0.0)

    def observe_degree(self, round_no: int, degree: int) -> None:
        self._degree = degree

    def compose(self, round_no: int) -> tuple[float, float, int]:
        shares = self._degree + 1
        self._share = (self.x / shares, self.w / shares)
        # Tag with the round so identical shares from different rounds
        # cannot be confused; the tuple stays hashable for the engine.
        return (*self._share, round_no)

    def deliver(self, round_no: int, inbox: Inbox) -> None:
        self.x, self.w = self._share
        for x_share, w_share, _tag in inbox:
            self.x += x_share
            self.w += w_share

    @property
    def estimate(self) -> float:
        """Current size estimate ``x / w`` (``inf`` before any weight arrives)."""
        return self.x / self.w if self.w > 0 else float("inf")


def gossip_size_estimates(
    topology: TopologyProvider,
    n: int,
    rounds: int,
    *,
    leader: int = 0,
) -> list[float]:
    """Run push-sum for ``rounds`` rounds, returning the leader's estimates.

    Args:
        topology: The (typically fair/random) adversary.
        n: Number of nodes.
        rounds: How many rounds to run.
        leader: Index of the weight-carrying node.

    Returns:
        ``estimates[r]`` is the leader's ``x / w`` after round ``r``;
        under fair dynamics it converges to ``n``.
    """
    processes = [PushSumProcess(index == leader) for index in range(n)]
    estimates: list[float] = []

    class _Recorder:
        """Wrap the topology to snapshot the estimate after each round."""

        def graph(self, round_no, procs):
            if round_no > 0:
                estimates.append(processes[leader].estimate)
            return topology.graph(round_no, procs)

    engine = DegreeOracleEngine(
        processes,
        _Recorder(),
        leader=leader,
        config=EngineConfig(max_rounds=rounds, stop_when="budget"),
    )
    engine.run()
    estimates.append(processes[leader].estimate)
    return estimates
