"""Anonymous gossip size estimation (Kempe-style push-sum baseline).

Kempe, Dobra & Gehrke (FOCS 2003) compute aggregates on dynamic networks
with a *fair* adversary by exploiting conservation of mass.  Adapted to
size estimation in our broadcast model: every node starts with value
``x = 1``; the leader additionally holds weight ``w = 1`` (everyone else
``w = 0``).  Each round a node splits its ``(x, w)`` mass evenly over
itself and its current neighbours -- this requires knowing the degree
before sending, so the protocol runs under the degree oracle (Kempe's
point-to-point gossip implicitly knows its recipient count).  Masses are
conserved, and under fair dynamics every node's ratio ``x / w``
converges to ``Σx / Σw = |V|``.

The protocol never *terminates with certainty* -- it is an anonymous
estimator, not an exact counter, and the paper's lower bound explains
why exactness is unattainable quickly: against the worst-case adversary
no anonymous algorithm, gossip included, can pin ``|V|`` in ``o(log |V|)``
rounds.  The baseline benchmark records the estimation error per round
under fair adversaries.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.simulation.engine import (
    DegreeOracleEngine,
    EngineConfig,
    TopologyProvider,
)
from repro.simulation.fast import (
    FastEngine,
    FastLane,
    LaneLayout,
    VectorizedProtocol,
    resolve_backend,
)
from repro.simulation.messages import Inbox
from repro.simulation.node import Process

__all__ = [
    "PushSumProcess",
    "VectorizedPushSum",
    "gossip_size_estimates",
    "gossip_size_estimates_batch",
]


class PushSumProcess(Process):
    """One push-sum participant; the leader starts with weight 1."""

    def __init__(self, is_leader: bool) -> None:
        self.x = 1.0
        self.w = 1.0 if is_leader else 0.0
        self._degree = 0
        self._share: tuple[float, float] = (0.0, 0.0)

    def observe_degree(self, round_no: int, degree: int) -> None:
        self._degree = degree

    def compose(self, round_no: int) -> tuple[float, float, int]:
        shares = self._degree + 1
        self._share = (self.x / shares, self.w / shares)
        # Tag with the round so identical shares from different rounds
        # cannot be confused; the tuple stays hashable for the engine.
        return (*self._share, round_no)

    def deliver(self, round_no: int, inbox: Inbox) -> None:
        self.x, self.w = self._share
        for x_share, w_share, _tag in inbox:
            self.x += x_share
            self.w += w_share

    @property
    def estimate(self) -> float:
        """Current size estimate ``x / w`` (``inf`` before any weight arrives)."""
        return self.x / self.w if self.w > 0 else float("inf")


class VectorizedPushSum(VectorizedProtocol):
    """Push-sum on the fast backend: two matvecs per round, all lanes.

    The mass vectors ``x`` and ``w`` live on the stacked node axis; the
    per-round split over ``degree + 1`` shares reads the degree straight
    off the CSR adjacency (the vectorized form of the degree oracle --
    the oracle tells a node its round-``r`` degree before the send phase
    of ``r``, which is exactly the degree vector of the round's matrix).
    Leader estimates are recorded per lane after every round.

    The protocol never commits an output (it is an estimator); run it
    under ``stop_when="budget"``.  Estimates match the object protocol
    up to float summation order (the object engine adds inbox shares in
    multiset-iteration order, the matvec in CSR order).
    """

    def __init__(self) -> None:
        self.estimates: list[list[float]] = []

    def allocate(self, layouts: Sequence[LaneLayout]) -> None:
        self._layouts = list(layouts)
        total = layouts[-1].stop
        self.x = np.ones(total, dtype=np.float64)
        self.w = np.zeros(total, dtype=np.float64)
        for layout in layouts:
            self.w[layout.leader] = 1.0
        self.estimates = [[] for _ in layouts]

    def step(
        self, round_no: int, adjacency, active: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        shares = adjacency.degrees + 1.0
        x_share = self.x / shares
        w_share = self.w / shares
        self.x = x_share + adjacency.matvec(x_share)
        self.w = w_share + adjacency.matvec(w_share)
        for layout in self._layouts:
            weight = self.w[layout.leader]
            self.estimates[layout.index].append(
                float(self.x[layout.leader] / weight)
                if weight > 0
                else float("inf")
            )
        sending = np.ones(self.x.shape[0], dtype=bool)
        return sending, adjacency.degrees

    def output_mask(self) -> np.ndarray:
        return np.zeros(self.x.shape[0], dtype=bool)

    def outputs_for(self, layout: LaneLayout) -> dict[int, float]:
        return {}

    def subset(self, indices: Sequence[int]) -> "VectorizedPushSum":
        return VectorizedPushSum()

    def absorb(
        self, sub: "VectorizedPushSum", indices: Sequence[int]
    ) -> None:
        # Chunks arrive in ascending lane order, so extending keeps the
        # estimate curves aligned with their batch-level lane indices.
        for local, index in enumerate(indices):
            while len(self.estimates) <= index:
                self.estimates.append([])
            self.estimates[index] = sub.estimates[local]


def gossip_size_estimates(
    topology: TopologyProvider,
    n: int,
    rounds: int,
    *,
    leader: int = 0,
    backend: str = "object",
    max_lane_nodes: int | None = None,
) -> list[float]:
    """Run push-sum for ``rounds`` rounds, returning the leader's estimates.

    Args:
        topology: The (typically fair/random) adversary.
        n: Number of nodes.
        rounds: How many rounds to run.
        leader: Index of the weight-carrying node.
        backend: ``"object"`` or ``"fast"``; estimates agree up to float
            summation order.

    Returns:
        ``estimates[r]`` is the leader's ``x / w`` after round ``r``;
        under fair dynamics it converges to ``n``.
    """
    resolve_backend(backend)
    if backend == "fast":
        return gossip_size_estimates_batch(
            [(topology, n)],
            rounds,
            leader=leader,
            max_lane_nodes=max_lane_nodes,
        )[0]
    processes = [PushSumProcess(index == leader) for index in range(n)]
    estimates: list[float] = []

    class _Recorder:
        """Wrap the topology to snapshot the estimate after each round."""

        def graph(self, round_no, procs):
            if round_no > 0:
                estimates.append(processes[leader].estimate)
            return topology.graph(round_no, procs)

    engine = DegreeOracleEngine(
        processes,
        _Recorder(),
        leader=leader,
        config=EngineConfig(max_rounds=rounds, stop_when="budget"),
    )
    engine.run()
    estimates.append(processes[leader].estimate)
    return estimates


def gossip_size_estimates_batch(
    specs: Sequence[tuple[TopologyProvider, int]],
    rounds: int,
    *,
    leader: int = 0,
    max_lane_nodes: int | None = None,
) -> list[list[float]]:
    """Leader estimate curves for many push-sum runs, fused into one batch.

    Every ``(topology, n)`` spec becomes one lane; all lanes run exactly
    ``rounds`` rounds (``stop_when="budget"``), so a sweep over sizes or
    seeds advances with two matvecs per round total.  Equivalent to
    calling :func:`gossip_size_estimates` per spec with
    ``backend="fast"``.
    """
    if not specs:
        return []
    protocol = VectorizedPushSum()
    lanes = [FastLane(topology, n, leader=leader) for topology, n in specs]
    engine = FastEngine(
        protocol,
        lanes,
        config=EngineConfig(max_rounds=rounds, stop_when="budget"),
        max_lane_nodes=max_lane_nodes,
    )
    engine.run()
    return [list(curve) for curve in protocol.estimates]
