"""Common result type for counting algorithms.

Every counting algorithm in :mod:`repro.core.counting`, whatever model
it runs in, reports a :class:`CountingOutcome`: the count it produced,
the round at which the leader committed to it, and how many rounds were
executed in total.  Keeping one result shape lets the benchmark harness
sweep heterogeneous algorithms uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["CountingOutcome"]


@dataclass(frozen=True)
class CountingOutcome:
    """Result of one counting execution.

    Attributes:
        count: The size the leader output.
        output_round: Round index (0-based) at whose receive phase the
            leader committed to the count.
        rounds: Total rounds executed (``output_round + 1`` for
            algorithms that stop immediately on output).
        algorithm: Short name of the algorithm, for reports.
        detail: Free-form algorithm-specific extras (e.g. the interval
            width per round for the optimal counter).
    """

    count: int
    output_round: int
    rounds: int
    algorithm: str
    detail: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError("counts are non-negative")
        if self.rounds < self.output_round + 1:
            raise ValueError("rounds must cover the output round")
