"""Counting through a chain: the Corollary 1 protocol.

Corollary 1 composes the ``G(PD)_2`` core with a static chain of relay
nodes so that the network's dynamic diameter ``D`` can be made any
constant while the anonymity ambiguity of the core is preserved; the
counting cost becomes ``D + Ω(log |V|)``.

The protocol here is the natural optimal algorithm for that topology,
executed on the real engine:

* **outer nodes** (the anonymous core) broadcast their state history and
  extend it by reading which hubs' beacons they hear;
* **hubs** (the paper's ``v_1, v_2``; they carry identifiers, which is
  legitimate -- Lemma 1's lower bound holds even when the middle layer
  has IDs) broadcast a beacon, collect ``(hub, state)`` multisets from
  adjacent outer nodes, and emit each round's multiset as a token;
* **chain nodes** forward each newly heard token one hop per round
  (equivalent to flooding on a static path, with bounded traffic);
* the **leader** reassembles the per-round leader observations from the
  two hubs' tokens -- each arrives ``chain_length + 1`` rounds late --
  and runs the exact interval solver, outputting as soon as the feasible
  size is unique.

The measured termination round is ``rounds_to_count(n) + chain_length
+ 1``: exactly the bare core's optimal cost plus the relay delay.  The
``+ 1`` relative to the bare labeled model is the hub hop -- in
``M(DBL)_2`` the leader observes edge labels directly, here the hubs'
round-``t`` observation can only be broadcast at round ``t + 1``.
"""

from __future__ import annotations

from collections import Counter

from repro.core.counting.base import CountingOutcome
from repro.core.counting.optimal import count_mdbl2_abstract
from repro.core.solver import feasible_size_interval
from repro.core.states import ObservationSequence
from repro.networks.generators.chains import chain_pd2_network
from repro.networks.multigraph import DynamicMultigraph
from repro.simulation.engine import EngineConfig, SynchronousEngine
from repro.simulation.errors import TerminationError
from repro.simulation.fast import resolve_backend
from repro.simulation.messages import Inbox
from repro.simulation.node import Process

__all__ = [
    "ChainLeaderProcess",
    "ChainRelayProcess",
    "HubProcess",
    "ChainOuterProcess",
    "count_chain_pd2",
]

_HUB_BEACON = "hub"
_OBS = "obs"


def _encode_multiset(counter: Counter) -> tuple:
    """Canonical hashable encoding of a multiset of states."""
    return tuple(
        sorted(
            counter.items(),
            key=lambda item: (len(item[0]), repr(sorted(map(sorted, item[0])))),
        )
    )


class ChainOuterProcess(Process):
    """Anonymous core node: broadcast the state, learn hubs from beacons."""

    def __init__(self) -> None:
        self.state: tuple = ()

    def compose(self, round_no: int) -> tuple:
        return ("state", self.state)

    def deliver(self, round_no: int, inbox: Inbox) -> None:
        labels = frozenset(
            payload[1] for payload in inbox if payload[0] == _HUB_BEACON
        )
        self.state = self.state + (labels,)


class HubProcess(Process):
    """Hub ``v_j``: beacon to the core, emit each observation token once.

    A fresh observation token is broadcast exactly one round after it is
    formed; the static chain forwards each token one hop per round
    (:class:`ChainRelayProcess`), so the per-round traffic stays bounded
    instead of accumulating -- on a static path the delivery schedule is
    identical to full flooding.
    """

    def __init__(self, hub_id: int) -> None:
        self.hub_id = hub_id
        self._pending: tuple | None = None

    def compose(self, round_no: int) -> tuple:
        fresh = (
            frozenset({self._pending})
            if self._pending is not None
            else frozenset()
        )
        return (_HUB_BEACON, self.hub_id, fresh)

    def deliver(self, round_no: int, inbox: Inbox) -> None:
        states = Counter(
            payload[1] for payload in inbox if payload[0] == "state"
        )
        self._pending = (_OBS, round_no, self.hub_id, _encode_multiset(states))


class ChainRelayProcess(Process):
    """Static chain node: forward newly heard tokens one hop per round."""

    def __init__(self) -> None:
        self._seen: set[tuple] = set()
        self._fresh: set[tuple] = set()

    def compose(self, round_no: int) -> tuple:
        return (_HUB_BEACON, 0, frozenset(self._fresh))

    def deliver(self, round_no: int, inbox: Inbox) -> None:
        incoming: set[tuple] = set()
        for payload in inbox:
            if payload[0] == _HUB_BEACON:
                incoming |= payload[2]
        self._fresh = incoming - self._seen
        self._seen |= incoming


class ChainLeaderProcess(Process):
    """Reassemble delayed hub observations; solve; output when unique."""

    def __init__(self) -> None:
        self.observations = ObservationSequence(2)
        self._by_round: dict[int, dict[int, Counter]] = {}
        self._output = None
        self.output_round: int | None = None

    def compose(self, round_no: int) -> None:
        return None

    def deliver(self, round_no: int, inbox: Inbox) -> None:
        for payload in inbox:
            if payload[0] != _HUB_BEACON:
                continue
            for token in payload[2]:
                _kind, obs_round, hub_id, encoded = token
                per_round = self._by_round.setdefault(obs_round, {})
                per_round[hub_id] = Counter(dict(encoded))
        self._absorb_complete_rounds()
        if self._output is None and self.observations.rounds > 0:
            interval = feasible_size_interval(self.observations)
            if interval.is_unique:
                self._output = interval.lo
                self.output_round = round_no

    def _absorb_complete_rounds(self) -> None:
        while True:
            next_round = self.observations.rounds
            per_round = self._by_round.get(next_round)
            if per_round is None or set(per_round) != {1, 2}:
                return
            observation: Counter = Counter()
            for hub_id, states in per_round.items():
                for state, count in states.items():
                    observation[(hub_id, state)] += count
            self.observations.append(observation)


def count_chain_pd2(
    multigraph: DynamicMultigraph,
    chain_length: int,
    *,
    max_rounds: int = 256,
    backend: str = "object",
) -> CountingOutcome:
    """Count the core of a Corollary 1 network through the real engine.

    Args:
        multigraph: The ``M(DBL)_2`` schedule driving the core's
            dynamics (e.g. a worst-case adversary schedule).
        chain_length: Number of static relay nodes between the leader
            and the hubs.
        max_rounds: Engine round budget.
        backend: ``"object"`` drives every process through the engine;
            ``"fast"`` exploits the protocol's determinism -- on the
            static chain the leader's knowledge at round ``r`` is
            exactly the core's abstract observation prefix up to round
            ``r - chain_length - 1``, so the outcome is the abstract
            counter's (:func:`~repro.core.counting.optimal.count_mdbl2_abstract`)
            shifted by the relay delay.  Same outcome either way (the
            test suite differential-checks it); the message-level chain
            state (multisets of frozensets) has no array form, so this
            is the protocol's closed-form fast path rather than a
            :class:`~repro.simulation.fast.VectorizedProtocol`.

    Returns:
        The outcome; ``count`` is the number of anonymous core nodes
        (``|W|``), matching the other ``M(DBL)_2`` counters.
    """
    resolve_backend(backend)
    if backend == "fast":
        return _count_chain_pd2_fast(
            multigraph, chain_length, max_rounds=max_rounds
        )
    network, layout = chain_pd2_network(multigraph, chain_length)
    leader = ChainLeaderProcess()
    processes: list[Process] = [leader]
    processes.extend(ChainRelayProcess() for _ in layout.chain)
    processes.append(HubProcess(1))
    processes.append(HubProcess(2))
    processes.extend(ChainOuterProcess() for _ in layout.outer)
    engine = SynchronousEngine(
        processes,
        network,
        leader=0,
        config=EngineConfig(max_rounds=max_rounds),
    )
    result = engine.run()
    if result.leader_output is None:
        raise TerminationError("chain leader did not output")
    return CountingOutcome(
        count=result.leader_output,
        output_round=result.rounds - 1,
        rounds=result.rounds,
        algorithm="chain-pd2-optimal",
        detail={"chain_length": chain_length, "n_nodes": layout.n},
    )


def _count_chain_pd2_fast(
    multigraph: DynamicMultigraph,
    chain_length: int,
    *,
    max_rounds: int,
) -> CountingOutcome:
    """The chain counter's closed form: abstract core + relay delay.

    Every hub observation of round ``t`` reaches the leader at round
    ``t + chain_length + 1`` (one hub hop plus one hop per relay on the
    static chain), so the leader terminates exactly ``chain_length + 1``
    rounds after the bare core's optimal counter would.
    """
    delay = chain_length + 1
    if max_rounds <= delay:
        raise TerminationError("chain leader did not output")
    try:
        core = count_mdbl2_abstract(multigraph, max_rounds=max_rounds - delay)
    except TerminationError:
        raise TerminationError("chain leader did not output") from None
    _network, layout = chain_pd2_network(multigraph, chain_length)
    rounds = core.rounds + delay
    return CountingOutcome(
        count=core.count,
        output_round=rounds - 1,
        rounds=rounds,
        algorithm="chain-pd2-optimal",
        detail={"chain_length": chain_length, "n_nodes": layout.n},
    )
