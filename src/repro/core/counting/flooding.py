"""Protocol-level flooding: dissemination through the real engine.

Flooding is the primitive behind the dynamic diameter definition
(Section 3): "a node v floods message m by broadcasting it at each
round, each process receiving a flooded message m starts, in its turn, a
flooding of m".  This module runs that protocol through the actual
message-passing engine; the graph-level computation of the same quantity
lives in :func:`repro.networks.properties.flood_completion_time` and the
test suite checks they always agree.
"""

from __future__ import annotations

from repro.networks.dynamic_graph import DynamicGraph
from repro.simulation.engine import EngineConfig, SynchronousEngine
from repro.simulation.messages import Inbox
from repro.simulation.node import Process

__all__ = ["FloodProcess", "flood_time_via_protocol"]

_FLOOD = "flood"


class FloodProcess(Process):
    """Re-broadcast the flood token once informed; output on receipt."""

    def __init__(self, informed: bool = False) -> None:
        self.informed = informed
        self._output = True if informed else None

    def compose(self, round_no: int) -> str | None:
        return _FLOOD if self.informed else None

    def deliver(self, round_no: int, inbox: Inbox) -> None:
        if not self.informed and _FLOOD in inbox:
            self.informed = True
            self._output = True


def flood_time_via_protocol(
    network: DynamicGraph,
    source: int,
    *,
    max_rounds: int = 10_000,
) -> int:
    """Rounds for a flood from ``source`` to inform all nodes (engine run).

    Matches the semantics of
    :func:`repro.networks.properties.flood_completion_time` with
    ``start_round = 0``: the returned value is the number of executed
    rounds after which every process holds the token.
    """
    processes = [FloodProcess(index == source) for index in range(network.n)]
    engine = SynchronousEngine(
        processes,
        network,
        leader=None,
        config=EngineConfig(max_rounds=max_rounds, stop_when="all"),
    )
    return engine.run().rounds
