"""Protocol-level flooding: dissemination through the real engine.

Flooding is the primitive behind the dynamic diameter definition
(Section 3): "a node v floods message m by broadcasting it at each
round, each process receiving a flooded message m starts, in its turn, a
flooding of m".  This module runs that protocol through the actual
message-passing engine; the graph-level computation of the same quantity
lives in :func:`repro.networks.properties.flood_completion_time` and the
test suite checks they always agree.

Two execution paths compute the same quantity: the object engine (one
:class:`FloodProcess` per node) and :class:`VectorizedFlood`, where a
round is one sparse matvec over the informed-set indicator
(``backend="fast"``); :func:`flood_times_batch` stacks many independent
floods into a single fused execution.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.networks.dynamic_graph import DynamicGraph
from repro.simulation.engine import EngineConfig, SynchronousEngine
from repro.simulation.fast import (
    FastEngine,
    FastLane,
    LaneLayout,
    VectorizedProtocol,
    resolve_backend,
)
from repro.simulation.messages import Inbox
from repro.simulation.node import Process

__all__ = [
    "FloodProcess",
    "VectorizedFlood",
    "flood_time_via_protocol",
    "flood_times_batch",
]

_FLOOD = "flood"


class FloodProcess(Process):
    """Re-broadcast the flood token once informed; output on receipt."""

    def __init__(self, informed: bool = False) -> None:
        self.informed = informed
        self._output = True if informed else None

    def compose(self, round_no: int) -> str | None:
        return _FLOOD if self.informed else None

    def deliver(self, round_no: int, inbox: Inbox) -> None:
        if not self.informed and _FLOOD in inbox:
            self.informed = True
            self._output = True


class VectorizedFlood(VectorizedProtocol):
    """Flooding on the fast backend: one matvec per round for all lanes.

    State is the boolean informed-set indicator over the stacked node
    axis; a node becomes informed exactly when a neighbour was sending,
    i.e. when its delivery count is positive, so the traffic matvec
    doubles as the state update.

    Args:
        sources: Per-lane source node (lane-local index).
    """

    def __init__(self, sources: Sequence[int]) -> None:
        self._sources = [int(source) for source in sources]

    def allocate(self, layouts: Sequence[LaneLayout]) -> None:
        if len(self._sources) != len(layouts):
            raise ValueError("one source per lane required")
        total = layouts[-1].stop
        self.informed = np.zeros(total, dtype=bool)
        for layout, source in zip(layouts, self._sources):
            if not 0 <= source < layout.n:
                raise ValueError(
                    f"lane {layout.index}: source {source} out of range"
                )
            self.informed[layout.offset + source] = True

    def step(
        self, round_no: int, adjacency, active: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        sending = self.informed.copy()
        delivered = adjacency.matvec(sending.astype(np.float64)).astype(
            np.int64
        )
        self.informed |= delivered > 0
        return sending, delivered

    def output_mask(self) -> np.ndarray:
        return self.informed

    def informed_mask(self) -> np.ndarray:
        return self.informed

    def outputs_for(self, layout: LaneLayout) -> dict[int, bool]:
        return {
            index: True
            for index in range(layout.n)
            if self.informed[layout.offset + index]
        }

    def subset(self, indices: Sequence[int]) -> "VectorizedFlood":
        return VectorizedFlood([self._sources[i] for i in indices])


def flood_time_via_protocol(
    network: DynamicGraph,
    source: int,
    *,
    max_rounds: int = 10_000,
    backend: str = "object",
    max_lane_nodes: int | None = None,
) -> int:
    """Rounds for a flood from ``source`` to inform all nodes (engine run).

    Matches the semantics of
    :func:`repro.networks.properties.flood_completion_time` with
    ``start_round = 0``: the returned value is the number of executed
    rounds after which every process holds the token.

    Args:
        network: A 1-interval connected dynamic graph.
        source: The initially informed node.
        max_rounds: Engine round budget.
        backend: ``"object"`` or ``"fast"``; both count the same rounds.
        max_lane_nodes: Fast-backend streaming budget (see
            :class:`~repro.simulation.fast.FastEngine`).
    """
    resolve_backend(backend)
    if backend == "fast":
        return flood_times_batch(
            [(network, source)],
            max_rounds=max_rounds,
            max_lane_nodes=max_lane_nodes,
        )[0]
    processes = [FloodProcess(index == source) for index in range(network.n)]
    engine = SynchronousEngine(
        processes,
        network,
        leader=None,
        config=EngineConfig(max_rounds=max_rounds, stop_when="all"),
    )
    return engine.run().rounds


def flood_times_batch(
    jobs: Sequence[tuple[DynamicGraph, int]],
    *,
    max_rounds: int = 10_000,
    max_lane_nodes: int | None = None,
) -> list[int]:
    """Flood completion times for many independent networks at once.

    Every ``(network, source)`` job becomes one lane of a single fused
    fast-backend execution; lanes that finish early stop advancing while
    the rest of the batch keeps stepping.  Equivalent to calling
    :func:`flood_time_via_protocol` per job, at batch speed.
    """
    if not jobs:
        return []
    lanes = [
        FastLane(network, network.n, leader=None) for network, _ in jobs
    ]
    engine = FastEngine(
        VectorizedFlood([source for _, source in jobs]),
        lanes,
        config=EngineConfig(max_rounds=max_rounds, stop_when="all"),
        max_lane_nodes=max_lane_nodes,
    )
    return [result.rounds for result in engine.run()]
