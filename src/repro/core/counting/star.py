"""One-round counting in ``G(PD)_1`` star networks.

Graphs in ``G(PD)_1`` are stars with the leader at the centre at every
round; "the leader is able to output the exact count in one round
independently of the anonymity of the processes" (Section 1): every
non-leader node broadcasts anything, the leader's round-0 inbox size is
exactly ``|V| - 1``.

Two execution paths produce the same outcome: the object engine drives
one :class:`~repro.simulation.node.Process` per node (the semantics
oracle), while :class:`VectorizedStar` runs the round as a single sparse
matvec on the fast backend (``backend="fast"``).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.counting.base import CountingOutcome
from repro.networks.dynamic_graph import DynamicGraph
from repro.networks.generators.stars import star_network
from repro.simulation.engine import EngineConfig, SynchronousEngine
from repro.simulation.fast import (
    FastEngine,
    FastLane,
    LaneLayout,
    VectorizedProtocol,
    resolve_backend,
)
from repro.simulation.messages import Inbox
from repro.simulation.node import Process

__all__ = [
    "StarLeaderProcess",
    "StarMemberProcess",
    "VectorizedStar",
    "make_star_processes",
    "count_star",
]

_PING = "ping"


class StarLeaderProcess(Process):
    """Leader at the star's centre: count the round-0 inbox."""

    def __init__(self) -> None:
        self._output = None

    def compose(self, round_no: int) -> None:
        return None

    def deliver(self, round_no: int, inbox: Inbox) -> None:
        if self._output is None:
            self._output = len(inbox) + 1


class StarMemberProcess(Process):
    """Anonymous spoke node: broadcast one ping."""

    def compose(self, round_no: int) -> str:
        return _PING

    def deliver(self, round_no: int, inbox: Inbox) -> None:
        pass


class VectorizedStar(VectorizedProtocol):
    """The star protocol on the fast backend.

    Every non-leader broadcasts, so the leader's round-0 delivery count
    is its degree -- one matvec computes it for every lane of the batch
    at once.  Only leaders ever output (stop with ``stop_when="leader"``),
    matching the object protocol.
    """

    def allocate(self, layouts: Sequence[LaneLayout]) -> None:
        total = layouts[-1].stop
        self._is_leader = np.zeros(total, dtype=bool)
        for layout in layouts:
            self._is_leader[layout.leader] = True
        self._counts = np.zeros(total, dtype=np.int64)
        self._mask = np.zeros(total, dtype=bool)

    def step(
        self, round_no: int, adjacency, active: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        sending = ~self._is_leader
        delivered = adjacency.matvec(sending.astype(np.float64)).astype(
            np.int64
        )
        if round_no == 0:
            leaders = self._is_leader
            self._counts[leaders] = delivered[leaders] + 1
            self._mask |= leaders
        return sending, delivered

    def output_mask(self) -> np.ndarray:
        return self._mask

    def outputs_for(self, layout: LaneLayout) -> dict[int, int]:
        if not self._mask[layout.leader]:
            return {}
        return {
            layout.leader - layout.offset: int(self._counts[layout.leader])
        }

    def subset(self, indices: Sequence[int]) -> "VectorizedStar":
        return VectorizedStar()


def make_star_processes(n: int, *, leader: int = 0) -> tuple[list[Process], int]:
    """Build the ``n`` processes of the star protocol.

    Returns ``(processes, leader_index)``, ready to hand to
    :class:`repro.simulation.SynchronousEngine`.
    """
    if n < 2:
        raise ValueError("a star needs at least 2 nodes")
    processes: list[Process] = [
        StarLeaderProcess() if index == leader else StarMemberProcess()
        for index in range(n)
    ]
    return processes, leader


def count_star(
    n: int,
    *,
    network: DynamicGraph | None = None,
    leader: int = 0,
    backend: str = "object",
) -> CountingOutcome:
    """Count a ``G(PD)_1`` network of ``n`` nodes (1 round, exact).

    Args:
        n: Number of nodes.
        network: The star dynamic graph; generated if omitted (any
            ``G(PD)_1`` graph *is* the star, so there is no other shape
            to pass).
        leader: The centre node's index.
        backend: ``"object"`` for the per-process engine, ``"fast"`` for
            the vectorized backend; both produce the same outcome.
    """
    resolve_backend(backend)
    if network is None:
        network = star_network(n, leader=leader)
    config = EngineConfig(max_rounds=4)
    if backend == "fast":
        if n < 2:
            raise ValueError("a star needs at least 2 nodes")
        engine = FastEngine(
            VectorizedStar(),
            [FastLane(network, n, leader=leader)],
            config=config,
        )
        result = engine.run()[0]
    else:
        processes, leader_index = make_star_processes(n, leader=leader)
        result = SynchronousEngine(
            processes, network, leader=leader_index, config=config
        ).run()
    return CountingOutcome(
        count=result.leader_output,
        output_round=result.rounds - 1,
        rounds=result.rounds,
        algorithm="star-one-round",
    )
