"""One-round counting in ``G(PD)_1`` star networks.

Graphs in ``G(PD)_1`` are stars with the leader at the centre at every
round; "the leader is able to output the exact count in one round
independently of the anonymity of the processes" (Section 1): every
non-leader node broadcasts anything, the leader's round-0 inbox size is
exactly ``|V| - 1``.
"""

from __future__ import annotations

from repro.core.counting.base import CountingOutcome
from repro.networks.dynamic_graph import DynamicGraph
from repro.networks.generators.stars import star_network
from repro.simulation.engine import EngineConfig, SynchronousEngine
from repro.simulation.messages import Inbox
from repro.simulation.node import Process

__all__ = ["StarLeaderProcess", "StarMemberProcess", "make_star_processes", "count_star"]

_PING = "ping"


class StarLeaderProcess(Process):
    """Leader at the star's centre: count the round-0 inbox."""

    def __init__(self) -> None:
        self._output = None

    def compose(self, round_no: int) -> None:
        return None

    def deliver(self, round_no: int, inbox: Inbox) -> None:
        if self._output is None:
            self._output = len(inbox) + 1


class StarMemberProcess(Process):
    """Anonymous spoke node: broadcast one ping."""

    def compose(self, round_no: int) -> str:
        return _PING

    def deliver(self, round_no: int, inbox: Inbox) -> None:
        pass


def make_star_processes(n: int, *, leader: int = 0) -> tuple[list[Process], int]:
    """Build the ``n`` processes of the star protocol.

    Returns ``(processes, leader_index)``, ready to hand to
    :class:`repro.simulation.SynchronousEngine`.
    """
    if n < 2:
        raise ValueError("a star needs at least 2 nodes")
    processes: list[Process] = [
        StarLeaderProcess() if index == leader else StarMemberProcess()
        for index in range(n)
    ]
    return processes, leader


def count_star(
    n: int, *, network: DynamicGraph | None = None, leader: int = 0
) -> CountingOutcome:
    """Count a ``G(PD)_1`` network of ``n`` nodes (1 round, exact).

    Args:
        n: Number of nodes.
        network: The star dynamic graph; generated if omitted (any
            ``G(PD)_1`` graph *is* the star, so there is no other shape
            to pass).
        leader: The centre node's index.
    """
    if network is None:
        network = star_network(n, leader=leader)
    processes, leader_index = make_star_processes(n, leader=leader)
    engine = SynchronousEngine(
        processes,
        network,
        leader=leader_index,
        config=EngineConfig(max_rounds=4),
    )
    result = engine.run()
    return CountingOutcome(
        count=result.leader_output,
        output_round=result.rounds - 1,
        rounds=result.rounds,
        algorithm="star-one-round",
    )
