"""Closed-form round bounds: Lemma 5, Theorems 1-2, Corollary 1.

Round-numbering convention used throughout the library: after executing
rounds ``0..r`` the leader has observed rounds ``0..r`` -- the situation
the paper's system ``m_r = M_r s_r`` describes.  "Ambiguous at round
``r``" means at least two feasible sizes exist given those observations.

The twin construction of Lemma 5 keeps sizes ``n`` and ``n + 1``
indistinguishable at round ``r`` whenever the kernel's negative mass
fits inside the configuration, ``Σ⁻ k_r = (3^{r+1} - 1)/2 <= n``.  The
largest such ``r`` is :func:`ambiguity_horizon`; the earliest round at
which *any* algorithm can output is therefore
:func:`min_output_round` = horizon + 1, and the minimum number of
executed rounds is :func:`rounds_to_count` = horizon + 2.  All three
grow as ``log_3(2n + 1)`` -- the ``Ω(log |V|)`` of Theorem 2.
"""

from __future__ import annotations

__all__ = [
    "ilog3",
    "min_sum_negative",
    "ambiguity_horizon",
    "theorem1_bound",
    "min_output_round",
    "rounds_to_count",
    "corollary1_bound",
]


def ilog3(x: int) -> int:
    """``⌊log_3 x⌋`` by exact integer arithmetic (``x >= 1``)."""
    if x < 1:
        raise ValueError("ilog3 requires x >= 1")
    power, exponent = 1, 0
    while power * 3 <= x:
        power *= 3
        exponent += 1
    return exponent


def min_sum_negative(r: int) -> int:
    """Minimum network size at which round ``r`` can still be ambiguous.

    Equals ``Σ⁻ k_r = (3^{r+1} - 1)/2`` (Lemma 4): the twin construction
    needs one node on every negative kernel component.
    """
    if r < 0:
        raise ValueError("rounds are numbered from 0")
    return (3 ** (r + 1) - 1) // 2


def ambiguity_horizon(n: int) -> int:
    """The last round at which a size-``n`` ``M(DBL)_2`` can be ambiguous.

    The largest ``r`` with ``(3^{r+1} - 1)/2 <= n``, i.e.
    ``⌊log_3(2n + 1)⌋ - 1``.  Defined for ``n >= 1`` (round 0 is always
    ambiguous: ``Σ⁻ k_0 = 1``).
    """
    if n < 1:
        raise ValueError("the network has at least one non-leader node")
    return ilog3(2 * n + 1) - 1


def theorem1_bound(n: int) -> int:
    """Theorem 1's bound: no algorithm outputs at a round ``< this``.

    The paper states the threshold as ``⌊log_3(2|W| + 1)⌋ - 1``; with
    our round convention that equals :func:`ambiguity_horizon` -- both
    formulas are kept so experiments can report them side by side.
    """
    return ilog3(2 * n + 1) - 1


def min_output_round(n: int) -> int:
    """Earliest round index at which a correct output is possible.

    One past the ambiguity horizon: observations through round
    ``ambiguity_horizon(n)`` still admit two sizes, so the first
    possibly-correct output happens at the next round.
    """
    return ambiguity_horizon(n) + 1


def rounds_to_count(n: int) -> int:
    """Minimum number of executed rounds before the leader can output.

    Rounds ``0..min_output_round(n)`` inclusive, i.e.
    ``ambiguity_horizon(n) + 2`` -- the quantity the optimal algorithm
    of :mod:`repro.core.counting.optimal` achieves exactly against the
    worst-case adversary.
    """
    return min_output_round(n) + 1


def corollary1_bound(n: int, chain_length: int) -> int:
    """Corollary 1's additive shape for the chain-plus-core gadget.

    For :func:`repro.networks.generators.chains.chain_pd2_network` with
    ``chain_length`` static chain nodes and ``n`` anonymous core nodes,
    the core's round-``t`` hub observations reach the leader only at
    round ``t + chain_length + 1`` (one hop per chain link plus the
    hub hop), after which the leader still faces the bare core's
    ambiguity.  Executed rounds:
    ``rounds_to_count(n) + chain_length + 1``, which
    :func:`repro.core.counting.chain.count_chain_pd2` achieves exactly.
    Since the network's dynamic diameter ``D`` grows linearly with
    ``chain_length``, this is the paper's ``D + Ω(log |V|)`` shape.
    """
    if chain_length < 0:
        raise ValueError("chain_length must be non-negative")
    return rounds_to_count(n) + chain_length + 1
