"""Lower-bound machinery: matrices, kernels, twin configurations, bounds.

This package makes Section 4.2 of the paper executable:

* :mod:`repro.core.lowerbound.matrices` -- the explicit coefficient
  matrices ``M_r`` with the paper's lexicographic ordering (equations (2)
  and (5)).
* :mod:`repro.core.lowerbound.kernel` -- kernel vectors ``k_r``: the
  closed-form recursion of Lemma 3, the sum identities of Lemma 4, and
  exact rank verification of Lemma 2.
* :mod:`repro.core.lowerbound.pairs` -- indistinguishable twin
  configurations (Lemma 5, Figures 3 and 4) as runnable
  :class:`repro.networks.DynamicMultigraph` instances.
* :mod:`repro.core.lowerbound.bounds` -- the closed-form round bounds of
  Theorem 1 / Theorem 2 / Corollary 1.
* :mod:`repro.core.lowerbound.sparse` -- the scale backend: ``M_r`` in
  CSR form built straight from the trail structure, with exact sparse
  kernel and rank certificates up to ``MAX_SPARSE_ROUND`` (far past the
  dense cap).
"""

from repro.core.lowerbound.bounds import (
    ambiguity_horizon,
    corollary1_bound,
    ilog3,
    min_output_round,
    min_sum_negative,
    rounds_to_count,
    theorem1_bound,
)
from repro.core.lowerbound.kernel import (
    closed_form_kernel,
    kernel_component,
    modular_rank,
    nullspace_dimension,
    sum_negative,
    sum_positive,
)
from repro.core.lowerbound.matrices import (
    build_matrix,
    configuration_vector,
    n_columns,
    n_rows,
    observation_vector,
    row_connections,
)
from repro.core.lowerbound.pairs import (
    paper_figure3_pair,
    paper_figure4_pair,
    twin_configurations,
    twin_multigraphs,
)
from repro.core.lowerbound.sparse import (
    MAX_SPARSE_ROUND,
    build_sparse_matrix,
    sparse_nullspace_dimension,
    sparse_rank,
    verify_in_kernel_sparse,
)

__all__ = [
    "MAX_SPARSE_ROUND",
    "ambiguity_horizon",
    "build_matrix",
    "build_sparse_matrix",
    "closed_form_kernel",
    "configuration_vector",
    "corollary1_bound",
    "ilog3",
    "kernel_component",
    "min_output_round",
    "min_sum_negative",
    "modular_rank",
    "n_columns",
    "n_rows",
    "nullspace_dimension",
    "observation_vector",
    "paper_figure3_pair",
    "paper_figure4_pair",
    "row_connections",
    "rounds_to_count",
    "sparse_nullspace_dimension",
    "sparse_rank",
    "sum_negative",
    "sum_positive",
    "theorem1_bound",
    "twin_configurations",
    "twin_multigraphs",
    "verify_in_kernel_sparse",
]
