"""The leader's linear system for general ``k``: ``M(DBL)_k`` beyond k=2.

The paper carries out the dense analysis for ``k = 2`` and lifts the
bound to every ``k`` through the inclusion
``M(DBL)_2 ⊆ M(DBL)_k`` (Theorem 1).  This module builds the general-k
system so the structure behind that lifting can be inspected and the
paper's open edges explored:

* :func:`general_matrix` -- the coefficient matrix ``M_r^{(k)}`` (one
  column per history over the ``2^k - 1`` label sets, one row per
  ``(label, state)`` connection);
* :func:`general_nullity` -- its kernel dimension, certified by exact
  modular rank.  For ``k = 2`` this is the paper's Lemma 2 (dimension
  1); for ``k >= 3`` the kernel is *much* larger --
  ``(2^k - 1)^{r+1} - k·((2^k - 1)^{r+1} - 1)/(2^k - 2)`` -- so more
  labels give the adversary more directions to hide along;
* :func:`product_kernel_vector` -- the closed-form kernel direction
  ``v_h = Π_i (-1)^{|h[i]| + 1}`` generalising Lemma 3 (the inclusion-
  exclusion signs make every row sum vanish);
* :func:`embedded_k2_kernel` -- the paper's ``k_r`` embedded into the
  general-k column space (the inclusion argument, made concrete);
* :func:`min_negative_mass` -- an exact integer program for the
  *cheapest* size-shifting kernel direction: the minimum negative mass
  over integer kernel vectors with ``Σ v = 1``.  This is the quantity
  that controls the ambiguity horizon (Lemma 5 uses
  ``Σ⁻ k_r = (3^{r+1}-1)/2`` for k = 2); computing it for ``k >= 3``
  answers whether extra labels let the adversary stay ambiguous longer
  (empirically: no -- the optimum matches the embedded k=2 direction;
  see the ``tab-general-k`` experiment).
"""

from __future__ import annotations

import numpy as np

from repro.core.lowerbound.kernel import modular_rank
from repro.core.states import all_histories, all_label_sets, history_index, n_label_sets

__all__ = [
    "general_n_columns",
    "general_n_rows",
    "general_matrix",
    "general_nullity",
    "general_nullity_closed_form",
    "product_kernel_vector",
    "embedded_k2_kernel",
    "min_negative_mass",
]

MAX_GENERAL_CELLS = 3_000_000
"""Safety cap on dense ``rows * columns`` for general-k matrices."""


def general_n_columns(k: int, r: int) -> int:
    """Columns of ``M_r^{(k)}``: ``(2^k - 1)^{r+1}`` histories."""
    _check(k, r)
    return n_label_sets(k) ** (r + 1)


def general_n_rows(k: int, r: int) -> int:
    """Rows of ``M_r^{(k)}``: ``k · Σ_{i<=r} (2^k - 1)^i`` connections."""
    _check(k, r)
    return k * sum(n_label_sets(k) ** i for i in range(r + 1))


def _check(k: int, r: int) -> None:
    if k < 1:
        raise ValueError("k must be at least 1")
    if r < 0:
        raise ValueError("rounds are numbered from 0")


def general_matrix(k: int, r: int, *, dtype=np.int64) -> np.ndarray:
    """Materialise ``M_r^{(k)}`` densely.

    Row order mirrors the k=2 construction: rounds ascending, labels
    ascending within a round, prefixes lexicographic within a label.
    ``general_matrix(2, r)`` equals
    :func:`repro.core.lowerbound.matrices.build_matrix` exactly.
    """
    _check(k, r)
    rows, cols = general_n_rows(k, r), general_n_columns(k, r)
    if rows * cols > MAX_GENERAL_CELLS:
        raise ValueError(
            f"M_{r}^({k}) would have {rows}x{cols} entries; "
            f"cap is {MAX_GENERAL_CELLS}"
        )
    matrix = np.zeros((rows, cols), dtype=dtype)
    base = n_label_sets(k)
    row_offset = 0
    for round_no in range(r + 1):
        block = base**round_no
        for column, history in enumerate(all_histories(k, r + 1)):
            prefix_rank = history_index(history[:round_no], k)
            for label in history[round_no]:
                row = row_offset + (label - 1) * block + prefix_rank
                matrix[row, column] = 1
        row_offset += k * block
    return matrix


def general_nullity(k: int, r: int) -> int:
    """Kernel dimension of ``M_r^{(k)}``, certified exactly.

    Uses the modular full-row-rank certificate of
    :func:`repro.core.lowerbound.kernel.modular_rank`: the general
    matrix also has full row rank (checked, not assumed), so the
    nullity is ``columns - rows``.
    """
    matrix = general_matrix(k, r)
    rank = modular_rank(matrix)
    return matrix.shape[1] - rank


def general_nullity_closed_form(k: int, r: int) -> int:
    """``columns - rows``, the nullity under full row rank."""
    return general_n_columns(k, r) - general_n_rows(k, r)


def product_kernel_vector(k: int, r: int) -> np.ndarray:
    """The inclusion-exclusion kernel direction for general ``k``.

    Component at history ``h``: ``Π_i (-1)^(|h[i]| + 1)``.  Each row of
    ``M_r^{(k)}`` sums, over the free rounds, the per-round factor
    ``Σ_S (-1)^(|S|+1) = 1`` and, over the pinned round, the factor
    ``Σ_{S ∋ j} (-1)^(|S|+1) = 0`` -- so the product vector is always in
    the kernel, and its total is ``1^(r+1) = 1``: it shifts the network
    size by exactly one, like the paper's ``k_r`` (which it equals for
    ``k = 2``).
    """
    _check(k, r)
    signs = {
        labels: (-1) ** (len(labels) + 1) for labels in all_label_sets(k)
    }
    vector = np.empty(general_n_columns(k, r), dtype=np.int64)
    for index, history in enumerate(all_histories(k, r + 1)):
        component = 1
        for labels in history:
            component *= signs[labels]
        vector[index] = component
    return vector


def embedded_k2_kernel(k: int, r: int) -> np.ndarray:
    """The paper's ``k_r`` embedded into the general-k column space.

    Histories using only the label sets ``{1}``, ``{2}`` and ``{1, 2}``
    carry the k=2 kernel component; all other histories carry 0.  This
    is the concrete form of the inclusion ``M(DBL)_2 ⊆ M(DBL)_k`` that
    Theorem 1 uses, and it certifies that the general-k system inherits
    (at least) the k=2 ambiguity: its negative mass is
    ``(3^{r+1} - 1)/2`` regardless of ``k``.
    """
    _check(k, r)
    allowed = {frozenset({1}), frozenset({2}), frozenset({1, 2})}
    full = frozenset({1, 2})
    vector = np.zeros(general_n_columns(k, r), dtype=np.int64)
    for index, history in enumerate(all_histories(k, r + 1)):
        if all(labels in allowed for labels in history):
            flips = sum(1 for labels in history if labels == full)
            vector[index] = -1 if flips % 2 else 1
    return vector


def min_negative_mass(k: int, r: int, *, bound: int = 3) -> int:
    """Exact minimum negative mass of a unit size-shifting kernel vector.

    Solves, by integer programming (``scipy.optimize.milp``):

        minimise   Σ q
        subject to M_r^{(k)} (p - q) = 0,  Σ (p - q) = 1,
                   0 <= p, q <= bound,  p, q integer

    where ``v = p - q`` splits the kernel vector into positive and
    negative parts.  The optimum is the smallest network size at which
    sizes ``n`` and ``n + 1`` can be confused at round ``r`` by *some*
    kernel direction -- the general-k analogue of Lemma 4's
    ``Σ⁻ k_r``.  For ``k = 2`` the answer is ``(3^{r+1} - 1)/2``; for
    larger ``k`` the experiment shows the same value, i.e. extra labels
    do not extend the ambiguity horizon.

    Args:
        bound: Per-component magnitude cap (kept small; the optimum is
            attained by ±1 vectors in every case observed).
    """
    from scipy.optimize import LinearConstraint, milp

    _check(k, r)
    matrix = general_matrix(k, r).astype(float)
    rows, cols = matrix.shape

    # Variables: [p (cols), q (cols)]; v = p - q.
    objective = np.concatenate([np.zeros(cols), np.ones(cols)])
    kernel_block = np.hstack([matrix, -matrix])
    total_row = np.concatenate([np.ones(cols), -np.ones(cols)])
    constraints = [
        LinearConstraint(kernel_block, np.zeros(rows), np.zeros(rows)),
        LinearConstraint(total_row[None, :], [1.0], [1.0]),
    ]
    result = milp(
        objective,
        constraints=constraints,
        integrality=np.ones(2 * cols),
        bounds=(0, bound),
    )
    if not result.success:
        raise RuntimeError(f"MILP failed for k={k}, r={r}: {result.message}")
    return int(round(result.fun))
