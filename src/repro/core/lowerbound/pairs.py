"""Indistinguishable twin configurations (Lemma 5, Figures 3 and 4).

The lower-bound argument is existential: *there are* two ``M(DBL)_2``
executions of sizes ``n`` and ``n + 1`` whose leader states coincide
through round ``r`` whenever ``Σ⁻ k_r <= n``.  This module makes the
argument constructive and runnable:

* :func:`twin_configurations` builds the solution vectors ``s`` (one
  node on every negative kernel component, spare mass spread over them)
  and ``s' = s + k_r`` (every positive component gains one node, every
  negative one loses one) as history multisets.
* :func:`twin_multigraphs` turns them into live
  :class:`repro.networks.DynamicMultigraph` instances whose leader
  observations compare equal through round ``r`` -- the test suite and
  ``benchmarks/bench_lower_bound.py`` verify this through the actual
  labeled message-passing engine as well.
* :func:`paper_figure3_pair` and :func:`paper_figure4_pair` are the two
  concrete worked examples drawn in the paper.
"""

from __future__ import annotations

from collections import Counter

from repro.core.lowerbound.bounds import min_sum_negative
from repro.core.lowerbound.kernel import kernel_component
from repro.core.states import all_histories, history_from_index
from repro.networks.multigraph import DynamicMultigraph

__all__ = [
    "twin_configurations",
    "twin_multigraphs",
    "paper_figure3_pair",
    "paper_figure4_pair",
]


def twin_configurations(r: int, n: int) -> tuple[Counter, Counter]:
    """Build twin history multisets of sizes ``n`` and ``n + 1``.

    Following the proof of Lemma 5: the base configuration ``s`` places
    one node on every history with a negative kernel component (there
    are ``Σ⁻ k_r = (3^{r+1}-1)/2`` of them) and distributes the spare
    ``n - Σ⁻ k_r`` nodes over those same histories; the twin is
    ``s' = s + k_r``, one node larger because ``Σ k_r = 1`` (Lemma 4).

    Args:
        r: The round through which the twins must be indistinguishable.
        n: Size of the smaller twin; must satisfy ``n >= Σ⁻ k_r``.

    Returns:
        ``(smaller, larger)`` -- Counters over histories of length
        ``r + 1`` with totals ``n`` and ``n + 1``.

    Raises:
        ValueError: ``n`` is too small for ambiguity at round ``r``
            (Lemma 5's precondition fails).
    """
    needed = min_sum_negative(r)
    if n < needed:
        raise ValueError(
            f"ambiguity at round {r} needs n >= Σ⁻ k_{r} = {needed}, got {n}"
        )
    smaller: Counter = Counter()
    larger: Counter = Counter()
    spare = n - needed
    for history in all_histories(2, r + 1):
        component = kernel_component(history)
        if component < 0:
            count = 1
            if spare > 0:
                count += spare
                spare = 0
            smaller[history] = count
            if count > 1:
                larger[history] = count - 1
        else:
            larger[history] = 1
    assert sum(smaller.values()) == n
    assert sum(larger.values()) == n + 1
    return smaller, larger


def twin_multigraphs(
    r: int, n: int, *, extend: str = "full"
) -> tuple[DynamicMultigraph, DynamicMultigraph]:
    """Lemma 5's twins as runnable ``M(DBL)_2`` instances.

    The instances' leader observations compare equal for every round
    ``<= r`` and (with the default ``extend='full'`` continuation)
    become distinguishable at round ``r + 1``, where the kernel of
    ``M_{r+1}`` no longer fits inside either configuration.
    """
    smaller, larger = twin_configurations(r, n)
    return (
        DynamicMultigraph.from_solution(
            2, smaller, extend=extend, name=f"twin-n{n}-r{r}"
        ),
        DynamicMultigraph.from_solution(
            2, larger, extend=extend, name=f"twin-n{n + 1}-r{r}"
        ),
    )


def paper_figure3_pair() -> tuple[DynamicMultigraph, DynamicMultigraph]:
    """The Figure 3 example: sizes 2 and 4, identical at round 0.

    The paper's system (3) has ``m_0 = [2, 2]ᵀ``; the drawn solutions are
    ``s_0 = [0, 0, 2]ᵀ`` (two nodes on ``{1,2}``) and
    ``s'_0 = s_0 + 2·k_0 = [2, 2, 0]ᵀ`` -- a *double* kernel step, so the
    sizes differ by 2.
    """
    one, two, both = frozenset({1}), frozenset({2}), frozenset({1, 2})
    smaller = Counter({(both,): 2})
    larger = Counter({(one,): 2, (two,): 2})
    return (
        DynamicMultigraph.from_solution(2, smaller, name="figure3-M"),
        DynamicMultigraph.from_solution(2, larger, name="figure3-M'"),
    )


def paper_figure4_pair() -> tuple[DynamicMultigraph, DynamicMultigraph]:
    """The Figure 4 example: sizes 4 and 5, identical through round 1.

    The paper gives ``s_1 = [0,0,1,0,0,1,1,1,0]ᵀ`` (n = 4) and
    ``s'_1 = s_1 + k_1 = [1,1,0,1,1,0,0,0,1]ᵀ`` (n = 5) in the
    lexicographic column order of ``M_1``.
    """
    s1 = [0, 0, 1, 0, 0, 1, 1, 1, 0]
    s1_prime = [1, 1, 0, 1, 1, 0, 0, 0, 1]
    smaller = Counter(
        {
            history_from_index(index, 2, 2): count
            for index, count in enumerate(s1)
            if count
        }
    )
    larger = Counter(
        {
            history_from_index(index, 2, 2): count
            for index, count in enumerate(s1_prime)
            if count
        }
    )
    return (
        DynamicMultigraph.from_solution(2, smaller, name="figure4-M"),
        DynamicMultigraph.from_solution(2, larger, name="figure4-M'"),
    )
