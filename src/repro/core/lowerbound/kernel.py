"""Kernel vectors of ``M_r``: Lemmas 2, 3 and 4 in executable form.

Lemma 3 gives the kernel of ``M_r`` in closed form through the recursion
``k_r = [k_{r-1}, k_{r-1}, -k_{r-1}]`` with ``k_{-1} = 1``.  Unrolled,
the component of ``k_r`` at a history ``h`` is

    ``(k_r)_h = (-1)^(number of rounds i with h[i] = {1, 2})``

because each ``{1,2}`` digit selects the negated block.  From this the
Lemma 4 identities follow: ``Σ k_r = 1`` and
``Σ⁻ k_r = (3^{r+1} - 1) / 2``.

Lemma 2 (the kernel is exactly one-dimensional) is verified here in two
exact steps:

1. ``M_r · k_r = 0`` by exact integer arithmetic, so the nullity is at
   least 1 (:func:`verify_in_kernel`).
2. ``rank(M_r) = #rows`` over a prime field (:func:`modular_rank`).
   A full *modular* row rank lower-bounds the rational rank, so this
   certifies full row rank exactly -- no floating point anywhere -- and
   with rank-nullity the nullity is exactly
   ``3^{r+1} - (3^{r+1} - 1) = 1``.
"""

from __future__ import annotations

import numpy as np

from repro.core.lowerbound.matrices import build_matrix, n_columns

__all__ = [
    "kernel_component",
    "closed_form_kernel",
    "recursive_kernel",
    "sum_positive",
    "sum_negative",
    "verify_in_kernel",
    "modular_rank",
    "nullspace_dimension",
]

_FULL = frozenset({1, 2})
_DEFAULT_PRIME = 2_147_483_647  # 2**31 - 1, Mersenne prime


def kernel_component(history: tuple) -> int:
    """The component of ``k_r`` at a history (closed form of Lemma 3).

    ``+1`` if the history contains an even number of ``{1,2}`` label
    sets, ``-1`` otherwise.
    """
    flips = sum(1 for labels in history if labels == _FULL)
    return -1 if flips % 2 else 1


def closed_form_kernel(r: int) -> np.ndarray:
    """The kernel vector ``k_r`` in the canonical column order of ``M_r``.

    Vectorised: the column index written in base 3 *is* the history
    (digit 2 = the label set ``{1,2}``), so the sign is ``(-1)`` to the
    number of 2-digits -- computed for all ``3^{r+1}`` columns at once,
    which keeps kernel construction cheap at the sparse backend's
    horizon.  Agreement with :func:`kernel_component` and
    :func:`recursive_kernel` is property-tested.
    """
    if r < 0:
        raise ValueError("rounds are numbered from 0")
    indices = np.arange(n_columns(r), dtype=np.int64)
    flips = np.zeros_like(indices)
    for _ in range(r + 1):
        flips += indices % 3 == 2
        indices //= 3
    return 1 - 2 * (flips & 1)


def recursive_kernel(r: int) -> np.ndarray:
    """``k_r`` built literally by the Lemma 3 recursion.

    ``k_r = [k_{r-1}, k_{r-1}, -k_{r-1}]`` with ``k_{-1} = [1]``.  Kept
    separate from :func:`closed_form_kernel` so the test suite can check
    that the recursion and the unrolled closed form agree.
    """
    if r < 0:
        raise ValueError("rounds are numbered from 0")
    kernel = np.array([1], dtype=np.int64)
    for _ in range(r + 1):
        kernel = np.concatenate([kernel, kernel, -kernel])
    return kernel


def sum_positive(r: int) -> int:
    """``Σ⁺ k_r = (3^{r+1} + 1) / 2`` (Lemma 4)."""
    if r < 0:
        raise ValueError("rounds are numbered from 0")
    return (3 ** (r + 1) + 1) // 2


def sum_negative(r: int) -> int:
    """``Σ⁻ k_r = (3^{r+1} - 1) / 2`` (Lemma 4; stated as a magnitude)."""
    if r < 0:
        raise ValueError("rounds are numbered from 0")
    return (3 ** (r + 1) - 1) // 2


def verify_in_kernel(r: int) -> bool:
    """Exactly check ``M_r · k_r = 0`` with integer arithmetic.

    Uses ``int64`` throughout; entries of the product are bounded by the
    number of columns (``3^{r+1}``), far below overflow for every ``r``
    at which the dense matrix is constructible.
    """
    matrix = build_matrix(r)
    return not np.any(matrix @ closed_form_kernel(r))


def modular_rank(
    matrix: np.ndarray, *, prime: int = _DEFAULT_PRIME
) -> int:
    """Rank of an integer matrix over ``GF(prime)`` by Gaussian elimination.

    The modular rank never exceeds the rational rank, so
    ``modular_rank(M) == M.shape[0]`` is an exact certificate of full row
    rank.  Vectorised over numpy ``int64``; all intermediate values stay
    below ``prime**2 < 2**62``.
    """
    work = np.mod(matrix.astype(np.int64), prime)
    rows, cols = work.shape
    rank = 0
    for col in range(cols):
        if rank == rows:
            break
        pivot_rows = np.nonzero(work[rank:, col])[0]
        if pivot_rows.size == 0:
            continue
        pivot = rank + int(pivot_rows[0])
        if pivot != rank:
            work[[rank, pivot]] = work[[pivot, rank]]
        inverse = pow(int(work[rank, col]), prime - 2, prime)
        work[rank] = (work[rank] * inverse) % prime
        targets = np.nonzero(work[:, col])[0]
        targets = targets[targets != rank]
        if targets.size:
            work[targets] = (
                work[targets] - np.outer(work[targets, col], work[rank])
            ) % prime
        rank += 1
    return rank


def nullspace_dimension(r: int, *, prime: int = _DEFAULT_PRIME) -> int:
    """The nullity of ``M_r``, certified exactly (Lemma 2 says it is 1).

    Combines :func:`modular_rank` (full row rank certificate) with
    rank-nullity.  Raises :class:`AssertionError` if the modular rank is
    not full -- which would mean either an unlucky prime or a genuine
    failure of Lemma 2; in either case the caller should investigate
    rather than trust a silent answer.
    """
    matrix = build_matrix(r)
    rank = modular_rank(matrix, prime=prime)
    if rank != matrix.shape[0]:
        raise AssertionError(
            f"M_{r} has modular rank {rank} < {matrix.shape[0]} rows; "
            "retry with a different prime or investigate"
        )
    return matrix.shape[1] - rank
