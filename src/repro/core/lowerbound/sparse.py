"""Sparse construction and certification of ``M_r`` (the scale backend).

The dense :func:`repro.core.lowerbound.matrices.build_matrix` stores
``(3^{r+1} - 1) · 3^{r+1}`` entries and is capped at
``r = MAX_DENSE_ROUND``; but ``M_r`` is extremely sparse.  Each row
``(j, prefix)`` introduced at round ``r' = len(prefix)`` is exactly the
"two trails of ones" of Section 4.2: within the contiguous block of
``3^{r+1-r'}`` columns whose histories extend ``prefix``, the digit at
position ``r'`` runs through ``{1} < {2} < {1,2}`` in sub-runs of length
``3^{r-r'}``, and label ``j`` is present in sub-runs ``j-1`` and ``2``.
Total nonzeros: ``4·(r+1)·3^r`` -- linear in the number of columns per
round, versus quadratic for the dense matrix.

This module builds ``M_r`` directly in COO form from that arithmetic
(no per-entry Python loop), raising the practical horizon from
``r = 6`` to ``r = MAX_SPARSE_ROUND``:

* :func:`build_sparse_matrix` -- ``M_r`` as CSR, entry-for-entry equal
  to the dense matrix wherever both exist (property-tested).
* :func:`verify_in_kernel_sparse` -- exact integer check
  ``M_r · k_r = 0`` by sparse matvec.
* :func:`sparse_rank` / :func:`sparse_nullspace_dimension` -- an exact
  rank certificate that never eliminates: it verifies, by sparse
  comparisons, the block recursion

      ``M_r = [ T_r ; P·diag(M_{r-1}, M_{r-1}, M_{r-1}) ]``

  (``T_r`` the two round-0 trail rows, ``P`` the round/label row
  regrouping), and then applies the Lemma 2 induction
  ``rank(M_r) = 3·rank(M_{r-1}) + 2``: modulo the row space of the
  block diagonal -- the annihilator of the three block copies of
  ``k_{r-1}`` once ``M_{r-1}`` has full row rank -- the two trail rows
  project to ``(1, 0, 1)`` and ``(0, 1, 1)``, which are independent.
  The base case is cross-checked against the dense modular elimination.

Everything is exact integer arithmetic; no floating point is involved
in any certificate.
"""

from __future__ import annotations

import logging

import numpy as np
from scipy import sparse

from repro.obs.logger import get_logger
from repro.obs.metrics import counter, gauge
from repro.obs.spans import span
from repro.core.lowerbound.kernel import closed_form_kernel, modular_rank
from repro.core.lowerbound.matrices import (
    build_matrix,
    n_columns,
    n_rows,
)
from repro.core.states import ObservationSequence, history_index

_log = get_logger("core.lowerbound.sparse")

__all__ = [
    "MAX_SPARSE_ROUND",
    "sparse_nnz",
    "build_sparse_matrix",
    "sparse_observation_vector",
    "verify_in_kernel_sparse",
    "sparse_rank",
    "sparse_nullspace_dimension",
]

MAX_SPARSE_ROUND = 12
"""Largest round for which ``build_sparse_matrix`` will materialise ``M_r``.

At ``r = 12`` the matrix is ~1.6M x 1.6M with ~28M nonzeros (a few
hundred MB as CSR) -- the practical ceiling for in-memory certificates.
"""


def _check_round(r: int) -> None:
    if r < 0:
        raise ValueError("rounds are numbered from 0")
    if r > MAX_SPARSE_ROUND:
        raise ValueError(
            f"M_{r} would have {sparse_nnz(r)} nonzeros; sparse "
            f"construction is capped at r={MAX_SPARSE_ROUND}"
        )


def sparse_nnz(r: int) -> int:
    """Number of nonzeros of ``M_r``: ``4·(r+1)·3^r``.

    Each of the ``2·3^{r'}`` rows of round ``r'`` carries two trails of
    ``3^{r-r'}`` ones, so every round contributes ``4·3^r`` entries.
    """
    if r < 0:
        raise ValueError("rounds are numbered from 0")
    return 4 * (r + 1) * 3**r


def build_sparse_matrix(r: int, *, dtype=np.int64) -> sparse.csr_matrix:
    """Materialise ``M_r`` in CSR form directly from the trail structure.

    Row and column ordering are identical to the dense
    :func:`repro.core.lowerbound.matrices.build_matrix`; the test suite
    asserts entry-for-entry equality for every ``r <= MAX_DENSE_ROUND``.

    Raises:
        ValueError: ``r < 0`` or ``r > MAX_SPARSE_ROUND``.
    """
    _check_round(r)
    with span("sparse.build", r=r):
        matrix = _assemble_csr(r, dtype)
    counter("sparse.builds")
    gauge("sparse.nnz", matrix.nnz)
    if _log.isEnabledFor(logging.DEBUG):
        _log.debug(
            "M_r materialised",
            extra={"r": r, "nnz": int(matrix.nnz), "shape": list(matrix.shape)},
        )
    return matrix


def _assemble_csr(r: int, dtype) -> sparse.csr_matrix:
    row_chunks: list[np.ndarray] = []
    col_chunks: list[np.ndarray] = []
    row_offset = 0
    for round_no in range(r + 1):
        prefixes = 3**round_no  # rows per (round, label) block
        block = 3 ** (r + 1 - round_no)  # columns extending each prefix
        run = 3 ** (r - round_no)  # trail length
        base = np.arange(prefixes, dtype=np.int64) * block
        trail = np.arange(run, dtype=np.int64)
        for label in (1, 2):
            # Two trails per row: digit value ``label - 1`` and ``{1,2}``.
            offsets = np.concatenate(
                [(label - 1) * run + trail, 2 * run + trail]
            )
            col_chunks.append((base[:, None] + offsets[None, :]).ravel())
            row_chunks.append(
                np.repeat(
                    row_offset + np.arange(prefixes, dtype=np.int64),
                    offsets.size,
                )
            )
            row_offset += prefixes
    rows = np.concatenate(row_chunks)
    cols = np.concatenate(col_chunks)
    matrix = sparse.coo_matrix(
        (np.ones(rows.size, dtype=dtype), (rows, cols)),
        shape=(n_rows(r), n_columns(r)),
    )
    return matrix.tocsr()


def sparse_observation_vector(
    observations: ObservationSequence, r: int
) -> np.ndarray:
    """The vector ``m_r``, built in time proportional to observed states.

    Semantically identical to
    :func:`repro.core.lowerbound.matrices.observation_vector` but never
    touches unobserved connections, so it stays cheap even when
    ``3^{r+1}`` dwarfs the actual execution -- the regime the sparse
    backend exists for.
    """
    if observations.k != 2:
        raise ValueError("sparse_observation_vector supports M(DBL)_2")
    if observations.rounds < r + 1:
        raise ValueError(
            f"need observations for rounds 0..{r}, got {observations.rounds}"
        )
    vector = np.zeros(n_rows(r), dtype=np.int64)
    for round_no in range(r + 1):
        offset = 3**round_no - 1  # = sum(2 * 3**i for i < round_no)
        block = 3**round_no
        for (label, history), count in observations[round_no].items():
            index = offset + (label - 1) * block + history_index(history, 2)
            vector[index] = count
    return vector


def verify_in_kernel_sparse(r: int) -> bool:
    """Exactly check ``M_r · k_r = 0`` by integer sparse matvec.

    The sparse sibling of
    :func:`repro.core.lowerbound.kernel.verify_in_kernel`, usable past
    the dense cap (products stay below ``3^{r+1}``, far from overflow).
    """
    matrix = build_sparse_matrix(r)
    with span("sparse.kernel_check", r=r):
        return not np.any(matrix @ closed_form_kernel(r))


def _regrouped_row_indices(r: int, digit: int) -> np.ndarray:
    """Rows of ``M_r`` whose prefix starts with label-set digit ``digit``.

    Restricted to rounds ``r' >= 1`` and returned in the row order of
    ``M_{r-1}`` (round, then label, then remaining prefix) -- the
    permutation ``P`` of the block recursion.
    """
    chunks: list[np.ndarray] = []
    for round_no in range(1, r + 1):
        offset = 3**round_no - 1  # rows of earlier rounds
        block = 3**round_no  # rows per label within the round
        sub = 3 ** (round_no - 1)  # rows sharing a first digit
        for label in (1, 2):
            start = offset + (label - 1) * block + digit * sub
            chunks.append(np.arange(start, start + sub, dtype=np.int64))
    return np.concatenate(chunks)


def _sparse_equal(a: sparse.spmatrix, b: sparse.spmatrix) -> bool:
    return a.shape == b.shape and (a != b).nnz == 0


def sparse_rank(r: int, *, _matrix: sparse.csr_matrix | None = None) -> int:
    """Exact rank of ``M_r`` via the certified block recursion.

    For ``r <= 2`` the rank is computed by dense modular elimination
    (:func:`repro.core.lowerbound.kernel.modular_rank`).  For larger
    ``r`` the function *verifies* -- with exact sparse comparisons --
    that ``M_r`` has the recursive structure described in the module
    docstring, then returns ``3·rank(M_{r-1}) + 2``.

    Every level of the recursion is traced as a nested ``sparse.rank``
    span, so an event log shows exactly where certificate time goes.

    Raises:
        AssertionError: A structural check failed, or ``M_{r-1}`` did
            not certify full row rank -- either would invalidate the
            induction and should be investigated, not silenced.
    """
    with span("sparse.rank", r=r):
        rank = _certified_rank(r, _matrix)
    if _log.isEnabledFor(logging.DEBUG):
        _log.debug("rank certified", extra={"r": r, "rank": rank})
    return rank


def _certified_rank(r: int, _matrix: sparse.csr_matrix | None) -> int:
    if r < 0:
        raise ValueError("rounds are numbered from 0")
    if r <= 2:
        return modular_rank(build_matrix(r))
    matrix = build_sparse_matrix(r) if _matrix is None else _matrix
    previous = build_sparse_matrix(r - 1)
    prev_rank = sparse_rank(r - 1, _matrix=previous)
    if prev_rank != n_rows(r - 1):
        raise AssertionError(
            f"M_{r - 1} rank {prev_rank} < {n_rows(r - 1)} rows; the "
            "Lemma 2 induction step does not apply"
        )

    block = 3**r  # columns per first-digit block
    # The two round-0 rows are the trails (1^T, 0, 1^T) and (0, 1^T, 1^T).
    expected0 = np.concatenate(
        [np.arange(block), 2 * block + np.arange(block)]
    )
    expected1 = np.concatenate(
        [block + np.arange(block), 2 * block + np.arange(block)]
    )
    top = matrix[:2].tocsr()
    top.sort_indices()
    if not (
        np.array_equal(top[0].indices, expected0)
        and np.array_equal(top[1].indices, expected1)
        and np.all(top.data == 1)
    ):
        raise AssertionError(f"round-0 rows of M_{r} are not the two trails")

    # Rows of rounds >= 1, regrouped by first digit, must be exactly
    # M_{r-1} on their own column block and zero elsewhere.
    for digit in range(3):
        rows = matrix[_regrouped_row_indices(r, digit)]
        if rows.nnz != previous.nnz:
            raise AssertionError(
                f"digit-{digit} rows of M_{r} have off-block entries"
            )
        sub = rows[:, digit * block : (digit + 1) * block]
        if not _sparse_equal(sub, previous):
            raise AssertionError(
                f"digit-{digit} block of M_{r} does not equal M_{r - 1}"
            )

    # Full row rank of M_{r-1} (rows = columns - 1) plus
    # M_{r-1}·k_{r-1} = 0 pin its row space to the annihilator of
    # k_{r-1}; project the two trail rows onto the 3-dim quotient.
    kernel = closed_form_kernel(r - 1)
    if np.any(previous @ kernel):
        raise AssertionError(f"k_{r - 1} is not in the kernel of M_{r - 1}")
    lifted = np.zeros((n_columns(r), 3), dtype=np.int64)
    for digit in range(3):
        lifted[digit * block : (digit + 1) * block, digit] = kernel
    projection = np.asarray(top @ lifted)
    if modular_rank(projection) != 2:
        raise AssertionError(
            f"trail rows of M_{r} are dependent modulo the block diagonal"
        )
    return 3 * prev_rank + 2


def sparse_nullspace_dimension(r: int) -> int:
    """The nullity of ``M_r`` certified via :func:`sparse_rank`.

    The sparse sibling of
    :func:`repro.core.lowerbound.kernel.nullspace_dimension`, exact for
    every ``r <= MAX_SPARSE_ROUND`` (Lemma 2 says the answer is 1).
    """
    rank = sparse_rank(r)
    if rank != n_rows(r):
        raise AssertionError(
            f"M_{r} certified rank {rank} < {n_rows(r)} rows; investigate"
        )
    return n_columns(r) - rank
