"""Explicit coefficient matrices ``M_r`` of the leader's linear system.

At round ``r`` the leader's knowledge about an ``M(DBL)_2`` execution is
the system ``m_r = M_r s_r`` (equation (2) of the paper):

* one **column** per possible node state (history) of length ``r + 1`` --
  ``3^{r+1}`` columns, ordered lexicographically with
  ``{1} < {2} < {1,2}`` and the first round most significant;
* one **row** per leader *connection* ``(j, prefix)`` -- a label
  ``j ∈ {1, 2}`` paired with a node state of some round ``r' <= r`` --
  for ``2·Σ_{i<=r} 3^i`` rows, ordered by round, then label, then prefix;
* entry 1 exactly when the column's history extends the row's prefix and
  contains label ``j`` at round ``r'`` (the "two trails of ones" of
  length ``3^{r-r'}`` described in Section 4.2).

``build_matrix(0)`` and ``build_matrix(1)`` reproduce the paper's
equations (2) and (5) entry for entry; the test suite checks this.

Matrices are dense and grow as ``3^{2r}``; building is capped at
``r = MAX_DENSE_ROUND`` (about 4.8M entries).  Everything the library
needs beyond that is available in closed form via
:mod:`repro.core.lowerbound.kernel`.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.core.states import (
    ObservationSequence,
    all_histories,
    history_index,
    n_histories,
)

__all__ = [
    "MAX_DENSE_ROUND",
    "n_columns",
    "n_rows",
    "row_connections",
    "row_index",
    "build_matrix",
    "observation_vector",
    "configuration_vector",
]

MAX_DENSE_ROUND = 6
"""Largest round for which ``build_matrix`` will materialise ``M_r``."""

_K = 2  # The paper's dense analysis is for M(DBL)_2.


def n_columns(r: int) -> int:
    """Number of columns of ``M_r``: ``3^{r+1}`` (all states at round r+1)."""
    _check_round(r)
    return 3 ** (r + 1)


def n_rows(r: int) -> int:
    """Number of rows of ``M_r``: ``2·Σ_{i<=r} 3^i = 3^{r+1} - 1``."""
    _check_round(r)
    return sum(2 * 3**i for i in range(r + 1))


def _check_round(r: int) -> None:
    if r < 0:
        raise ValueError("rounds are numbered from 0")


def row_connections(r: int) -> list[tuple[int, tuple]]:
    """The ``(label, prefix)`` connection of every row of ``M_r``, in order.

    Rows are grouped by the round ``r' = len(prefix)`` that introduced
    them; within a round, all label-1 rows come first (prefixes in
    lexicographic order), then all label-2 rows -- the ordering of the
    paper's equation (4).
    """
    _check_round(r)
    connections: list[tuple[int, tuple]] = []
    for round_no in range(r + 1):
        for label in (1, 2):
            connections.extend(
                (label, prefix) for prefix in all_histories(_K, round_no)
            )
    return connections


def row_index(label: int, prefix: Sequence, r: int) -> int:
    """Index of the row for connection ``(label, prefix)`` in ``M_r``."""
    round_no = len(prefix)
    if round_no > r:
        raise ValueError(f"prefix of length {round_no} has no row in M_{r}")
    if label not in (1, 2):
        raise ValueError("labels are 1 and 2 in M(DBL)_2")
    offset = sum(2 * 3**i for i in range(round_no))
    block = n_histories(_K, round_no)
    return offset + (label - 1) * block + history_index(tuple(prefix), _K)


def build_matrix(r: int, *, dtype=np.int64) -> np.ndarray:
    """Materialise ``M_r`` as a dense 0/1 matrix.

    Raises:
        ValueError: ``r > MAX_DENSE_ROUND`` (the matrix would not fit in
            memory comfortably; use the closed forms instead).
    """
    _check_round(r)
    if r > MAX_DENSE_ROUND:
        raise ValueError(
            f"M_{r} would have {n_columns(r)}^2-ish entries; dense "
            f"construction is capped at r={MAX_DENSE_ROUND}"
        )
    matrix = np.zeros((n_rows(r), n_columns(r)), dtype=dtype)
    for column, history in enumerate(all_histories(_K, r + 1)):
        for round_no in range(r + 1):
            prefix = history[:round_no]
            for label in history[round_no]:
                matrix[row_index(label, prefix, r), column] = 1
    return matrix


def observation_vector(observations: ObservationSequence, r: int) -> np.ndarray:
    """The constant-term vector ``m_r`` of a leader state.

    Component ``(j, prefix)`` is the multiplicity ``|(j, prefix)|`` in
    the leader observation of round ``len(prefix)``, per Definition 7.

    Args:
        observations: A leader state covering at least rounds ``0..r``.
        r: The system's round.
    """
    if observations.k != _K:
        raise ValueError("observation_vector supports the M(DBL)_2 analysis")
    if observations.rounds < r + 1:
        raise ValueError(
            f"need observations for rounds 0..{r}, got {observations.rounds}"
        )
    # Only observed connections are written: a real execution touches
    # O(n·r) states, far fewer than the 3^{r+1}-1 rows at large r.
    vector = np.zeros(n_rows(r), dtype=np.int64)
    for round_no in range(r + 1):
        for (label, history), count in observations[round_no].items():
            vector[row_index(label, history, r)] = count
    return vector


def configuration_vector(counts: Mapping[tuple, int], r: int) -> np.ndarray:
    """A solution vector ``s_r`` from a configuration multiset.

    ``counts`` maps full histories of length ``r + 1`` to node
    multiplicities (e.g. :meth:`repro.networks.DynamicMultigraph.configuration`).
    """
    vector = np.zeros(n_columns(r), dtype=np.int64)
    for history, count in counts.items():
        if len(history) != r + 1:
            raise ValueError(
                f"history {history!r} has length {len(history)}, "
                f"expected {r + 1}"
            )
        vector[history_index(tuple(history), _K)] = count
    return vector
