"""Allow ``python -m repro ...`` to invoke the CLI."""

import sys

from repro.cli import main

sys.exit(main())
