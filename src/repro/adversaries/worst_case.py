"""The worst-case adversary realising the ``Ω(log |V|)`` lower bound.

The adversary plays the constructive side of Lemma 5: for a network of
size ``n`` it schedules the node label-histories of the *smaller twin*
configuration at the last ambiguous round
``r_h = ambiguity_horizon(n)``.  Through round ``r_h`` the leader's
observations are identical to those of an ``(n+1)``-node network (the
larger twin), so no algorithm -- not even the information-theoretically
optimal one -- can output before round ``r_h + 1``.  From round
``r_h + 1`` the schedule continues with all-labels connections and the
feasible interval collapses, so the optimal counter terminates at
exactly ``rounds_to_count(n) = r_h + 2`` executed rounds: the measured
curve coincides with the theoretical bound point for point
(``benchmarks/bench_lower_bound.py``).
"""

from __future__ import annotations

from repro.obs.logger import get_logger
from repro.obs.metrics import counter
from repro.core.lowerbound.bounds import ambiguity_horizon
from repro.core.lowerbound.pairs import twin_configurations
from repro.core.solver import feasible_size_interval
from repro.core.states import ObservationSequence
from repro.networks.csr_native import precompile_schedule
from repro.networks.dynamic_graph import DynamicGraph
from repro.networks.multigraph import DynamicMultigraph
from repro.networks.transform import PD2Layout, mdbl_to_pd2

_log = get_logger("adversaries.worst_case")

__all__ = [
    "max_ambiguity_multigraph",
    "worst_case_pd2_network",
    "measured_ambiguity_curve",
]


def max_ambiguity_multigraph(n: int, *, extend: str = "full") -> DynamicMultigraph:
    """The worst-case ``M(DBL)_2`` schedule for a network of size ``n``.

    Returns the smaller Lemma 5 twin at the ambiguity horizon of ``n``:
    the instance whose leader state stays consistent with both ``n`` and
    ``n + 1`` nodes for as many rounds as the theory allows.
    """
    horizon = ambiguity_horizon(n)
    smaller, _larger = twin_configurations(horizon, n)
    counter("adversary.worst_case_schedules")
    _log.debug(
        "worst-case schedule built", extra={"n": n, "horizon": horizon}
    )
    return DynamicMultigraph.from_solution(
        2, smaller, extend=extend, name=f"worst-case-n{n}"
    )


def worst_case_pd2_network(
    n: int, *, precompiled: bool = False
) -> tuple[DynamicGraph, PD2Layout]:
    """The worst-case adversary lifted to a ``G(PD)_2`` dynamic graph.

    Applies the Lemma 1 transformation to
    :func:`max_ambiguity_multigraph`; the returned network has
    ``n + 3`` nodes (leader, two middle nodes, ``n`` outer nodes).

    Args:
        n: Network size the adversary is playing against.
        precompiled: When true, the schedule's prefix is lowered once
            into stacked CSR-native index arrays
            (:func:`repro.networks.precompile_schedule`), so fast-backend
            executions never build a ``networkx`` graph per round.  The
            ``extend="full"`` tail is constant past the ambiguity
            horizon, so holding the last prefix round is exact.
    """
    multigraph = max_ambiguity_multigraph(n)
    network, layout = mdbl_to_pd2(multigraph)
    if precompiled:
        network = precompile_schedule(
            network,
            multigraph.prefix_rounds + 1,
            extend="hold",
            name=f"{network.name}:precompiled",
        )
    return network, layout


def measured_ambiguity_curve(
    multigraph: DynamicMultigraph, *, max_rounds: int = 64
) -> list[int]:
    """The leader's interval width after each round of an execution.

    Runs the exact solver on the instance's ground-truth observations
    round by round and records ``interval.width``; the curve is the
    empirical ambiguity profile (positive while counting is impossible,
    0 from the first round the size is pinned).  Stops one round after
    the width first reaches 0.
    """
    observations = ObservationSequence(multigraph.k)
    widths: list[int] = []
    for round_no in range(max_rounds):
        observations.append(multigraph.observation(round_no))
        interval = feasible_size_interval(observations)
        widths.append(interval.width)
        if interval.is_unique:
            _log.debug(
                "ambiguity collapsed",
                extra={"multigraph": multigraph.name, "round_no": round_no},
            )
            return widths
    return widths
