"""Exhaustive optimal adversary: exact tightness certificates for tiny n.

Against a deterministic leader whose outputs do not influence the
dynamics, an adaptive adversary gains nothing over a committed
schedule; the strongest adversary is therefore the schedule maximising
the number of rounds until the leader's feasible-size interval
collapses.  For small ``n`` that maximum can be computed *exactly* by
searching the schedule tree.

The key structural fact making the search tractable: the multiset of
node histories determines the entire observation sequence (observation
``C(v_l, i)`` is a function of the length-``(i+1)`` history prefixes),
so states can be memoised on the canonical history multiset alone.

The ``tab-adaptive-adversary`` experiment uses this to certify that
``rounds_to_count(n)`` is *exactly* optimal for every small ``n``: no
adversary of any kind keeps the leader ambiguous longer than the
Lemma 5 construction does.
"""

from __future__ import annotations

import itertools
from collections import Counter

from repro.core.solver import feasible_size_interval
from repro.core.states import ObservationSequence

__all__ = ["exhaustive_max_rounds"]

_ONE = frozenset({1})
_TWO = frozenset({2})
_BOTH = frozenset({1, 2})
_CHOICES = (_ONE, _TWO, _BOTH)

_SORT_KEY = {_ONE: 0, _TWO: 1, _BOTH: 2}


def _canonical(histories: Counter) -> tuple:
    """Canonical hashable form of a history multiset."""
    return tuple(
        sorted(
            histories.items(),
            key=lambda item: ([_SORT_KEY[labels] for labels in item[0]], item[1]),
        )
    )


def _observations_of(histories: Counter, rounds: int) -> ObservationSequence:
    """Reconstruct the full observation sequence from a history multiset."""
    observations = ObservationSequence(2)
    for round_no in range(rounds):
        observation: Counter = Counter()
        for history, count in histories.items():
            prefix = history[:round_no]
            for label in history[round_no]:
                observation[(label, prefix)] += count
        observations.append(observation)
    return observations


def _compositions(total: int):
    for c1 in range(total + 1):
        for c2 in range(total - c1 + 1):
            yield (c1, c2, total - c1 - c2)


def exhaustive_max_rounds(n: int, *, max_rounds: int = 8) -> int:
    """The exact optimum: max rounds any adversary keeps ``n`` ambiguous.

    Returns the number of executed rounds after which the leader's
    interval first collapses, maximised over *all* ``M(DBL)_2``
    schedules (searched exhaustively with memoisation).  Feasible up to
    roughly ``n = 8``; cost grows combinatorially beyond.

    The returned value is the exact counting complexity of size ``n``
    in this model; Theorem 1 predicts it equals
    ``rounds_to_count(n) = ⌊log_3(2n+1)⌋ + 1``.
    """
    if n < 1:
        raise ValueError("need at least one node")
    memo: dict[tuple, int] = {}

    def best_from(histories: Counter, rounds: int) -> int:
        """Rounds until collapse, maximised over future schedules."""
        if rounds > 0:
            width = feasible_size_interval(
                _observations_of(histories, rounds)
            ).width
            if width == 0:
                return rounds
        key = _canonical(histories)
        if key in memo:
            return memo[key]
        if rounds >= max_rounds:
            raise RuntimeError(
                f"ambiguity persisted beyond {max_rounds} rounds -- "
                "raise max_rounds"
            )
        classes = sorted(
            histories.items(),
            key=lambda item: [_SORT_KEY[labels] for labels in item[0]],
        )
        best = rounds
        option_lists = [
            list(_compositions(count)) for _history, count in classes
        ]
        for assignment in itertools.product(*option_lists):
            extended: Counter = Counter()
            for (history, _count), split in zip(classes, assignment):
                for labels, how_many in zip(_CHOICES, split):
                    if how_many:
                        extended[history + (labels,)] += how_many
            best = max(best, best_from(extended, rounds + 1))
        memo[key] = best
        return best

    return best_from(Counter({(): n}), 0)
