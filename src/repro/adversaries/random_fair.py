"""Fair adversaries for the multigraph model.

A fair ``M(DBL)_k`` adversary draws every node's label set uniformly and
independently each round -- no conspiracy against the algorithm.  Under
fair dynamics the optimal counter's observations usually pin the size
far sooner than the worst-case bound, which the baseline benchmarks use
to show the lower bound is about adversarial behaviour rather than the
model itself.

(The fair *graph* adversaries for the general dynamic-network model live
in :mod:`repro.networks.generators.random_dynamic`.)
"""

from __future__ import annotations

import numpy as np

from repro.core.states import all_label_sets
from repro.simulation.node import Process

__all__ = ["RandomLabelAdversary"]


class RandomLabelAdversary:
    """Uniform random label sets, independent per node and round.

    Implements :class:`repro.simulation.labeled.LabelSetProvider`.
    Rounds are keyed by ``(seed, round)`` so executions are reproducible
    and repeated queries for the same round agree.
    """

    def __init__(self, k: int, n: int, *, seed: int = 0) -> None:
        if k < 1 or n < 1:
            raise ValueError("need k >= 1 and n >= 1")
        self._k = k
        self.n = n
        self.seed = seed

    @property
    def k(self) -> int:
        return self._k

    def label_sets(
        self, round_no: int, processes: list[Process] | None = None
    ) -> list[frozenset]:
        rng = np.random.default_rng([self.seed, round_no])
        choices = all_label_sets(self._k)
        picks = rng.integers(len(choices), size=self.n)
        return [choices[int(pick)] for pick in picks]
