"""An adaptive one-step-lookahead adversary (ablation for Lemma 5).

The lower-bound proof commits to a label schedule upfront (the kernel
twin construction).  A natural question the paper leaves implicit: does
an *adaptive* adversary -- one that watches the leader's knowledge and
re-plans every round -- do any better?  Theorem 1 says it cannot
(the bound holds for every adversary); this module provides the
strongest natural adaptive strategy so the claim can be tested
empirically:

every round, the adversary enumerates the ways to partition each
equivalence class of nodes (nodes with identical histories are
interchangeable) among the three label sets, and picks the assignment
that maximises the width of the leader's feasible-size interval after
the round.  The ``tab-adaptive-adversary`` experiment shows the greedy
adversary never beats the theoretical horizon and the precomputed
kernel schedule always matches it -- evidence that Lemma 5's
construction is optimal, not merely sufficient.
"""

from __future__ import annotations

import itertools
from collections import Counter

from repro.core.solver import feasible_size_interval
from repro.core.states import ObservationSequence, leader_observation
from repro.networks.multigraph import DynamicMultigraph

__all__ = ["GreedyAmbiguityAdversary", "greedy_schedule"]

_ONE = frozenset({1})
_TWO = frozenset({2})
_BOTH = frozenset({1, 2})
_CHOICES = (_ONE, _TWO, _BOTH)


def _compositions(total: int) -> list[tuple[int, int, int]]:
    """All ways to split ``total`` nodes among the three label sets."""
    return [
        (c1, c2, total - c1 - c2)
        for c1 in range(total + 1)
        for c2 in range(total - c1 + 1)
    ]


class GreedyAmbiguityAdversary:
    """Adaptive ``M(DBL)_2`` adversary maximising next-round ambiguity.

    Args:
        n: Number of anonymous nodes.
        branch_cap: Maximum number of joint assignments enumerated per
            round; beyond it the adversary falls back to optimising one
            history class at a time (coordinate ascent), which keeps
            the ablation tractable at larger sizes.
    """

    def __init__(self, n: int, *, branch_cap: int = 50_000) -> None:
        if n < 1:
            raise ValueError("need at least one node")
        self.n = n
        self.branch_cap = branch_cap
        self.histories: list[tuple] = [() for _ in range(n)]
        self.observations = ObservationSequence(2)
        self.width_history: list[int] = []

    def play_round(self) -> list[frozenset]:
        """Choose this round's label sets; returns one set per node."""
        classes = Counter(self.histories)
        class_list = sorted(
            classes.items(),
            key=lambda item: [sorted(map(sorted, item[0])), item[1]],
        )
        options_per_class = [
            _compositions(count) for _history, count in class_list
        ]
        total_branches = 1
        for options in options_per_class:
            total_branches *= len(options)
            if total_branches > self.branch_cap:
                break
        if total_branches <= self.branch_cap:
            best = self._exhaustive(class_list, options_per_class)
        else:
            best = self._coordinate_ascent(class_list, options_per_class)
        return self._apply(class_list, best)

    def _evaluate(
        self,
        class_list: list[tuple[tuple, int]],
        assignment: tuple[tuple[int, int, int], ...],
    ) -> int:
        """Interval width after hypothetically playing ``assignment``."""
        label_sets: list[frozenset] = []
        histories: list[tuple] = []
        for (history, _count), split in zip(class_list, assignment):
            for labels, how_many in zip(_CHOICES, split):
                label_sets.extend([labels] * how_many)
                histories.extend([history] * how_many)
        observation = leader_observation(label_sets, histories)
        trial = self.observations.prefix(self.observations.rounds)
        trial.append(observation)
        return feasible_size_interval(trial).width

    def _exhaustive(
        self,
        class_list: list[tuple[tuple, int]],
        options_per_class: list[list[tuple[int, int, int]]],
    ) -> tuple[tuple[int, int, int], ...]:
        best_width, best = -1, None
        for assignment in itertools.product(*options_per_class):
            width = self._evaluate(class_list, assignment)
            if width > best_width:
                best_width, best = width, assignment
        return best

    def _coordinate_ascent(
        self,
        class_list: list[tuple[tuple, int]],
        options_per_class: list[list[tuple[int, int, int]]],
    ) -> tuple[tuple[int, int, int], ...]:
        # Start from everyone on {1,2} (the most symmetric choice) and
        # optimise one class at a time, twice over.
        current = [
            (0, 0, count) for _history, count in class_list
        ]
        for _sweep in range(2):
            for index, options in enumerate(options_per_class):
                best_width, best_option = -1, current[index]
                for option in options:
                    trial = list(current)
                    trial[index] = option
                    width = self._evaluate(class_list, tuple(trial))
                    if width > best_width:
                        best_width, best_option = width, option
                current[index] = best_option
        return tuple(current)

    def _apply(
        self,
        class_list: list[tuple[tuple, int]],
        assignment: tuple[tuple[int, int, int], ...],
    ) -> list[frozenset]:
        # Materialise the per-node label sets and update state.
        per_class: dict[tuple, list[frozenset]] = {}
        for (history, _count), split in zip(class_list, assignment):
            sets: list[frozenset] = []
            for labels, how_many in zip(_CHOICES, split):
                sets.extend([labels] * how_many)
            per_class[history] = sets
        label_sets: list[frozenset] = []
        new_histories: list[tuple] = []
        for history in self.histories:
            labels = per_class[history].pop()
            label_sets.append(labels)
            new_histories.append(history + (labels,))
        self.observations.append(
            leader_observation(label_sets, self.histories)
        )
        self.histories = new_histories
        self.width_history.append(
            feasible_size_interval(self.observations).width
        )
        return label_sets

    def play_until_pinned(self, *, max_rounds: int = 32) -> int:
        """Play rounds until the leader's interval collapses.

        Returns the number of rounds played; ``width_history`` then
        records the full ambiguity curve.
        """
        for round_no in range(max_rounds):
            self.play_round()
            if self.width_history[-1] == 0:
                return round_no + 1
        return max_rounds


def greedy_schedule(n: int, *, max_rounds: int = 32) -> DynamicMultigraph:
    """The schedule an adaptive greedy adversary ends up playing.

    Returns it as a :class:`repro.networks.DynamicMultigraph` so it can
    be fed to any counter or experiment like the precomputed worst-case
    schedules.
    """
    adversary = GreedyAmbiguityAdversary(n)
    rounds = adversary.play_until_pinned(max_rounds=max_rounds)
    schedules = [
        [adversary.histories[node][r] for r in range(rounds)]
        for node in range(n)
    ]
    return DynamicMultigraph(2, schedules, name=f"greedy-n{n}")
