"""Adversaries: executable strategies for choosing the round topology.

* :mod:`repro.adversaries.worst_case` -- the omniscient worst-case
  adversary of the lower bound: kernel-derived ``M(DBL)_2`` schedules
  that keep the leader's feasible-size interval wide for as long as
  Lemma 5 permits.
* :mod:`repro.adversaries.random_fair` -- fair adversaries (random
  dynamics that do not conspire against the algorithm), used by the
  baseline experiments.

Worst-case adversaries here are *schedules* rather than callbacks: the
model is deterministic, so the adversary can commit to the entire label
history upfront (the proof of Lemma 5 does exactly that), which also
makes every experiment reproducible bit for bit.
"""

from repro.adversaries.exhaustive import exhaustive_max_rounds
from repro.adversaries.greedy import GreedyAmbiguityAdversary, greedy_schedule
from repro.adversaries.random_fair import RandomLabelAdversary
from repro.adversaries.worst_case import (
    max_ambiguity_multigraph,
    measured_ambiguity_curve,
    worst_case_pd2_network,
)

__all__ = [
    "GreedyAmbiguityAdversary",
    "RandomLabelAdversary",
    "exhaustive_max_rounds",
    "greedy_schedule",
    "max_ambiguity_multigraph",
    "measured_ambiguity_curve",
    "worst_case_pd2_network",
]
