"""repro: counting in anonymous dynamic networks.

A production-quality reproduction of Di Luna & Baldoni, *Investigating
the Cost of Anonymity on Dynamic Networks* (brief announcement at PODC
2015): a synchronous anonymous message-passing simulator, the
``G(PD)_h`` / ``M(DBL)_k`` dynamic network families, the paper's linear
algebra lower-bound machinery in exact arithmetic, an
information-theoretically optimal anonymous counting algorithm, and the
baselines (stars, degree oracle, IDs, gossip) that situate the cost of
anonymity.

Quickstart::

    from repro import count_mdbl2_abstract, max_ambiguity_multigraph

    adversary = max_ambiguity_multigraph(100)
    outcome = count_mdbl2_abstract(adversary)
    print(outcome.count, outcome.rounds)  # 100, log-many rounds

See ``examples/`` for runnable scenarios and ``DESIGN.md`` for the full
system inventory.
"""

from repro.adversaries import (
    GreedyAmbiguityAdversary,
    RandomLabelAdversary,
    exhaustive_max_rounds,
    greedy_schedule,
    max_ambiguity_multigraph,
    measured_ambiguity_curve,
    worst_case_pd2_network,
)
from repro.core import (
    ObservationSequence,
    SizeInterval,
    feasible_size_interval,
)
from repro.core.dissemination import (
    disseminate_by_flooding,
    disseminate_by_token_forwarding,
)
from repro.core.naming import earliest_naming_round, naming_is_possible
from repro.core.solver_general import (
    count_mdblk,
    count_mdblk_abstract,
    feasible_sizes_general,
)
from repro.core.views import symmetry_degree, view_classes
from repro.core.counting import (
    CountingOutcome,
    count_mdbl2,
    count_mdbl2_abstract,
    count_pd2_with_degree_oracle,
    count_star,
    count_with_ids,
    flood_time_via_protocol,
    gossip_size_estimates,
)
from repro.core.lowerbound import (
    ambiguity_horizon,
    closed_form_kernel,
    min_output_round,
    rounds_to_count,
    theorem1_bound,
    twin_multigraphs,
)
from repro.networks import (
    DynamicGraph,
    DynamicMultigraph,
    dynamic_diameter,
    mdbl_to_pd2,
    verify_pd,
)
from repro.simulation import (
    EngineConfig,
    Process,
    SimulationResult,
    SynchronousEngine,
)

__version__ = "1.0.0"

__all__ = [
    "CountingOutcome",
    "DynamicGraph",
    "DynamicMultigraph",
    "EngineConfig",
    "GreedyAmbiguityAdversary",
    "ObservationSequence",
    "Process",
    "RandomLabelAdversary",
    "SimulationResult",
    "SizeInterval",
    "SynchronousEngine",
    "__version__",
    "ambiguity_horizon",
    "closed_form_kernel",
    "count_mdbl2",
    "count_mdbl2_abstract",
    "count_mdblk",
    "count_mdblk_abstract",
    "disseminate_by_flooding",
    "disseminate_by_token_forwarding",
    "earliest_naming_round",
    "exhaustive_max_rounds",
    "feasible_sizes_general",
    "greedy_schedule",
    "naming_is_possible",
    "symmetry_degree",
    "view_classes",
    "count_pd2_with_degree_oracle",
    "count_star",
    "count_with_ids",
    "dynamic_diameter",
    "feasible_size_interval",
    "flood_time_via_protocol",
    "gossip_size_estimates",
    "max_ambiguity_multigraph",
    "mdbl_to_pd2",
    "measured_ambiguity_curve",
    "min_output_round",
    "rounds_to_count",
    "theorem1_bound",
    "twin_multigraphs",
    "verify_pd",
    "worst_case_pd2_network",
]
