"""JSON serialisation of schedules, observations, and experiment results.

Experiments produce three kinds of artifacts worth persisting and
exchanging:

* **multigraph schedules** -- an adversary's full strategy; saving one
  pins an experiment's input exactly (``multigraph_to_json`` /
  ``multigraph_from_json`` round-trip losslessly);
* **observation sequences** -- a leader's view of an execution, e.g. to
  re-run solvers on a recorded trace;
* **experiment results** -- rows/checks/notes as produced by the
  registry, e.g. for archiving benchmark outputs.

All formats are plain JSON-compatible dictionaries (labels as sorted
lists, multisets as pair lists), so files are diffable and readable.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Any

from repro.analysis.registry import ExperimentResult
from repro.core.states import ObservationSequence
from repro.networks.multigraph import DynamicMultigraph

__all__ = [
    "multigraph_to_json",
    "multigraph_from_json",
    "observations_to_json",
    "observations_from_json",
    "result_to_json",
    "save_json",
    "load_json",
]

_FORMAT_VERSION = 1


def multigraph_to_json(multigraph: DynamicMultigraph) -> dict[str, Any]:
    """Encode an ``M(DBL)_k`` instance as a JSON-compatible dict."""
    return {
        "format": "repro.multigraph",
        "version": _FORMAT_VERSION,
        "k": multigraph.k,
        "extend": multigraph.extend,
        "name": multigraph.name,
        "schedules": [
            [sorted(multigraph.labels(node, r)) for r in range(multigraph.prefix_rounds)]
            for node in range(multigraph.n)
        ],
    }


def multigraph_from_json(data: dict[str, Any]) -> DynamicMultigraph:
    """Decode a dict produced by :func:`multigraph_to_json`."""
    if data.get("format") != "repro.multigraph":
        raise ValueError(f"not a multigraph document: {data.get('format')!r}")
    schedules = [
        [frozenset(labels) for labels in schedule]
        for schedule in data["schedules"]
    ]
    return DynamicMultigraph(
        data["k"],
        schedules,
        extend=data.get("extend", "full"),
        name=data.get("name", "mdbl"),
    )


def observations_to_json(
    observations: ObservationSequence,
) -> dict[str, Any]:
    """Encode a leader observation sequence."""
    rounds = []
    for round_no in range(observations.rounds):
        entries = [
            {
                "label": label,
                "history": [sorted(labels) for labels in history],
                "count": count,
            }
            for (label, history), count in sorted(
                observations[round_no].items(),
                key=lambda item: (item[0][0], repr(item[0][1])),
            )
        ]
        rounds.append(entries)
    return {
        "format": "repro.observations",
        "version": _FORMAT_VERSION,
        "k": observations.k,
        "rounds": rounds,
    }


def observations_from_json(data: dict[str, Any]) -> ObservationSequence:
    """Decode a dict produced by :func:`observations_to_json`."""
    if data.get("format") != "repro.observations":
        raise ValueError(
            f"not an observations document: {data.get('format')!r}"
        )
    sequence = ObservationSequence(data["k"])
    for entries in data["rounds"]:
        observation: Counter = Counter()
        for entry in entries:
            history = tuple(frozenset(labels) for labels in entry["history"])
            observation[(entry["label"], history)] = entry["count"]
        sequence.append(observation)
    return sequence


def result_to_json(result: ExperimentResult) -> dict[str, Any]:
    """Encode an experiment result (rows stringified where needed)."""

    def jsonable(value: Any) -> Any:
        if isinstance(value, (str, int, float, bool)) or value is None:
            return value
        return str(value)

    return {
        "format": "repro.experiment-result",
        "version": _FORMAT_VERSION,
        "experiment": result.experiment,
        "title": result.title,
        "headers": list(result.headers),
        "rows": [
            {key: jsonable(value) for key, value in row.items()}
            for row in result.rows
        ],
        "checks": dict(result.checks),
        "notes": list(result.notes),
        "passed": result.passed,
    }


def save_json(data: dict[str, Any], path: str | Path) -> Path:
    """Write a document to disk (pretty-printed, trailing newline)."""
    path = Path(path)
    path.write_text(json.dumps(data, indent=2, sort_keys=False) + "\n")
    return path


def load_json(path: str | Path) -> dict[str, Any]:
    """Read a document from disk."""
    return json.loads(Path(path).read_text())
