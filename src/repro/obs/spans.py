"""Span-based tracing with wall-clock, peak RSS, and a JSONL event sink.

A span brackets one unit of work::

    with span("experiment.run", experiment="tab-kernel-structure") as sp:
        ...
    sp.duration_s   # wall-clock seconds
    sp.rss_mib      # process peak RSS at span end (None off-POSIX)

Spans nest arbitrarily (a per-thread stack tracks depth and parent),
and on exit each span:

* records its duration into the current metrics registry as the
  histogram ``span.<name>.s`` -- so span timings aggregate across pool
  workers exactly like any other metric, and
* emits a ``{"kind": "span", ...}`` event to every registered sink.

Every span carries real identity (:mod:`repro.obs.trace`):
``trace_id`` names the whole logical operation, ``span_id`` the span,
``parent_id`` the enclosing span -- so the tree survives serialization
and, via :func:`adopt_worker_context`, process boundaries.

The only sink implementation is :class:`JsonlSink`: one JSON object per
line, shared with the structured logger (``--log-json`` writes spans
and log records into the same file so events interleave in order).
The sink stamps every event with the writing process id (``pid``) and
a per-sink monotonic sequence number (``seq``), so a file appended to
by a sweep's worker processes remains totally orderable.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterator, TextIO

from contextlib import contextmanager

from repro.obs import trace as trace_mod
from repro.obs.metrics import observe

__all__ = [
    "JsonlSink",
    "Span",
    "add_sink",
    "adopt_worker_context",
    "current_span",
    "current_trace_id",
    "emit_event",
    "peak_rss_mib",
    "propagation_context",
    "remove_sink",
    "span",
]


def peak_rss_mib() -> float | None:
    """Peak resident set size of this process in MiB (None if unknown)."""
    try:
        import resource
    except ImportError:  # non-POSIX platform
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux, bytes on macOS.
    return peak / 2**20 if sys.platform == "darwin" else peak / 2**10


@dataclass
class Span:
    """One traced unit of work (mutated in place as it runs)."""

    name: str
    attrs: dict[str, Any] = field(default_factory=dict)
    parent: str | None = None
    depth: int = 0
    start_wall: float = 0.0
    duration_s: float | None = None
    rss_mib: float | None = None
    trace_id: str | None = None
    span_id: str | None = None
    parent_id: str | None = None

    def event(self) -> dict[str, Any]:
        """The JSONL event emitted when the span closes."""
        record: dict[str, Any] = {
            "kind": "span",
            "name": self.name,
            "ts": round(self.start_wall, 6),
            "duration_s": self.duration_s,
            "depth": self.depth,
        }
        if self.trace_id is not None:
            record["trace_id"] = self.trace_id
        if self.span_id is not None:
            record["span_id"] = self.span_id
        if self.parent_id is not None:
            record["parent_id"] = self.parent_id
        if self.parent is not None:
            record["parent"] = self.parent
        if self.rss_mib is not None:
            record["rss_mib"] = round(self.rss_mib, 1)
        if self.attrs:
            record["attrs"] = self.attrs
        return record


class JsonlSink:
    """Append events as JSON lines to a file (or any text stream).

    Writes are serialised with a lock so spans and log records from
    multiple threads interleave as whole lines.  Values that are not
    JSON-native are rendered with ``repr`` rather than raised.

    Every event is stamped with its origin before writing: ``pid`` (the
    writing process -- a sweep's forked workers append to the same
    file) and ``seq``, a per-sink monotonic sequence number, so an
    interleaved multi-process file is totally orderable by ``(ts, pid,
    seq)``.  Events inside a trace additionally get the ambient
    ``trace_id`` unless they already carry one.
    """

    def __init__(self, target: str | TextIO) -> None:
        if isinstance(target, str):
            self._stream: TextIO = open(target, "a", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = target
            self._owns_stream = False
        self._lock = threading.Lock()
        self._seq = 0

    def emit(self, event: dict[str, Any]) -> None:
        # Copy before stamping: the same dict may fan out to several
        # sinks, each with its own sequence counter.
        event = dict(event)
        event.setdefault("pid", os.getpid())
        if "trace_id" not in event:
            trace_id = current_trace_id()
            if trace_id is not None:
                event["trace_id"] = trace_id
        with self._lock:
            event.setdefault("seq", self._seq)
            self._seq += 1
            line = json.dumps(event, default=repr)
            self._stream.write(line + "\n")
            self._stream.flush()

    def close(self) -> None:
        if self._owns_stream:
            self._stream.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


_sinks: list[JsonlSink] = []


def add_sink(sink: JsonlSink) -> JsonlSink:
    """Register a sink to receive every span event; returns it."""
    _sinks.append(sink)
    return sink


def remove_sink(sink: JsonlSink) -> None:
    """Unregister a sink (missing sinks are ignored)."""
    try:
        _sinks.remove(sink)
    except ValueError:
        pass


_stack = threading.local()


def _span_stack() -> list[Span]:
    stack = getattr(_stack, "spans", None)
    if stack is None:
        stack = _stack.spans = []
    return stack


def current_span() -> Span | None:
    """The innermost open span on this thread, or ``None``."""
    stack = _span_stack()
    return stack[-1] if stack else None


def current_trace_id() -> str | None:
    """The trace id events emitted *now* belong to, or ``None``.

    The innermost open span's trace wins; outside any span, a context
    adopted from a parent process (:func:`adopt_worker_context`)
    supplies it.
    """
    current = current_span()
    if current is not None and current.trace_id is not None:
        return current.trace_id
    ambient = trace_mod.ambient_context()
    return ambient[0] if ambient is not None else None


def propagation_context() -> tuple[str, str | None] | None:
    """The ``(trace_id, span_id)`` to hand a child process.

    Captured by the sweep runtime right before spawning an attempt
    worker; the worker passes it to :func:`adopt_worker_context` so its
    root span parents to the span open here.
    """
    current = current_span()
    if current is not None and current.trace_id is not None:
        return (current.trace_id, current.span_id)
    return trace_mod.ambient_context()


def adopt_worker_context(context: tuple[str, str | None] | None) -> None:
    """Worker bootstrap: join the parent process's trace.

    Clears any span stack inherited through ``fork`` (those spans
    belong to the parent and will never close here) and installs the
    parent's ``(trace_id, parent_span_id)`` as the ambient context, so
    the worker's spans -- and, via the sink stamp, its log/telemetry
    events -- stitch into the parent's trace.  ``None`` clears instead
    (the parent traced nothing).
    """
    _span_stack().clear()
    if context is None:
        trace_mod.clear_context()
    else:
        trace_mod.adopt_context(*context)


def emit_event(event: dict[str, Any]) -> None:
    """Send one already-shaped event to every registered sink."""
    for sink in _sinks:
        sink.emit(event)


@contextmanager
def span(
    name: str, *, record_rss: bool = True, **attrs: Any
) -> Iterator[Span]:
    """Trace a block of work as a named span.

    Args:
        name: Dotted span name (``"experiment.run"``, ``"sparse.rank"``).
        record_rss: Also record the process peak RSS at span end (one
            ``getrusage`` call; disable only in the very hottest loops).
        **attrs: Arbitrary JSON-ish attributes attached to the event.

    On exit the span's duration is observed into the current metrics
    registry (histogram ``span.<name>.s``) and the closed span is
    emitted to every registered sink -- even when the block raised, so
    a crashing certificate still leaves its timing behind.
    """
    stack = _span_stack()
    parent = stack[-1] if stack else None
    if parent is not None:
        trace_id = parent.trace_id
        parent_id = parent.span_id
    else:
        ambient = trace_mod.ambient_context()
        trace_id = ambient[0] if ambient is not None else trace_mod.new_id()
        parent_id = ambient[1] if ambient is not None else None
    record = Span(
        name=name,
        attrs=attrs,
        parent=parent.name if parent is not None else None,
        depth=len(stack),
        start_wall=time.time(),
        trace_id=trace_id,
        span_id=trace_mod.new_id(),
        parent_id=parent_id,
    )
    stack.append(record)
    start = time.perf_counter()
    try:
        yield record
    finally:
        record.duration_s = time.perf_counter() - start
        if record_rss:
            record.rss_mib = peak_rss_mib()
        stack.pop()
        observe(f"span.{name}.s", record.duration_s)
        emit_event(record.event())
