"""Sampled round-level run telemetry for both simulation backends.

The paper's whole argument is about *per-round* information flow -- how
fast the informed set grows under an adversarial dynamic graph -- yet
spans and counters only see whole experiments.  Telemetry opens the
round loop: when enabled, both engines emit one ``{"kind":
"telemetry", ...}`` JSONL event per sampled round to every registered
sink, carrying the round-indexed quantities the analysis reasons
about::

    {"kind": "telemetry", "engine": "object", "round": 3, "edges": 12,
     "sent": 9, "delivered": 17, "informed": 9, "terminated": 9,
     "nodes": 16, "lanes_active": 1, "ts": ..., "pid": ..., "seq": ...}

Field semantics (identical across backends -- the differential test in
``tests/obs/test_telemetry.py`` holds them to it):

* ``round`` -- the 0-based round just executed; state fields are
  post-round.
* ``informed`` -- nodes whose protocol reports them informed (an
  ``informed`` attribute on the process / an ``informed_mask`` on the
  vectorized protocol); falls back to the committed-output count for
  protocols without an explicit informed notion.
* ``terminated`` -- nodes with a committed output.
* ``sent`` / ``delivered`` / ``edges`` -- the round's traffic and
  graph size (fast backend: totals over the *active* lanes /
  the stacked adjacency).
* ``lanes_active`` -- always 1 on the object engine; on the fast
  backend, lanes whose stop criterion was still unmet entering the
  round.

Cost model: disabled telemetry is a single ``is not None`` attribute
check per round (the engines capture :func:`active` once per run);
``benchmarks/bench_obs.py`` gates that overhead.  Enabled telemetry
samples every ``every``-th round (``--telemetry every=K``), so even a
million-round run can record a bounded trajectory.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator

from repro.obs.metrics import counter
from repro.obs.spans import emit_event

__all__ = [
    "Telemetry",
    "active",
    "disable",
    "enable",
    "parse_every",
    "telemetry_enabled",
]


@dataclass(frozen=True)
class Telemetry:
    """Live telemetry configuration (present only while enabled).

    Attributes:
        every: Sampling period: emit on rounds ``0, every, 2*every...``.
    """

    every: int = 1

    def __post_init__(self) -> None:
        if self.every < 1:
            raise ValueError("telemetry sampling period must be >= 1")

    def wants(self, round_no: int) -> bool:
        """Whether ``round_no`` is a sampled round."""
        return round_no % self.every == 0

    def emit(self, record: dict[str, Any]) -> None:
        """Stamp and fan one round record out to the event sinks."""
        record["kind"] = "telemetry"
        record["ts"] = round(time.time(), 6)
        counter("telemetry.records")
        emit_event(record)


_active: Telemetry | None = None


def active() -> Telemetry | None:
    """The enabled telemetry config, or ``None`` (the common case).

    Engines call this once per ``run()`` and keep the result, so the
    per-round cost when disabled is one attribute check.
    """
    return _active


def enable(every: int = 1) -> Telemetry:
    """Enable round telemetry (``--telemetry``); returns the config."""
    global _active
    _active = Telemetry(every=every)
    return _active


def disable() -> None:
    """Disable round telemetry."""
    global _active
    _active = None


@contextmanager
def telemetry_enabled(every: int = 1) -> Iterator[Telemetry]:
    """Scoped :func:`enable` / :func:`disable` (tests, benchmarks)."""
    global _active
    previous = _active
    config = enable(every)
    try:
        yield config
    finally:
        _active = previous


def parse_every(text: str | None) -> int:
    """Parse the ``--telemetry`` argument: ``K`` or ``every=K``.

    ``None`` (bare ``--telemetry``) means every round.
    """
    if text is None:
        return 1
    raw = text.partition("=")[2] if "=" in text else text
    try:
        every = int(raw)
    except ValueError:
        raise ValueError(
            f"--telemetry expects K or every=K, got {text!r}"
        ) from None
    if every < 1:
        raise ValueError("--telemetry sampling period must be >= 1")
    return every
