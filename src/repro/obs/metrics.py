"""Counters, gauges, and histograms with lossless merge.

A :class:`MetricsRegistry` is process-local and deliberately simple:
three dictionaries and no background machinery.  What makes it fit the
parallel experiment runner is the algebra of :meth:`merge`:

* counters add,
* histograms combine ``(count, total, min, max)`` component-wise,
* gauges are last-write-wins (the merged-in snapshot overrides).

All three operations are associative, so per-worker registries from
``repro all --jobs N`` fold into the parent registry in any grouping
and the aggregate equals a serial run's counters exactly -- the
property ``tests/obs/test_metrics.py`` asserts.

Instrumented code uses the module-level helpers (:func:`counter`,
:func:`gauge`, :func:`observe`), which act on the *current* registry.
Pool workers swap in a fresh registry per task with
:func:`use_registry` and ship its snapshot back with the result.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from typing import Any, Iterator, Mapping

__all__ = [
    "MetricsRegistry",
    "counter",
    "gauge",
    "get_registry",
    "observe",
    "set_registry",
    "use_registry",
]


class MetricsRegistry:
    """A process-local collection of counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, dict[str, float]] = {}

    def counter(self, name: str, amount: float = 1) -> None:
        """Increment counter ``name`` by ``amount`` (monotone total)."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (point-in-time, last wins)."""
        self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into histogram ``name``."""
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = {
                "count": 0,
                "total": 0.0,
                "min": math.inf,
                "max": -math.inf,
            }
        hist["count"] += 1
        hist["total"] += value
        hist["min"] = min(hist["min"], value)
        hist["max"] = max(hist["max"], value)

    def value(self, name: str) -> float:
        """Current counter value (0 if never incremented)."""
        return self._counters.get(name, 0)

    def snapshot(self) -> dict[str, Any]:
        """A JSON-serialisable copy of the full registry state."""
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "histograms": {
                name: dict(hist) for name, hist in self._histograms.items()
            },
        }

    @classmethod
    def from_snapshot(cls, snapshot: Mapping[str, Any]) -> "MetricsRegistry":
        """Inverse of :meth:`snapshot`."""
        registry = cls()
        registry.merge(snapshot)
        return registry

    def merge(self, other: "MetricsRegistry | Mapping[str, Any]") -> None:
        """Fold ``other`` (a registry or a snapshot) into this registry.

        Counters add, histograms combine component-wise, gauges take the
        merged-in value -- all associative, so worker snapshots can be
        folded in any order/grouping with the same aggregate.
        """
        snapshot = other.snapshot() if isinstance(other, MetricsRegistry) else other
        for name, amount in snapshot.get("counters", {}).items():
            self._counters[name] = self._counters.get(name, 0) + amount
        self._gauges.update(snapshot.get("gauges", {}))
        for name, theirs in snapshot.get("histograms", {}).items():
            ours = self._histograms.get(name)
            if ours is None:
                self._histograms[name] = dict(theirs)
            else:
                ours["count"] += theirs["count"]
                ours["total"] += theirs["total"]
                ours["min"] = min(ours["min"], theirs["min"])
                ours["max"] = max(ours["max"], theirs["max"])

    def clear(self) -> None:
        """Drop every recorded metric (used between CLI commands/tests)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, histograms={len(self._histograms)})"
        )


_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The current registry instrumented code reports into."""
    return _registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the current registry; returns the previous one."""
    global _registry
    previous = _registry
    _registry = registry
    return previous


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Temporarily make ``registry`` current (pool workers use this so a
    task's metrics are isolated and can travel back with its result)."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


def counter(name: str, amount: float = 1) -> None:
    """Increment a counter on the current registry."""
    _registry.counter(name, amount)


def gauge(name: str, value: float) -> None:
    """Set a gauge on the current registry."""
    _registry.gauge(name, value)


def observe(name: str, value: float) -> None:
    """Record a histogram observation on the current registry."""
    _registry.observe(name, value)
