"""The benchmark observatory: record schema, trajectory, regression report.

Benchmarks already *gate* (``bench_engine.py`` fails when a speedup
drops below its committed floor) but they did not *remember*: every run
overwrote ``benchmarks/results/`` and the repo's performance history
lived in git archaeology.  This module gives benchmark runs a
standardized record and an append-only history:

* :func:`make_record` -- one run as a schema-versioned dict: git
  revision, python, mode, wall-clock, peak RSS, and per-workload
  summary (largest-size speedup and timings).
* :func:`append_record` -- append to ``benchmarks/BENCH_trajectory
  .json`` (created on first use); the file is the repo's performance
  trajectory, one record per benchmark run, oldest first.
* :func:`render_report` / :func:`compare_latest` -- the ``repro
  bench-report`` backend: render the trajectory and diff the latest run
  against a baseline run of the same mode, flagging any workload whose
  speedup fell below ``threshold`` times the baseline.

Records are deliberately summary-level (the full per-size rows stay in
``benchmarks/results/*.json``): the trajectory is for spotting trends
and regressions across commits, not for re-plotting sweeps.
"""

from __future__ import annotations

import json
import platform
import subprocess
import time
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.obs.spans import peak_rss_mib

__all__ = [
    "SCHEMA_VERSION",
    "append_record",
    "compare_latest",
    "git_revision",
    "load_trajectory",
    "make_record",
    "render_report",
]

SCHEMA_VERSION = 1

_TRAJECTORY_DESCRIPTION = (
    "Append-only benchmark trajectory: one schema-versioned record per "
    "bench run (git rev, python, mode, wall-clock, peak RSS, per-workload "
    "largest-size speedups). Read with `repro bench-report`."
)


def git_revision(cwd: str | Path | None = None) -> str | None:
    """The short git revision of ``cwd``'s repo, or ``None``.

    Benchmarks run outside a checkout (tarballs, CI caches) must still
    record; a missing git is data (``null``), not an error.
    """
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=str(cwd) if cwd is not None else None,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip() or None


def _summarize_workload(rows: Sequence[Mapping[str, Any]]) -> dict[str, Any]:
    """Largest-size summary of one workload's per-size rows."""
    last = rows[-1]
    return {
        "n": last.get("n"),
        "runs": last.get("runs"),
        "object_s": round(float(last.get("object_s", 0.0)), 6),
        "fast_s": round(float(last.get("fast_s", 0.0)), 6),
        "speedup": round(float(last.get("speedup", 0.0)), 3),
    }


def make_record(
    *,
    mode: str,
    workloads: Mapping[str, Sequence[Mapping[str, Any]]],
    wall_s: float,
    git_rev: str | None = None,
    cwd: str | Path | None = None,
) -> dict[str, Any]:
    """One benchmark run as a standardized trajectory record.

    Args:
        mode: The bench's size regime (``"quick"`` / ``"full"``).
        workloads: Per-workload lists of per-size rows, each row with at
            least ``n`` / ``object_s`` / ``fast_s`` / ``speedup`` keys
            (the shape ``bench_engine.py`` produces).
        wall_s: Total wall-clock of the benchmark run.
        git_rev: Revision override; auto-detected from ``cwd`` if None.
    """
    rss = peak_rss_mib()
    return {
        "schema": SCHEMA_VERSION,
        "recorded_at": round(time.time(), 3),
        "git_rev": git_rev if git_rev is not None else git_revision(cwd),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "mode": mode,
        "wall_s": round(float(wall_s), 3),
        "peak_rss_mib": round(rss, 1) if rss is not None else None,
        "workloads": {
            name: _summarize_workload(rows)
            for name, rows in workloads.items()
            if rows
        },
    }


def load_trajectory(path: str | Path) -> list[dict[str, Any]]:
    """The trajectory's records, oldest first (empty if absent).

    Raises:
        ValueError: The file exists but is not a trajectory.
    """
    path = Path(path)
    if not path.exists():
        return []
    payload = json.loads(path.read_text())
    if not isinstance(payload, dict) or "runs" not in payload:
        raise ValueError(f"{path} is not a bench trajectory (no 'runs' key)")
    runs = payload["runs"]
    if not isinstance(runs, list):
        raise ValueError(f"{path}: 'runs' must be a list")
    return runs


def append_record(record: Mapping[str, Any], path: str | Path) -> int:
    """Append one record to the trajectory file; returns the new length.

    Creates the file (with its schema envelope) on first use.
    """
    path = Path(path)
    runs = load_trajectory(path)
    runs.append(dict(record))
    payload = {
        "schema": SCHEMA_VERSION,
        "description": _TRAJECTORY_DESCRIPTION,
        "runs": runs,
    }
    path.write_text(json.dumps(payload, indent=1) + "\n")
    return len(runs)


def compare_latest(
    runs: Sequence[Mapping[str, Any]],
    *,
    threshold: float = 0.8,
    mode: str | None = None,
) -> tuple[list[dict[str, Any]], int]:
    """Diff the latest run against its same-mode baseline.

    The baseline is the *previous* run of the same mode (benchmarks are
    machine-relative, so cross-mode or cross-era comparisons mislead).
    A workload regresses when its speedup fell below ``threshold``
    times the baseline's.

    Returns:
        ``(rows, status)``: one row per workload of the latest run
        (columns: workload, baseline/current speedup, ratio, verdict)
        and a ``repro``-style exit status (1 if anything regressed).
    """
    if mode is not None:
        runs = [run for run in runs if run.get("mode") == mode]
    if not runs:
        return [], 0
    latest = runs[-1]
    baseline = None
    for run in reversed(runs[:-1]):
        if run.get("mode") == latest.get("mode"):
            baseline = run
            break
    rows: list[dict[str, Any]] = []
    status = 0
    for name, summary in latest.get("workloads", {}).items():
        current = float(summary.get("speedup", 0.0))
        base = (
            float(baseline["workloads"][name]["speedup"])
            if baseline is not None and name in baseline.get("workloads", {})
            else None
        )
        if base is None:
            verdict, ratio = "new", None
        else:
            ratio = current / base if base else float("inf")
            regressed = ratio < threshold
            verdict = "REGRESSION" if regressed else "ok"
            if regressed:
                status = 1
        rows.append(
            {
                "workload": name,
                "baseline": base,
                "current": current,
                "ratio": ratio,
                "verdict": verdict,
            }
        )
    return rows, status


def render_report(
    path: str | Path, *, threshold: float = 0.8, mode: str | None = None
) -> tuple[str, int]:
    """The ``repro bench-report`` text: trajectory tail plus the diff.

    Returns ``(text, status)``; status 1 means a regression.  An empty
    or missing trajectory is a clean "nothing recorded yet" (status 0):
    a fresh checkout has no performance history to regress against, and
    the message says how to record the first run.
    """
    runs = load_trajectory(path)
    if mode is not None:
        runs = [run for run in runs if run.get("mode") == mode]
    if not runs:
        scope = f" (mode={mode})" if mode else ""
        return (
            f"no benchmark runs recorded in {path}{scope}; run "
            f"`python benchmarks/bench_engine.py` (or `make bench`) to "
            f"append the first record",
            0,
        )
    lines = [f"benchmark trajectory: {len(runs)} run(s) in {path}", ""]
    for run in runs[-5:]:
        workloads = run.get("workloads", {})
        speeds = ", ".join(
            f"{summary.get('speedup'):g}x" for summary in workloads.values()
        )
        lines.append(
            f"  rev {run.get('git_rev') or '?':>9}  mode {run.get('mode')}  "
            f"python {run.get('python')}  wall {run.get('wall_s')}s  "
            f"speedups [{speeds}]"
        )
    rows, status = compare_latest(runs, threshold=threshold)
    lines.append("")
    if len(runs) < 2:
        lines.append("(single run: nothing to diff against yet)")
        return "\n".join(lines), 0
    lines.append(
        f"latest vs previous same-mode run (threshold {threshold:g}):"
    )
    for row in rows:
        base = f"{row['baseline']:.2f}x" if row["baseline"] is not None else "-"
        ratio = f"{row['ratio']:.2f}" if row["ratio"] is not None else "-"
        lines.append(
            f"  {row['workload']}: {base} -> {row['current']:.2f}x "
            f"(ratio {ratio}) {row['verdict']}"
        )
    return "\n".join(lines), status
