"""Cross-process trace identity and JSONL trace stitching.

Spans always carried a name-only ``parent`` field, which is ambiguous
the moment two attempts of the same experiment overlap and useless the
moment a sweep fans out over worker processes.  This module gives every
span real identity:

* ``trace_id`` -- one id for a whole logical operation (a sweep, a
  ``repro run``); every span and sink event of the operation carries
  it, across however many processes executed parts of it.
* ``span_id`` / ``parent_id`` -- per-span identity and the edge to the
  enclosing span, so the span *tree* is reconstructible offline.

Propagation is explicit: the sweep runtime captures the current
:func:`propagation_context` before spawning an attempt's
``multiprocessing.Process`` and the worker calls
:func:`adopt_context` first thing, so the worker's root span parents
to the sweep's span even under the ``spawn`` start method (under
``fork`` the context would also be inherited, but adoption makes the
tree deterministic either way).

The second half of the module is the *stitcher*: read one or more
JSONL event files (the per-sink ``pid``/``seq`` stamps make
multi-process interleavings orderable), group events by ``trace_id``,
rebuild each span tree, and render it as an indented tree
(``repro trace``) or as folded stacks for flamegraph tooling
(``repro trace --flame``).
"""

from __future__ import annotations

import glob as glob_mod
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Sequence

__all__ = [
    "SpanNode",
    "StitchedTrace",
    "adopt_context",
    "ambient_context",
    "clear_context",
    "expand_paths",
    "folded_stacks",
    "new_id",
    "read_events",
    "render_trace",
    "stitch",
]


def new_id() -> str:
    """A fresh 64-bit hex id (trace or span)."""
    return os.urandom(8).hex()


# Process-ambient trace context: ``(trace_id, parent_span_id)`` adopted
# from a parent process.  The *root* span opened while this is set joins
# the parent's trace instead of starting a new one.  Deliberately
# process-global, not thread-local: it is worker bootstrap state.
_ambient: tuple[str, str | None] | None = None


def adopt_context(trace_id: str, parent_span_id: str | None) -> None:
    """Join the trace of a parent process (worker bootstrap).

    After adoption, the next span opened at stack depth 0 carries
    ``trace_id`` and parents to ``parent_span_id``, and sink events
    emitted outside any span are stamped with ``trace_id``.
    """
    global _ambient
    _ambient = (trace_id, parent_span_id)


def clear_context() -> None:
    """Drop the adopted ambient context (tests; end of worker life)."""
    global _ambient
    _ambient = None


def ambient_context() -> tuple[str, str | None] | None:
    """The adopted ``(trace_id, parent_span_id)``, or ``None``."""
    return _ambient


# -- stitching ---------------------------------------------------------


def expand_paths(patterns: Sequence[str | Path]) -> list[Path]:
    """Expand literal paths and glob patterns into an ordered file list.

    Raises:
        FileNotFoundError: A pattern matched nothing and names no file.
    """
    paths: list[Path] = []
    for pattern in patterns:
        text = str(pattern)
        matches = sorted(glob_mod.glob(text))
        if not matches:
            if Path(text).exists():
                matches = [text]
            else:
                raise FileNotFoundError(f"no file matches {text!r}")
        paths.extend(Path(match) for match in matches)
    return paths


def read_events(
    paths: Sequence[str | Path],
) -> tuple[list[dict[str, Any]], int]:
    """Parse JSONL event files into one list; count unparseable lines.

    Events are ordered by ``(ts, pid, seq)`` so interleavings from
    multiple processes (or multiple files) come back in wall-clock
    order with per-process sequence numbers breaking ties.
    """
    events: list[dict[str, Any]] = []
    bad = 0
    for path in expand_paths(paths):
        for line in Path(path).read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError:
                bad += 1  # torn final write of a killed worker
                continue
            if isinstance(event, dict):
                events.append(event)
            else:
                bad += 1
    events.sort(
        key=lambda e: (e.get("ts", 0.0), e.get("pid", 0), e.get("seq", 0))
    )
    return events, bad


@dataclass
class SpanNode:
    """One span of a stitched trace, with its children."""

    event: dict[str, Any]
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def name(self) -> str:
        return str(self.event.get("name", "?"))

    @property
    def duration_s(self) -> float:
        return float(self.event.get("duration_s") or 0.0)

    @property
    def start(self) -> float:
        return float(self.event.get("ts") or 0.0)

    def self_time_s(self) -> float:
        """Duration not covered by child spans (floored at zero)."""
        return max(
            self.duration_s - sum(c.duration_s for c in self.children), 0.0
        )


@dataclass
class StitchedTrace:
    """All events of one ``trace_id``, with the span tree rebuilt.

    Attributes:
        trace_id: The trace identity (``None`` groups legacy events
            that carry no trace context).
        roots: Top-level spans (``parent_id`` absent).  A well-formed
            single-operation trace has exactly one.
        spans: Every span node keyed by ``span_id``.
        events: Non-span events of the trace (logs, telemetry), in
            ``(ts, pid, seq)`` order.
        orphan_spans: Spans whose ``parent_id`` names no known span --
            evidence of a lost parent (e.g. a killed worker whose
            enclosing span never closed).
    """

    trace_id: str | None
    roots: list[SpanNode] = field(default_factory=list)
    spans: dict[str, SpanNode] = field(default_factory=dict)
    events: list[dict[str, Any]] = field(default_factory=list)
    orphan_spans: list[SpanNode] = field(default_factory=list)

    @property
    def pids(self) -> list[int]:
        """Every process id that contributed an event, ascending."""
        seen = {
            event.get("pid")
            for event in self.events
        } | {node.event.get("pid") for node in self.spans.values()}
        return sorted(pid for pid in seen if pid is not None)


def stitch(events: Iterable[dict[str, Any]]) -> list[StitchedTrace]:
    """Group events by ``trace_id`` and rebuild each span tree.

    Returns one :class:`StitchedTrace` per distinct ``trace_id``, in
    first-appearance order; events without a ``trace_id`` (pre-stitching
    files) fold into a trailing ``trace_id=None`` group.
    """
    groups: dict[str | None, StitchedTrace] = {}
    order: list[str | None] = []
    for event in events:
        trace_id = event.get("trace_id")
        if trace_id not in groups:
            groups[trace_id] = StitchedTrace(trace_id=trace_id)
            order.append(trace_id)
        trace = groups[trace_id]
        if event.get("kind") == "span" and event.get("span_id"):
            trace.spans[event["span_id"]] = SpanNode(event)
        else:
            trace.events.append(event)
    # ``None`` last: identified traces render before the legacy bucket.
    order.sort(key=lambda t: t is None)
    for trace in groups.values():
        for node in trace.spans.values():
            parent_id = node.event.get("parent_id")
            if parent_id is None:
                trace.roots.append(node)
            elif parent_id in trace.spans:
                trace.spans[parent_id].children.append(node)
            else:
                trace.orphan_spans.append(node)
        for node in trace.spans.values():
            node.children.sort(key=lambda c: c.start)
        trace.roots.sort(key=lambda r: r.start)
    return [groups[trace_id] for trace_id in order]


def _format_span(node: SpanNode) -> str:
    event = node.event
    parts = [f"{node.name}  {node.duration_s:.3f}s"]
    if event.get("rss_mib") is not None:
        parts.append(f"rss {event['rss_mib']:.1f}MiB")
    if event.get("pid") is not None:
        parts.append(f"pid {event['pid']}")
    attrs = event.get("attrs") or {}
    parts.extend(f"{key}={value}" for key, value in attrs.items())
    return "  ".join(parts)


def _render_node(node: SpanNode, prefix: str, last: bool, out: list[str]) -> None:
    branch = "`- " if last else "|- "
    out.append(prefix + branch + _format_span(node))
    child_prefix = prefix + ("   " if last else "|  ")
    for index, child in enumerate(node.children):
        _render_node(
            child, child_prefix, index == len(node.children) - 1, out
        )


def render_trace(trace: StitchedTrace) -> str:
    """Render one stitched trace as an indented span tree."""
    label = trace.trace_id or "(no trace context)"
    kinds: dict[str, int] = {}
    for event in trace.events:
        kind = str(event.get("kind", "?"))
        kinds[kind] = kinds.get(kind, 0) + 1
    summary = ", ".join(
        f"{count} {kind}" for kind, count in sorted(kinds.items())
    )
    lines = [
        f"trace {label}  "
        f"({len(trace.roots)} root(s), {len(trace.spans)} span(s), "
        f"pids {trace.pids or '[]'}"
        + (f", {summary}" if summary else "")
        + ")"
    ]
    for index, root in enumerate(trace.roots):
        _render_node(root, "", index == len(trace.roots) - 1, lines)
    for node in trace.orphan_spans:
        lines.append(
            f"!- orphan (parent {node.event.get('parent_id')!r} missing): "
            + _format_span(node)
        )
    return "\n".join(lines)


def folded_stacks(trace: StitchedTrace) -> list[str]:
    """Folded-stack lines (``a;b;c <microseconds>``) for flamegraphs.

    Each span contributes its *self* time (duration minus child span
    durations), so the flamegraph's widths add up exactly to each
    root's wall-clock.  Orphan spans fold under a synthetic
    ``(orphaned)`` frame rather than disappearing.
    """
    lines: list[str] = []

    def walk(node: SpanNode, stack: list[str]) -> None:
        stack = stack + [node.name]
        micros = round(node.self_time_s() * 1e6)
        lines.append(";".join(stack) + f" {micros}")
        for child in node.children:
            walk(child, stack)

    for root in trace.roots:
        walk(root, [])
    for node in trace.orphan_spans:
        walk(node, ["(orphaned)"])
    return lines
