"""Opt-in profiling context managers behind ``--profile``/``--profile-mem``.

Both are deliberately zero-cost when unused (plain ``contextmanager``
wrappers around stdlib profilers) and print to *stderr* so the CLI's
stdout tables stay machine-consumable.

:func:`profiled` answers "where did the CPU time go" (cProfile, top-N
by cumulative time); :func:`memory_profiled` answers "what allocated
the memory" (tracemalloc, top-N allocation sites).  tracemalloc's
allocation hooks slow hot paths several-fold, which is exactly why it
is opt-in here rather than part of :func:`repro.obs.spans.span`.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import sys
import tracemalloc
from contextlib import contextmanager
from typing import Iterator, TextIO

__all__ = ["memory_profiled", "profiled"]


@contextmanager
def profiled(
    *, top: int = 25, out: TextIO | None = None, sort: str = "cumulative"
) -> Iterator[cProfile.Profile]:
    """Run the block under :mod:`cProfile`; print the top-N on exit.

    Args:
        top: Number of rows of the stats table to print.
        out: Destination stream (default ``sys.stderr``).
        sort: A :mod:`pstats` sort key (``"cumulative"``, ``"tottime"``).
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        buffer = io.StringIO()
        stats = pstats.Stats(profiler, stream=buffer)
        stats.sort_stats(sort).print_stats(top)
        stream = out if out is not None else sys.stderr
        stream.write(f"--- cProfile (top {top} by {sort}) ---\n")
        stream.write(buffer.getvalue())


@contextmanager
def memory_profiled(
    *, top: int = 15, out: TextIO | None = None
) -> Iterator[None]:
    """Run the block under :mod:`tracemalloc`; print top allocators.

    Reports the top-N allocation sites by size at the block's peak,
    plus the traced current/peak totals.  Nested use keeps tracemalloc
    running if it was already started by an outer scope.
    """
    already_tracing = tracemalloc.is_tracing()
    if not already_tracing:
        tracemalloc.start()
    try:
        yield
    finally:
        snapshot = tracemalloc.take_snapshot()
        current, peak = tracemalloc.get_traced_memory()
        if not already_tracing:
            tracemalloc.stop()
        stream = out if out is not None else sys.stderr
        stream.write(
            f"--- tracemalloc (top {top} sites; current "
            f"{current / 2**20:.1f} MiB, peak {peak / 2**20:.1f} MiB) ---\n"
        )
        for stat in snapshot.statistics("lineno")[:top]:
            stream.write(f"{stat}\n")
