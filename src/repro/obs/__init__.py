"""Structured observability: metrics, spans, event log, profiling.

The repo's entire purpose is *measuring costs* -- rounds against the
``⌊log_3(2|W|+1)⌋ - 1`` lower bound, message counts, certificate
wall-clock -- so measurement itself is a first-class subsystem:

* :mod:`repro.obs.metrics` -- a process-local :class:`MetricsRegistry`
  of counters, gauges, and histograms.  Snapshots are plain dicts and
  registries merge losslessly, so per-worker registries from the
  experiment process pool aggregate into one run-wide view.
* :mod:`repro.obs.spans` -- ``with span("experiment.run", ...):``
  tracing with wall-clock and peak-RSS per span, arbitrary nesting, and
  a JSONL event sink shared with the structured logger.
* :mod:`repro.obs.logger` -- ``logging``-based structured logging under
  the ``repro.*`` namespace (console and/or JSONL).
* :mod:`repro.obs.profiling` -- opt-in :mod:`cProfile` and
  :mod:`tracemalloc` context managers behind ``--profile`` /
  ``--profile-mem``.
* :mod:`repro.obs.stats` -- ``repro stats PATH``: summarise a metrics
  snapshot or JSONL event file into tables.

Everything is dependency-free stdlib and cheap when idle: counters are
dict increments, spans are two ``perf_counter`` calls, and per-round
engine logging is gated on ``isEnabledFor(DEBUG)``.
"""

from repro.obs.logger import configure_logging, get_logger
from repro.obs.metrics import (
    MetricsRegistry,
    counter,
    gauge,
    get_registry,
    observe,
    use_registry,
)
from repro.obs.profiling import memory_profiled, profiled
from repro.obs.spans import JsonlSink, Span, add_sink, remove_sink, span
from repro.obs.stats import summarize_stats_file

__all__ = [
    "JsonlSink",
    "MetricsRegistry",
    "Span",
    "add_sink",
    "configure_logging",
    "counter",
    "gauge",
    "get_logger",
    "get_registry",
    "memory_profiled",
    "observe",
    "profiled",
    "remove_sink",
    "span",
    "summarize_stats_file",
    "use_registry",
]
