"""Structured observability: metrics, spans, event log, profiling.

The repo's entire purpose is *measuring costs* -- rounds against the
``⌊log_3(2|W|+1)⌋ - 1`` lower bound, message counts, certificate
wall-clock -- so measurement itself is a first-class subsystem:

* :mod:`repro.obs.metrics` -- a process-local :class:`MetricsRegistry`
  of counters, gauges, and histograms.  Snapshots are plain dicts and
  registries merge losslessly, so per-worker registries from the
  experiment process pool aggregate into one run-wide view.
* :mod:`repro.obs.spans` -- ``with span("experiment.run", ...):``
  tracing with wall-clock and peak-RSS per span, arbitrary nesting, and
  a JSONL event sink shared with the structured logger.
* :mod:`repro.obs.logger` -- ``logging``-based structured logging under
  the ``repro.*`` namespace (console and/or JSONL).
* :mod:`repro.obs.profiling` -- opt-in :mod:`cProfile` and
  :mod:`tracemalloc` context managers behind ``--profile`` /
  ``--profile-mem``.
* :mod:`repro.obs.stats` -- ``repro stats PATH...``: summarise (and
  merge) metrics snapshots and JSONL event files into tables.
* :mod:`repro.obs.telemetry` -- sampled per-round engine telemetry
  (``--telemetry [every=K]``): informed/terminated counts, traffic,
  and graph size as ``kind: "telemetry"`` JSONL events.
* :mod:`repro.obs.trace` -- trace identity (``trace_id`` / ``span_id``
  / ``parent_id``), cross-process context propagation, and stitching of
  per-worker JSONL files into one ordered span tree (``repro trace``).
* :mod:`repro.obs.bench` -- the standardized benchmark record schema,
  the append-only ``BENCH_trajectory.json`` history, and the regression
  report behind ``repro bench-report``.

Everything is dependency-free stdlib and cheap when idle: counters are
dict increments, spans are two ``perf_counter`` calls, disabled
telemetry is one ``is not None`` check per round, and per-round engine
logging is gated on ``isEnabledFor(DEBUG)``.
"""

from repro.obs.logger import configure_logging, get_logger
from repro.obs.metrics import (
    MetricsRegistry,
    counter,
    gauge,
    get_registry,
    observe,
    use_registry,
)
from repro.obs.profiling import memory_profiled, profiled
from repro.obs.spans import (
    JsonlSink,
    Span,
    add_sink,
    adopt_worker_context,
    emit_event,
    propagation_context,
    remove_sink,
    span,
)
from repro.obs.stats import summarize_stats_file, summarize_stats_files
from repro.obs.telemetry import Telemetry, telemetry_enabled
from repro.obs.trace import StitchedTrace, read_events, render_trace, stitch

__all__ = [
    "JsonlSink",
    "MetricsRegistry",
    "Span",
    "StitchedTrace",
    "Telemetry",
    "add_sink",
    "adopt_worker_context",
    "configure_logging",
    "counter",
    "emit_event",
    "gauge",
    "get_logger",
    "get_registry",
    "memory_profiled",
    "observe",
    "profiled",
    "propagation_context",
    "read_events",
    "remove_sink",
    "render_trace",
    "span",
    "stitch",
    "summarize_stats_file",
    "summarize_stats_files",
    "telemetry_enabled",
    "use_registry",
]
