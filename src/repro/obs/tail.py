"""Follow a live sweep: ``repro tail`` over journal + event files.

A running ``repro all --jobs N --cache-dir D --log-json E`` leaves two
append-only JSONL streams behind: the checkpoint journal
(``D/journal.jsonl`` -- task lifecycle) and the event log (``E`` --
spans, log records, round telemetry, from every worker process).  This
module renders both as one human-readable feed:

* one pass by default (print what is there now and exit -- scriptable),
* ``--follow`` to keep polling for appended lines until interrupted,

Partial trailing lines (a writer mid-``write``) are left in the buffer
until their newline arrives, so a torn line is delayed, never
mangled.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Iterator, Sequence, TextIO

__all__ = ["format_record", "tail"]

#: Seconds between polls in follow mode.
POLL_S = 0.5


def format_record(record: dict[str, Any]) -> str:
    """One JSONL record as a human-readable feed line."""
    if "event" in record:  # journal lifecycle line
        event = record["event"]
        parts = [f"journal {event}"]
        for key in ("task", "experiment", "attempt", "tasks", "failures"):
            if key in record:
                parts.append(f"{key}={record[key]}")
        if record.get("error"):
            parts.append(f"error={record['error']}")
        return "  ".join(parts)
    kind = record.get("kind")
    if kind == "span":
        duration = record.get("duration_s")
        timing = f"{duration:.3f}s" if duration is not None else "?"
        pid = record.get("pid", "?")
        return f"span {record.get('name', '?')}  {timing}  pid={pid}"
    if kind == "log":
        line = (
            f"{str(record.get('level', '?')).lower():<8}"
            f"{record.get('logger', '?')}: {record.get('msg', '')}"
        )
        extras = {
            key: value
            for key, value in record.items()
            if key not in ("kind", "ts", "level", "logger", "msg", "pid", "seq", "trace_id")
        }
        if extras:
            line += "  " + " ".join(f"{k}={v}" for k, v in extras.items())
        return line
    if kind == "telemetry":
        return (
            f"telemetry {record.get('engine', '?')} "
            f"round={record.get('round')} "
            f"informed={record.get('informed')}/{record.get('nodes')} "
            f"delivered={record.get('delivered')} "
            f"lanes={record.get('lanes_active')}"
        )
    return json.dumps(record, default=repr)


class _FileCursor:
    """Incremental reader of whole lines from one append-only file."""

    def __init__(self, path: Path) -> None:
        self.path = path
        self.offset = 0

    def new_lines(self) -> Iterator[str]:
        try:
            with open(self.path, "r", encoding="utf-8") as stream:
                stream.seek(self.offset)
                chunk = stream.read()
        except OSError:
            return  # not created yet (follow mode) or vanished
        end = chunk.rfind("\n")
        if end < 0:
            return  # only a torn partial line so far
        self.offset += end + 1
        for line in chunk[: end + 1].splitlines():
            line = line.strip()
            if line:
                yield line


def tail(
    paths: Sequence[str | Path],
    *,
    follow: bool = False,
    poll_s: float = POLL_S,
    stream: TextIO,
    max_polls: int | None = None,
) -> int:
    """Render the files' records to ``stream``; returns lines printed.

    Args:
        paths: Journal and/or JSONL event files.  In one-pass mode each
            must exist; in follow mode missing files are awaited.
        follow: Keep polling for appended lines until interrupted.
        poll_s: Seconds between polls in follow mode.
        stream: Output stream.
        max_polls: Follow-mode poll budget (tests); ``None`` is forever.

    Raises:
        FileNotFoundError: One-pass mode and a path does not exist.
    """
    cursors = [_FileCursor(Path(path)) for path in paths]
    if not follow:
        for cursor in cursors:
            if not cursor.path.exists():
                raise FileNotFoundError(f"no such file: {cursor.path}")
    printed = 0
    polls = 0
    while True:
        for cursor in cursors:
            prefix = f"[{cursor.path.name}] " if len(cursors) > 1 else ""
            for line in cursor.new_lines():
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if isinstance(record, dict):
                    stream.write(prefix + format_record(record) + "\n")
                    printed += 1
        stream.flush()
        if not follow:
            return printed
        polls += 1
        if max_polls is not None and polls >= max_polls:
            return printed
        try:
            time.sleep(poll_s)
        except KeyboardInterrupt:
            return printed
