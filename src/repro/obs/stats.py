"""Summarise observability artifacts: ``repro stats PATH``.

Accepts either artifact the CLI can produce and renders aligned text
tables (via :func:`repro.analysis.tables.render_table`):

* a **metrics snapshot** (``--metrics-out``): one JSON object with
  ``counters`` / ``gauges`` / ``histograms`` keys;
* a **JSONL event log** (``--log-json``): one JSON object per line,
  ``kind: "span"`` events and ``kind: "log"`` records interleaved.

For event logs, spans are aggregated per name (count, total, mean, max
seconds) -- the quickest way to see *why* a sweep was slow without
re-running it under a profiler.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.analysis.tables import render_table

__all__ = ["summarize_events", "summarize_snapshot", "summarize_stats_file"]


def summarize_snapshot(snapshot: dict[str, Any]) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` dict as tables."""
    sections: list[str] = []
    counters = snapshot.get("counters", {})
    if counters:
        rows = [
            {"counter": name, "value": value}
            for name, value in sorted(counters.items())
        ]
        sections.append(render_table(rows, ["counter", "value"], title="Counters"))
    gauges = snapshot.get("gauges", {})
    if gauges:
        rows = [
            {"gauge": name, "value": value}
            for name, value in sorted(gauges.items())
        ]
        sections.append(render_table(rows, ["gauge", "value"], title="Gauges"))
    histograms = snapshot.get("histograms", {})
    if histograms:
        rows = [
            {
                "histogram": name,
                "count": hist["count"],
                "total": hist["total"],
                "mean": hist["total"] / hist["count"] if hist["count"] else 0.0,
                "min": hist["min"],
                "max": hist["max"],
            }
            for name, hist in sorted(histograms.items())
        ]
        sections.append(
            render_table(
                rows,
                ["histogram", "count", "total", "mean", "min", "max"],
                title="Histograms",
            )
        )
    if not sections:
        return "empty metrics snapshot"
    return "\n\n".join(sections)


def summarize_events(events: list[dict[str, Any]]) -> str:
    """Aggregate a JSONL event stream (spans + log records) as tables."""
    spans: dict[str, dict[str, float]] = {}
    levels: dict[str, int] = {}
    other = 0
    for event in events:
        kind = event.get("kind")
        if kind == "span":
            agg = spans.setdefault(
                event.get("name", "?"),
                {"count": 0, "total": 0.0, "max": 0.0},
            )
            duration = float(event.get("duration_s") or 0.0)
            agg["count"] += 1
            agg["total"] += duration
            agg["max"] = max(agg["max"], duration)
        elif kind == "log":
            level = str(event.get("level", "?"))
            levels[level] = levels.get(level, 0) + 1
        else:
            other += 1
    sections: list[str] = []
    if spans:
        rows = [
            {
                "span": name,
                "count": int(agg["count"]),
                "total s": agg["total"],
                "mean s": agg["total"] / agg["count"],
                "max s": agg["max"],
            }
            # Slowest in total first: that is what one is looking for.
            for name, agg in sorted(
                spans.items(), key=lambda item: -item[1]["total"]
            )
        ]
        sections.append(
            render_table(
                rows,
                ["span", "count", "total s", "mean s", "max s"],
                title=f"Spans ({sum(int(a['count']) for a in spans.values())} events)",
            )
        )
    if levels:
        rows = [
            {"level": level, "records": count}
            for level, count in sorted(levels.items())
        ]
        sections.append(
            render_table(rows, ["level", "records"], title="Log records")
        )
    if other:
        sections.append(f"(plus {other} events of unknown kind)")
    if not sections:
        return "no events"
    return "\n\n".join(sections)


def summarize_stats_file(path: str | Path) -> str:
    """Summarise ``path`` -- a metrics snapshot or a JSONL event log.

    Format is sniffed from the content: a single JSON object with a
    ``counters``/``gauges``/``histograms`` key is a snapshot; anything
    else is parsed line by line as events (unparseable lines are
    counted, not fatal).

    Raises:
        OSError: ``path`` cannot be read.
    """
    text = Path(path).read_text()
    try:
        payload = json.loads(text)
    except ValueError:
        payload = None
    if isinstance(payload, dict) and (
        {"counters", "gauges", "histograms"} & payload.keys()
    ):
        return summarize_snapshot(payload)
    events: list[dict[str, Any]] = []
    bad = 0
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except ValueError:
            bad += 1
            continue
        if isinstance(event, dict):
            events.append(event)
        else:
            bad += 1
    summary = summarize_events(events)
    if bad:
        summary += f"\n\n({bad} unparseable line(s) skipped)"
    return summary
