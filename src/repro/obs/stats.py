"""Summarise observability artifacts: ``repro stats PATH``.

Accepts either artifact the CLI can produce and renders aligned text
tables (via :func:`repro.analysis.tables.render_table`):

* a **metrics snapshot** (``--metrics-out``): one JSON object with
  ``counters`` / ``gauges`` / ``histograms`` keys;
* a **JSONL event log** (``--log-json``): one JSON object per line,
  ``kind: "span"`` events and ``kind: "log"`` records interleaved.

For event logs, spans are aggregated per name (count, total, mean, max
seconds) -- the quickest way to see *why* a sweep was slow without
re-running it under a profiler.  Round telemetry records
(:mod:`repro.obs.telemetry`) are aggregated per engine.

``repro stats`` accepts several paths (and shell-style globs):
snapshots merge through :meth:`MetricsRegistry.merge` and event logs
concatenate, so the per-worker artifacts of a sweep summarise as one.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Sequence

from repro.analysis.tables import render_table
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import expand_paths

__all__ = [
    "summarize_events",
    "summarize_snapshot",
    "summarize_stats_file",
    "summarize_stats_files",
]


def summarize_snapshot(snapshot: dict[str, Any]) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` dict as tables."""
    sections: list[str] = []
    counters = snapshot.get("counters", {})
    if counters:
        rows = [
            {"counter": name, "value": value}
            for name, value in sorted(counters.items())
        ]
        sections.append(render_table(rows, ["counter", "value"], title="Counters"))
    gauges = snapshot.get("gauges", {})
    if gauges:
        rows = [
            {"gauge": name, "value": value}
            for name, value in sorted(gauges.items())
        ]
        sections.append(render_table(rows, ["gauge", "value"], title="Gauges"))
    histograms = snapshot.get("histograms", {})
    if histograms:
        rows = [
            {
                "histogram": name,
                "count": hist["count"],
                "total": hist["total"],
                "mean": hist["total"] / hist["count"] if hist["count"] else 0.0,
                "min": hist["min"],
                "max": hist["max"],
            }
            for name, hist in sorted(histograms.items())
        ]
        sections.append(
            render_table(
                rows,
                ["histogram", "count", "total", "mean", "min", "max"],
                title="Histograms",
            )
        )
    if not sections:
        return "empty metrics snapshot"
    return "\n\n".join(sections)


def summarize_events(events: list[dict[str, Any]]) -> str:
    """Aggregate a JSONL event stream (spans + log records) as tables."""
    spans: dict[str, dict[str, float]] = {}
    levels: dict[str, int] = {}
    telemetry: dict[str, dict[str, int]] = {}
    other = 0
    for event in events:
        kind = event.get("kind")
        if kind == "span":
            agg = spans.setdefault(
                event.get("name", "?"),
                {"count": 0, "total": 0.0, "max": 0.0},
            )
            duration = float(event.get("duration_s") or 0.0)
            agg["count"] += 1
            agg["total"] += duration
            agg["max"] = max(agg["max"], duration)
        elif kind == "log":
            level = str(event.get("level", "?"))
            levels[level] = levels.get(level, 0) + 1
        elif kind == "telemetry":
            agg_t = telemetry.setdefault(
                str(event.get("engine", "?")),
                {"records": 0, "last_round": 0, "delivered": 0},
            )
            agg_t["records"] += 1
            agg_t["last_round"] = max(
                agg_t["last_round"], int(event.get("round", 0))
            )
            agg_t["delivered"] += int(event.get("delivered", 0))
        else:
            other += 1
    sections: list[str] = []
    if spans:
        rows = [
            {
                "span": name,
                "count": int(agg["count"]),
                "total s": agg["total"],
                "mean s": agg["total"] / agg["count"],
                "max s": agg["max"],
            }
            # Slowest in total first: that is what one is looking for.
            for name, agg in sorted(
                spans.items(), key=lambda item: -item[1]["total"]
            )
        ]
        sections.append(
            render_table(
                rows,
                ["span", "count", "total s", "mean s", "max s"],
                title=f"Spans ({sum(int(a['count']) for a in spans.values())} events)",
            )
        )
    if levels:
        rows = [
            {"level": level, "records": count}
            for level, count in sorted(levels.items())
        ]
        sections.append(
            render_table(rows, ["level", "records"], title="Log records")
        )
    if telemetry:
        rows = [
            {
                "engine": engine,
                "records": agg["records"],
                "last round": agg["last_round"],
                "delivered": agg["delivered"],
            }
            for engine, agg in sorted(telemetry.items())
        ]
        sections.append(
            render_table(
                rows,
                ["engine", "records", "last round", "delivered"],
                title="Round telemetry",
            )
        )
    if other:
        sections.append(f"(plus {other} events of unknown kind)")
    if not sections:
        return "no events"
    return "\n\n".join(sections)


def _sniff(text: str) -> tuple[dict[str, Any] | None, list[dict[str, Any]], int]:
    """Classify one file's content: ``(snapshot, events, bad_lines)``.

    A single JSON object with a ``counters``/``gauges``/``histograms``
    key is a metrics snapshot; anything else is parsed line by line as
    events (unparseable lines are counted, not fatal).
    """
    try:
        payload = json.loads(text)
    except ValueError:
        payload = None
    if isinstance(payload, dict) and (
        {"counters", "gauges", "histograms"} & payload.keys()
    ):
        return payload, [], 0
    events: list[dict[str, Any]] = []
    bad = 0
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except ValueError:
            bad += 1
            continue
        if isinstance(event, dict):
            events.append(event)
        else:
            bad += 1
    return None, events, bad


def summarize_stats_file(path: str | Path) -> str:
    """Summarise ``path`` -- a metrics snapshot or a JSONL event log.

    Raises:
        OSError: ``path`` cannot be read.
    """
    return summarize_stats_files([str(path)])


def summarize_stats_files(patterns: Sequence[str | Path]) -> str:
    """Summarise several artifacts (paths or globs) as one report.

    Metrics snapshots merge into a single registry (counters add,
    histograms combine, gauges last-write-wins in argument order);
    event logs concatenate before aggregation.  Mixing kinds renders
    both sections.

    Raises:
        FileNotFoundError: A pattern matched nothing.
        OSError: A matched path cannot be read.
    """
    paths = expand_paths([str(pattern) for pattern in patterns])
    merged = MetricsRegistry()
    snapshots = 0
    events: list[dict[str, Any]] = []
    bad = 0
    for path in paths:
        snapshot, file_events, file_bad = _sniff(Path(path).read_text())
        if snapshot is not None:
            merged.merge(snapshot)
            snapshots += 1
        events.extend(file_events)
        bad += file_bad
    sections: list[str] = []
    if snapshots:
        sections.append(summarize_snapshot(merged.snapshot()))
    if events or not snapshots:
        sections.append(summarize_events(events))
    summary = "\n\n".join(sections)
    if len(paths) > 1:
        summary += f"\n\n(merged from {len(paths)} file(s))"
    if bad:
        summary += f"\n\n({bad} unparseable line(s) skipped)"
    return summary
