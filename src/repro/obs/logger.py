"""Structured logging for the ``repro.*`` namespace.

Instrumented modules obtain loggers with :func:`get_logger` (always
rooted at ``repro``) and attach structured fields through ``extra``::

    _log = get_logger("simulation.engine")
    _log.debug("round executed", extra={"round_no": 3, "delivered": 12})

Nothing is printed until :func:`configure_logging` installs handlers --
library users keep full control of the root logger; the CLI calls it
from ``--log-level`` / ``--log-json``.  The JSONL handler writes into a
:class:`repro.obs.spans.JsonlSink`, so log records and span events
share one file and interleave chronologically.
"""

from __future__ import annotations

import logging
from typing import Any

from repro.obs.spans import JsonlSink, add_sink, remove_sink

__all__ = ["JsonlLogHandler", "configure_logging", "get_logger"]

ROOT = "repro"

# logging.LogRecord attributes that are bookkeeping, not user fields;
# anything else on a record came in through ``extra`` and is structured
# data we forward to the event sink.
_RECORD_FIELDS = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"message", "asctime", "taskName"}


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` namespace (``repro.<name>``)."""
    if not name or name == ROOT:
        return logging.getLogger(ROOT)
    if name.startswith(ROOT + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT}.{name}")


def record_extras(record: logging.LogRecord) -> dict[str, Any]:
    """The structured fields a record carries beyond the message."""
    return {
        key: value
        for key, value in record.__dict__.items()
        if key not in _RECORD_FIELDS
    }


class JsonlLogHandler(logging.Handler):
    """Forward log records to a :class:`JsonlSink` as ``kind: "log"``."""

    def __init__(self, sink: JsonlSink, level: int = logging.NOTSET) -> None:
        super().__init__(level)
        self.sink = sink

    def emit(self, record: logging.LogRecord) -> None:
        try:
            event: dict[str, Any] = {
                "kind": "log",
                "ts": round(record.created, 6),
                "level": record.levelname,
                "logger": record.name,
                "msg": record.getMessage(),
            }
            # Extras must not clobber the envelope keys: a record with
            # extra={"kind": ...} would otherwise stop being a log event
            # and break downstream kind-dispatch (stats, trace, tail).
            for key, value in record_extras(record).items():
                event.setdefault(key, value)
            self.sink.emit(event)
        except Exception:
            self.handleError(record)


class _ConsoleFormatter(logging.Formatter):
    """``HH:MM:SS level logger: msg key=value ...`` on one line."""

    default_time_format = "%H:%M:%S"

    def format(self, record: logging.LogRecord) -> str:
        head = (
            f"{self.formatTime(record)} {record.levelname.lower():7s} "
            f"{record.name}: {record.getMessage()}"
        )
        extras = record_extras(record)
        if extras:
            head += " " + " ".join(f"{k}={v}" for k, v in extras.items())
        return head


def configure_logging(
    level: str | int | None = None,
    *,
    json_path: str | None = None,
) -> list[logging.Handler]:
    """Install handlers on the ``repro`` root logger.

    Args:
        level: Threshold for the human-readable stderr handler (name or
            number); ``None`` installs no console handler.
        json_path: Append every record (and, via the shared sink, every
            span event) to this JSONL file; ``None`` installs no sink.

    Returns:
        The installed handlers, for later :func:`teardown_logging`.
        Calling with both arguments ``None`` is a no-op.
    """
    root = logging.getLogger(ROOT)
    handlers: list[logging.Handler] = []
    if level is not None:
        if isinstance(level, str):
            level = logging.getLevelName(level.upper())
        console = logging.StreamHandler()
        console.setLevel(level)
        console.setFormatter(_ConsoleFormatter())
        handlers.append(console)
    if json_path is not None:
        sink = add_sink(JsonlSink(json_path))
        handlers.append(JsonlLogHandler(sink, level=logging.DEBUG))
    for handler in handlers:
        root.addHandler(handler)
    if handlers:
        root.setLevel(min(handler.level or logging.DEBUG for handler in handlers))
    return handlers


def teardown_logging(handlers: list[logging.Handler]) -> None:
    """Remove handlers installed by :func:`configure_logging`."""
    root = logging.getLogger(ROOT)
    for handler in handlers:
        root.removeHandler(handler)
        if isinstance(handler, JsonlLogHandler):
            remove_sink(handler.sink)
            handler.sink.close()
        handler.close()
