"""The experiment registry: every DESIGN.md experiment, runnable by name.

Each experiment is a function returning an :class:`ExperimentResult`:
a table of rows plus a dictionary of named boolean *checks* -- the
mechanically verified claims ("leader states equal through round r",
"measured rounds == theoretical bound", ...).  The CLI renders the
table; the benchmark suite asserts every check.

Implementations live in :mod:`repro.analysis.experiments`; this module
wires names to :class:`ExperimentSpec` entries.  A spec declares which
*sweep-wide options* (``backend``, ``jobs``, ``seed``) the experiment
opts into, so callers that fan one option across many experiments
(``repro all --backend fast``) apply it to exactly the experiments that
understand it -- declaratively, with no signature sniffing.

The one entry point is :func:`run_experiment` on an
:class:`ExperimentRequest`: a typed description of a single run
(experiment id, explicit params, opt-in option fields, cache policy).
``run_experiment("id", key=value)`` remains as sugar and builds the
request internally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.analysis.tables import format_value, render_table

__all__ = [
    "ExperimentRequest",
    "ExperimentResult",
    "ExperimentSpec",
    "available_experiments",
    "experiment_options",
    "get_experiment",
    "get_spec",
    "run_experiment",
]

#: Sweep-wide option fields an experiment may opt into declaratively
#: (the keys of :attr:`ExperimentSpec.options`).
OPTION_FIELDS = ("backend", "jobs", "seed")


@dataclass
class ExperimentResult:
    """Output of one experiment run.

    Attributes:
        experiment: The registry id (e.g. ``"tab-kernel-structure"``).
        title: Human-readable title including the paper artifact.
        headers: Column order of the table.
        rows: The table rows.
        checks: Named boolean verification outcomes; an experiment
            "passes" when all are true.
        notes: Free-form extra findings (fit summaries etc.).
    """

    experiment: str
    title: str
    headers: list[str]
    rows: list[dict[str, Any]]
    checks: dict[str, bool] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when every named check succeeded."""
        return all(self.checks.values())

    def failed_checks(self) -> list[str]:
        """Names of the checks that failed."""
        return [name for name, ok in self.checks.items() if not ok]

    def render(self) -> str:
        """Render the full report (title, table, checks, notes)."""
        lines = [render_table(self.rows, self.headers, title=self.title)]
        if self.notes:
            lines.append("")
            lines.extend(f"note: {note}" for note in self.notes)
        if self.checks:
            lines.append("")
            lines.extend(
                f"check: {name}: {'PASS' if ok else 'FAIL'}"
                for name, ok in self.checks.items()
            )
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serialisable dict (the result-cache wire format).

        Cell values that are not JSON-native scalars are rendered
        through :func:`repro.analysis.tables.format_value`, so a reload
        renders the identical table.
        """

        def cell(value: Any) -> Any:
            if value is None or isinstance(value, (bool, int, float, str)):
                return value
            return format_value(value)

        return {
            "experiment": self.experiment,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [
                {key: cell(value) for key, value in row.items()}
                for row in self.rows
            ],
            "checks": dict(self.checks),
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ExperimentResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            experiment=payload["experiment"],
            title=payload["title"],
            headers=list(payload["headers"]),
            rows=[dict(row) for row in payload["rows"]],
            checks=dict(payload["checks"]),
            notes=list(payload["notes"]),
        )


@dataclass(frozen=True)
class ExperimentSpec:
    """One registry entry: the function plus its declared option opt-ins.

    Attributes:
        fn: The experiment implementation.
        options: The subset of :data:`OPTION_FIELDS` this experiment
            accepts as keyword arguments.  The declaration replaces the
            old ``experiment_accepts`` signature inspection; a test
            asserts every declaration matches the real signature.
    """

    fn: Callable[..., ExperimentResult]
    options: frozenset[str] = frozenset()


@dataclass(frozen=True)
class ExperimentRequest:
    """A typed, self-contained description of one experiment run.

    This is the unit the CLI, the sweep runtime, and the result cache
    all speak: everything needed to run (and key) an experiment lives
    in one value instead of being smuggled through ``**kwargs``.

    Attributes:
        experiment: Registry id (see :func:`available_experiments`).
        params: Explicit parameter overrides, forwarded verbatim.
        backend: Simulation backend (``"fast"``); applied only to
            experiments that declare the ``backend`` option.  ``None``
            or ``"object"`` (the engine default) contributes nothing,
            so cache keys stay identical to pre-``--backend`` runs.
        jobs: Worker processes granted to the experiment's *internal*
            sweeps; applied only to experiments declaring ``jobs``.
            (Pool-level parallelism across experiments is the sweep
            runner's ``jobs`` argument, not this field.)
        seed: Randomness seed; applied only to experiments declaring
            ``seed``.
        cache_policy: ``"reuse"`` (load a cached result, else run and
            store), ``"refresh"`` (always run, store) or ``"off"``
            (never touch the cache).
    """

    experiment: str
    params: Mapping[str, Any] = field(default_factory=dict)
    backend: str | None = None
    jobs: int | None = None
    seed: int | None = None
    cache_policy: str = "reuse"

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", dict(self.params))
        if self.cache_policy not in ("reuse", "refresh", "off"):
            raise ValueError(
                f"cache_policy must be 'reuse', 'refresh' or 'off', "
                f"got {self.cache_policy!r}"
            )

    def effective_params(self) -> dict[str, Any]:
        """The keyword arguments this request resolves to.

        Explicit ``params`` first, then each option field the
        experiment declares (explicit params win on conflict).  The
        result doubles as the cache key: byte-identical to the dict the
        pre-request API produced for the same run, so existing caches
        keep hitting.
        """
        declared = experiment_options(self.experiment)
        params = dict(self.params)
        for name in OPTION_FIELDS:
            value = getattr(self, name)
            if name == "backend" and value == "object":
                value = None  # engine default: keyless, like pre-backend runs
            if value is not None and name in declared:
                params.setdefault(name, value)
        return params

    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready description (the service/job wire format).

        Default field values are omitted, so the document stays as
        terse as the constructor call; inverse of :meth:`from_dict`.
        """
        payload: dict[str, Any] = {"experiment": self.experiment}
        if self.params:
            payload["params"] = dict(self.params)
        for name in OPTION_FIELDS:
            value = getattr(self, name)
            if value is not None:
                payload[name] = value
        if self.cache_policy != "reuse":
            payload["cache_policy"] = self.cache_policy
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExperimentRequest":
        """Parse a :meth:`to_dict` document; unknown keys are rejected.

        Raises:
            ValueError: ``payload`` is missing ``experiment`` or names
                an unknown key (the message names it).
        """
        known = ("experiment", "params", *OPTION_FIELDS, "cache_policy")
        for key in payload:
            if key not in known:
                raise ValueError(
                    f"unknown ExperimentRequest key {key!r}; valid keys: "
                    f"{', '.join(known)}"
                )
        if "experiment" not in payload:
            raise ValueError("ExperimentRequest payload needs 'experiment'")
        return cls(**dict(payload))


def _build_registry() -> dict[str, ExperimentSpec]:
    # Imported lazily so `import repro` stays fast and dependency-light.
    from repro.analysis.experiments import (
        adversaries_ablation,
        bandwidth,
        baselines,
        corollary,
        dissemination,
        dynamics,
        figures,
        general_k,
        kernel,
        lower_bound,
        naming,
        oracle,
        randomness,
        upper_vs_lower,
    )

    def spec(
        fn: Callable[..., ExperimentResult], *options: str
    ) -> ExperimentSpec:
        unknown = set(options) - set(OPTION_FIELDS)
        if unknown:
            raise ValueError(f"unknown option fields: {sorted(unknown)}")
        return ExperimentSpec(fn=fn, options=frozenset(options))

    return {
        "fig1-pd2-example": spec(figures.fig1_pd2_example),
        "fig2-transformation": spec(figures.fig2_transformation),
        "fig3-indistinguishable-r0": spec(figures.fig3_indistinguishable_r0),
        "fig4-indistinguishable-r1": spec(figures.fig4_indistinguishable_r1),
        "tab-kernel-structure": spec(kernel.kernel_structure),
        "tab-ambiguity-horizon": spec(
            lower_bound.ambiguity_horizon_table, "jobs"
        ),
        "fig-counting-rounds-vs-n": spec(
            lower_bound.counting_rounds_vs_n, "jobs"
        ),
        "tab-corollary1-diameter": spec(corollary.corollary1_table, "backend"),
        "tab-oracle-gap": spec(oracle.oracle_gap),
        "tab-star-pd1": spec(oracle.star_pd1, "backend"),
        "tab-baselines": spec(baselines.baselines_table, "backend"),
        "tab-general-k": spec(general_k.general_k_structure),
        "tab-adaptive-adversary": spec(
            adversaries_ablation.adaptive_adversary_ablation
        ),
        "tab-adversarial-randomness": spec(
            randomness.adversarial_randomness, "seed"
        ),
        "tab-naming-vs-counting": spec(naming.naming_vs_counting),
        "tab-dynamics-families": spec(
            dynamics.dynamics_families, "backend", "seed"
        ),
        "tab-bandwidth": spec(bandwidth.bandwidth_table),
        "tab-token-dissemination": spec(
            dissemination.token_dissemination, "backend", "seed"
        ),
        "upper-vs-lower": spec(
            upper_vs_lower.upper_vs_lower, "backend", "seed"
        ),
    }


_REGISTRY: dict[str, ExperimentSpec] | None = None


def _registry() -> dict[str, ExperimentSpec]:
    global _REGISTRY
    if _REGISTRY is None:
        _REGISTRY = _build_registry()
    return _REGISTRY


def available_experiments() -> list[str]:
    """All experiment ids, in DESIGN.md order."""
    return list(_registry())


def get_spec(experiment: str) -> ExperimentSpec:
    """The :class:`ExperimentSpec` for an id.

    Raises:
        KeyError: Unknown experiment id (message lists valid ids).
    """
    registry = _registry()
    if experiment not in registry:
        raise KeyError(
            f"unknown experiment {experiment!r}; available: "
            f"{', '.join(registry)}"
        )
    return registry[experiment]


def get_experiment(experiment: str) -> Callable[..., ExperimentResult]:
    """The experiment function for an id.

    Raises:
        KeyError: Unknown experiment id (message lists valid ids).
    """
    return get_spec(experiment).fn


def experiment_options(experiment: str) -> frozenset[str]:
    """The sweep-wide option fields an experiment declares.

    The declarative replacement for the old ``experiment_accepts``
    signature sniffing: callers fanning one option across many
    experiments (``repro all --backend fast``) consult this to apply
    it to exactly the experiments that opted in.
    """
    return get_spec(experiment).options


def run_experiment(
    request: ExperimentRequest | str, /, **params: Any
) -> ExperimentResult:
    """Run one :class:`ExperimentRequest` (the single entry point).

    ``run_experiment("id", key=value)`` is accepted as sugar and builds
    the request internally, so simple call sites stay one-liners.

    Raises:
        KeyError: Unknown experiment id.
        TypeError: Keyword params combined with an explicit request
            (put them in :attr:`ExperimentRequest.params` instead).
    """
    if isinstance(request, str):
        request = ExperimentRequest(experiment=request, params=params)
    elif params:
        raise TypeError(
            "run_experiment(request) takes no extra keyword params; "
            "put them in ExperimentRequest.params"
        )
    return get_spec(request.experiment).fn(**request.effective_params())
