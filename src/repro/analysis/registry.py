"""The experiment registry: every DESIGN.md experiment, runnable by name.

Each experiment is a function returning an :class:`ExperimentResult`:
a table of rows plus a dictionary of named boolean *checks* -- the
mechanically verified claims ("leader states equal through round r",
"measured rounds == theoretical bound", ...).  The CLI renders the
table; the benchmark suite asserts every check.

Implementations live in :mod:`repro.analysis.experiments`; this module
only wires names to functions.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.analysis.tables import format_value, render_table

__all__ = [
    "ExperimentResult",
    "available_experiments",
    "experiment_accepts",
    "get_experiment",
    "run_experiment",
]


@dataclass
class ExperimentResult:
    """Output of one experiment run.

    Attributes:
        experiment: The registry id (e.g. ``"tab-kernel-structure"``).
        title: Human-readable title including the paper artifact.
        headers: Column order of the table.
        rows: The table rows.
        checks: Named boolean verification outcomes; an experiment
            "passes" when all are true.
        notes: Free-form extra findings (fit summaries etc.).
    """

    experiment: str
    title: str
    headers: list[str]
    rows: list[dict[str, Any]]
    checks: dict[str, bool] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when every named check succeeded."""
        return all(self.checks.values())

    def failed_checks(self) -> list[str]:
        """Names of the checks that failed."""
        return [name for name, ok in self.checks.items() if not ok]

    def render(self) -> str:
        """Render the full report (title, table, checks, notes)."""
        lines = [render_table(self.rows, self.headers, title=self.title)]
        if self.notes:
            lines.append("")
            lines.extend(f"note: {note}" for note in self.notes)
        if self.checks:
            lines.append("")
            lines.extend(
                f"check: {name}: {'PASS' if ok else 'FAIL'}"
                for name, ok in self.checks.items()
            )
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serialisable dict (the result-cache wire format).

        Cell values that are not JSON-native scalars are rendered
        through :func:`repro.analysis.tables.format_value`, so a reload
        renders the identical table.
        """

        def cell(value: Any) -> Any:
            if value is None or isinstance(value, (bool, int, float, str)):
                return value
            return format_value(value)

        return {
            "experiment": self.experiment,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [
                {key: cell(value) for key, value in row.items()}
                for row in self.rows
            ],
            "checks": dict(self.checks),
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ExperimentResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            experiment=payload["experiment"],
            title=payload["title"],
            headers=list(payload["headers"]),
            rows=[dict(row) for row in payload["rows"]],
            checks=dict(payload["checks"]),
            notes=list(payload["notes"]),
        )


def _build_registry() -> dict[str, Callable[..., ExperimentResult]]:
    # Imported lazily so `import repro` stays fast and dependency-light.
    from repro.analysis.experiments import (
        adversaries_ablation,
        bandwidth,
        baselines,
        corollary,
        dissemination,
        dynamics,
        figures,
        general_k,
        kernel,
        lower_bound,
        naming,
        oracle,
        randomness,
    )

    return {
        "fig1-pd2-example": figures.fig1_pd2_example,
        "fig2-transformation": figures.fig2_transformation,
        "fig3-indistinguishable-r0": figures.fig3_indistinguishable_r0,
        "fig4-indistinguishable-r1": figures.fig4_indistinguishable_r1,
        "tab-kernel-structure": kernel.kernel_structure,
        "tab-ambiguity-horizon": lower_bound.ambiguity_horizon_table,
        "fig-counting-rounds-vs-n": lower_bound.counting_rounds_vs_n,
        "tab-corollary1-diameter": corollary.corollary1_table,
        "tab-oracle-gap": oracle.oracle_gap,
        "tab-star-pd1": oracle.star_pd1,
        "tab-baselines": baselines.baselines_table,
        "tab-general-k": general_k.general_k_structure,
        "tab-adaptive-adversary": adversaries_ablation.adaptive_adversary_ablation,
        "tab-adversarial-randomness": randomness.adversarial_randomness,
        "tab-naming-vs-counting": naming.naming_vs_counting,
        "tab-dynamics-families": dynamics.dynamics_families,
        "tab-bandwidth": bandwidth.bandwidth_table,
        "tab-token-dissemination": dissemination.token_dissemination,
    }


_REGISTRY: dict[str, Callable[..., ExperimentResult]] | None = None


def _registry() -> dict[str, Callable[..., ExperimentResult]]:
    global _REGISTRY
    if _REGISTRY is None:
        _REGISTRY = _build_registry()
    return _REGISTRY


def available_experiments() -> list[str]:
    """All experiment ids, in DESIGN.md order."""
    return list(_registry())


def get_experiment(experiment: str) -> Callable[..., ExperimentResult]:
    """The experiment function for an id.

    Raises:
        KeyError: Unknown experiment id (message lists valid ids).
    """
    registry = _registry()
    if experiment not in registry:
        raise KeyError(
            f"unknown experiment {experiment!r}; available: "
            f"{', '.join(registry)}"
        )
    return registry[experiment]


def experiment_accepts(experiment: str, param: str) -> bool:
    """Whether an experiment's signature takes a keyword ``param``.

    Used for sweep-wide options (e.g. ``--backend``) that only some
    experiments understand: callers pass the option to exactly the
    experiments that accept it instead of breaking the rest.
    """
    parameters = inspect.signature(get_experiment(experiment)).parameters
    if param in parameters:
        return True
    return any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()
    )


def run_experiment(experiment: str, **params: Any) -> ExperimentResult:
    """Run an experiment by id with optional parameter overrides."""
    return get_experiment(experiment)(**params)
