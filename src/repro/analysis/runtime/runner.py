"""The fault-tolerant sweep executor behind ``repro all``.

Where the old :func:`repro.analysis.parallel.run_experiments` handed a
list of tasks to a ``ProcessPoolExecutor`` and died with the first
failure, :func:`run_sweep` owns each attempt's process directly -- one
``multiprocessing.Process`` per attempt, at most ``jobs`` alive at a
time -- which is what makes the fault-tolerance guarantees enforceable:

* **Timeouts**: each attempt carries a wall-clock deadline; a hung
  worker is ``terminate()``-d and the task retried (a shared pool
  cannot kill one hung worker without nuking its siblings).
* **Crash isolation**: a worker dying mid-task (OOM kill, segfault)
  surfaces as a :class:`~repro.analysis.runtime.errors.WorkerCrash`
  for *that task only*; the rest of the sweep is untouched.
* **Retries**: retryable failures re-queue with exponential backoff
  plus seeded jitter (:class:`~repro.analysis.runtime.retry
  .RetryPolicy`); fatal failures never retry and count against the
  sweep's ``max_failures`` budget.
* **Checkpointing**: every state transition is appended to the JSONL
  :class:`~repro.analysis.runtime.journal.Journal`, so ``resume=True``
  skips completed tasks (results reloaded from the cache) and
  re-queues in-flight ones -- a resumed sweep's tables and checks are
  identical to an uninterrupted run's.
* **Graceful degradation**: after ``degrade_after`` worker deaths the
  runner stops trusting process isolation, finishes the remaining
  tasks serially in-process, and records that provenance in the
  outcome (and hence the report).

Serial execution (``jobs <= 1``) runs attempts in-process with the
same retry/journal/cache pipeline; only preemptive timeouts need real
processes.  Metrics: every attempt runs under a fresh
:class:`~repro.obs.metrics.MetricsRegistry` whose snapshot is merged
into the caller's registry on success, so aggregated counters are
identical for serial, parallel, and resumed runs.
"""

from __future__ import annotations

import json
import multiprocessing
import time
from dataclasses import dataclass, field
from multiprocessing.connection import Connection, wait as connection_wait
from pathlib import Path
from typing import Any, Sequence

from repro.analysis.registry import (
    ExperimentRequest,
    ExperimentResult,
    available_experiments,
    get_spec,
    run_experiment,
)
from repro.analysis.runtime import faults as faults_mod
from repro.analysis.runtime.cache import ResultCache
from repro.analysis.runtime.errors import (
    RETRYABLE,
    SweepAborted,
    TaskTimeout,
    WorkerCrash,
    classify_error,
)
from repro.analysis.runtime.faults import FaultPlan
from repro.analysis.runtime.journal import (
    COMPLETED,
    Journal,
    JournalEntry,
    shard_of,
)
from repro.analysis.runtime.retry import RetryPolicy
from repro.obs.logger import get_logger
from repro.obs.metrics import (
    MetricsRegistry,
    counter,
    get_registry,
    use_registry,
)
from repro.obs.spans import (
    adopt_worker_context,
    propagation_context,
    span,
)

_log = get_logger("analysis.runtime.runner")

__all__ = ["SweepOutcome", "run_sweep", "timed_run"]

#: Seconds the scheduling loop sleeps when nothing is ready or running.
_TICK_S = 0.05


def timed_run(
    request: ExperimentRequest | str, /, **params: Any
) -> ExperimentResult:
    """Run one experiment inside an ``experiment.run`` span.

    The span records wall-clock and peak RSS and flows to any JSONL
    sink; its data is also rendered into the (pre-existing) note format
    ``timing: 1.234s wall, peak RSS 45.2 MiB`` so downstream note
    parsing keeps working.  Memory is the process high-water mark from
    ``getrusage`` -- free to read (unlike :mod:`tracemalloc`, whose
    allocation hooks slow the hot paths several-fold) and
    per-experiment in fresh pool workers; in a long serial run it is
    monotone across experiments.
    """
    name = request if isinstance(request, str) else request.experiment
    with span("experiment.run", experiment=name) as record:
        result = run_experiment(request, **params)
    counter("experiments.run")
    counter("experiments.passed" if result.passed else "experiments.failed")
    rss = record.rss_mib
    memory = f", peak RSS {rss:.1f} MiB" if rss is not None else ""
    result.notes.append(f"timing: {record.duration_s:.3f}s wall{memory}")
    return result


@dataclass
class SweepOutcome:
    """What a sweep produced, plus how it got there.

    Attributes:
        results: One :class:`ExperimentResult` per request, in request
            order.  A task that failed fatally within the failure
            budget yields a synthesized failing result (single
            ``completed`` check, false) so reports stay complete.
        provenance: Human-readable runtime provenance (resume skips,
            retries exhausted, degradation to serial) for the report.
        skipped: Tasks satisfied from the journal+cache by ``resume``.
        failed: Tasks that fatally failed (within budget).
    """

    results: list[ExperimentResult] = field(default_factory=list)
    provenance: list[str] = field(default_factory=list)
    skipped: int = 0
    failed: int = 0

    @property
    def passed(self) -> bool:
        return all(result.passed for result in self.results)

    def __iter__(self):
        return iter(self.results)


@dataclass
class _Task:
    """Mutable per-task execution state inside one sweep."""

    index: int
    request: ExperimentRequest
    params: dict[str, Any]
    digest: str
    key: str
    attempt: int = 0
    ready_at: float = 0.0
    fault: str | None = None


def _attempt_main(
    conn: Connection,
    experiment: str,
    params: dict[str, Any],
    fault: str | None,
    trace_ctx: tuple[str, str | None] | None,
) -> None:
    # The body of one process-backed attempt.  Runs under a fresh
    # metrics registry whose snapshot travels back with the result, so
    # the parent can merge worker metrics losslessly.  The parent's
    # trace context is adopted first thing, so this worker's spans and
    # sink events stitch under the sweep's span tree.  Errors are
    # classified *here*, where the live exception object exists, and
    # cross the pipe as (kind, description).
    try:
        adopt_worker_context(trace_ctx)
        if fault is not None:
            faults_mod.trigger(fault, in_process=False)
        registry = MetricsRegistry()
        with use_registry(registry):
            result = timed_run(experiment, **params)
        conn.send(("ok", result, registry.snapshot()))
    except BaseException as exc:  # noqa: BLE001 -- must report, not die silently
        try:
            conn.send(
                ("error", classify_error(exc), f"{type(exc).__name__}: {exc}")
            )
        except Exception:
            pass  # parent sees EOF and records a worker crash
    finally:
        try:
            conn.close()
        except Exception:
            pass


def _failure_result(request: ExperimentRequest, error: str) -> ExperimentResult:
    """A synthesized failing result for a task that exhausted its budget."""
    return ExperimentResult(
        experiment=request.experiment,
        title=f"{request.experiment} (task failed)",
        headers=["error"],
        rows=[{"error": error}],
        checks={"completed": False},
        notes=[f"runtime: {error}"],
    )


class _SweepRunner:
    """One sweep's execution state machine (see module docstring)."""

    def __init__(
        self,
        *,
        jobs: int,
        policy: RetryPolicy,
        cache: ResultCache | None,
        journal: Journal | None,
        degrade_after: int,
    ) -> None:
        self.jobs = jobs
        self.policy = policy
        self.cache = cache
        self.journal = journal
        self.degrade_after = degrade_after
        self.failures = 0
        self.worker_deaths = 0
        self.degraded = False
        self.provenance: list[str] = []
        # Successful attempts' metrics snapshots, buffered as
        # (task index, snapshot) and merged in task order at sweep end:
        # gauges are last-write-wins, so merging in completion order
        # would make `repro all --jobs N` gauge values race-dependent.
        self.snapshots: list[tuple[int, dict[str, Any]]] = []

    # -- shared task-lifecycle plumbing -----------------------------------

    def _record_started(self, task: _Task, fault: str | None) -> None:
        if fault is not None:
            counter("runtime.faults.injected")
            _log.warning(
                "injecting fault",
                extra={"task": task.key, "fault": fault, "attempt": task.attempt},
            )
        if self.journal is not None:
            self.journal.record_started(
                task.key,
                experiment=task.request.experiment,
                params_hash=task.digest,
                attempt=task.attempt,
            )

    def _complete(
        self,
        task: _Task,
        result: ExperimentResult,
        results: dict[int, ExperimentResult],
    ) -> None:
        path = None
        if self.cache is not None and task.request.cache_policy != "off":
            path = self.cache.store(result, task.params)
        if self.journal is not None:
            self.journal.record_completed(
                task.key,
                attempt=task.attempt,
                result_path=str(path) if path is not None else None,
            )
        counter("runtime.tasks.completed")
        results[task.index] = result

    def _fail(
        self,
        task: _Task,
        kind: str,
        description: str,
        queue: list[_Task],
        results: dict[int, ExperimentResult],
        exc: BaseException | None = None,
    ) -> None:
        """Route one failed attempt: retry, tolerate, or abort."""
        attempts_left = self.policy.attempts() - task.attempt
        if kind == RETRYABLE and attempts_left > 0:
            delay = self.policy.delay_s(task.index, task.attempt)
            counter("runtime.retries")
            _log.warning(
                "retrying task",
                extra={
                    "task": task.key,
                    "attempt": task.attempt,
                    "delay_s": round(delay, 3),
                    "error": description,
                },
            )
            if self.journal is not None:
                self.journal.record_failed(
                    task.key,
                    attempt=task.attempt,
                    error=description,
                    kind=kind,
                    final=False,
                )
            task.ready_at = time.monotonic() + delay
            queue.append(task)
            return
        counter("runtime.tasks.failed")
        _log.error(
            "task failed",
            extra={
                "task": task.key,
                "attempt": task.attempt,
                "kind": kind,
                "error": description,
            },
        )
        if self.journal is not None:
            self.journal.record_failed(
                task.key,
                attempt=task.attempt,
                error=description,
                kind=kind,
                final=True,
            )
        self.failures += 1
        if self.failures > self.policy.max_failures:
            if self.journal is not None:
                self.journal.record_aborted(failures=self.failures)
            if exc is not None:
                if hasattr(exc, "add_note"):
                    exc.add_note(
                        f"run_sweep: task {task.key} failed fatally "
                        f"(attempt {task.attempt}); sweep aborted"
                    )
                raise exc
            raise SweepAborted(
                f"task {task.key} failed fatally ({description}); "
                f"{self.failures} failure(s) exceeded "
                f"max_failures={self.policy.max_failures}"
            )
        self.provenance.append(
            f"task {task.key} failed after {task.attempt} attempt(s): "
            f"{description}"
        )
        results[task.index] = _failure_result(
            task.request, f"failed after {task.attempt} attempt(s): {description}"
        )

    # -- serial (in-process) execution ------------------------------------

    def run_serial(
        self, queue: list[_Task], results: dict[int, ExperimentResult]
    ) -> None:
        if queue and self.policy.timeout_s is not None:
            # An in-process attempt cannot be preempted, so the
            # wall-clock budget silently evaporates here unless we say
            # so: warn once and leave a provenance trace in the report.
            _log.warning(
                "timeout not enforced for in-process attempts",
                extra={
                    "timeout_s": self.policy.timeout_s,
                    "tasks": len(queue),
                },
            )
            self.provenance.append(
                f"timeout {self.policy.timeout_s:g}s not enforced for "
                f"{len(queue)} in-process (serial) task(s); attempts "
                f"cannot be preempted without --jobs >= 2"
            )
        while queue:
            now = time.monotonic()
            ready = [t for t in queue if t.ready_at <= now]
            if not ready:
                time.sleep(
                    max(min(t.ready_at for t in queue) - now, _TICK_S)
                )
                continue
            task = ready[0]
            queue.remove(task)
            task.attempt += 1
            fault, task.fault = task.fault, None
            self._record_started(task, fault)
            registry = MetricsRegistry()
            try:
                if fault is not None:
                    faults_mod.trigger(fault, in_process=True)
                with use_registry(registry):
                    result = timed_run(task.request.experiment, **task.params)
            except Exception as exc:
                self._fail(
                    task,
                    classify_error(exc),
                    f"{type(exc).__name__}: {exc}",
                    queue,
                    results,
                    exc=exc,
                )
                continue
            self.snapshots.append((task.index, registry.snapshot()))
            self._complete(task, result, results)

    # -- process-backed execution -----------------------------------------

    def run_pool(
        self, queue: list[_Task], results: dict[int, ExperimentResult]
    ) -> list[_Task]:
        """Run tasks over worker processes; returns tasks left over
        when the runner degraded to serial (empty otherwise)."""
        running: dict[Connection, tuple[_Task, multiprocessing.Process, float | None]] = {}
        try:
            while running or (queue and not self.degraded):
                now = time.monotonic()
                while (
                    queue and len(running) < self.jobs and not self.degraded
                ):
                    ready = [t for t in queue if t.ready_at <= now]
                    if not ready:
                        break
                    task = ready[0]
                    queue.remove(task)
                    self._spawn(task, running, now)
                self._reap(running, queue, results)
        except BaseException:
            for _, (running_task, process, _) in list(running.items()):
                process.terminate()
                process.join(5)
            raise
        return queue

    def _spawn(
        self,
        task: _Task,
        running: dict[Connection, tuple[_Task, multiprocessing.Process, float | None]],
        now: float,
    ) -> None:
        task.attempt += 1
        fault, task.fault = task.fault, None
        self._record_started(task, fault)
        recv_conn, send_conn = multiprocessing.Pipe(duplex=False)
        process = multiprocessing.Process(
            target=_attempt_main,
            args=(
                send_conn,
                task.request.experiment,
                task.params,
                fault,
                propagation_context(),
            ),
            daemon=True,
        )
        process.start()
        send_conn.close()  # child owns the write end; EOF now propagates
        deadline = (
            now + self.policy.timeout_s
            if self.policy.timeout_s is not None
            else None
        )
        running[recv_conn] = (task, process, deadline)

    def _reap(
        self,
        running: dict[Connection, tuple[_Task, multiprocessing.Process, float | None]],
        queue: list[_Task],
        results: dict[int, ExperimentResult],
    ) -> None:
        now = time.monotonic()
        tick = _TICK_S if queue else 0.5
        deadlines = [d for _, _, d in running.values() if d is not None]
        backoffs = [t.ready_at for t in queue if t.ready_at > now]
        for moment in deadlines + backoffs:
            tick = min(tick, max(moment - now, 0.001))
        if not running:
            if queue:
                time.sleep(tick)
            return
        for conn in connection_wait(list(running), timeout=tick):
            task, process, _ = running.pop(conn)
            message = None
            try:
                message = conn.recv()
            except (EOFError, OSError):
                pass
            conn.close()
            process.join(5)
            if message is None:
                self._worker_death(task, process, queue, results)
            elif message[0] == "ok":
                _, result, snapshot = message
                self.snapshots.append((task.index, snapshot))
                self._complete(task, result, results)
            else:
                _, kind, description = message
                self._fail(task, kind, description, queue, results)
        now = time.monotonic()
        for conn, (task, process, deadline) in list(running.items()):
            if deadline is not None and now >= deadline:
                running.pop(conn)
                process.terminate()
                process.join(5)
                conn.close()
                counter("runtime.timeouts")
                self._fail(
                    task,
                    RETRYABLE,
                    f"TaskTimeout: attempt exceeded "
                    f"{self.policy.timeout_s}s wall-clock budget",
                    queue,
                    results,
                    exc=TaskTimeout(
                        f"task {task.key} exceeded {self.policy.timeout_s}s"
                    ),
                )

    def _worker_death(
        self,
        task: _Task,
        process: multiprocessing.Process,
        queue: list[_Task],
        results: dict[int, ExperimentResult],
    ) -> None:
        self.worker_deaths += 1
        counter("runtime.worker_deaths")
        description = (
            f"WorkerCrash: worker died (exit code {process.exitcode}) "
            f"while running {task.key}"
        )
        if self.worker_deaths >= self.degrade_after and not self.degraded:
            self.degraded = True
            counter("runtime.degraded")
            note = (
                f"degraded to serial execution after "
                f"{self.worker_deaths} worker death(s)"
            )
            self.provenance.append(note)
            _log.warning("degrading to serial", extra={"task": task.key})
        self._fail(
            task,
            RETRYABLE,
            description,
            queue,
            results,
            exc=WorkerCrash(description),
        )


def merge_snapshots_in_task_order(
    snapshots: Sequence[tuple[int, dict[str, Any]]],
) -> None:
    """Fold attempt metrics snapshots into the current registry.

    Sorted by task index so gauge values (last-write-wins) come out
    identical whatever order the workers finished in; counter and
    histogram merges are associative and commutative, so ordering only
    matters for gauges.
    """
    registry = get_registry()
    for _, snapshot in sorted(snapshots, key=lambda item: item[0]):
        registry.merge(snapshot)


def _resume_result(
    entry: JournalEntry, task: _Task, cache: ResultCache | None
) -> ExperimentResult | None:
    """Reload a journal-completed task's result, or ``None`` to re-run."""
    if cache is not None:
        result = cache.load(task.request.experiment, task.params)
        if result is not None:
            return result
    if entry.result_path is not None:
        try:
            payload = json.loads(Path(entry.result_path).read_text())
            return ExperimentResult.from_dict(payload)
        except (OSError, ValueError, KeyError, TypeError):
            return None
    return None


def run_sweep(
    requests: Sequence[ExperimentRequest | str] | None = None,
    *,
    jobs: int = 1,
    cache: ResultCache | None = None,
    journal: Journal | None = None,
    resume: bool = False,
    policy: RetryPolicy | None = None,
    faults: FaultPlan | None = None,
    degrade_after: int = 3,
    shard: tuple[int, int] | None = None,
) -> SweepOutcome:
    """Run a sweep of experiment requests fault-tolerantly.

    Args:
        requests: The sweep, in result order; strings are shorthand for
            default :class:`ExperimentRequest` s.  ``None`` runs the
            full registry in DESIGN.md order.
        jobs: Concurrent worker processes (``<= 1`` executes in-process).
        cache: Optional result cache; per-request ``cache_policy``
            decides reuse.  Resumed results reload through it.
        journal: Optional checkpoint journal.  Without ``resume`` the
            journal is truncated (a fresh epoch); with it, replayed.
        resume: Skip journal-completed tasks and re-queue in-flight ones.
        policy: Retry/timeout/failure budget (default
            :class:`RetryPolicy`()).
        faults: Optional deterministic fault injection (tests/CI only).
        degrade_after: Worker deaths tolerated before finishing the
            sweep serially in-process.
        shard: Optional ``(index, count)`` partition selector.  Tasks
            are hashed by journal key into ``count`` deterministic
            shards (:func:`~repro.analysis.runtime.journal.shard_of`)
            and only shard ``index`` runs here; ``outcome.results``
            covers just the owned tasks.  Merge the per-shard journals
            with ``repro merge-journals`` and ``--resume`` to fold the
            shards back together.

    Returns:
        A :class:`SweepOutcome`; ``outcome.results`` is in request
        order regardless of completion order, retries, or resume
        (restricted to the owned tasks when ``shard`` is set).

    Raises:
        KeyError: An unknown experiment id (checked before anything runs).
        SweepAborted: Fatal failures exceeded ``policy.max_failures``
            (in serial runs the original exception is re-raised
            instead, annotated with the task).
    """
    if requests is None:
        requests = available_experiments()
    resolved = [
        ExperimentRequest(experiment=r) if isinstance(r, str) else r
        for r in requests
    ]
    for request in resolved:
        get_spec(request.experiment)  # fail fast on unknown ids
    policy = policy or RetryPolicy()
    tasks = []
    for index, request in enumerate(resolved):
        params = request.effective_params()
        digest = ResultCache.key(request.experiment, params)
        tasks.append(
            _Task(
                index=index,
                request=request,
                params=params,
                digest=digest,
                key=Journal.task_key(request.experiment, digest),
            )
        )
    outcome = SweepOutcome()
    if shard is not None:
        index, count = shard
        if not 0 <= index < count:
            raise ValueError(
                f"shard index {index} outside 0..{count - 1}"
            )
        owned = [
            task for task in tasks if shard_of(task.key, count) == index
        ]
        outcome.provenance.append(
            f"shard {index}/{count}: owns {len(owned)} of "
            f"{len(tasks)} task(s)"
        )
        counter("runtime.shard.owned", len(owned))
        tasks = owned
    results: dict[int, ExperimentResult] = {}
    with span("sweep.run", tasks=len(tasks), jobs=jobs, resume=resume):
        _log.info(
            "running sweep",
            extra={
                "count": len(tasks),
                "jobs": jobs,
                "cached": cache is not None,
                "resume": resume,
            },
        )
        replayed: dict[str, JournalEntry] = {}
        if journal is not None:
            if resume:
                replayed = journal.replay()
            else:
                journal.truncate()
        pending: list[_Task] = []
        requeued = 0
        for task in tasks:
            entry = replayed.get(task.key)
            if entry is not None and entry.status == COMPLETED:
                result = _resume_result(entry, task, cache)
                if result is not None:
                    counter("runtime.resume.skipped")
                    outcome.skipped += 1
                    results[task.index] = result
                    continue
            if entry is not None:  # started / retrying / failed: run again
                counter("runtime.resume.requeued")
                requeued += 1
            if (
                cache is not None
                and task.request.cache_policy == "reuse"
                and task.key not in replayed
            ):
                cached = cache.load(task.request.experiment, task.params)
                if cached is not None:
                    results[task.index] = cached
                    continue
            pending.append(task)
        if resume:
            outcome.provenance.append(
                f"resumed: {outcome.skipped} completed task(s) skipped, "
                f"{requeued} in-flight task(s) re-queued, "
                f"{len(pending)} task(s) to run"
            )
        if faults is not None and pending:
            target = faults.target(len(pending))
            if 0 <= target < len(pending):
                pending[target].fault = faults.kind
        if journal is not None:
            journal.record_sweep(tasks=len(tasks), resume=resume)
        runner = _SweepRunner(
            jobs=jobs,
            policy=policy,
            cache=cache,
            journal=journal,
            degrade_after=degrade_after,
        )
        queue = list(pending)
        try:
            if jobs > 1 and len(queue) > 1:
                queue = runner.run_pool(queue, results)
            if queue:
                runner.run_serial(queue, results)
        finally:
            # Merge attempt snapshots in *task* order, not completion
            # order: counters and histograms are associative, but gauges
            # are last-write-wins, so this is what makes `--jobs N`
            # metrics deterministic.  Runs even when the sweep aborts,
            # so completed tasks' metrics survive the exception.
            merge_snapshots_in_task_order(runner.snapshots)
        outcome.failed = runner.failures
        outcome.provenance.extend(runner.provenance)
    outcome.results = [results[task.index] for task in tasks]
    return outcome
