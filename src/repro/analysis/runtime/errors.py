"""Error taxonomy of the fault-tolerant sweep runtime.

Every task failure is classified as *retryable* (the run might succeed
if repeated: a worker process died, a wall-clock timeout fired, a
transient I/O error) or *fatal* (a deterministic bug or validation
failure that would fail identically on every attempt).  Retryable
failures consume retry budget; fatal ones never do.
"""

from __future__ import annotations

__all__ = [
    "FATAL",
    "RETRYABLE",
    "SweepAborted",
    "TaskError",
    "TaskTimeout",
    "WorkerCrash",
    "classify_error",
]

#: Classification labels (journal/event vocabulary).
RETRYABLE = "retryable"
FATAL = "fatal"


class TaskError(RuntimeError):
    """Base class for runtime-raised task failures."""


class WorkerCrash(TaskError):
    """A worker process died mid-task (killed, OOM, segfault)."""


class TaskTimeout(TaskError):
    """A task exceeded its wall-clock budget and was terminated."""


class SweepAborted(RuntimeError):
    """The sweep stopped early: fatal failures exceeded ``max_failures``.

    Raised by the runner after in-flight work is wound down and the
    journal records the abort, so a later ``--resume`` continues from
    exactly what completed.
    """


def classify_error(exc: BaseException) -> str:
    """``RETRYABLE`` or ``FATAL`` for an exception instance.

    Retryable: runtime-level faults (:class:`WorkerCrash`,
    :class:`TaskTimeout`) and transient OS/I/O conditions
    (``OSError``, ``TimeoutError``, ``InterruptedError``, ``EOFError``,
    ``BrokenPipeError``, ``MemoryError``).  Everything else -- assertion
    and validation errors especially -- is fatal: a deterministic
    experiment fails the same way on every attempt, so retrying would
    only burn budget and hide the bug.
    """
    if isinstance(exc, (WorkerCrash, TaskTimeout)):
        return RETRYABLE
    if isinstance(exc, (OSError, TimeoutError, InterruptedError, EOFError, MemoryError)):
        return RETRYABLE
    return FATAL
