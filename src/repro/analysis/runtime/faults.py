"""Deterministic fault injection for the sweep runtime.

The test suite (and the CI smoke job) must prove that checkpointing,
retries, timeouts, and resume actually work -- which requires making
workers fail *on demand and reproducibly*.  A :class:`FaultPlan` names
a fault kind and the task it strikes; the runner arms exactly that
task's **first** attempt, so a retry (or a resumed run) proceeds
cleanly and the recovery path is what gets exercised.

Kinds (the ``--inject-fault KIND@K`` CLI syntax):

* ``raise`` -- a transient error (``OSError``): *retryable*.
* ``fatal`` -- a validation error (``ValueError``): *fatal*, consumes
  the sweep's failure budget.
* ``hang``  -- the attempt sleeps forever; only a wall-clock timeout
  recovers it.
* ``kill``  -- the worker process exits abruptly (``os._exit``), as an
  OOM kill would; in-process attempts simulate it by raising
  :class:`~repro.analysis.runtime.errors.WorkerCrash`.

Instead of a fixed index, a plan may be *seeded* (``at=None``): the
struck task is drawn from ``random.Random(seed)`` over the sweep size,
still perfectly reproducible for a given seed.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass

from repro.analysis.runtime.errors import WorkerCrash

__all__ = ["FaultPlan", "KINDS", "trigger"]

KINDS = ("raise", "fatal", "hang", "kill")


@dataclass(frozen=True)
class FaultPlan:
    """Inject one fault at a chosen task of a sweep.

    Attributes:
        kind: One of :data:`KINDS`.
        at: 0-based index (submission order) of the struck task, or
            ``None`` to draw it from ``seed`` once the sweep size is
            known.
        seed: Seed for the drawn index when ``at`` is ``None``.
    """

    kind: str
    at: int | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {KINDS}"
            )
        if self.at is not None and self.at < 0:
            raise ValueError("fault index must be >= 0")

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the CLI syntax ``KIND@K`` (e.g. ``kill@3``).

        A bare ``KIND`` means a seeded draw (``at=None``); ``KIND@K``
        pins the 0-based task index.
        """
        kind, sep, position = text.partition("@")
        if not sep:
            return cls(kind=kind)
        try:
            return cls(kind=kind, at=int(position))
        except ValueError:
            raise ValueError(
                f"--inject-fault expects KIND@K with integer K, got {text!r}"
            ) from None

    def target(self, n_tasks: int) -> int:
        """The struck task index for a sweep of ``n_tasks`` tasks."""
        if self.at is not None:
            return self.at
        return random.Random(self.seed).randrange(max(n_tasks, 1))


def trigger(kind: str, *, in_process: bool) -> None:
    """Fire an armed fault inside an attempt (called by the runner).

    Process-backed attempts die for real (``kill``) or sleep until the
    parent's timeout reaps them (``hang``); in-process attempts raise
    the equivalent exception instead, because exiting or sleeping
    forever would take the whole run down with them.
    """
    if kind == "raise":
        raise OSError("injected transient fault")
    if kind == "fatal":
        raise ValueError("injected fatal fault")
    if kind == "kill":
        if in_process:
            raise WorkerCrash("injected worker kill (simulated in-process)")
        os._exit(86)
    if kind == "hang":
        if in_process:
            raise WorkerCrash("injected hang (simulated in-process)")
        time.sleep(3600)
    raise ValueError(f"unknown fault kind {kind!r}")
