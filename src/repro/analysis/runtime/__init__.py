"""Fault-tolerant sweep runtime: checkpoint/resume, retries, timeouts.

The subsystem behind ``repro all --resume`` (see ``docs/ROBUSTNESS.md``
for the guarantees and the journal format):

* :mod:`~repro.analysis.runtime.runner` -- :func:`run_sweep`, the
  process-per-attempt executor with per-task wall-clock timeouts,
  bounded retries, serial degradation, and resume.
* :mod:`~repro.analysis.runtime.journal` -- the append-only JSONL
  checkpoint journal a resumed run replays.
* :mod:`~repro.analysis.runtime.retry` -- :class:`RetryPolicy`
  (exponential backoff with seeded jitter, failure budgets).
* :mod:`~repro.analysis.runtime.errors` -- the retryable/fatal error
  taxonomy.
* :mod:`~repro.analysis.runtime.faults` -- deterministic fault
  injection (``raise``/``fatal``/``hang``/``kill`` at the k-th task),
  used by the tests and the CI smoke job to prove all of the above.
* :mod:`~repro.analysis.runtime.cache` -- :class:`ResultCache`, whose
  params-hash digest also keys the journal.
"""

from repro.analysis.runtime.cache import ResultCache
from repro.analysis.runtime.errors import (
    SweepAborted,
    TaskError,
    TaskTimeout,
    WorkerCrash,
    classify_error,
)
from repro.analysis.runtime.faults import FaultPlan
from repro.analysis.runtime.journal import (
    Journal,
    JournalEntry,
    merge_journals,
    parse_shard,
    shard_of,
)
from repro.analysis.runtime.retry import RetryPolicy
from repro.analysis.runtime.runner import SweepOutcome, run_sweep, timed_run

__all__ = [
    "FaultPlan",
    "Journal",
    "JournalEntry",
    "ResultCache",
    "RetryPolicy",
    "SweepAborted",
    "SweepOutcome",
    "TaskError",
    "TaskTimeout",
    "WorkerCrash",
    "classify_error",
    "merge_journals",
    "parse_shard",
    "run_sweep",
    "shard_of",
    "timed_run",
]
