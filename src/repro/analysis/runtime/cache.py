"""On-disk result caching for experiment runs.

Home of :class:`ResultCache` (re-exported from
:mod:`repro.analysis.parallel` for backward compatibility).  The cache
digest doubles as the checkpoint journal's params-hash, which is why it
lives in the runtime package: journal and cache must agree on task
identity byte-for-byte.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any

from repro.analysis.registry import ExperimentResult
from repro.obs.logger import get_logger
from repro.obs.metrics import counter

_log = get_logger("analysis.runtime.cache")

__all__ = ["ResultCache"]


class ResultCache:
    """A directory of cached :class:`ExperimentResult` JSON files.

    Keys are ``(experiment, params)``: the file name embeds the
    experiment id plus a digest of the sorted parameter items, so
    different parameterisations never collide and the cache directory
    stays human-navigable.  Corrupt or unreadable entries are treated
    as misses, never raised.  Hits and misses increment the
    ``cache.hits`` / ``cache.misses`` counters on the current metrics
    registry.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    @staticmethod
    def key(experiment: str, params: dict[str, Any]) -> str:
        """Digest of ``(experiment, params)`` (stable across processes).

        Raises:
            TypeError: A parameter value is not JSON-serialisable.  Such
                a value used to be hashed through its ``repr`` -- which
                for plain objects embeds the memory address, so cache
                and journal identity silently changed on every run.
                Failing loudly (naming the offending key) is the only
                stable behaviour.
        """
        try:
            blob = json.dumps(
                [experiment, sorted(params.items())], sort_keys=True
            )
        except TypeError:
            for name, value in sorted(params.items()):
                try:
                    json.dumps(value)
                except TypeError:
                    raise TypeError(
                        f"experiment {experiment!r}: parameter {name!r} "
                        f"= {value!r} ({type(value).__name__}) is not "
                        f"JSON-serialisable, so it cannot form a stable "
                        f"cache/journal identity; pass a JSON-clean "
                        f"value (numbers, strings, lists, dicts)"
                    ) from None
            raise
        return hashlib.sha256(blob.encode()).hexdigest()[:16]

    def path(self, experiment: str, params: dict[str, Any]) -> Path:
        return self.root / f"{experiment}-{self.key(experiment, params)}.json"

    def load(
        self, experiment: str, params: dict[str, Any]
    ) -> ExperimentResult | None:
        """The cached result, or ``None`` on a miss."""
        path = self.path(experiment, params)
        try:
            payload = json.loads(path.read_text())
            result = ExperimentResult.from_dict(payload)
        except (OSError, ValueError, KeyError, TypeError):
            counter("cache.misses")
            return None
        counter("cache.hits")
        _log.debug(
            "cache hit", extra={"experiment": experiment, "path": str(path)}
        )
        # Idempotent: a result stored after being loaded (or loaded
        # repeatedly) must not accumulate duplicate hit notes.
        note = f"cache: hit ({path.name})"
        if note not in result.notes:
            result.notes.append(note)
        return result

    def store(
        self, result: ExperimentResult, params: dict[str, Any]
    ) -> Path:
        """Persist ``result`` under its ``(experiment, params)`` key."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path(result.experiment, params)
        path.write_text(json.dumps(result.to_dict(), indent=1) + "\n")
        return path
