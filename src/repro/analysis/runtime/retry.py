"""Retry, timeout, and failure-budget policy for the sweep runtime.

One :class:`RetryPolicy` value travels with a sweep and answers three
questions: how long may one attempt run (``timeout_s``), how often may
a *retryable* failure be repeated (``retries``, with exponential
backoff plus deterministic jitter), and how many tasks may fail
*fatally* before the whole sweep aborts (``max_failures``).

Backoff jitter is seeded -- ``delay_s(task, attempt)`` is a pure
function of the policy and its arguments -- so runs are reproducible
and the fault-injection tests can assert exact schedules.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Limits and backoff schedule for one sweep.

    Attributes:
        retries: Extra attempts granted per task after a *retryable*
            failure (0 disables retrying; fatal errors never retry).
        timeout_s: Wall-clock budget per attempt; hung workers are
            terminated once it elapses.  ``None`` disables timeouts.
            Enforced only for process-backed attempts -- an in-process
            (serial) attempt cannot be preempted, so serial execution
            (including after graceful degradation) logs a ``runtime``
            warning and adds a provenance note instead of silently
            dropping the budget.
        max_failures: Fatally-failed tasks tolerated before the sweep
            aborts.  0 (the default) keeps the historical fail-fast
            behaviour; raising it lets a long sweep limp to the end and
            report the casualties.
        backoff_s: Delay before the first retry.
        backoff_factor: Multiplier applied per further retry.
        jitter: Fraction of the delay added as seeded noise (0..1);
            spreads retries of simultaneously-crashed workers apart.
        seed: Seed of the jitter stream.
    """

    retries: int = 2
    timeout_s: float | None = None
    max_failures: int = 0
    backoff_s: float = 0.25
    backoff_factor: float = 2.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None)")
        if self.max_failures < 0:
            raise ValueError("max_failures must be >= 0")
        if not 0 <= self.jitter <= 1:
            raise ValueError("jitter must be in [0, 1]")

    def attempts(self) -> int:
        """Total attempts allowed per task (first run + retries)."""
        return 1 + self.retries

    def delay_s(self, task_index: int, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based) of a task.

        Deterministic: exponential in ``attempt`` with jitter drawn
        from ``random.Random`` seeded by ``(seed, task_index,
        attempt)``, so reruns and tests see the identical schedule.
        """
        base = self.backoff_s * self.backoff_factor ** (attempt - 1)
        if not self.jitter:
            return base
        # random.Random only seeds on scalars; fold the triple into a
        # string so each (task, attempt) gets an independent stream.
        rng = random.Random(f"{self.seed}:{task_index}:{attempt}")
        return base * (1 + self.jitter * rng.random())
