"""The JSONL checkpoint journal behind ``repro all --resume``.

The runner appends one JSON object per line as tasks move through
their lifecycle, flushing after every write -- so however a sweep dies
(worker kill, power loss, ``SweepAborted``), the journal on disk names
exactly which tasks completed (and where their results live) and which
were in flight.  A resumed run replays the journal, loads completed
results from their recorded paths, and re-queues everything else.

Line vocabulary (all lines carry ``ts``, Unix seconds)::

    {"event": "sweep",     "tasks": N, "resume": false}
    {"event": "started",   "task": K, "experiment": ID,
     "params_hash": H, "attempt": A}
    {"event": "completed", "task": K, "attempt": A, "result_path": P}
    {"event": "failed",    "task": K, "attempt": A, "error": E,
     "kind": "retryable"|"fatal", "final": true|false}
    {"event": "aborted",   "failures": N}

``task`` is the result-cache file stem ``<experiment>-<digest>`` where
the digest is :meth:`ResultCache.key` of ``(experiment,
effective_params)`` -- the same 16-hex params-hash that keys the cache,
so journal and cache can never disagree about identity.

Replay folds lines per task, last event winning; unreadable lines are
skipped (a torn final write must not poison a resume).

Sharding: because the task key is a deterministic digest of the task's
identity, a grid spreads across machines by hashing keys into shards
(:func:`shard_of`, driven by ``--shard i/N``); each machine journals its
own subset, and :func:`merge_journals` folds the shard journals back
into one file that ``--resume`` replays as if a single machine had run
everything.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable

from repro.obs.logger import get_logger

_log = get_logger("analysis.runtime.journal")

__all__ = [
    "Journal",
    "JournalEntry",
    "merge_journals",
    "parse_shard",
    "shard_of",
]

#: Task states a replay can land on.
STARTED = "started"
COMPLETED = "completed"
FAILED = "failed"
RETRYING = "retrying"


def shard_of(key: str, count: int) -> int:
    """Deterministic shard owner of a task key.

    Hashes the journal/cache key (:meth:`Journal.task_key`) with
    SHA-256 and reduces the first 8 bytes modulo ``count`` -- stable
    across processes, machines, and Python versions (unlike ``hash()``),
    so every shard of a sweep agrees on the partition without
    coordination.
    """
    if count < 1:
        raise ValueError(f"shard count must be at least 1, got {count}")
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % count


def parse_shard(spec: str) -> tuple[int, int]:
    """Parse a ``"i/N"`` shard spec into a validated ``(index, count)``."""
    index_text, sep, count_text = str(spec).partition("/")
    try:
        if not sep:
            raise ValueError
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise ValueError(
            f"shard must look like 'i/N' (e.g. '0/4'), got {spec!r}"
        ) from None
    if count < 1:
        raise ValueError(f"shard count must be at least 1, got {count}")
    if not 0 <= index < count:
        raise ValueError(
            f"shard index {index} outside 0..{count - 1} (spec {spec!r})"
        )
    return index, count


def merge_journals(
    out_path: str | Path, sources: Iterable[str | Path]
) -> int:
    """Merge shard journals into one resumable journal; returns lines kept.

    Records from every source are pooled and stably sorted by their
    ``ts`` stamp (ties keep source order), reconstructing a plausible
    global timeline; sweep/aborted markers ride along, and unreadable
    lines are skipped with a warning, exactly as replay would skip
    them.  A record without a ``ts`` stamp inherits its predecessor's
    stamp from the same source file -- it must keep its position in
    that file's timeline, not teleport to the front of the merge and
    reorder its task's event sequence.  The merged file replays as if
    one machine had journalled the whole sweep, so ``--resume`` against
    it skips every task any shard completed.
    """
    sources = [Path(source) for source in sources]
    if not sources:
        raise ValueError("need at least one journal to merge")
    keyed: list[tuple[float, dict[str, Any]]] = []
    for source in sources:
        last_ts = float("-inf")
        for line in source.read_text().splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                _log.warning(
                    "skipping unreadable journal line during merge",
                    extra={"path": str(source)},
                )
                continue
            ts = record.get("ts")
            if isinstance(ts, (int, float)) and not isinstance(ts, bool):
                last_ts = float(ts)
            keyed.append((last_ts, record))
    keyed.sort(key=lambda pair: pair[0])
    records = [record for _ts, record in keyed]
    out = Path(out_path)
    out.parent.mkdir(parents=True, exist_ok=True)
    with open(out, "w", encoding="utf-8") as stream:
        for record in records:
            stream.write(json.dumps(record, default=repr) + "\n")
    return len(records)


@dataclass
class JournalEntry:
    """The folded state of one task after replaying the journal."""

    task: str
    experiment: str | None = None
    params_hash: str | None = None
    status: str = STARTED
    attempt: int = 0
    result_path: str | None = None
    error: str | None = None


class Journal:
    """Append-only JSONL task journal (see module docstring).

    The file handle is opened lazily on first write and every line is
    flushed, so concurrent readers (and post-mortem humans) always see
    a prefix of whole lines.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._stream = None

    @staticmethod
    def task_key(experiment: str, digest: str) -> str:
        """The journal/cache identity of a task: ``<experiment>-<digest>``."""
        return f"{experiment}-{digest}"

    def _write(self, record: dict[str, Any]) -> None:
        if self._stream is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._stream = open(self.path, "a", encoding="utf-8")
        record["ts"] = round(time.time(), 6)
        self._stream.write(json.dumps(record, default=repr) + "\n")
        self._stream.flush()

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def truncate(self) -> None:
        """Start a fresh epoch (non-resume runs wipe stale state)."""
        self.close()
        if self.path.exists():
            self.path.write_text("")

    # -- lifecycle records -------------------------------------------------

    def record_sweep(self, *, tasks: int, resume: bool) -> None:
        self._write({"event": "sweep", "tasks": tasks, "resume": resume})

    def record_started(
        self, task: str, *, experiment: str, params_hash: str, attempt: int
    ) -> None:
        self._write(
            {
                "event": "started",
                "task": task,
                "experiment": experiment,
                "params_hash": params_hash,
                "attempt": attempt,
            }
        )

    def record_completed(
        self, task: str, *, attempt: int, result_path: str | None
    ) -> None:
        self._write(
            {
                "event": "completed",
                "task": task,
                "attempt": attempt,
                "result_path": result_path,
            }
        )

    def record_failed(
        self, task: str, *, attempt: int, error: str, kind: str, final: bool
    ) -> None:
        self._write(
            {
                "event": "failed",
                "task": task,
                "attempt": attempt,
                "error": error,
                "kind": kind,
                "final": final,
            }
        )

    def record_aborted(self, *, failures: int) -> None:
        self._write({"event": "aborted", "failures": failures})

    # -- replay ------------------------------------------------------------

    def replay(self) -> dict[str, JournalEntry]:
        """Fold the journal into per-task end states (last event wins).

        A missing journal file is an empty replay, not an error, so
        ``--resume`` on a fresh directory simply runs everything.
        """
        entries: dict[str, JournalEntry] = {}
        try:
            lines = self.path.read_text().splitlines()
        except OSError:
            return entries
        for line in lines:
            try:
                record = json.loads(line)
            except ValueError:
                _log.warning(
                    "skipping unreadable journal line",
                    extra={"path": str(self.path)},
                )
                continue
            task = record.get("task")
            if task is None:
                continue  # sweep/aborted markers carry no task state
            entry = entries.setdefault(task, JournalEntry(task=task))
            event = record.get("event")
            entry.attempt = record.get("attempt", entry.attempt)
            if event == "started":
                entry.status = STARTED
                entry.experiment = record.get("experiment", entry.experiment)
                entry.params_hash = record.get(
                    "params_hash", entry.params_hash
                )
            elif event == "completed":
                entry.status = COMPLETED
                entry.result_path = record.get("result_path")
            elif event == "failed":
                entry.status = FAILED if record.get("final") else RETRYING
                entry.error = record.get("error")
        return entries
