"""The JSONL checkpoint journal behind ``repro all --resume``.

The runner appends one JSON object per line as tasks move through
their lifecycle, flushing after every write -- so however a sweep dies
(worker kill, power loss, ``SweepAborted``), the journal on disk names
exactly which tasks completed (and where their results live) and which
were in flight.  A resumed run replays the journal, loads completed
results from their recorded paths, and re-queues everything else.

Line vocabulary (all lines carry ``ts``, Unix seconds)::

    {"event": "sweep",     "tasks": N, "resume": false}
    {"event": "started",   "task": K, "experiment": ID,
     "params_hash": H, "attempt": A}
    {"event": "completed", "task": K, "attempt": A, "result_path": P}
    {"event": "failed",    "task": K, "attempt": A, "error": E,
     "kind": "retryable"|"fatal", "final": true|false}
    {"event": "aborted",   "failures": N}

``task`` is the result-cache file stem ``<experiment>-<digest>`` where
the digest is :meth:`ResultCache.key` of ``(experiment,
effective_params)`` -- the same 16-hex params-hash that keys the cache,
so journal and cache can never disagree about identity.

Replay folds lines per task, last event winning; unreadable lines are
skipped (a torn final write must not poison a resume).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.obs.logger import get_logger

_log = get_logger("analysis.runtime.journal")

__all__ = ["Journal", "JournalEntry"]

#: Task states a replay can land on.
STARTED = "started"
COMPLETED = "completed"
FAILED = "failed"
RETRYING = "retrying"


@dataclass
class JournalEntry:
    """The folded state of one task after replaying the journal."""

    task: str
    experiment: str | None = None
    params_hash: str | None = None
    status: str = STARTED
    attempt: int = 0
    result_path: str | None = None
    error: str | None = None


class Journal:
    """Append-only JSONL task journal (see module docstring).

    The file handle is opened lazily on first write and every line is
    flushed, so concurrent readers (and post-mortem humans) always see
    a prefix of whole lines.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._stream = None

    @staticmethod
    def task_key(experiment: str, digest: str) -> str:
        """The journal/cache identity of a task: ``<experiment>-<digest>``."""
        return f"{experiment}-{digest}"

    def _write(self, record: dict[str, Any]) -> None:
        if self._stream is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._stream = open(self.path, "a", encoding="utf-8")
        record["ts"] = round(time.time(), 6)
        self._stream.write(json.dumps(record, default=repr) + "\n")
        self._stream.flush()

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def truncate(self) -> None:
        """Start a fresh epoch (non-resume runs wipe stale state)."""
        self.close()
        if self.path.exists():
            self.path.write_text("")

    # -- lifecycle records -------------------------------------------------

    def record_sweep(self, *, tasks: int, resume: bool) -> None:
        self._write({"event": "sweep", "tasks": tasks, "resume": resume})

    def record_started(
        self, task: str, *, experiment: str, params_hash: str, attempt: int
    ) -> None:
        self._write(
            {
                "event": "started",
                "task": task,
                "experiment": experiment,
                "params_hash": params_hash,
                "attempt": attempt,
            }
        )

    def record_completed(
        self, task: str, *, attempt: int, result_path: str | None
    ) -> None:
        self._write(
            {
                "event": "completed",
                "task": task,
                "attempt": attempt,
                "result_path": result_path,
            }
        )

    def record_failed(
        self, task: str, *, attempt: int, error: str, kind: str, final: bool
    ) -> None:
        self._write(
            {
                "event": "failed",
                "task": task,
                "attempt": attempt,
                "error": error,
                "kind": kind,
                "final": final,
            }
        )

    def record_aborted(self, *, failures: int) -> None:
        self._write({"event": "aborted", "failures": failures})

    # -- replay ------------------------------------------------------------

    def replay(self) -> dict[str, JournalEntry]:
        """Fold the journal into per-task end states (last event wins).

        A missing journal file is an empty replay, not an error, so
        ``--resume`` on a fresh directory simply runs everything.
        """
        entries: dict[str, JournalEntry] = {}
        try:
            lines = self.path.read_text().splitlines()
        except OSError:
            return entries
        for line in lines:
            try:
                record = json.loads(line)
            except ValueError:
                _log.warning(
                    "skipping unreadable journal line",
                    extra={"path": str(self.path)},
                )
                continue
            task = record.get("task")
            if task is None:
                continue  # sweep/aborted markers carry no task state
            entry = entries.setdefault(task, JournalEntry(task=task))
            event = record.get("event")
            entry.attempt = record.get("attempt", entry.attempt)
            if event == "started":
                entry.status = STARTED
                entry.experiment = record.get("experiment", entry.experiment)
                entry.params_hash = record.get(
                    "params_hash", entry.params_hash
                )
            elif event == "completed":
                entry.status = COMPLETED
                entry.result_path = record.get("result_path")
            elif event == "failed":
                entry.status = FAILED if record.get("final") else RETRYING
                entry.error = record.get("error")
        return entries
