"""Least-squares fits of logarithmic round-complexity curves.

Theorem 2 predicts the counting time grows as ``Θ(log |V|)`` with a
worst-case adversary.  The headline experiment fits the measured rounds
to ``a + b·log_3 n`` and reports the coefficients and the coefficient of
determination; the paper's claim corresponds to ``b ≈ 1`` (base-3 log)
with ``R²`` near 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

__all__ = ["LogFit", "fit_log3"]


@dataclass(frozen=True)
class LogFit:
    """A fitted curve ``rounds ≈ intercept + slope·log_3 n``."""

    slope: float
    intercept: float
    r_squared: float

    def predict(self, n: float) -> float:
        """Evaluate the fitted curve at size ``n``."""
        return self.intercept + self.slope * math.log(n, 3)

    def __str__(self) -> str:
        return (
            f"rounds ≈ {self.intercept:.3f} + {self.slope:.3f}·log3(n)  "
            f"(R² = {self.r_squared:.4f})"
        )


def fit_log3(sizes: Sequence[int], rounds: Sequence[float]) -> LogFit:
    """Fit ``rounds = a + b·log_3(sizes)`` by least squares.

    Args:
        sizes: Network sizes (all positive); at least two distinct.
        rounds: Measured rounds, same length as ``sizes``.

    Returns:
        The :class:`LogFit`; ``r_squared`` is 1.0 for a perfect fit and
        is reported as 1.0 when the data has zero variance.

    Raises:
        ValueError: Mismatched lengths, fewer than two points,
            non-positive sizes, or all sizes equal -- zero variance in
            ``log_3 n`` leaves the slope undefined (a division by zero
            in the normal equations), so the degenerate sweep is
            rejected up front instead of crashing mid-fit.
    """
    if len(sizes) != len(rounds):
        raise ValueError("sizes and rounds must have equal length")
    if len(sizes) < 2:
        raise ValueError("need at least two data points")
    if any(size < 1 for size in sizes):
        raise ValueError("sizes must be positive")
    x = np.log(np.asarray(sizes, dtype=float)) / np.log(3.0)
    y = np.asarray(rounds, dtype=float)
    if np.allclose(x, x[0]):
        raise ValueError(
            f"all sizes equal ({sizes[0]}): zero variance in log_3 n "
            "makes the slope undefined; need at least two distinct sizes"
        )
    slope, intercept = np.polyfit(x, y, 1)
    predicted = intercept + slope * x
    total = float(np.sum((y - y.mean()) ** 2))
    residual = float(np.sum((y - predicted) ** 2))
    r_squared = 1.0 if total == 0.0 else 1.0 - residual / total
    return LogFit(slope=float(slope), intercept=float(intercept), r_squared=r_squared)
