"""Markdown reports from experiment results.

Turns :class:`repro.analysis.registry.ExperimentResult` objects into the
Markdown used in ``EXPERIMENTS.md`` (fenced table, notes, check
summary), and can regenerate a full report over every registered
experiment -- the CLI exposes this as ``python -m repro report``.

Reports run through the fault-tolerant runtime
(:func:`repro.analysis.runtime.run_sweep`): they can resume from a
checkpoint journal, retry transient failures, and -- when the run
degraded or resumed -- record that provenance in a closing section, so
a report always says how it was produced.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.analysis.registry import ExperimentRequest, ExperimentResult
from repro.analysis.runtime.cache import ResultCache
from repro.analysis.runtime.faults import FaultPlan
from repro.analysis.runtime.journal import Journal
from repro.analysis.runtime.retry import RetryPolicy
from repro.analysis.runtime.runner import run_sweep
from repro.analysis.tables import render_table

__all__ = ["result_to_markdown", "full_report", "write_report"]


def result_to_markdown(result: ExperimentResult) -> str:
    """Render one experiment result as a Markdown section."""
    lines = [f"## {result.experiment}", "", f"**{result.title}**", ""]
    lines.append("```")
    lines.append(render_table(result.rows, result.headers))
    lines.append("```")
    if result.notes:
        lines.append("")
        lines.extend(f"- {note}" for note in result.notes)
    lines.append("")
    passed = sum(1 for ok in result.checks.values() if ok)
    total = len(result.checks)
    verdict = "PASS" if result.passed else "FAIL"
    lines.append(f"**Checks: {passed}/{total} — {verdict}**")
    if not result.passed:
        lines.append("")
        lines.extend(f"- FAILED: {name}" for name in result.failed_checks())
    lines.append("")
    return "\n".join(lines)


def full_report(
    *,
    experiments: list[str] | None = None,
    requests: Sequence[ExperimentRequest] | None = None,
    title: str = "Experiment report",
    jobs: int = 1,
    cache: ResultCache | str | Path | None = None,
    journal: Journal | None = None,
    resume: bool = False,
    policy: RetryPolicy | None = None,
    faults: FaultPlan | None = None,
    shard: tuple[int, int] | None = None,
    **removed,
) -> str:
    """Run experiments (default: all) and render one Markdown document.

    Args:
        experiments: Restrict to these experiment ids (registry order
            is kept for ``None``); shorthand for default requests.
        requests: Explicit :class:`ExperimentRequest` values (takes
            precedence over ``experiments``).
        title: Heading of the generated document.
        jobs: Worker processes for the runs (see
            :func:`repro.analysis.runtime.run_sweep`); serial by
            default, so a report is bit-identical to ``repro all``.
        cache: A :class:`~repro.analysis.runtime.cache.ResultCache` or
            a cache directory path; cached experiments are not re-run.
        journal: Optional checkpoint journal (see
            ``docs/ROBUSTNESS.md``).
        resume: Replay the journal and skip completed tasks.
        policy: Retry/timeout/failure budget for the run.
        faults: Deterministic fault injection (tests/CI only).
        shard: Optional ``(index, count)`` partition; only the owned
            subset of the sweep runs (and is reported) here -- see
            ``--shard`` in ``docs/PERFORMANCE.md``.

    The rendered document ends with a *Run provenance* section whenever
    the runtime has something to declare (resume, retries exhausted,
    degradation to serial) -- partial-run provenance is part of the
    report, not hidden in logs.

    Raises:
        TypeError: The removed ``params=`` kwarg was passed (as an
            unexpected keyword); pass ``requests=`` built from
            :class:`ExperimentRequest` values --
            :func:`repro.analysis.sweep.grid_requests` expands
            option/parameter grids.
    """
    if removed:
        raise TypeError(
            f"full_report() got unsupported keyword(s) "
            f"{sorted(removed)}: the deprecated params= path was "
            "removed -- pass requests= built from ExperimentRequest "
            "values (repro.analysis.sweep.grid_requests expands "
            "option/parameter grids)"
        )
    if cache is not None and not isinstance(cache, ResultCache):
        cache = ResultCache(cache)
    if requests is None:
        names = experiments  # None means the full registry
        if names is not None:
            requests = [ExperimentRequest(experiment=name) for name in names]
    outcome = run_sweep(
        requests,
        jobs=jobs,
        cache=cache,
        journal=journal,
        resume=resume,
        policy=policy,
        faults=faults,
        shard=shard,
    )
    sections = [f"# {title}", ""]
    for result in outcome.results:
        sections.append(result_to_markdown(result))
    if outcome.provenance:
        sections.append("## Run provenance")
        sections.append("")
        sections.extend(f"- {line}" for line in outcome.provenance)
        sections.append("")
    sections.append(
        "---\n\nOverall: "
        + (
            "all experiments passed."
            if outcome.passed
            else "FAILURES present."
        )
    )
    return "\n".join(sections)


def write_report(path: str | Path, **kwargs) -> Path:
    """Run :func:`full_report` and write it to ``path``."""
    path = Path(path)
    path.write_text(full_report(**kwargs) + "\n")
    return path
