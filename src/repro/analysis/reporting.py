"""Markdown reports from experiment results.

Turns :class:`repro.analysis.registry.ExperimentResult` objects into the
Markdown used in ``EXPERIMENTS.md`` (fenced table, notes, check
summary), and can regenerate a full report over every registered
experiment -- the CLI exposes this as ``python -m repro report``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.analysis.parallel import ResultCache, run_experiments
from repro.analysis.registry import ExperimentResult
from repro.analysis.tables import render_table

__all__ = ["result_to_markdown", "full_report", "write_report"]


def result_to_markdown(result: ExperimentResult) -> str:
    """Render one experiment result as a Markdown section."""
    lines = [f"## {result.experiment}", "", f"**{result.title}**", ""]
    lines.append("```")
    lines.append(render_table(result.rows, result.headers))
    lines.append("```")
    if result.notes:
        lines.append("")
        lines.extend(f"- {note}" for note in result.notes)
    lines.append("")
    passed = sum(1 for ok in result.checks.values() if ok)
    total = len(result.checks)
    verdict = "PASS" if result.passed else "FAIL"
    lines.append(f"**Checks: {passed}/{total} — {verdict}**")
    if not result.passed:
        lines.append("")
        lines.extend(f"- FAILED: {name}" for name in result.failed_checks())
    lines.append("")
    return "\n".join(lines)


def full_report(
    *,
    experiments: list[str] | None = None,
    title: str = "Experiment report",
    jobs: int = 1,
    cache: ResultCache | str | Path | None = None,
    params: dict[str, Any] | None = None,
) -> str:
    """Run experiments (default: all) and render one Markdown document.

    Args:
        experiments: Restrict to these experiment ids (registry order
            is kept for ``None``).
        title: Heading of the generated document.
        jobs: Worker processes for the runs (see
            :func:`repro.analysis.parallel.run_experiments`); serial by
            default, so a report is bit-identical to ``repro all``.
        cache: A :class:`~repro.analysis.parallel.ResultCache` or a
            cache directory path; cached experiments are not re-run.
        params: Sweep-wide parameter overrides (e.g.
            ``{"backend": "fast"}``), forwarded per experiment to the
            ones whose signatures accept them.
    """
    if cache is not None and not isinstance(cache, ResultCache):
        cache = ResultCache(cache)
    sections = [f"# {title}", ""]
    all_passed = True
    for result in run_experiments(
        experiments, jobs=jobs, cache=cache, params=params
    ):
        sections.append(result_to_markdown(result))
        all_passed &= result.passed
    sections.append(
        "---\n\nOverall: "
        + ("all experiments passed." if all_passed else "FAILURES present.")
    )
    return "\n".join(sections)


def write_report(path: str | Path, **kwargs) -> Path:
    """Run :func:`full_report` and write it to ``path``."""
    path = Path(path)
    path.write_text(full_report(**kwargs) + "\n")
    return path
