"""Markdown reports from experiment results.

Turns :class:`repro.analysis.registry.ExperimentResult` objects into the
Markdown used in ``EXPERIMENTS.md`` (fenced table, notes, check
summary), and can regenerate a full report over every registered
experiment -- the CLI exposes this as ``python -m repro report``.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.registry import (
    ExperimentResult,
    available_experiments,
    run_experiment,
)
from repro.analysis.tables import render_table

__all__ = ["result_to_markdown", "full_report"]


def result_to_markdown(result: ExperimentResult) -> str:
    """Render one experiment result as a Markdown section."""
    lines = [f"## {result.experiment}", "", f"**{result.title}**", ""]
    lines.append("```")
    lines.append(render_table(result.rows, result.headers))
    lines.append("```")
    if result.notes:
        lines.append("")
        lines.extend(f"- {note}" for note in result.notes)
    lines.append("")
    passed = sum(1 for ok in result.checks.values() if ok)
    total = len(result.checks)
    verdict = "PASS" if result.passed else "FAIL"
    lines.append(f"**Checks: {passed}/{total} — {verdict}**")
    if not result.passed:
        lines.append("")
        lines.extend(f"- FAILED: {name}" for name in result.failed_checks())
    lines.append("")
    return "\n".join(lines)


def full_report(
    *,
    experiments: list[str] | None = None,
    title: str = "Experiment report",
) -> str:
    """Run experiments (default: all) and render one Markdown document."""
    names = experiments if experiments is not None else available_experiments()
    sections = [f"# {title}", ""]
    all_passed = True
    for name in names:
        result = run_experiment(name)
        sections.append(result_to_markdown(result))
        all_passed &= result.passed
    sections.append(
        "---\n\nOverall: "
        + ("all experiments passed." if all_passed else "FAILURES present.")
    )
    return "\n".join(sections)


def write_report(path: str | Path, **kwargs) -> Path:
    """Run :func:`full_report` and write it to ``path``."""
    path = Path(path)
    path.write_text(full_report(**kwargs) + "\n")
    return path
