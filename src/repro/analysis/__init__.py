"""Experiment harness: sweeps, fits, tables, and the experiment registry.

* :mod:`repro.analysis.tables` -- plain-text table rendering shared by
  the CLI and the benchmarks.
* :mod:`repro.analysis.fitting` -- least-squares fits of
  ``a + b·log_3 n`` curves (the shape claimed by Theorem 2).
* :mod:`repro.analysis.registry` -- every experiment of DESIGN.md's
  index as a named, parameterised, runnable entry.
* :mod:`repro.analysis.sweep` -- small sweep helpers (log-spaced sizes,
  request grids, timing).
* :mod:`repro.analysis.runtime` -- the fault-tolerant sweep runtime
  (checkpoint journal, retries, timeouts, resume, fault injection).
"""

from repro.analysis.fitting import LogFit, fit_log3
from repro.analysis.registry import (
    ExperimentRequest,
    ExperimentResult,
    available_experiments,
    get_experiment,
    run_experiment,
)
from repro.analysis.sweep import log_spaced_sizes
from repro.analysis.tables import render_table

__all__ = [
    "ExperimentRequest",
    "ExperimentResult",
    "LogFit",
    "available_experiments",
    "fit_log3",
    "get_experiment",
    "log_spaced_sizes",
    "render_table",
    "run_experiment",
]
