"""Bandwidth accounting: what "unlimited bandwidth" actually costs.

The model grants unlimited per-message bandwidth, and the optimal
anonymous counter uses it: nodes broadcast their full state history, so
payloads grow linearly with the round number.  This module measures the
real payload volume of any protocol run:

* :func:`payload_size` -- structural size of a payload in *atoms*
  (scalars and container brackets), a bandwidth proxy that is stable
  across Python versions, unlike pickled byte counts;
* :func:`measure_engine_bandwidth` / :func:`measure_labeled_bandwidth`
  -- run a protocol and return the atoms delivered per round.

The ``tab-bandwidth`` experiment uses these to contrast the optimal
anonymous counter (growing payloads) with the degree-oracle counter
(constant) and the ID flood (grows with ``n``, not with rounds).
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.networks.multigraph import DynamicMultigraph
from repro.simulation.engine import (
    EngineConfig,
    SynchronousEngine,
    TopologyProvider,
)
from repro.simulation.labeled import LabeledStarEngine
from repro.simulation.node import Process

__all__ = [
    "payload_size",
    "measure_engine_bandwidth",
    "measure_labeled_bandwidth",
]


def payload_size(payload: Any) -> int:
    """Structural size of a payload in atoms.

    Scalars count 1; containers count 1 (the bracket) plus their
    contents; mappings count keys and values.  ``None`` (silence)
    counts 0.
    """
    if payload is None:
        return 0
    if isinstance(payload, (str, bytes)):
        return 1
    if isinstance(payload, dict):
        return 1 + sum(
            payload_size(key) + payload_size(value)
            for key, value in payload.items()
        )
    if isinstance(payload, (tuple, list, set, frozenset)):
        return 1 + sum(payload_size(item) for item in payload)
    return 1


class _MeteredEngine(SynchronousEngine):
    """Engine recording the atoms broadcast per round (pre-delivery)."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.sent_atoms: list[int] = []
        self.delivered_atoms: list[int] = []

    def _execute_round(self, round_no, graph, trace):
        originals = [process.compose for process in self.processes]
        composed: list[Any] = [None] * len(self.processes)

        def wrap(index, fn):
            def metered(r):
                payload = fn(r)
                composed[index] = payload
                return payload

            return metered

        for index, process in enumerate(self.processes):
            process.compose = wrap(index, originals[index])
        try:
            super()._execute_round(round_no, graph, trace)
        finally:
            for process in self.processes:
                # Remove the instance-level wrapper so the class method
                # shows through again.
                process.__dict__.pop("compose", None)
        self.sent_atoms.append(
            sum(payload_size(payload) for payload in composed)
        )
        self.delivered_atoms.append(
            sum(
                payload_size(composed[neighbour])
                for index in range(len(self.processes))
                for neighbour in graph.neighbors(index)
            )
        )


def measure_engine_bandwidth(
    processes: Sequence[Process],
    topology: TopologyProvider,
    *,
    leader: int | None = 0,
    max_rounds: int = 64,
    stop_when: str = "leader",
) -> tuple[list[int], list[int]]:
    """Run a protocol and meter its traffic.

    Returns ``(sent, delivered)``: per round, the atoms broadcast by all
    processes and the atoms actually delivered (sent × degrees).
    """
    engine = _MeteredEngine(
        processes,
        topology,
        leader=leader,
        config=EngineConfig(max_rounds=max_rounds, stop_when=stop_when),
    )
    engine.run()
    return engine.sent_atoms, engine.delivered_atoms


def measure_labeled_bandwidth(
    leader_process: Process,
    w_processes: Sequence[Process],
    multigraph: DynamicMultigraph,
    *,
    max_rounds: int = 64,
) -> list[int]:
    """Atoms broadcast per round in an ``M(DBL)_k`` execution.

    Meters the ``W`` nodes' and the leader's composed payloads round by
    round until the leader outputs.
    """
    sent_per_round: list[int] = []
    processes = [leader_process, *w_processes]
    originals = [process.compose for process in processes]
    current: dict[int, int] = {}

    def wrap(index, fn):
        def metered(round_no):
            payload = fn(round_no)
            current[index] = payload_size(payload)
            if index == len(processes) - 1:
                sent_per_round.append(sum(current.values()))
            return payload

        return metered

    for index, process in enumerate(processes):
        process.compose = wrap(index, originals[index])
    try:
        engine = LabeledStarEngine(
            leader_process, w_processes, multigraph, max_rounds=max_rounds
        )
        engine.run()
    finally:
        for process in processes:
            process.__dict__.pop("compose", None)
    return sent_per_round
