"""Experiments: the degree-oracle gap and the ``G(PD)_1`` observation.

The paper's Discussion shows how sensitive the counting cost is to what
nodes know about the dynamic graph: a local degree detector collapses
restricted ``G(PD)_2`` counting from ``Ω(log |V|)`` to ``O(1)`` rounds.
The ``G(PD)_1`` experiment covers the other boundary case from the
introduction: stars are counted in a single round regardless of
anonymity.
"""

from __future__ import annotations

from repro.analysis.registry import ExperimentResult
from repro.adversaries.worst_case import (
    max_ambiguity_multigraph,
    worst_case_pd2_network,
)
from repro.core.counting.degree_oracle import count_pd2_with_degree_oracle
from repro.core.counting.optimal import count_mdbl2_abstract
from repro.core.counting.star import count_star
from repro.core.lowerbound.bounds import rounds_to_count

__all__ = ["oracle_gap", "star_pd1"]


def oracle_gap(
    *, sizes: tuple[int, ...] = (4, 13, 40, 121, 364)
) -> ExperimentResult:
    """Discussion: degree oracle ``O(1)`` vs anonymous ``Ω(log n)``.

    Runs both algorithms on the *same* worst-case ``G(PD)_2`` dynamics:
    the degree-oracle protocol (through the real engine, exact fraction
    arithmetic) finishes in 3 rounds for every size, while the anonymous
    optimal counter pays the full logarithmic cost.
    """
    rows = []
    checks: dict[str, bool] = {}
    for n in sizes:
        network, layout = worst_case_pd2_network(n)
        oracle_outcome = count_pd2_with_degree_oracle(network)
        anonymous_outcome = count_mdbl2_abstract(max_ambiguity_multigraph(n))
        rows.append(
            {
                "n outer": n,
                "|V|": layout.n,
                "oracle rounds": oracle_outcome.rounds,
                "oracle count": oracle_outcome.count,
                "anonymous rounds": anonymous_outcome.rounds,
                "theory log-bound": rounds_to_count(n),
            }
        )
        key = f"n{n}"
        checks[f"{key}_oracle_exact"] = oracle_outcome.count == layout.n
        checks[f"{key}_oracle_constant_rounds"] = oracle_outcome.rounds == 3
        checks[f"{key}_anonymous_pays_log"] = (
            anonymous_outcome.rounds == rounds_to_count(n)
        )
    checks["gap_grows_with_n"] = (
        rows[-1]["anonymous rounds"] - rows[-1]["oracle rounds"]
        > rows[0]["anonymous rounds"] - rows[0]["oracle rounds"]
    )
    return ExperimentResult(
        experiment="tab-oracle-gap",
        title="Discussion: degree-oracle O(1) vs anonymous Omega(log n)",
        headers=[
            "n outer",
            "|V|",
            "oracle rounds",
            "oracle count",
            "anonymous rounds",
            "theory log-bound",
        ],
        rows=rows,
        checks=checks,
        notes=[
            "both algorithms face the same worst-case G(PD)_2 dynamics; "
            "only the oracle knowledge differs",
        ],
    )


def star_pd1(
    *,
    sizes: tuple[int, ...] = (2, 5, 17, 65, 257, 1025),
    backend: str = "object",
) -> ExperimentResult:
    """Introduction: ``G(PD)_1`` stars are counted in exactly one round.

    Args:
        sizes: Star sizes to count.
        backend: Simulation backend (``"object"`` or ``"fast"``); the
            table is identical either way.
    """
    rows = []
    checks: dict[str, bool] = {}
    for n in sizes:
        outcome = count_star(n, backend=backend)
        rows.append(
            {
                "|V|": n,
                "count": outcome.count,
                "rounds": outcome.rounds,
            }
        )
        checks[f"n{n}_exact_in_one_round"] = (
            outcome.count == n and outcome.rounds == 1
        )
    return ExperimentResult(
        experiment="tab-star-pd1",
        title="G(PD)_1 stars: exact count in one round for every size",
        headers=["|V|", "count", "rounds"],
        rows=rows,
        checks=checks,
    )
