"""Extension experiment: counting vs naming -- two costs of anonymity.

The related-work papers this announcement builds on (Michail et al.,
DISC 2012 / SSS 2013) treat *naming* -- terminating with distinct
identifiers -- alongside counting.  The view machinery makes their
separation measurable on our networks:

* in ``G(PD)_1`` stars the leader counts in one round, but the spokes
  are view-equal at every depth, so **no** protocol can ever name them;
* on asymmetric networks views separate quickly and the generic
  rank-your-view protocol names everyone;
* naming feasibility computed at the graph level (view classes) agrees
  with the engine-level protocol run, round for round.
"""

from __future__ import annotations

import networkx as nx

from repro.analysis.registry import ExperimentResult
from repro.core.counting.star import count_star
from repro.core.naming import (
    earliest_naming_round,
    name_by_views,
    naming_is_possible,
    run_view_naming,
)
from repro.core.views import symmetry_degree, view_classes
from repro.networks.dynamic_graph import DynamicGraph
from repro.networks.generators.figures import paper_figure1
from repro.networks.generators.stars import star_network

__all__ = ["naming_vs_counting"]


def naming_vs_counting(
    *,
    star_sizes: tuple[int, ...] = (4, 8, 16),
    symmetry_depth: int = 8,
) -> ExperimentResult:
    """Counting cost vs naming feasibility across network families."""
    rows = []
    checks: dict[str, bool] = {}

    for n in star_sizes:
        star = star_network(n)
        counting = count_star(n)
        namable = naming_is_possible(star, symmetry_depth, leader=0)
        rows.append(
            {
                "network": f"star({n})",
                "counting rounds": counting.rounds,
                "naming possible": namable,
                "largest symmetric class": symmetry_degree(
                    star, symmetry_depth, leader=0
                ),
            }
        )
        checks[f"star{n}_counts_in_one_round"] = (
            counting.count == n and counting.rounds == 1
        )
        checks[f"star{n}_naming_impossible"] = not namable
        checks[f"star{n}_spokes_stay_symmetric"] = (
            symmetry_degree(star, symmetry_depth, leader=0) == n - 1
        )

    # An asymmetric network: the off-centre-rooted path.
    path = DynamicGraph(5, lambda round_no: nx.path_graph(5))
    naming_round = earliest_naming_round(path, leader=1)
    names = name_by_views(path, naming_round, leader=1)
    rows.append(
        {
            "network": "path(5), leader=1",
            "counting rounds": "n/a",
            "naming possible": True,
            "largest symmetric class": symmetry_degree(
                path, naming_round, leader=1
            ),
        }
    )
    checks["path_namable"] = names is not None
    checks["path_names_distinct"] = sorted(names.values()) == list(range(5))

    # Engine-level agreement on the Figure 1 network.
    figure = paper_figure1()
    horizon = 3
    outputs = run_view_naming(figure.graph, horizon, leader=0)
    engine_partition: dict = {}
    for node, output in outputs.items():
        engine_partition.setdefault(output, []).append(node)
    engine_classes = sorted(
        engine_partition.values(), key=lambda members: members[0]
    )
    graph_classes = view_classes(figure.graph, horizon, leader=0)
    rows.append(
        {
            "network": "figure-1 G(PD)_2",
            "counting rounds": "(see fig1 experiment)",
            "naming possible": naming_is_possible(
                figure.graph, symmetry_depth, leader=0
            ),
            "largest symmetric class": symmetry_degree(
                figure.graph, symmetry_depth, leader=0
            ),
        }
    )
    checks["engine_views_match_graph_views"] = engine_classes == graph_classes

    return ExperimentResult(
        experiment="tab-naming-vs-counting",
        title="Extension: counting vs naming (view-based feasibility)",
        headers=[
            "network",
            "counting rounds",
            "naming possible",
            "largest symmetric class",
        ],
        rows=rows,
        checks=checks,
        notes=[
            "stars: counting finishes in 1 round while naming is "
            "impossible at every depth (spokes are view-equal forever)",
            "naming feasibility = all views distinct; the generic "
            "rank-your-view protocol achieves it whenever possible",
        ],
    )
