"""Experiment: footnote 2 -- randomness governed by the adversary.

Runs the standard randomised fix for anonymity (self-assigned random
IDs, flooded for ``D`` rounds) on the same networks twice: with fair
per-process coins it counts correctly; with adversary-governed coins
every process draws identical bits, symmetry survives, and the leader
reports size 1 no matter how large the network is.
"""

from __future__ import annotations

from repro.adversaries.worst_case import worst_case_pd2_network
from repro.analysis.registry import ExperimentResult
from repro.core.counting.randomized import count_with_random_ids
from repro.networks.properties import dynamic_diameter

__all__ = ["adversarial_randomness"]


def adversarial_randomness(
    *,
    sizes: tuple[int, ...] = (4, 13, 40),
    seed: int = 11,
) -> ExperimentResult:
    """Fair vs adversarial coins for randomised ID counting."""
    rows = []
    checks: dict[str, bool] = {}
    for n in sizes:
        network, layout = worst_case_pd2_network(n)
        horizon = dynamic_diameter(network, start_rounds=2)
        fair = count_with_random_ids(
            network, horizon, coins="fair", seed=seed
        )
        adversarial = count_with_random_ids(
            network, horizon, coins="adversarial"
        )
        rows.append(
            {
                "|V|": layout.n,
                "horizon D": horizon,
                "fair coins count": fair.count,
                "adversarial coins count": adversarial.count,
            }
        )
        key = f"n{layout.n}"
        checks[f"{key}_fair_coins_correct"] = fair.count == layout.n
        checks[f"{key}_adversarial_coins_see_one_node"] = (
            adversarial.count == 1
        )
    return ExperimentResult(
        experiment="tab-adversarial-randomness",
        title="Footnote 2: random IDs under fair vs adversary-governed coins",
        headers=[
            "|V|",
            "horizon D",
            "fair coins count",
            "adversarial coins count",
        ],
        rows=rows,
        checks=checks,
        notes=[
            "with adversarial coins every anonymous process draws the same "
            "bits, so the randomised protocol collapses to the "
            "deterministic symmetric case and reports a single node",
        ],
    )
