"""Extension experiment: the baselines across dynamic-network families.

Runs the with-IDs counter and gossip estimation over the library's full
taxonomy of fair dynamics -- memoryless random, edge-Markov (temporally
correlated), T-interval connected, and random-waypoint geometric -- and
verifies each family's defining structural property.  This situates the
paper's worst-case model inside the standard dynamic-network landscape:
every fair family is easy for the baselines; only the worst-case
adversary (see the lower-bound experiments) makes counting expensive.
"""

from __future__ import annotations

from repro.analysis.registry import ExperimentResult
from repro.core.counting.gossip import gossip_size_estimates
from repro.core.counting.token_ids import count_with_ids
from repro.networks.generators.geometric import random_waypoint_network
from repro.networks.generators.markov import edge_markov_network
from repro.networks.generators.random_dynamic import RandomConnectedAdversary
from repro.networks.generators.t_interval import t_interval_network
from repro.networks.properties import (
    dynamic_diameter,
    is_interval_connected,
    is_t_interval_connected,
)

__all__ = ["dynamics_families"]


def dynamics_families(
    *,
    n: int = 24,
    seed: int = 5,
    check_rounds: int = 12,
    gossip_rounds: int = 80,
    t_window: int = 3,
    backend: str = "object",
) -> ExperimentResult:
    """Baselines and structural checks across four dynamics families.

    Args:
        backend: Simulation backend for the engine-driven baselines
            (``"object"`` or ``"fast"``).
    """
    families = {
        "memoryless-random": RandomConnectedAdversary(
            n, seed=seed
        ).as_dynamic_graph(),
        "edge-markov": edge_markov_network(n, seed=seed),
        f"{t_window}-interval": t_interval_network(
            n, t_window, seed=seed
        ),
        "random-waypoint": random_waypoint_network(n, seed=seed),
    }
    rows = []
    checks: dict[str, bool] = {}
    for name, network in families.items():
        connected = is_interval_connected(network, check_rounds)
        diameter = dynamic_diameter(network, start_rounds=2)
        ids_outcome = count_with_ids(network, diameter, backend=backend)
        estimates = gossip_size_estimates(
            network, n, gossip_rounds, backend=backend
        )
        gossip_error = abs(estimates[-1] - n) / n
        rows.append(
            {
                "family": name,
                "1-interval connected": connected,
                "dynamic diameter D": diameter,
                "ids count (in D rounds)": ids_outcome.count,
                "gossip rel. error": gossip_error,
            }
        )
        key = name.replace("-", "_")
        checks[f"{key}_interval_connected"] = connected
        checks[f"{key}_ids_exact"] = ids_outcome.count == n
        checks[f"{key}_gossip_converges"] = gossip_error < 0.05
    checks["t_interval_window_holds"] = is_t_interval_connected(
        families[f"{t_window}-interval"], t_window, check_rounds
    )
    return ExperimentResult(
        experiment="tab-dynamics-families",
        title="Extension: baselines across dynamic-network families",
        headers=[
            "family",
            "1-interval connected",
            "dynamic diameter D",
            "ids count (in D rounds)",
            "gossip rel. error",
        ],
        rows=rows,
        checks=checks,
        notes=[
            "all fair families are easy: IDs count in D rounds and gossip "
            "converges -- the log-cost of the paper arises only under the "
            "worst-case adversary",
        ],
    )
