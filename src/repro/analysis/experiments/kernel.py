"""Experiment: the matrix/kernel structure table (Lemmas 2-4).

For each round ``r`` the table reports the shape of ``M_r``, the exactly
certified kernel dimension, and the kernel sum identities -- comparing
every computed quantity against its closed form from the paper.

Rounds come in three regimes, all exact:

* ``r <= max_round`` -- the dense ``M_r`` is materialised and its
  nullity certified by modular elimination (cost grows as ``9^r``;
  capped at ``MAX_DENSE_ROUND``).
* ``max_round < r <= sparse_max_round`` -- the sparse backend builds
  ``M_r`` in CSR form and certifies rank through the recursive block
  structure (:func:`repro.core.lowerbound.sparse.sparse_rank`), opening
  rounds the dense path cannot reach.
* beyond -- only the closed-form columns are tabulated.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.registry import ExperimentResult
from repro.core.lowerbound.kernel import (
    closed_form_kernel,
    nullspace_dimension,
    recursive_kernel,
    sum_negative,
    sum_positive,
    verify_in_kernel,
)
from repro.core.lowerbound.matrices import n_columns, n_rows
from repro.core.lowerbound.sparse import (
    sparse_nullspace_dimension,
    verify_in_kernel_sparse,
)

__all__ = ["kernel_structure"]


def _kernel_sums(r: int) -> tuple[int, int]:
    kernel = closed_form_kernel(r)
    pos = int(kernel[kernel > 0].sum())
    neg = int(-kernel[kernel < 0].sum())
    return pos, neg


def kernel_structure(
    *,
    max_round: int = 5,
    sparse_max_round: int = 8,
    closed_form_rounds: int = 10,
) -> ExperimentResult:
    """Lemmas 2-4: dense rounds, sparse rounds, then closed forms.

    Args:
        max_round: Largest round at which the dense ``M_r`` is built and
            its nullity certified exactly (cost grows as ``9^r``; 5 runs
            in under a second, 6 takes a few seconds).
        sparse_max_round: Largest round certified through the sparse
            backend (linear-in-nnz cost; 10 stays under a few seconds).
            Rounds ``max_round+1 .. sparse_max_round`` are marked
            ``sparse`` in the table.
        closed_form_rounds: Additional rounds for which only the
            closed-form columns are tabulated.
    """
    rows = []
    checks: dict[str, bool] = {}
    for r in range(max_round + 1):
        nullity = nullspace_dimension(r)
        in_kernel = verify_in_kernel(r)
        recursion_ok = bool(
            np.array_equal(closed_form_kernel(r), recursive_kernel(r))
        )
        pos, neg = _kernel_sums(r)
        rows.append(
            {
                "r": r,
                "columns 3^(r+1)": n_columns(r),
                "rows 3^(r+1)-1": n_rows(r),
                "nullity": nullity,
                "sum+ k_r": pos,
                "sum- k_r": neg,
                "sum k_r": pos - neg,
                "exact": "dense",
            }
        )
        checks[f"r{r}_nullity_is_1"] = nullity == 1
        checks[f"r{r}_Mk_is_zero"] = in_kernel
        checks[f"r{r}_recursion_matches_closed_form"] = recursion_ok
        checks[f"r{r}_sum_pos_closed_form"] = pos == sum_positive(r)
        checks[f"r{r}_sum_neg_closed_form"] = neg == sum_negative(r)
        checks[f"r{r}_sum_is_1"] = pos - neg == 1
    for r in range(max_round + 1, sparse_max_round + 1):
        nullity = sparse_nullspace_dimension(r)
        in_kernel = verify_in_kernel_sparse(r)
        recursion_ok = bool(
            np.array_equal(closed_form_kernel(r), recursive_kernel(r))
        )
        pos, neg = _kernel_sums(r)
        rows.append(
            {
                "r": r,
                "columns 3^(r+1)": n_columns(r),
                "rows 3^(r+1)-1": n_rows(r),
                "nullity": nullity,
                "sum+ k_r": pos,
                "sum- k_r": neg,
                "sum k_r": pos - neg,
                "exact": "sparse",
            }
        )
        checks[f"r{r}_nullity_is_1"] = nullity == 1
        checks[f"r{r}_Mk_is_zero"] = in_kernel
        checks[f"r{r}_recursion_matches_closed_form"] = recursion_ok
        checks[f"r{r}_sum_pos_closed_form"] = pos == sum_positive(r)
        checks[f"r{r}_sum_neg_closed_form"] = neg == sum_negative(r)
        checks[f"r{r}_sum_is_1"] = pos - neg == 1
    first_closed = max(max_round, sparse_max_round) + 1
    for r in range(first_closed, first_closed + closed_form_rounds):
        rows.append(
            {
                "r": r,
                "columns 3^(r+1)": n_columns(r),
                "rows 3^(r+1)-1": n_rows(r),
                "nullity": 1,
                "sum+ k_r": sum_positive(r),
                "sum- k_r": sum_negative(r),
                "sum k_r": 1,
                "exact": "closed-form",
            }
        )
    return ExperimentResult(
        experiment="tab-kernel-structure",
        title="Lemmas 2-4: structure of M_r and its kernel k_r",
        headers=[
            "r",
            "columns 3^(r+1)",
            "rows 3^(r+1)-1",
            "nullity",
            "sum+ k_r",
            "sum- k_r",
            "sum k_r",
            "exact",
        ],
        rows=rows,
        checks=checks,
        notes=[
            "dense rounds: nullity certified by exact modular "
            "full-row-rank + rank-nullity",
            "sparse rounds: nullity certified by the recursive block "
            "structure of M_r (exact sparse comparisons, no elimination)",
            "sum- k_r = (3^(r+1)-1)/2 is the minimum network size keeping "
            "round r ambiguous (Lemma 5 precondition)",
        ],
    )
