"""Experiment: the matrix/kernel structure table (Lemmas 2-4).

For each round ``r`` the table reports the shape of ``M_r``, the exactly
certified kernel dimension, and the kernel sum identities -- comparing
every computed quantity against its closed form from the paper.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.registry import ExperimentResult
from repro.core.lowerbound.kernel import (
    closed_form_kernel,
    nullspace_dimension,
    recursive_kernel,
    sum_negative,
    sum_positive,
    verify_in_kernel,
)
from repro.core.lowerbound.matrices import n_columns, n_rows

__all__ = ["kernel_structure"]


def kernel_structure(*, max_round: int = 5, closed_form_rounds: int = 10) -> ExperimentResult:
    """Lemmas 2-4 over rounds ``0..max_round`` (dense) and beyond (closed form).

    Args:
        max_round: Largest round at which the dense ``M_r`` is built and
            its nullity certified exactly (cost grows as ``9^r``; 5 runs
            in under a second, 6 takes a few seconds).
        closed_form_rounds: Additional rounds for which only the
            closed-form columns are tabulated.
    """
    rows = []
    checks: dict[str, bool] = {}
    for r in range(max_round + 1):
        kernel = closed_form_kernel(r)
        nullity = nullspace_dimension(r)
        in_kernel = verify_in_kernel(r)
        recursion_ok = bool(np.array_equal(kernel, recursive_kernel(r)))
        pos = int(kernel[kernel > 0].sum())
        neg = int(-kernel[kernel < 0].sum())
        rows.append(
            {
                "r": r,
                "columns 3^(r+1)": n_columns(r),
                "rows 3^(r+1)-1": n_rows(r),
                "nullity": nullity,
                "sum+ k_r": pos,
                "sum- k_r": neg,
                "sum k_r": pos - neg,
                "exact": "dense",
            }
        )
        checks[f"r{r}_nullity_is_1"] = nullity == 1
        checks[f"r{r}_Mk_is_zero"] = in_kernel
        checks[f"r{r}_recursion_matches_closed_form"] = recursion_ok
        checks[f"r{r}_sum_pos_closed_form"] = pos == sum_positive(r)
        checks[f"r{r}_sum_neg_closed_form"] = neg == sum_negative(r)
        checks[f"r{r}_sum_is_1"] = pos - neg == 1
    for r in range(max_round + 1, max_round + 1 + closed_form_rounds):
        rows.append(
            {
                "r": r,
                "columns 3^(r+1)": n_columns(r),
                "rows 3^(r+1)-1": n_rows(r),
                "nullity": 1,
                "sum+ k_r": sum_positive(r),
                "sum- k_r": sum_negative(r),
                "sum k_r": 1,
                "exact": "closed-form",
            }
        )
    return ExperimentResult(
        experiment="tab-kernel-structure",
        title="Lemmas 2-4: structure of M_r and its kernel k_r",
        headers=[
            "r",
            "columns 3^(r+1)",
            "rows 3^(r+1)-1",
            "nullity",
            "sum+ k_r",
            "sum- k_r",
            "sum k_r",
            "exact",
        ],
        rows=rows,
        checks=checks,
        notes=[
            "nullity certified by exact modular full-row-rank + rank-nullity",
            "sum- k_r = (3^(r+1)-1)/2 is the minimum network size keeping "
            "round r ambiguous (Lemma 5 precondition)",
        ],
    )
