"""Experiment implementations, one module per DESIGN.md group.

* :mod:`repro.analysis.experiments.figures` -- the paper's Figures 1-4.
* :mod:`repro.analysis.experiments.kernel` -- Lemmas 2-4 (matrix/kernel
  structure table).
* :mod:`repro.analysis.experiments.lower_bound` -- Lemma 5 / Theorems
  1-2 (ambiguity horizon, rounds-vs-n headline curve).
* :mod:`repro.analysis.experiments.corollary` -- Corollary 1 (chain
  networks, ``D + Ω(log |V|)``).
* :mod:`repro.analysis.experiments.oracle` -- the Discussion's degree
  oracle gap and the ``G(PD)_1`` star observation.
* :mod:`repro.analysis.experiments.baselines` -- IDs and gossip
  baselines (Section 2 context).
"""
