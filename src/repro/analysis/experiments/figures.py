"""Experiments regenerating the paper's Figures 1-4.

The figures are worked examples; each experiment rebuilds the drawn
instance and verifies every property the paper's prose attributes to it.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.registry import ExperimentResult
from repro.core.counting.optimal import count_mdbl2_abstract
from repro.core.lowerbound.kernel import closed_form_kernel
from repro.core.lowerbound.matrices import (
    build_matrix,
    configuration_vector,
    observation_vector,
)
from repro.core.lowerbound.pairs import paper_figure3_pair, paper_figure4_pair
from repro.core.solver import feasible_size_interval
from repro.networks.generators.figures import paper_figure1, paper_figure2_multigraph
from repro.networks.properties import (
    dynamic_diameter,
    flood_completion_time,
    is_interval_connected,
    verify_pd,
)
from repro.networks.transform import mdbl_to_pd2
from repro.simulation.errors import ModelError

__all__ = [
    "fig1_pd2_example",
    "fig2_transformation",
    "fig3_indistinguishable_r0",
    "fig4_indistinguishable_r1",
]


def fig1_pd2_example(*, rounds: int = 6) -> ExperimentResult:
    """Figure 1: a ``G(PD)_2`` graph with ``D = 4``; flood timing.

    Verifies: persistent distances (layers ``V_0/V_1/V_2``), 1-interval
    connectivity, the topology actually changing between rounds, dynamic
    diameter exactly 4, and the flood from ``v_0`` reaching ``v_3`` at
    round 3 (completing at round 3's receive phase, i.e. in 4 rounds).
    """
    figure = paper_figure1()
    try:
        verify_pd(figure.graph, 0, 2, rounds)
        pd_ok = True
    except ModelError:
        pd_ok = False

    rows = []
    for round_no in range(3):
        graph = figure.graph.at(round_no)
        rows.append(
            {
                "round": round_no,
                "edges": sorted(graph.edges()),
                "connected": bool(is_interval_connected(figure.graph, round_no + 1)),
            }
        )
    measured_d = dynamic_diameter(figure.graph, start_rounds=3)
    flood_v0 = flood_completion_time(figure.graph, figure.v0, 0)
    topology_changes = any(
        set(figure.graph.at(r).edges()) != set(figure.graph.at(r + 1).edges())
        for r in range(2)
    )
    return ExperimentResult(
        experiment="fig1-pd2-example",
        title="Figure 1: G(PD)_2 example over three rounds (D = 4)",
        headers=["round", "edges", "connected"],
        rows=rows,
        checks={
            "persistent_distances_pd2": pd_ok,
            "interval_connected": is_interval_connected(figure.graph, rounds),
            "topology_changes_across_rounds": topology_changes,
            "dynamic_diameter_is_4": measured_d == 4,
            "flood_v0_reaches_v3_at_round_3": flood_v0 == 4,
        },
        notes=[
            f"measured dynamic diameter D = {measured_d}",
            f"flood from v0 completes at the receive phase of round "
            f"{flood_v0 - 1} (v3 is the last node reached)",
        ],
    )


def fig2_transformation() -> ExperimentResult:
    """Figure 2: the ``M(DBL)_3 -> G(PD)_2`` transformation.

    Verifies the defining bijection of Lemma 1's construction: outer
    node ``w`` is adjacent to middle node ``j`` iff the multigraph edge
    ``(v_l, w)`` with label ``j`` exists, and the result is in
    ``G(PD)_2``.
    """
    multigraph = paper_figure2_multigraph()
    graph, layout = mdbl_to_pd2(multigraph)
    round_no = 0
    rows = []
    bijection_ok = True
    for w, outer in enumerate(layout.outer):
        adjacent_labels = frozenset(
            layout.label_for_middle(m)
            for m in graph.at(round_no).neighbors(outer)
        )
        expected = multigraph.labels(w, round_no)
        bijection_ok &= adjacent_labels == expected
        rows.append(
            {
                "W node": w,
                "labels l_r(e)": sorted(expected),
                "adjacent middle nodes": sorted(
                    graph.at(round_no).neighbors(outer)
                ),
                "match": adjacent_labels == expected,
            }
        )
    try:
        distances = verify_pd(graph, layout.leader, 2, rounds=1)
        pd_ok = all(
            distances[m] == 1 for m in layout.middle
        ) and all(distances[o] == 2 for o in layout.outer)
    except ModelError:
        pd_ok = False
    return ExperimentResult(
        experiment="fig2-transformation",
        title="Figure 2: M(DBL)_3 -> G(PD)_2 transformation (round r)",
        headers=["W node", "labels l_r(e)", "adjacent middle nodes", "match"],
        rows=rows,
        checks={
            "label_edge_bijection": bijection_ok,
            "image_is_pd2": pd_ok,
            "node_v_has_all_three_labels": multigraph.labels(3, 0)
            == frozenset({1, 2, 3}),
        },
    )


def fig3_indistinguishable_r0() -> ExperimentResult:
    """Figure 3 and equations (1)-(3): round-0 indistinguishability.

    Rebuilds the two multigraphs with ``m_0 = [2, 2]`` (sizes 2 and 4,
    related by two kernel steps ``s' = s + 2·k_0``), checks the matrix
    identities ``M_0 s = M_0 s' = m_0`` exactly, and confirms the exact
    solver reports every size in ``{2, 3, 4}`` feasible after round 0.
    """
    smaller, larger = paper_figure3_pair()
    m0 = build_matrix(0)
    k0 = closed_form_kernel(0)
    s = configuration_vector(smaller.configuration(1), 0)
    s_prime = configuration_vector(larger.configuration(1), 0)
    obs_small = smaller.observations(1)
    obs_large = larger.observations(1)
    m_vec = observation_vector(obs_small, 0)

    identity_ok = bool(
        np.array_equal(m0 @ s, m_vec) and np.array_equal(m0 @ s_prime, m_vec)
    )
    kernel_ok = bool(np.array_equal(s_prime, s + 2 * k0))
    interval = feasible_size_interval(obs_small)
    rows = [
        {
            "instance": name,
            "|W|": mg.n,
            "s vector": vec.tolist(),
            "leader state m_0": observation_vector(mg.observations(1), 0).tolist(),
        }
        for name, mg, vec in (
            ("M", smaller, s),
            ("M'", larger, s_prime),
        )
    ]
    return ExperimentResult(
        experiment="fig3-indistinguishable-r0",
        title="Figure 3: two M(DBL)_2 of sizes 2 and 4 indistinguishable at r=0",
        headers=["instance", "|W|", "s vector", "leader state m_0"],
        rows=rows,
        checks={
            "m0_equals_M0_s_for_both": identity_ok,
            "s_prime_is_s_plus_2k0": kernel_ok,
            "leader_states_equal_round_0": obs_small == obs_large,
            "solver_interval_is_2_to_4": (interval.lo, interval.hi) == (2, 4),
        },
        notes=[f"feasible sizes after round 0: {interval}"],
    )


def fig4_indistinguishable_r1() -> ExperimentResult:
    """Figure 4 and equations (4)-(5): round-1 indistinguishability.

    Rebuilds the paper's ``s_1`` (n = 4) and ``s'_1 = s_1 + k_1``
    (n = 5), checks ``M_1 s_1 = M_1 s'_1`` exactly, that the leader
    states coincide through round 1 and diverge at round 2, and that the
    optimal counter outputs the true sizes afterwards.
    """
    smaller, larger = paper_figure4_pair()
    m1 = build_matrix(1)
    k1 = closed_form_kernel(1)
    s1 = configuration_vector(smaller.configuration(2), 1)
    s1_prime = configuration_vector(larger.configuration(2), 1)

    equal_products = bool(np.array_equal(m1 @ s1, m1 @ s1_prime))
    kernel_step = bool(np.array_equal(s1_prime, s1 + k1))
    equal_r1 = smaller.observations(2) == larger.observations(2)
    diverge_r2 = smaller.observations(3) != larger.observations(3)
    outcome_small = count_mdbl2_abstract(smaller)
    outcome_large = count_mdbl2_abstract(larger)

    rows = [
        {
            "instance": name,
            "|W|": mg.n,
            "s vector": vec.tolist(),
            "count": outcome.count,
            "output round": outcome.output_round,
        }
        for name, mg, vec, outcome in (
            ("M", smaller, s1, outcome_small),
            ("M'", larger, s1_prime, outcome_large),
        )
    ]
    return ExperimentResult(
        experiment="fig4-indistinguishable-r1",
        title="Figure 4: sizes 4 and 5 indistinguishable through r=1 (M_1, k_1)",
        headers=["instance", "|W|", "s vector", "count", "output round"],
        rows=rows,
        checks={
            "M1_s1_equals_M1_s1_prime": equal_products,
            "s1_prime_is_s1_plus_k1": kernel_step,
            "leader_states_equal_through_round_1": equal_r1,
            "leader_states_diverge_at_round_2": diverge_r2,
            "optimal_counts_both_correctly": outcome_small.count == 4
            and outcome_large.count == 5,
            "paper_s1_matches_size_4": int(s1.sum()) == 4,
            "paper_s1_prime_matches_size_5": int(s1_prime.sum()) == 5,
        },
    )
