"""Extension experiment: the bandwidth cost of optimal anonymous counting.

The model's "unlimited bandwidth" assumption is load-bearing: the
optimal anonymous protocol has every node broadcast its entire state
history, so per-round traffic grows with the round number (and with
``n``).  The baselines that escape the log-round lower bound also
escape the growing payloads: the degree-oracle protocol sends constant-
size fractions and the ID flood sends sets that grow with ``n`` but not
with time.  This experiment meters all three on the same worst-case
dynamics.
"""

from __future__ import annotations

from repro.adversaries.worst_case import (
    max_ambiguity_multigraph,
    worst_case_pd2_network,
)
from repro.analysis.bandwidth import (
    measure_engine_bandwidth,
    measure_labeled_bandwidth,
)
from repro.analysis.registry import ExperimentResult
from repro.core.counting.degree_oracle import (
    OracleLeaderProcess,
    OracleMemberProcess,
)
from repro.core.counting.optimal import (
    AnonymousStateProcess,
    OptimalLeaderProcess,
)
from repro.core.counting.token_ids import IdFloodProcess
from repro.networks.properties import dynamic_diameter
from repro.simulation.engine import DegreeOracleEngine, EngineConfig

__all__ = ["bandwidth_table"]


def _oracle_traffic(network, n_nodes: int) -> list[int]:
    """Per-round atoms of the degree-oracle protocol (metered engine run)."""
    from repro.analysis.bandwidth import _MeteredEngine

    class _MeteredOracleEngine(_MeteredEngine, DegreeOracleEngine):
        """Metering plus the degree-oracle pre-send hook."""

    engine = _MeteredOracleEngine(
        [
            OracleLeaderProcess() if index == 0 else OracleMemberProcess()
            for index in range(n_nodes)
        ],
        network,
        leader=0,
        config=EngineConfig(max_rounds=4),
    )
    engine.run()
    return engine.sent_atoms


def bandwidth_table(
    *, sizes: tuple[int, ...] = (13, 40, 121)
) -> ExperimentResult:
    """Per-round broadcast atoms of the three counters, same dynamics."""
    rows = []
    checks: dict[str, bool] = {}
    for n in sizes:
        adversary = max_ambiguity_multigraph(n)
        optimal_traffic = measure_labeled_bandwidth(
            OptimalLeaderProcess(),
            [AnonymousStateProcess() for _ in range(n)],
            adversary,
        )

        network, layout = worst_case_pd2_network(n)
        oracle_traffic = _oracle_traffic(network, layout.n)

        horizon = dynamic_diameter(network, start_rounds=2)
        ids_traffic, _delivered = measure_engine_bandwidth(
            [IdFloodProcess(index, horizon) for index in range(layout.n)],
            network,
            max_rounds=horizon + 1,
        )

        rows.append(
            {
                "n": n,
                "optimal r0 atoms": optimal_traffic[0],
                "optimal last-round atoms": optimal_traffic[-1],
                "optimal rounds": len(optimal_traffic),
                "oracle atoms/round": max(oracle_traffic),
                "ids last-round atoms": ids_traffic[-1],
            }
        )
        key = f"n{n}"
        checks[f"{key}_optimal_traffic_grows_with_rounds"] = (
            optimal_traffic[-1] > optimal_traffic[0]
        )
        checks[f"{key}_oracle_traffic_bounded"] = (
            max(oracle_traffic) <= 3 * layout.n
        )
        # Last-round ID broadcasts approach one full ID set per node
        # (some nodes are still one delivery short of complete sets).
        checks[f"{key}_ids_traffic_scales_with_n"] = (
            ids_traffic[-1] >= layout.n * layout.n // 2
        )
    # The optimal counter's growth across n: last-round traffic strictly
    # increases with n (longer histories * more nodes).
    lasts = [row["optimal last-round atoms"] for row in rows]
    checks["optimal_traffic_grows_with_n"] = lasts == sorted(lasts) and (
        lasts[0] < lasts[-1]
    )
    return ExperimentResult(
        experiment="tab-bandwidth",
        title="Extension: bandwidth use of the counters (atoms broadcast)",
        headers=[
            "n",
            "optimal r0 atoms",
            "optimal last-round atoms",
            "optimal rounds",
            "oracle atoms/round",
            "ids last-round atoms",
        ],
        rows=rows,
        checks=checks,
        notes=[
            "the optimal anonymous counter broadcasts full state "
            "histories: traffic grows every round -- the price of the "
            "model's unlimited-bandwidth assumption",
            "the degree-oracle and ID baselines dodge the growth along "
            "with the round lower bound",
        ],
    )
