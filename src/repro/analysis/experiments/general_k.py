"""Extension experiment: the general-k system (beyond the paper's k=2).

The paper analyses ``M(DBL)_2`` densely and lifts the bound to every
``k`` via inclusion.  This experiment inspects the general-k structure
directly:

* the kernel of ``M_r^{(k)}`` is huge for ``k >= 3`` (many directions
  to hide along), yet
* the *cheapest* unit size-shifting kernel direction -- the quantity
  that controls the ambiguity horizon -- has exactly the same negative
  mass ``(3^{r+1}-1)/2`` as for ``k = 2`` (computed by exact integer
  programming), i.e. richer label alphabets do **not** let the
  adversary stay ambiguous longer;
* embedding the k=2 twins into ``k = 3`` keeps them indistinguishable
  (checked with the exact general-k set solver), and the general-k
  optimal counter still counts random ``k = 3`` instances correctly.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.registry import ExperimentResult
from repro.core.lowerbound.bounds import ambiguity_horizon, min_sum_negative
from repro.core.lowerbound.general import (
    embedded_k2_kernel,
    general_matrix,
    general_n_columns,
    general_n_rows,
    general_nullity,
    min_negative_mass,
    product_kernel_vector,
)
from repro.core.lowerbound.pairs import twin_multigraphs
from repro.core.solver_general import count_mdblk_abstract, feasible_sizes_general
from repro.networks.multigraph import DynamicMultigraph

__all__ = ["general_k_structure"]


def general_k_structure(
    *,
    ks: tuple[int, ...] = (2, 3),
    max_round: int = 1,
    twin_n: int = 4,
    random_trials: int = 5,
) -> ExperimentResult:
    """Kernel structure and ambiguity cost of ``M_r^{(k)}`` for small k.

    Args:
        ks: Label alphabet sizes to tabulate.
        max_round: Largest round (dense matrices grow as
            ``(2^k - 1)^{2r}``; the MILP dominates the cost).
        twin_n: Size for the embedded-twin ambiguity check.
        random_trials: Random k=3 instances counted for correctness.
    """
    rows = []
    checks: dict[str, bool] = {}
    for k in ks:
        for r in range(max_round + 1):
            matrix = general_matrix(k, r)
            nullity = general_nullity(k, r)
            product_in_kernel = not np.any(matrix @ product_kernel_vector(k, r))
            embedded_in_kernel = not np.any(matrix @ embedded_k2_kernel(k, r))
            cheapest = min_negative_mass(k, r)
            rows.append(
                {
                    "k": k,
                    "r": r,
                    "columns": general_n_columns(k, r),
                    "rows": general_n_rows(k, r),
                    "kernel dim": nullity,
                    "min negative mass": cheapest,
                    "k=2 closed form": min_sum_negative(r),
                }
            )
            key = f"k{k}_r{r}"
            checks[f"{key}_product_vector_in_kernel"] = product_in_kernel
            checks[f"{key}_embedded_k2_in_kernel"] = embedded_in_kernel
            checks[f"{key}_min_mass_matches_k2"] = cheapest == min_sum_negative(r)

    # Embedded twins stay ambiguous in the richer alphabet.
    horizon = ambiguity_horizon(twin_n)
    smaller, larger = twin_multigraphs(horizon, twin_n)
    lifted = []
    for twin in (smaller, larger):
        lifted.append(
            DynamicMultigraph(
                3,
                [
                    [twin.labels(node, r) for r in range(horizon + 1)]
                    for node in range(twin.n)
                ],
            )
        )
    sizes = feasible_sizes_general(lifted[0].observations(horizon + 1))
    checks["embedded_twins_equal_in_k3"] = (
        lifted[0].observations(horizon + 1) == lifted[1].observations(horizon + 1)
    )
    checks["embedded_twins_both_sizes_feasible"] = (
        twin_n in sizes and twin_n + 1 in sizes
    )

    # The general-k optimal counter is exact on random k=3 instances.
    all_correct = True
    for trial in range(random_trials):
        rng = np.random.default_rng([13, trial])
        n = int(rng.integers(1, 8))
        instance = DynamicMultigraph.random(3, n, 8, rng)
        all_correct &= count_mdblk_abstract(instance).count == n
    checks["k3_optimal_counter_exact_on_random"] = all_correct

    return ExperimentResult(
        experiment="tab-general-k",
        title="Extension: M(DBL)_k structure for k > 2 (inclusion made concrete)",
        headers=[
            "k",
            "r",
            "columns",
            "rows",
            "kernel dim",
            "min negative mass",
            "k=2 closed form",
        ],
        rows=rows,
        checks=checks,
        notes=[
            "min negative mass = exact MILP optimum over integer kernel "
            "vectors with sum 1: the smallest network size at which sizes "
            "n and n+1 can be confused at round r",
            "for every k tested it equals the k=2 closed form "
            "(3^(r+1)-1)/2: larger label alphabets do not extend the "
            "ambiguity horizon",
        ],
    )
