"""Extension experiment: dissemination regimes (Section 2's backdrop).

Runs k-token dissemination on the same dynamic networks in the two
bandwidth regimes the related work distinguishes:

* unlimited bandwidth (the paper's model): flooding completes within
  the dynamic diameter ``D`` -- information transport is cheap, so the
  paper's counting bound isolates the *anonymity* cost;
* token forwarding (one token per message): the known-``n`` algorithm
  needs ``n·k`` rounds -- transport itself becomes the bottleneck,
  which is the regime of the ``Ω(n log k)`` lower bounds cited in
  Section 2.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.registry import ExperimentResult
from repro.core.dissemination import (
    disseminate_by_flooding,
    disseminate_by_token_forwarding,
)
from repro.networks.generators.random_dynamic import RandomConnectedAdversary
from repro.networks.properties import dynamic_diameter

__all__ = ["token_dissemination"]


def token_dissemination(
    *,
    sizes: tuple[int, ...] = (8, 16, 32),
    tokens_per_size: tuple[int, ...] = (2, 4),
    seed: int = 3,
    backend: str = "object",
) -> ExperimentResult:
    """Flooding vs token forwarding over (n, k) combinations.

    Args:
        backend: Simulation backend for the flooding regime (``"object"``
            or ``"fast"``); token forwarding always runs on the object
            engine (its per-phase commit state has no array form).
    """
    rows = []
    checks: dict[str, bool] = {}
    for n in sizes:
        network = RandomConnectedAdversary(
            n, seed=seed, extra_edge_p=0.05
        ).as_dynamic_graph()
        diameter = dynamic_diameter(network, start_rounds=2)
        for k in tokens_per_size:
            rng = np.random.default_rng([seed, n, k])
            holders = rng.choice(n, size=k, replace=False)
            assignment = {int(node): token for token, node in enumerate(holders)}
            flooding = disseminate_by_flooding(
                network, assignment, backend=backend
            )
            forwarding = disseminate_by_token_forwarding(network, assignment)
            rows.append(
                {
                    "n": n,
                    "k": k,
                    "dynamic diameter D": diameter,
                    "flooding rounds": flooding.rounds,
                    "forwarding rounds": forwarding.rounds,
                    "forwarding bound n*k": n * k,
                    "flooding msgs": flooding.messages,
                    "forwarding msgs": forwarding.messages,
                }
            )
            key = f"n{n}_k{k}"
            checks[f"{key}_flooding_within_D"] = flooding.rounds <= diameter
            checks[f"{key}_forwarding_is_nk"] = forwarding.rounds == n * k
            checks[f"{key}_regime_gap"] = flooding.rounds < forwarding.rounds
    return ExperimentResult(
        experiment="tab-token-dissemination",
        title="Extension: k-token dissemination, unlimited bandwidth vs "
        "token forwarding",
        headers=[
            "n",
            "k",
            "dynamic diameter D",
            "flooding rounds",
            "forwarding rounds",
            "forwarding bound n*k",
            "flooding msgs",
            "forwarding msgs",
        ],
        rows=rows,
        checks=checks,
        notes=[
            "unlimited bandwidth makes dissemination a D-round problem -- "
            "the paper's counting bound is therefore about anonymity, not "
            "transport",
            "token forwarding pays n*k rounds (known-n commit-the-minimum "
            "algorithm), the regime of the Omega(n log k) bounds",
        ],
    )
