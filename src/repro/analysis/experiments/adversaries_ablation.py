"""Ablation experiment: how good is the Lemma 5 adversary, really?

Three adversaries face the optimal counter on the same sizes:

* the paper's **kernel schedule** (Lemma 5, committed upfront);
* a **greedy adaptive** adversary maximising the leader's next-round
  ambiguity (one-step lookahead over all label assignments);
* the **exhaustive optimum** over all schedules (tiny ``n`` only --
  exact by memoised search).

Findings encoded as checks: the kernel schedule meets the theoretical
bound at every size; the exhaustive optimum *equals* it (the bound is
exactly tight, not just asymptotically); and the greedy adversary is
strictly worse -- maximising immediate ambiguity spends the very
symmetry the sustained construction relies on, so the lower bound
genuinely needs the paper's kernel structure.
"""

from __future__ import annotations

from repro.adversaries.exhaustive import exhaustive_max_rounds
from repro.adversaries.greedy import GreedyAmbiguityAdversary
from repro.adversaries.worst_case import max_ambiguity_multigraph
from repro.analysis.registry import ExperimentResult
from repro.core.counting.optimal import count_mdbl2_abstract
from repro.core.lowerbound.bounds import rounds_to_count

__all__ = ["adaptive_adversary_ablation"]


def adaptive_adversary_ablation(
    *,
    sizes: tuple[int, ...] = (2, 3, 4, 5, 6, 8, 13, 40),
    exhaustive_max_n: int = 6,
) -> ExperimentResult:
    """Kernel vs greedy vs exhaustive adversaries, measured rounds."""
    rows = []
    checks: dict[str, bool] = {}
    for n in sizes:
        kernel_rounds = count_mdbl2_abstract(
            max_ambiguity_multigraph(n)
        ).rounds
        greedy = GreedyAmbiguityAdversary(n)
        greedy_rounds = greedy.play_until_pinned()
        exhaustive = (
            exhaustive_max_rounds(n) if n <= exhaustive_max_n else None
        )
        theory = rounds_to_count(n)
        rows.append(
            {
                "n": n,
                "theory optimum": theory,
                "kernel schedule": kernel_rounds,
                "greedy adaptive": greedy_rounds,
                "exhaustive optimum": exhaustive
                if exhaustive is not None
                else "(too large)",
            }
        )
        key = f"n{n}"
        checks[f"{key}_kernel_meets_theory"] = kernel_rounds == theory
        checks[f"{key}_greedy_never_beats_theory"] = greedy_rounds <= theory
        if exhaustive is not None:
            checks[f"{key}_exhaustive_equals_theory"] = exhaustive == theory
    checks["greedy_strictly_worse_somewhere"] = any(
        row["greedy adaptive"] < row["theory optimum"] for row in rows
    )
    return ExperimentResult(
        experiment="tab-adaptive-adversary",
        title="Ablation: kernel schedule vs greedy vs exhaustive adversaries",
        headers=[
            "n",
            "theory optimum",
            "kernel schedule",
            "greedy adaptive",
            "exhaustive optimum",
        ],
        rows=rows,
        checks=checks,
        notes=[
            "exhaustive optimum searches every M(DBL)_2 schedule (exact); "
            "its agreement with the theory certifies the bound is tight",
            "the greedy adversary maximises next-round ambiguity and "
            "collapses early: sustained ambiguity requires the kernel "
            "construction, not just adaptivity",
        ],
    )
