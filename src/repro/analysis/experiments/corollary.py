"""Experiment: Corollary 1 -- ``D + Ω(log |V|)`` on chain networks.

Sweeps chain length (which sets the dynamic diameter) against core size
(which sets the anonymity cost) and verifies that the measured counting
time decomposes additively, while plain dissemination (flooding) only
costs ``D`` -- the separation between counting and information
dissemination that the paper's conclusion highlights.
"""

from __future__ import annotations

from repro.analysis.registry import ExperimentResult
from repro.adversaries.worst_case import max_ambiguity_multigraph
from repro.core.counting.chain import count_chain_pd2
from repro.core.lowerbound.bounds import corollary1_bound, rounds_to_count
from repro.networks.generators.chains import chain_pd2_network
from repro.networks.properties import dynamic_diameter, flood_completion_time

__all__ = ["corollary1_table"]


def corollary1_table(
    *,
    sizes: tuple[int, ...] = (4, 13, 40),
    chain_lengths: tuple[int, ...] = (0, 2, 4, 8),
    diameter_start_rounds: int = 4,
    backend: str = "object",
) -> ExperimentResult:
    """Measured counting time vs ``D`` on Corollary 1 gadgets.

    For every ``(n, chain_length)`` pair: build the chain network from
    the worst-case core schedule, measure its dynamic diameter ``D`` by
    exhaustive flooding, measure the flooding (dissemination) time from
    the leader, run the chain counting protocol through the engine, and
    compare against ``corollary1_bound``.

    Args:
        backend: Simulation backend for the chain counter (``"object"``
            or ``"fast"``); the table is identical either way.
    """
    rows = []
    checks: dict[str, bool] = {}
    for n in sizes:
        for chain_length in chain_lengths:
            core = max_ambiguity_multigraph(n)
            network, layout = chain_pd2_network(core, chain_length)
            measured_d = dynamic_diameter(
                network, start_rounds=diameter_start_rounds
            )
            leader_flood = flood_completion_time(network, layout.leader, 0)
            outcome = count_chain_pd2(core, chain_length, backend=backend)
            bound = corollary1_bound(n, chain_length)
            rows.append(
                {
                    "n core": n,
                    "chain L": chain_length,
                    "|V|": layout.n,
                    "dynamic diameter D": measured_d,
                    "flood from leader": leader_flood,
                    "counting rounds": outcome.rounds,
                    "bound L+log-term": bound,
                    "count correct": outcome.count == n,
                }
            )
            key = f"n{n}_L{chain_length}"
            checks[f"{key}_count_correct"] = outcome.count == n
            checks[f"{key}_rounds_match_bound"] = outcome.rounds == bound
            checks[f"{key}_counting_exceeds_dissemination"] = (
                outcome.rounds > leader_flood
            )
            # The additive decomposition: the chain contributes exactly
            # its length to the counting time.
            checks[f"{key}_additive_in_chain"] = (
                outcome.rounds - chain_length == rounds_to_count(n) + 1
            )
    return ExperimentResult(
        experiment="tab-corollary1-diameter",
        title="Corollary 1: counting needs D + Omega(log |V|) rounds",
        headers=[
            "n core",
            "chain L",
            "|V|",
            "dynamic diameter D",
            "flood from leader",
            "counting rounds",
            "bound L+log-term",
            "count correct",
        ],
        rows=rows,
        checks=checks,
        notes=[
            "flooding (dissemination) completes within D while counting "
            "additionally pays the log-size anonymity cost",
        ],
    )
