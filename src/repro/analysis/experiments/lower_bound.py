"""Experiments: Lemma 5 / Theorems 1-2 -- the cost-of-anonymity curves.

These are the headline measurements of the reproduction: the worst-case
adversary is executed against the information-theoretically optimal
counting algorithm and the measured round counts are compared, point for
point, against the closed-form bounds.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.fitting import fit_log3
from repro.analysis.parallel import parallel_map
from repro.analysis.registry import ExperimentResult
from repro.analysis.sweep import log_spaced_sizes
from repro.adversaries.worst_case import (
    max_ambiguity_multigraph,
    measured_ambiguity_curve,
)
from repro.core.counting.optimal import count_mdbl2_abstract
from repro.core.lowerbound.bounds import (
    ambiguity_horizon,
    min_output_round,
    min_sum_negative,
    rounds_to_count,
    theorem1_bound,
)
from repro.core.lowerbound.pairs import twin_multigraphs
from repro.networks.multigraph import DynamicMultigraph

__all__ = ["ambiguity_horizon_table", "counting_rounds_vs_n"]


def _measure_horizon(n: int) -> tuple[dict, bool, bool, bool]:
    """Per-size worker of :func:`ambiguity_horizon_table` (picklable)."""
    theory = ambiguity_horizon(n)
    adversary = max_ambiguity_multigraph(n)
    widths = measured_ambiguity_curve(adversary)
    measured_last_ambiguous = max(
        (round_no for round_no, width in enumerate(widths) if width > 0),
        default=-1,
    )
    smaller, larger = twin_multigraphs(theory, n)
    twins_equal = smaller.observations(theory + 1) == larger.observations(
        theory + 1
    )
    twins_diverge = smaller.observations(theory + 2) != larger.observations(
        theory + 2
    )
    row = {
        "n": n,
        "sum- k_r at horizon": min_sum_negative(theory),
        "theory horizon": theory,
        "measured horizon": measured_last_ambiguous,
        "theorem1 formula": theorem1_bound(n),
        "first output round": len(widths) - 1,
        "theory output round": min_output_round(n),
    }
    return row, measured_last_ambiguous == theory, twins_equal, twins_diverge


def ambiguity_horizon_table(
    *,
    sizes: tuple[int, ...] = (1, 2, 4, 5, 13, 14, 40, 41, 121, 122, 364, 365),
    jobs: int = 1,
) -> ExperimentResult:
    """Lemma 5 / Theorem 1: measured vs theoretical ambiguity horizon.

    For each size ``n``, runs the worst-case adversary against the exact
    solver and records the last round at which the feasible-size
    interval was still wide; it must equal ``⌊log_3(2n+1)⌋ - 1`` exactly.
    The default sizes straddle the thresholds ``(3^{r+1}-1)/2`` where the
    horizon jumps (4/5, 13/14, 40/41, ...).  Sizes are independent, so
    ``jobs > 1`` spreads them over worker processes.
    """
    rows = []
    checks: dict[str, bool] = {}
    outcomes = parallel_map(_measure_horizon, sizes, jobs=jobs)
    for n, (row, horizon_ok, twins_equal, twins_diverge) in zip(
        sizes, outcomes
    ):
        rows.append(row)
        checks[f"n{n}_horizon_matches"] = horizon_ok
        checks[f"n{n}_twins_equal_through_horizon"] = twins_equal
        checks[f"n{n}_twins_diverge_after_horizon"] = twins_diverge
    return ExperimentResult(
        experiment="tab-ambiguity-horizon",
        title="Lemma 5 / Theorem 1: ambiguity horizon, measured vs theory",
        headers=[
            "n",
            "sum- k_r at horizon",
            "theory horizon",
            "measured horizon",
            "theorem1 formula",
            "first output round",
            "theory output round",
        ],
        rows=rows,
        checks=checks,
        notes=[
            "measured horizon = last round the exact solver's feasible-size "
            "interval is wider than a point, under the Lemma 5 adversary",
        ],
    )


def _measure_counting(args: tuple[int, tuple[int, ...], int]) -> dict:
    """Per-size worker of :func:`counting_rounds_vs_n` (picklable)."""
    n, fair_seeds, fair_rounds_budget = args
    outcome = count_mdbl2_abstract(max_ambiguity_multigraph(n))
    fair_rounds = []
    for seed in fair_seeds:
        rng = np.random.default_rng([seed, n])
        fair = DynamicMultigraph.random(
            2, n, fair_rounds_budget, rng, name=f"fair-n{n}-s{seed}"
        )
        fair_rounds.append(count_mdbl2_abstract(fair).rounds)
    return {
        "n": n,
        "worst-case measured": outcome.rounds,
        "theory": rounds_to_count(n),
        "fair mean": sum(fair_rounds) / len(fair_rounds),
        "count correct": outcome.count == n,
    }


def counting_rounds_vs_n(
    *,
    max_n: int = 1000,
    per_decade: int = 6,
    fair_seeds: tuple[int, ...] = (0, 1, 2),
    fair_rounds_budget: int = 64,
    jobs: int = 1,
) -> ExperimentResult:
    """Theorem 2 (headline): counting rounds vs network size.

    Series produced:

    * ``worst-case measured`` -- termination round of the optimal
      anonymous counter against the worst-case adversary;
    * ``theory`` -- ``rounds_to_count(n) = ⌊log_3(2n+1)⌋ + 1``;
    * ``fair mean`` -- mean termination round under uniform random label
      schedules (fair adversary), showing the gap is adversarial.

    The worst-case series is fitted to ``a + b·log_3 n``; Theorem 2's
    claim corresponds to slope ``b ≈ 1`` with ``R² ≈ 1``.  Each size is
    measured independently, so ``jobs > 1`` spreads the sweep over
    worker processes (results are deterministic and order-preserving
    either way).
    """
    sizes = log_spaced_sizes(2, max_n, per_decade=per_decade)
    rows = parallel_map(
        _measure_counting,
        [(n, tuple(fair_seeds), fair_rounds_budget) for n in sizes],
        jobs=jobs,
    )
    measured = [row["worst-case measured"] for row in rows]
    checks: dict[str, bool] = {}
    for n, row in zip(sizes, rows):
        checks[f"n{n}_matches_theory"] = (
            row["worst-case measured"] == row["theory"]
        )
        checks[f"n{n}_count_correct"] = bool(row["count correct"])
    fit = fit_log3(sizes, measured)
    checks["log3_slope_near_1"] = 0.8 <= fit.slope <= 1.2
    checks["log3_fit_r2_above_0.95"] = fit.r_squared >= 0.95
    return ExperimentResult(
        experiment="fig-counting-rounds-vs-n",
        title="Theorem 2: rounds to count vs n (worst-case adversary)",
        headers=["n", "worst-case measured", "theory", "fair mean", "count correct"],
        rows=rows,
        checks=checks,
        notes=[str(fit)],
    )
