"""Extension experiment: the algorithm zoo raced against Theorem 1.

Theorem 1 lower-bounds anonymous counting: no algorithm can output
before round ``floor(log3(2n+1)) - 1``, even on benign dynamics.  The
zoo provides the other side of the race -- four published counting
*upper bounds* (Di Luna-Viglietta, Kowalski-Mosteiro, Milani-Mosteiro,
Chakraborty-Milani-Mosteiro) executed on the real engine.  This
experiment sweeps them over the dynamic-network families, tabulating
the empirical termination round next to the Theorem 1 horizon: the gap
between the ``Omega(log n)`` floor and the ``O(n)``-and-up ceilings is
the paper's open "cost of anonymity" band, made measurable.

Every algorithm must also be *correct* (``count == n``) on every cell;
the drain-based algorithms run on the selected backend (their fast
path is bit-identical), the history-tree ones are object-engine only.
"""

from __future__ import annotations

from repro.analysis.registry import ExperimentResult
from repro.core.counting.diluna_viglietta import count_diluna_viglietta
from repro.core.counting.drain import count_chakraborty_mm, count_milani_mosteiro
from repro.core.counting.kowalski_mosteiro import count_kowalski_mosteiro
from repro.core.lowerbound.bounds import theorem1_bound
from repro.networks.dynamic_graph import DynamicGraph
from repro.networks.generators.markov import edge_markov_network
from repro.networks.generators.random_dynamic import RandomConnectedAdversary
from repro.networks.generators.t_interval import t_interval_network

__all__ = ["upper_vs_lower"]

#: The zoo, in presentation order.  Each entry maps the column label to
#: a runner ``f(network, backend) -> CountingOutcome``; history-tree
#: algorithms ignore the backend (they do not vectorize).
_ALGORITHMS = (
    (
        "DV",
        lambda network, backend: count_diluna_viglietta(network),
    ),
    (
        "KM(l=2)",
        lambda network, backend: count_kowalski_mosteiro(
            network, supervisors=2
        ),
    ),
    (
        "MM",
        lambda network, backend: count_milani_mosteiro(
            network, backend=backend
        ),
    ),
    (
        "CMM",
        lambda network, backend: count_chakraborty_mm(
            network, backend=backend
        ),
    ),
)


def _families(n: int, seed: int, t_window: int) -> dict[str, DynamicGraph]:
    return {
        "memoryless-random": RandomConnectedAdversary(
            n, seed=seed
        ).as_dynamic_graph(),
        "edge-markov": edge_markov_network(n, seed=seed),
        f"{t_window}-interval": t_interval_network(n, t_window, seed=seed),
    }


def upper_vs_lower(
    *,
    sizes: tuple[int, ...] = (4, 7, 10),
    seed: int = 5,
    t_window: int = 3,
    backend: str = "object",
) -> ExperimentResult:
    """Race the counting upper bounds against the Theorem 1 horizon.

    Args:
        sizes: Network sizes swept per family (all must be ``>= 2``; the
            KM column runs with 2 supervisors).
        seed: Seed for every stochastic family.
        t_window: Stability window of the T-interval family.
        backend: Simulation backend for the vectorized (drain)
            algorithms.

    Returns:
        One row per ``family x n`` with the Theorem 1 horizon and each
        algorithm's termination round; checks assert ``count == n`` and
        that no algorithm beats the lower bound.
    """
    sizes = tuple(int(n) for n in sizes)
    if any(n < 2 for n in sizes):
        raise ValueError("sizes must all be at least 2")
    rows = []
    checks: dict[str, bool] = {}
    family_names = list(_families(min(sizes), seed, t_window))
    exact = {
        (family, label): True
        for family in family_names
        for label, _runner in _ALGORITHMS
    }
    above = dict(exact)
    for n in sizes:
        horizon = theorem1_bound(n)
        for family, network in _families(n, seed, t_window).items():
            row = {"family": family, "n": n, "thm1 horizon": horizon}
            for label, runner in _ALGORITHMS:
                outcome = runner(network, backend)
                row[f"{label} round"] = outcome.output_round
                exact[(family, label)] &= outcome.count == n
                above[(family, label)] &= outcome.output_round >= horizon
            rows.append(row)
    for family in family_names:
        key = family.replace("-", "_")
        for label, _runner in _ALGORITHMS:
            algo = label.split("(")[0].lower()
            checks[f"{key}_{algo}_exact"] = exact[(family, label)]
            checks[f"{key}_{algo}_above_horizon"] = above[(family, label)]
    return ExperimentResult(
        experiment="upper-vs-lower",
        title="Extension: counting upper bounds vs the Theorem 1 horizon",
        headers=["family", "n", "thm1 horizon"]
        + [f"{label} round" for label, _runner in _ALGORITHMS],
        rows=rows,
        checks=checks,
        notes=[
            "every algorithm outputs count == n on every cell; rounds are "
            "0-indexed output rounds",
            "the gap between floor(log3(2n+1))-1 and the measured rounds "
            "is the paper's open anonymity-cost band: Omega(log n) floor, "
            "O(n) DV/KM ceiling, polynomial MM/CMM drains",
        ],
    )
