"""Experiment: the Section 2 baselines -- IDs and gossip.

Two reference points situate the anonymity cost:

* **with IDs** counting reduces to token dissemination and finishes in
  the dynamic diameter, even on the worst-case anonymous-hard dynamics;
* **anonymous gossip** (push-sum) under a fair adversary converges to
  the size but never terminates with certainty -- consistent with the
  lower bound, which forbids fast exact anonymous counting.
"""

from __future__ import annotations

from repro.analysis.registry import ExperimentResult
from repro.adversaries.worst_case import worst_case_pd2_network
from repro.core.counting.gossip import gossip_size_estimates
from repro.core.counting.token_ids import count_with_ids
from repro.networks.generators.random_dynamic import RandomConnectedAdversary
from repro.networks.properties import dynamic_diameter

__all__ = ["baselines_table"]


def baselines_table(
    *,
    id_sizes: tuple[int, ...] = (4, 13, 40, 121),
    gossip_sizes: tuple[int, ...] = (16, 64, 256),
    gossip_rounds: int = 60,
    gossip_seed: int = 7,
    backend: str = "object",
) -> ExperimentResult:
    """IDs finish in ``D`` rounds; gossip estimates but never pins.

    Part A runs ID-based token dissemination on the worst-case
    ``G(PD)_2`` networks (where anonymous counting needs log rounds) and
    checks exactness at horizon ``D``.  Part B runs push-sum under a fair
    random adversary and reports the relative estimation error at
    checkpoints.

    Args:
        backend: Simulation backend for the engine-driven baselines
            (``"object"`` or ``"fast"``).
    """
    rows = []
    checks: dict[str, bool] = {}
    for n in id_sizes:
        network, layout = worst_case_pd2_network(n)
        measured_d = dynamic_diameter(network, start_rounds=3)
        outcome = count_with_ids(network, measured_d, backend=backend)
        rows.append(
            {
                "baseline": "token-ids",
                "n": layout.n,
                "rounds": outcome.rounds,
                "result": outcome.count,
                "relative error": 0.0
                if outcome.count == layout.n
                else abs(outcome.count - layout.n) / layout.n,
            }
        )
        checks[f"ids_n{layout.n}_exact_in_D_rounds"] = (
            outcome.count == layout.n and outcome.rounds == measured_d
        )
    for n in gossip_sizes:
        adversary = RandomConnectedAdversary(n, seed=gossip_seed)
        estimates = gossip_size_estimates(
            adversary, n, gossip_rounds, backend=backend
        )
        final = estimates[-1]
        error = abs(final - n) / n
        rows.append(
            {
                "baseline": "gossip-push-sum",
                "n": n,
                "rounds": gossip_rounds,
                "result": final,
                "relative error": error,
            }
        )
        checks[f"gossip_n{n}_converges_within_5pct"] = error < 0.05
        mid_error = abs(estimates[len(estimates) // 2] - n) / n
        checks[f"gossip_n{n}_error_shrinks"] = error <= mid_error + 1e-9
    return ExperimentResult(
        experiment="tab-baselines",
        title="Baselines: IDs count in D rounds; anonymous gossip only estimates",
        headers=["baseline", "n", "rounds", "result", "relative error"],
        rows=rows,
        checks=checks,
        notes=[
            "token-ids runs on the same worst-case dynamics that force "
            "Omega(log n) rounds anonymously",
            "gossip runs under a fair random adversary; its estimate "
            "converges but certainty is impossible (Theorem 2)",
        ],
    )
