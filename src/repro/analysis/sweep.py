"""Small sweep helpers shared by experiments and benchmarks."""

from __future__ import annotations

import itertools
from typing import Any, Mapping, Sequence, TypeVar

from repro.analysis.registry import OPTION_FIELDS, ExperimentRequest
from repro.obs.logger import get_logger

_log = get_logger("analysis.sweep")

__all__ = ["chunked", "grid_requests", "log_spaced_sizes"]

_T = TypeVar("_T")


def grid_requests(
    experiment: str,
    grid: Mapping[str, Sequence[Any]],
    **base: Any,
) -> list[ExperimentRequest]:
    """One :class:`ExperimentRequest` per point of a parameter grid.

    The cartesian product of ``grid`` (in key order, last key fastest)
    becomes the per-request params; ``base`` sets fields shared by
    every request.  Grid keys naming declarative option fields
    (``backend``/``jobs``/``seed``) become request fields rather than
    raw params, so opt-in filtering and cache keys behave exactly as
    they would for a hand-built request::

        grid_requests("tab-star-pd1", {"sizes": [(2,), (2, 5)]},
                      backend="fast")

    feeds straight into :func:`repro.analysis.runtime.run_sweep`.
    """
    keys = list(grid)
    requests = []
    for point in itertools.product(*(grid[key] for key in keys)):
        fields = dict(base)
        params = dict(fields.pop("params", {}))
        for key, value in zip(keys, point):
            if key in OPTION_FIELDS:
                fields[key] = value
            else:
                params[key] = value
        requests.append(
            ExperimentRequest(experiment=experiment, params=params, **fields)
        )
    _log.debug(
        "grid expanded",
        extra={"experiment": experiment, "points": len(requests)},
    )
    return requests


def chunked(items: Sequence[_T], size: int) -> list[list[_T]]:
    """Split ``items`` into consecutive chunks of at most ``size``.

    Used to batch sweep points into fast-backend lane groups: one chunk
    becomes one fused :class:`~repro.simulation.fast.FastEngine`
    execution, bounding the stacked matrix size while keeping the batch
    large enough to amortise per-round overhead.
    """
    if size < 1:
        raise ValueError("chunk size must be >= 1")
    items = list(items)
    return [items[start : start + size] for start in range(0, len(items), size)]


def log_spaced_sizes(
    lo: int, hi: int, *, per_decade: int = 6
) -> list[int]:
    """Roughly log-spaced integer sizes in ``[lo, hi]``, deduplicated.

    Used for the rounds-vs-n sweeps, where sizes should cover several
    powers of 3 without wasting work on near-duplicates.

    Raises:
        ValueError: ``lo``/``hi`` out of order, or ``per_decade < 1``
            (a non-positive density would make the growth ratio <= 1
            and the sweep would never terminate).
    """
    if lo < 1 or hi < lo:
        raise ValueError("need 1 <= lo <= hi")
    if per_decade < 1:
        raise ValueError(
            f"per_decade must be >= 1 (got {per_decade}): fewer than one "
            "size per decade has growth ratio <= 1 and never reaches hi"
        )
    sizes: list[int] = []
    value = float(lo)
    ratio = 10.0 ** (1.0 / per_decade)
    while value <= hi:
        size = round(value)
        if not sizes or size > sizes[-1]:
            sizes.append(size)
        value *= ratio
    if sizes[-1] != hi:
        sizes.append(hi)
    _log.debug(
        "sweep sizes generated",
        extra={"lo": lo, "hi": hi, "per_decade": per_decade, "count": len(sizes)},
    )
    return sizes
