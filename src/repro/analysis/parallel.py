"""Parallel experiment execution, timing, and on-disk result caching.

The registry's experiments are independent of one another, and the
rounds-vs-n sweeps are independent across sizes -- both embarrassingly
parallel.  This module provides the shared executor plumbing:

* :func:`parallel_map` -- map a picklable function over items with a
  ``concurrent.futures`` process pool (``jobs <= 1`` degrades to a plain
  in-process loop, so callers need no special casing).  A failing item
  is logged and re-raised annotated with *which* item failed.
* :func:`timed_run` -- :func:`repro.analysis.registry.run_experiment`
  wrapped in an ``experiment.run`` span; the span's wall-clock and
  peak-RSS are rendered into ``ExperimentResult.notes`` for backward
  compatibility with the pre-observability note format.
* :class:`ResultCache` -- a directory of JSON files keyed by
  ``(experiment, params)``; a hit skips the run entirely, is marked
  (idempotently) in the notes, and bumps the ``cache.hits`` counter.
* :func:`run_experiments` -- the engine behind ``repro all --jobs N``:
  cache lookup, parallel dispatch, results returned in registry order.

Worker processes re-import :mod:`repro`, so everything submitted is a
module-level function with picklable arguments; results
(:class:`~repro.analysis.registry.ExperimentResult`) are plain
dataclasses of scalars and travel back over the pool unchanged --
which is why the parallel tables/checks are identical to serial ones.
Each pool task runs under a fresh :class:`~repro.obs.metrics
.MetricsRegistry` whose snapshot travels back with the result, so
``run_experiments`` aggregates worker metrics losslessly: the merged
counters of a ``--jobs N`` run equal a serial run's exactly.
"""

from __future__ import annotations

import hashlib
import json
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence, TypeVar

from repro.analysis.registry import (
    ExperimentResult,
    available_experiments,
    experiment_accepts,
    run_experiment,
)
from repro.obs.logger import get_logger
from repro.obs.metrics import MetricsRegistry, counter, get_registry, use_registry
from repro.obs.spans import span

_log = get_logger("analysis.parallel")

__all__ = ["ResultCache", "parallel_map", "run_experiments", "timed_run"]

_T = TypeVar("_T")
_R = TypeVar("_R")


def _annotate_failure(
    exc: BaseException, fn: Callable[..., Any], index: int, item: Any
) -> None:
    """Log and annotate a per-item failure with *which* item failed.

    The original exception is re-raised by the caller unchanged (same
    type, same traceback); on Python >= 3.11 it additionally carries an
    ``add_note`` line naming the function, index, and item.
    """
    description = repr(item)
    if len(description) > 200:
        description = description[:197] + "..."
    _log.error(
        "parallel item failed",
        extra={
            "fn": getattr(fn, "__name__", repr(fn)),
            "index": index,
            "item": description,
            "error": f"{type(exc).__name__}: {exc}",
        },
    )
    if hasattr(exc, "add_note"):
        exc.add_note(
            f"parallel_map: item {index} ({description}) failed under "
            f"{getattr(fn, '__name__', repr(fn))}"
        )


def parallel_map(
    fn: Callable[[_T], _R], items: Iterable[_T], *, jobs: int = 1
) -> list[_R]:
    """``[fn(item) for item in items]``, optionally over a process pool.

    Args:
        fn: A module-level (picklable) function.
        items: Its inputs; results keep this order.
        jobs: Worker processes; ``<= 1`` runs serially in-process (no
            pool, no pickling -- bit-identical to a plain loop).

    Raises:
        Exception: Whatever ``fn`` raised, re-raised as soon as the
            failing item's result is reached (in submission order) and
            annotated with the failing index/item instead of surfacing
            anonymously after the whole pool drains.
    """
    items = list(items)
    if jobs <= 1 or len(items) <= 1:
        results: list[_R] = []
        for index, item in enumerate(items):
            try:
                results.append(fn(item))
            except Exception as exc:
                _annotate_failure(exc, fn, index, item)
                raise
        return results
    with ProcessPoolExecutor(max_workers=min(jobs, len(items))) as pool:
        futures = [pool.submit(fn, item) for item in items]
        results = []
        for index, (item, future) in enumerate(zip(items, futures)):
            try:
                results.append(future.result())
            except Exception as exc:
                _annotate_failure(exc, fn, index, item)
                raise
        return results


def timed_run(experiment: str, **params: Any) -> ExperimentResult:
    """Run one experiment inside an ``experiment.run`` span.

    The span records wall-clock and peak RSS and flows to any JSONL
    sink; its data is also rendered into the (pre-existing) note format
    ``timing: 1.234s wall, peak RSS 45.2 MiB`` so downstream note
    parsing keeps working.  Memory is the process high-water mark from
    ``getrusage`` -- free to read (unlike :mod:`tracemalloc`, whose
    allocation hooks slow the hot paths several-fold) and
    per-experiment in fresh pool workers; in a long serial run it is
    monotone across experiments.
    """
    with span("experiment.run", experiment=experiment) as record:
        result = run_experiment(experiment, **params)
    counter("experiments.run")
    counter("experiments.passed" if result.passed else "experiments.failed")
    rss = record.rss_mib
    memory = f", peak RSS {rss:.1f} MiB" if rss is not None else ""
    result.notes.append(f"timing: {record.duration_s:.3f}s wall{memory}")
    return result


class ResultCache:
    """A directory of cached :class:`ExperimentResult` JSON files.

    Keys are ``(experiment, params)``: the file name embeds the
    experiment id plus a digest of the sorted parameter items, so
    different parameterisations never collide and the cache directory
    stays human-navigable.  Corrupt or unreadable entries are treated
    as misses, never raised.  Hits and misses increment the
    ``cache.hits`` / ``cache.misses`` counters on the current metrics
    registry.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    @staticmethod
    def key(experiment: str, params: dict[str, Any]) -> str:
        """Digest of ``(experiment, params)`` (stable across processes)."""
        blob = json.dumps(
            [experiment, sorted(params.items())], sort_keys=True, default=repr
        )
        return hashlib.sha256(blob.encode()).hexdigest()[:16]

    def path(self, experiment: str, params: dict[str, Any]) -> Path:
        return self.root / f"{experiment}-{self.key(experiment, params)}.json"

    def load(
        self, experiment: str, params: dict[str, Any]
    ) -> ExperimentResult | None:
        """The cached result, or ``None`` on a miss."""
        path = self.path(experiment, params)
        try:
            payload = json.loads(path.read_text())
            result = ExperimentResult.from_dict(payload)
        except (OSError, ValueError, KeyError, TypeError):
            counter("cache.misses")
            return None
        counter("cache.hits")
        _log.debug(
            "cache hit", extra={"experiment": experiment, "path": str(path)}
        )
        # Idempotent: a result stored after being loaded (or loaded
        # repeatedly) must not accumulate duplicate hit notes.
        note = f"cache: hit ({path.name})"
        if note not in result.notes:
            result.notes.append(note)
        return result

    def store(
        self, result: ExperimentResult, params: dict[str, Any]
    ) -> Path:
        """Persist ``result`` under its ``(experiment, params)`` key."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path(result.experiment, params)
        path.write_text(json.dumps(result.to_dict(), indent=1) + "\n")
        return path


def _timed_task(
    task: tuple[str, dict[str, Any]],
) -> tuple[ExperimentResult, dict[str, Any]]:
    # Module-level so ProcessPoolExecutor can pickle it.  Runs under a
    # fresh registry so the task's metrics are isolated (pool workers
    # are reused across tasks) and travel back with the result.
    experiment, params = task
    registry = MetricsRegistry()
    with use_registry(registry):
        result = timed_run(experiment, **params)
    return result, registry.snapshot()


def run_experiments(
    experiments: Sequence[str] | None = None,
    *,
    jobs: int = 1,
    cache: ResultCache | None = None,
    params: dict[str, Any] | None = None,
) -> list[ExperimentResult]:
    """Run experiments (default: all registered), possibly in parallel.

    Args:
        experiments: Experiment ids; defaults to the full registry in
            DESIGN.md order.  Results come back in the same order.
        jobs: Worker processes for the uncached experiments.
        cache: Optional :class:`ResultCache`; hits skip execution, and
            fresh results are stored back keyed by the parameters each
            experiment actually received (an empty dict for a default
            run, so pre-existing caches keep hitting).
        params: Sweep-wide parameter overrides (e.g.
            ``{"backend": "fast"}``).  Each experiment receives exactly
            the subset of keys its signature accepts -- a sweep-wide
            option need not be understood by every experiment.

    Returns:
        One :class:`ExperimentResult` per requested experiment, with
        timing (and cache) notes appended.  Every task's metrics
        snapshot (engine rounds, messages, span timings, ...) is merged
        into the caller's current registry, so aggregated counters are
        identical for serial and parallel runs.
    """
    names = list(experiments or available_experiments())
    _log.info(
        "running experiments",
        extra={"count": len(names), "jobs": jobs, "cached": cache is not None},
    )
    applied: dict[str, dict[str, Any]] = {
        name: {
            key: value
            for key, value in (params or {}).items()
            if experiment_accepts(name, key)
        }
        for name in names
    }
    results: dict[str, ExperimentResult] = {}
    pending: list[str] = []
    for name in names:
        cached = cache.load(name, applied[name]) if cache is not None else None
        if cached is not None:
            results[name] = cached
        else:
            pending.append(name)
    registry = get_registry()
    for name, (result, snapshot) in zip(
        pending,
        parallel_map(
            _timed_task, [(name, applied[name]) for name in pending], jobs=jobs
        ),
    ):
        registry.merge(snapshot)
        if cache is not None:
            cache.store(result, applied[name])
        results[name] = result
    return [results[name] for name in names]
