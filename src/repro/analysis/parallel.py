"""Parallel experiment execution, timing, and on-disk result caching.

The registry's experiments are independent of one another, and the
rounds-vs-n sweeps are independent across sizes -- both embarrassingly
parallel.  This module provides the shared executor plumbing:

* :func:`parallel_map` -- map a picklable function over items with a
  ``concurrent.futures`` process pool (``jobs <= 1`` degrades to a plain
  in-process loop, so callers need no special casing).
* :func:`timed_run` -- :func:`repro.analysis.registry.run_experiment`
  wrapped with wall-clock and peak-memory measurement, recorded into
  ``ExperimentResult.notes``.
* :class:`ResultCache` -- a directory of JSON files keyed by
  ``(experiment, params)``; a hit skips the run entirely and is marked
  in the notes.
* :func:`run_experiments` -- the engine behind ``repro all --jobs N``:
  cache lookup, parallel dispatch, results returned in registry order.

Worker processes re-import :mod:`repro`, so everything submitted is a
module-level function with picklable arguments; results
(:class:`~repro.analysis.registry.ExperimentResult`) are plain
dataclasses of scalars and travel back over the pool unchanged --
which is why the parallel tables/checks are identical to serial ones.
"""

from __future__ import annotations

import hashlib
import json
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence, TypeVar

from repro.analysis.registry import (
    ExperimentResult,
    available_experiments,
    run_experiment,
)

__all__ = ["ResultCache", "parallel_map", "run_experiments", "timed_run"]

_T = TypeVar("_T")
_R = TypeVar("_R")


def parallel_map(
    fn: Callable[[_T], _R], items: Iterable[_T], *, jobs: int = 1
) -> list[_R]:
    """``[fn(item) for item in items]``, optionally over a process pool.

    Args:
        fn: A module-level (picklable) function.
        items: Its inputs; results keep this order.
        jobs: Worker processes; ``<= 1`` runs serially in-process (no
            pool, no pickling -- bit-identical to a plain loop).
    """
    items = list(items)
    if jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ProcessPoolExecutor(max_workers=min(jobs, len(items))) as pool:
        return list(pool.map(fn, items))


def _peak_rss_mib() -> float | None:
    """Peak resident set size of this process in MiB (None if unknown)."""
    try:
        import resource
    except ImportError:  # non-POSIX platform
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux, bytes on macOS.
    import sys

    return peak / 2**20 if sys.platform == "darwin" else peak / 2**10


def timed_run(experiment: str, **params: Any) -> ExperimentResult:
    """Run one experiment, recording wall-clock and memory in notes.

    The note has the form ``timing: 1.234s wall, peak RSS 45.2 MiB``.
    Memory is the process high-water mark from ``getrusage`` -- free to
    read (unlike :mod:`tracemalloc`, whose allocation hooks slow the
    hot paths several-fold) and per-experiment in fresh pool workers;
    in a long serial run it is monotone across experiments.
    """
    start = time.perf_counter()
    result = run_experiment(experiment, **params)
    elapsed = time.perf_counter() - start
    rss = _peak_rss_mib()
    memory = f", peak RSS {rss:.1f} MiB" if rss is not None else ""
    result.notes.append(f"timing: {elapsed:.3f}s wall{memory}")
    return result


class ResultCache:
    """A directory of cached :class:`ExperimentResult` JSON files.

    Keys are ``(experiment, params)``: the file name embeds the
    experiment id plus a digest of the sorted parameter items, so
    different parameterisations never collide and the cache directory
    stays human-navigable.  Corrupt or unreadable entries are treated
    as misses, never raised.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    @staticmethod
    def key(experiment: str, params: dict[str, Any]) -> str:
        """Digest of ``(experiment, params)`` (stable across processes)."""
        blob = json.dumps(
            [experiment, sorted(params.items())], sort_keys=True, default=repr
        )
        return hashlib.sha256(blob.encode()).hexdigest()[:16]

    def path(self, experiment: str, params: dict[str, Any]) -> Path:
        return self.root / f"{experiment}-{self.key(experiment, params)}.json"

    def load(
        self, experiment: str, params: dict[str, Any]
    ) -> ExperimentResult | None:
        """The cached result, or ``None`` on a miss."""
        path = self.path(experiment, params)
        try:
            payload = json.loads(path.read_text())
            result = ExperimentResult.from_dict(payload)
        except (OSError, ValueError, KeyError, TypeError):
            return None
        result.notes.append(f"cache: hit ({path.name})")
        return result

    def store(
        self, result: ExperimentResult, params: dict[str, Any]
    ) -> Path:
        """Persist ``result`` under its ``(experiment, params)`` key."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path(result.experiment, params)
        path.write_text(json.dumps(result.to_dict(), indent=1) + "\n")
        return path


def _timed_task(experiment: str) -> ExperimentResult:
    # Module-level so ProcessPoolExecutor can pickle it.
    return timed_run(experiment)


def run_experiments(
    experiments: Sequence[str] | None = None,
    *,
    jobs: int = 1,
    cache: ResultCache | None = None,
) -> list[ExperimentResult]:
    """Run experiments (default: all registered), possibly in parallel.

    Args:
        experiments: Experiment ids; defaults to the full registry in
            DESIGN.md order.  Results come back in the same order.
        jobs: Worker processes for the uncached experiments.
        cache: Optional :class:`ResultCache`; hits skip execution, and
            fresh results are stored back (default parameters only --
            the cache key is the empty parameter dict).

    Returns:
        One :class:`ExperimentResult` per requested experiment, with
        timing (and cache) notes appended.
    """
    names = list(experiments or available_experiments())
    results: dict[str, ExperimentResult] = {}
    pending: list[str] = []
    for name in names:
        cached = cache.load(name, {}) if cache is not None else None
        if cached is not None:
            results[name] = cached
        else:
            pending.append(name)
    for name, result in zip(pending, parallel_map(_timed_task, pending, jobs=jobs)):
        if cache is not None:
            cache.store(result, {})
        results[name] = result
    return [results[name] for name in names]
