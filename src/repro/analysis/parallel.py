"""Generic process-pool mapping, plus the legacy sweep entry points.

:func:`parallel_map` lives here and is the real implementation -- the
generic picklable-function-over-items map used by the rounds-vs-n
sweeps.  A failing item is logged and re-raised annotated with *which*
item failed; a worker that dies mid-task (e.g. OOM-killed) surfaces as
a :class:`~repro.analysis.runtime.errors.WorkerCrash` naming the item
instead of an opaque ``BrokenProcessPool``.

Everything else this module used to own has moved to the
fault-tolerant runtime (:mod:`repro.analysis.runtime`) and is
re-exported here unchanged for backward compatibility:

* :class:`ResultCache` -- now :mod:`repro.analysis.runtime.cache`.
* :func:`timed_run` -- now :mod:`repro.analysis.runtime.runner`.
* :func:`run_experiments` -- a thin wrapper over
  :func:`repro.analysis.runtime.run_sweep`.  Its deprecated ``params=``
  kwarg (the signature-sniffing sweep-wide override path) has been
  removed: build :class:`~repro.analysis.registry.ExperimentRequest`
  values (via :func:`repro.analysis.sweep.grid_requests` for grids) and
  call ``run_sweep`` instead.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterable, Sequence, TypeVar

from repro.analysis.registry import (
    ExperimentRequest,
    ExperimentResult,
    available_experiments,
)
from repro.analysis.runtime.cache import ResultCache
from repro.analysis.runtime.errors import WorkerCrash
from repro.analysis.runtime.runner import run_sweep, timed_run
from repro.obs.logger import get_logger

_log = get_logger("analysis.parallel")

__all__ = ["ResultCache", "parallel_map", "run_experiments", "timed_run"]

_T = TypeVar("_T")
_R = TypeVar("_R")


def _annotate_failure(
    exc: BaseException, fn: Callable[..., Any], index: int, item: Any
) -> None:
    """Log and annotate a per-item failure with *which* item failed.

    The original exception is re-raised by the caller unchanged (same
    type, same traceback); on Python >= 3.11 it additionally carries an
    ``add_note`` line naming the function, index, and item.
    """
    description = repr(item)
    if len(description) > 200:
        description = description[:197] + "..."
    _log.error(
        "parallel item failed",
        extra={
            "fn": getattr(fn, "__name__", repr(fn)),
            "index": index,
            "item": description,
            "error": f"{type(exc).__name__}: {exc}",
        },
    )
    if hasattr(exc, "add_note"):
        exc.add_note(
            f"parallel_map: item {index} ({description}) failed under "
            f"{getattr(fn, '__name__', repr(fn))}"
        )


def parallel_map(
    fn: Callable[[_T], _R], items: Iterable[_T], *, jobs: int = 1
) -> list[_R]:
    """``[fn(item) for item in items]``, optionally over a process pool.

    Args:
        fn: A module-level (picklable) function.
        items: Its inputs; results keep this order.
        jobs: Worker processes; ``<= 1`` runs serially in-process (no
            pool, no pickling -- bit-identical to a plain loop).

    Raises:
        WorkerCrash: A worker process died mid-task (OOM kill,
            segfault, ``os._exit``); the message names the first item
            whose result was lost, instead of surfacing an opaque
            ``BrokenProcessPool``.
        Exception: Whatever ``fn`` raised, re-raised as soon as the
            failing item's result is reached (in submission order) and
            annotated with the failing index/item instead of surfacing
            anonymously after the whole pool drains.
    """
    items = list(items)
    if jobs <= 1 or len(items) <= 1:
        results: list[_R] = []
        for index, item in enumerate(items):
            try:
                results.append(fn(item))
            except Exception as exc:
                _annotate_failure(exc, fn, index, item)
                raise
        return results
    with ProcessPoolExecutor(max_workers=min(jobs, len(items))) as pool:
        futures = [pool.submit(fn, item) for item in items]
        results = []
        for index, (item, future) in enumerate(zip(items, futures)):
            try:
                results.append(future.result())
            except BrokenProcessPool as exc:
                description = repr(item)
                if len(description) > 200:
                    description = description[:197] + "..."
                crash = WorkerCrash(
                    f"worker process died while running item {index} "
                    f"({description}) under "
                    f"{getattr(fn, '__name__', repr(fn))}"
                )
                _annotate_failure(crash, fn, index, item)
                raise crash from exc
            except Exception as exc:
                _annotate_failure(exc, fn, index, item)
                raise
        return results


def run_experiments(
    experiments: Sequence[str] | None = None,
    *,
    jobs: int = 1,
    cache: ResultCache | None = None,
    **removed: Any,
) -> list[ExperimentResult]:
    """Run experiments (default: all registered), possibly in parallel.

    Legacy wrapper over :func:`repro.analysis.runtime.run_sweep` kept
    for callers of the pre-request API; results, cache keys, and merged
    metrics are identical.

    Returns:
        One :class:`ExperimentResult` per requested experiment, with
        timing (and cache) notes appended.  Every task's metrics
        snapshot (engine rounds, messages, span timings, ...) is merged
        into the caller's current registry, so aggregated counters are
        identical for serial and parallel runs.

    Raises:
        TypeError: The removed ``params=`` kwarg (or any other unknown
            keyword) was passed; build
            :class:`~repro.analysis.registry.ExperimentRequest` values
            (:func:`repro.analysis.sweep.grid_requests` expands grids)
            and call ``run_sweep`` instead.
    """
    if removed:
        raise TypeError(
            f"run_experiments() got unsupported keyword(s) "
            f"{sorted(removed)}: the deprecated params= path was "
            "removed -- build ExperimentRequest values (backend/jobs/"
            "seed are explicit fields; grid_requests expands grids) "
            "and call repro.analysis.runtime.run_sweep"
        )
    names = list(experiments or available_experiments())
    requests = [ExperimentRequest(experiment=name) for name in names]
    outcome = run_sweep(requests, jobs=jobs, cache=cache)
    return outcome.results
