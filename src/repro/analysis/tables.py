"""Plain-text table rendering for experiment reports.

Every experiment produces rows of dictionaries; this module renders them
as aligned monospace tables -- the format used by the CLI, the benchmark
output, and the EXPERIMENTS.md records.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import Any

__all__ = ["render_table", "format_value"]


def format_value(value: Any) -> str:
    """Render one cell: floats get 4 significant digits, rest ``str``."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render_table(
    rows: Sequence[Mapping[str, Any]],
    headers: Sequence[str] | None = None,
    *,
    title: str | None = None,
) -> str:
    """Render rows of dicts as an aligned text table.

    Args:
        rows: The data; missing keys render as empty cells.
        headers: Column order; defaults to the keys of the first row.
        title: Optional title line printed above the table.

    Returns:
        The table as a single string (no trailing newline).
    """
    if headers is None:
        headers = list(rows[0].keys()) if rows else []
    cells = [[format_value(row.get(header, "")) for header in headers] for row in rows]
    widths = [
        max(len(str(header)), *(len(row[i]) for row in cells))
        if cells
        else len(str(header))
        for i, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(
        str(header).ljust(width) for header, width in zip(headers, widths)
    )
    lines.append(header_line)
    lines.append("-+-".join("-" * width for width in widths))
    for row in cells:
        lines.append(
            " | ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)
