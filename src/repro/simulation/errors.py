"""Exception hierarchy for the ``repro`` library.

All exceptions raised deliberately by the library derive from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting genuine bugs (``TypeError`` and friends)
propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SimulationError",
    "TopologyError",
    "ProtocolViolationError",
    "TerminationError",
    "ModelError",
    "InfeasibleObservationError",
]


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class SimulationError(ReproError):
    """A failure inside the synchronous simulation engine."""


class TopologyError(SimulationError):
    """The adversary produced an invalid communication graph.

    Raised, for example, when the graph for a round does not span the
    process set, is disconnected while the engine requires 1-interval
    connectivity, or a multigraph round violates the ``M(DBL)_k``
    labeling rules.
    """


class ProtocolViolationError(SimulationError):
    """A process implementation broke the rules of the model.

    Raised when a process mutates shared payloads, emits an invalid
    broadcast, or reports an output of an unexpected shape.
    """


class TerminationError(SimulationError):
    """A simulation exceeded its round budget without terminating."""


class ModelError(ReproError):
    """A model object (dynamic graph, multigraph, schedule) is malformed."""


class InfeasibleObservationError(ReproError):
    """A leader observation sequence admits no consistent configuration.

    This can only happen when observations are hand-crafted (or
    corrupted); observations produced by an actual ``M(DBL)_k`` execution
    are always feasible.
    """
