"""The synchronous round engine for anonymous dynamic networks.

The engine owns the global round loop of the model in Section 3 of the
paper: at each round ``r`` the adversary fixes a communication graph
``G_r`` over the (static) process set, every process broadcasts one
payload (send phase), and every process is then delivered the payloads
of its ``G_r``-neighbours with no sender information (receive phase).

The adversary is any object implementing :class:`TopologyProvider` --
including an *omniscient* worst-case adversary, since the provider is
handed the live process objects and may inspect their state before
choosing the round's graph.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Any, Callable, Protocol, Sequence, runtime_checkable

import networkx as nx

from repro.obs import telemetry as telemetry_mod
from repro.obs.logger import get_logger
from repro.obs.metrics import counter
from repro.simulation.errors import (
    ProtocolViolationError,
    TerminationError,
    TopologyError,
)
from repro.simulation.messages import Inbox
from repro.simulation.node import Process
from repro.simulation.trace import RoundRecord, SimulationTrace, TraceLevel

_log = get_logger("simulation.engine")

__all__ = [
    "TopologyProvider",
    "EngineConfig",
    "SimulationResult",
    "SynchronousEngine",
    "DegreeOracleEngine",
    "as_topology_provider",
]


@runtime_checkable
class TopologyProvider(Protocol):
    """The adversary interface: produce the communication graph per round.

    The provider receives the live process objects, so a worst-case
    adversary may base its choice on the processes' internal state (the
    model's adversary is omniscient).  The returned graph must have node
    set ``{0, ..., n-1}`` where ``n = len(processes)``.
    """

    def graph(self, round_no: int, processes: Sequence[Process]) -> nx.Graph:
        """Return the communication graph for ``round_no``."""
        ...


class _CallableTopology:
    """Adapt a plain ``f(round_no) -> nx.Graph`` callable to the protocol."""

    def __init__(self, fn: Callable[[int], nx.Graph]) -> None:
        self._fn = fn

    def graph(self, round_no: int, processes: Sequence[Process]) -> nx.Graph:
        return self._fn(round_no)


def as_topology_provider(
    topology: TopologyProvider | Callable[[int], nx.Graph],
) -> TopologyProvider:
    """Coerce ``topology`` to a :class:`TopologyProvider`.

    Accepts either an object with a ``graph(round_no, processes)`` method
    (e.g. any adversary, or :class:`repro.networks.DynamicGraph`) or a
    plain callable mapping a round number to a graph.
    """
    if isinstance(topology, TopologyProvider):
        return topology
    if callable(topology):
        return _CallableTopology(topology)
    raise TypeError(f"cannot interpret {topology!r} as a topology provider")


@dataclass(frozen=True)
class EngineConfig:
    """Configuration of a :class:`SynchronousEngine` run.

    Attributes:
        max_rounds: Round budget; exceeding it raises
            :class:`TerminationError` unless ``stop_when`` is ``"budget"``.
        stop_when: Termination criterion -- ``"leader"`` stops when the
            leader process outputs, ``"all"`` when every process outputs,
            ``"any"`` when at least one outputs, and ``"budget"`` runs
            exactly ``max_rounds`` rounds.
        require_connected: Verify that every round's graph is connected
            (the 1-interval connectivity assumption).  Enabled by default
            because every model in the paper assumes it.  Graph
            validation is memoized per graph object, so a provider that
            serves the same cached graph for many rounds is checked
            once.
        validate_payloads: Debug flag: verify every broadcast payload is
            hashable during the send phase.  Off by default -- the check
            runs ``hash(payload)`` for every process every round, which
            is measurable on the hot path; enable it when developing a
            new protocol (unhashable payloads surface as a
            :class:`ProtocolViolationError` at the offending round
            instead of a confusing failure wherever a multiset view is
            first taken).
        trace_level: How much per-round detail to record.
    """

    max_rounds: int = 10_000
    stop_when: str = "leader"
    require_connected: bool = True
    validate_payloads: bool = False
    trace_level: TraceLevel = TraceLevel.NONE

    def __post_init__(self) -> None:
        if self.max_rounds < 1:
            raise ValueError("max_rounds must be at least 1")
        if self.stop_when not in {"leader", "all", "any", "budget"}:
            raise ValueError(
                "stop_when must be one of 'leader', 'all', 'any', 'budget'"
            )


@dataclass
class SimulationResult:
    """Outcome of a synchronous execution.

    Attributes:
        rounds: Number of rounds executed (the last executed round is
            ``rounds - 1``; round numbering starts at 0).
        outputs: Mapping from process index to its output (only processes
            that produced an output appear).
        leader_output: Output of the leader process, or ``None``.
        terminated: Whether the stop criterion was met within budget.
        trace: The recorded trace (empty at ``TraceLevel.NONE``).
    """

    rounds: int
    outputs: dict[int, Any]
    leader_output: Any
    terminated: bool
    trace: SimulationTrace = field(default_factory=SimulationTrace)


class SynchronousEngine:
    """Drive a set of processes through synchronous anonymous rounds.

    Args:
        processes: The process objects, indexed ``0..n-1``.  Indices are
            engine bookkeeping only and are never revealed to processes.
        topology: The adversary (see :func:`as_topology_provider`).
        leader: Index of the leader process, used for the ``"leader"``
            stop criterion and for ``leader_output`` reporting.  May be
            ``None`` for leaderless protocols.
        config: Engine configuration.

    Example:
        >>> from repro.simulation import SynchronousEngine, EngineConfig
        >>> from repro.core.counting.star import make_star_processes
        >>> import networkx as nx
        >>> processes, leader = make_star_processes(5)
        >>> engine = SynchronousEngine(
        ...     processes, lambda r: nx.star_graph(4), leader=leader
        ... )
        >>> engine.run().leader_output
        5
    """

    def __init__(
        self,
        processes: Sequence[Process],
        topology: TopologyProvider | Callable[[int], nx.Graph],
        *,
        leader: int | None = 0,
        config: EngineConfig | None = None,
    ) -> None:
        if not processes:
            raise ValueError("need at least one process")
        self.processes: list[Process] = list(processes)
        self.topology = as_topology_provider(topology)
        self.leader = leader
        self.config = config or EngineConfig()
        if leader is not None and not 0 <= leader < len(self.processes):
            raise ValueError(f"leader index {leader} out of range")
        if self.config.stop_when == "leader" and leader is None:
            raise ValueError("stop_when='leader' requires a leader index")
        # Validation memo: graph objects already checked this run.  Holds
        # strong references so object identities stay stable; mutating a
        # previously served graph between rounds is unsupported.
        self._validated: dict[int, nx.Graph] = {}
        # Round telemetry config, captured once per run(); None when
        # disabled, so the per-round guard is one attribute check.
        self._telemetry: telemetry_mod.Telemetry | None = None

    def run(self) -> SimulationResult:
        """Execute rounds until the stop criterion is met.

        Raises:
            TerminationError: The criterion was not met within
                ``config.max_rounds`` (never raised for ``"budget"``).
            TopologyError: The adversary produced an invalid graph.
        """
        config = self.config
        trace = SimulationTrace(level=config.trace_level)
        n = len(self.processes)
        expected_nodes = set(range(n))

        counter("engine.runs")
        self._telemetry = telemetry_mod.active()
        if _log.isEnabledFor(logging.DEBUG):
            _log.debug(
                "run started",
                extra={
                    "n": n,
                    "stop_when": config.stop_when,
                    "max_rounds": config.max_rounds,
                    "trace_level": int(config.trace_level),
                },
            )
        rounds_executed = 0
        for round_no in range(config.max_rounds):
            graph = self._validated_graph(round_no, expected_nodes)
            self._execute_round(round_no, graph, trace)
            rounds_executed = round_no + 1
            if self._stop_criterion_met():
                self._log_run_end(rounds_executed, terminated=True)
                return self._result(rounds_executed, trace, terminated=True)

        if config.stop_when == "budget":
            self._log_run_end(rounds_executed, terminated=True)
            return self._result(rounds_executed, trace, terminated=True)
        raise TerminationError(
            f"stop criterion {config.stop_when!r} not met within "
            f"{config.max_rounds} rounds"
        )

    def _log_run_end(self, rounds: int, *, terminated: bool) -> None:
        if _log.isEnabledFor(logging.DEBUG):
            _log.debug(
                "run finished",
                extra={"rounds": rounds, "terminated": terminated},
            )

    def _validated_graph(self, round_no: int, expected_nodes: set[int]) -> nx.Graph:
        graph = self.topology.graph(round_no, self.processes)
        counter("engine.graphs")
        cached = self._validated.get(id(graph))
        if cached is graph:
            return graph
        if set(graph.nodes) != expected_nodes:
            raise TopologyError(
                f"round {round_no}: graph nodes {sorted(graph.nodes)[:10]}... "
                f"do not match process indices 0..{len(expected_nodes) - 1}"
            )
        # A self-loop would deliver a node its own broadcast -- outside
        # the paper's model, where neighbourhoods never include self.
        loops = [node for node, _ in nx.selfloop_edges(graph)]
        if loops:
            raise TopologyError(
                f"round {round_no}: self-loop at node(s) {sorted(loops)[:10]}; "
                "a process is never its own neighbour"
            )
        if (
            self.config.require_connected
            and len(expected_nodes) > 1
            and not nx.is_connected(graph)
        ):
            raise TopologyError(
                f"round {round_no}: graph is disconnected but 1-interval "
                "connectivity is required"
            )
        self._validated[id(graph)] = graph
        return graph

    def _before_send(self, round_no: int, graph: nx.Graph) -> None:
        """Hook invoked before the send phase of every round.

        The base engine does nothing: in the paper's model a node does
        not know its round-``r`` degree before the receive phase of
        ``r``.  :class:`DegreeOracleEngine` overrides this to implement
        the *local degree detector* of the Discussion (Section 4.2).
        """

    def _execute_round(
        self, round_no: int, graph: nx.Graph, trace: SimulationTrace
    ) -> None:
        self._before_send(round_no, graph)
        # Send phase: every process composes its broadcast payload before
        # any delivery happens (the two phases are globally synchronous).
        validate = self.config.validate_payloads
        payloads: list[Any] = []
        for process in self.processes:
            payload = process.compose(round_no)
            if validate and payload is not None:
                try:
                    hash(payload)
                except TypeError as exc:
                    raise ProtocolViolationError(
                        f"round {round_no}: unhashable broadcast payload "
                        f"{payload!r} from {type(process).__name__}"
                    ) from exc
            payloads.append(payload)

        # Receive phase: deliver each neighbour's payload anonymously.
        delivered = 0
        deliveries: dict[int, Any] | None = (
            {} if trace.level >= TraceLevel.FULL else None
        )
        for index, process in enumerate(self.processes):
            inbox = Inbox(
                payloads[neighbour]
                for neighbour in graph.neighbors(index)
                if payloads[neighbour] is not None
            )
            delivered += len(inbox)
            if deliveries is not None:
                deliveries[index] = inbox
            process.deliver(round_no, inbox)

        sent = sum(1 for p in payloads if p is not None)
        counter("engine.rounds")
        counter("engine.messages_sent", sent)
        counter("engine.messages_delivered", delivered)
        if self._telemetry is not None and self._telemetry.wants(round_no):
            self._emit_telemetry(round_no, graph, sent, delivered)
        if trace.level >= TraceLevel.TOPOLOGY:
            trace.append(
                RoundRecord(
                    round_no=round_no,
                    graph=graph.copy(),
                    messages_sent=sent,
                    messages_delivered=delivered,
                    deliveries=deliveries,
                )
            )
        if _log.isEnabledFor(logging.DEBUG):
            # The same stats a RoundRecord carries, at every TraceLevel
            # (the trace may be off while the event log is on).
            _log.debug(
                "round executed",
                extra={
                    "round_no": round_no,
                    "edges": graph.number_of_edges(),
                    "sent": sent,
                    "delivered": delivered,
                },
            )

    def _emit_telemetry(
        self, round_no: int, graph: nx.Graph, sent: int, delivered: int
    ) -> None:
        """One sampled round record (post-round state; see obs.telemetry)."""
        informed = 0
        terminated = 0
        for process in self.processes:
            done = process.output() is not None
            terminated += done
            informed += bool(getattr(process, "informed", done))
        self._telemetry.emit(
            {
                "engine": "object",
                "round": round_no,
                "edges": graph.number_of_edges(),
                "sent": sent,
                "delivered": delivered,
                "informed": informed,
                "terminated": terminated,
                "nodes": len(self.processes),
                "lanes_active": 1,
            }
        )

    def _stop_criterion_met(self) -> bool:
        stop_when = self.config.stop_when
        if stop_when == "budget":
            return False
        if stop_when == "leader":
            return self.processes[self.leader].output() is not None
        outputs = (process.output() is not None for process in self.processes)
        return all(outputs) if stop_when == "all" else any(outputs)

    def _result(
        self, rounds: int, trace: SimulationTrace, *, terminated: bool
    ) -> SimulationResult:
        outputs = {
            index: output
            for index, process in enumerate(self.processes)
            if (output := process.output()) is not None
        }
        leader_output = (
            self.processes[self.leader].output() if self.leader is not None else None
        )
        return SimulationResult(
            rounds=rounds,
            outputs=outputs,
            leader_output=leader_output,
            terminated=terminated,
            trace=trace,
        )


class DegreeOracleEngine(SynchronousEngine):
    """An engine whose processes know their degree before sending.

    Implements the *local degree detector* oracle of the paper's
    Discussion (after Kuhn-style degree knowledge in Di Luna et al.,
    ICDCS 2014): before the send phase of round ``r``, every process
    that defines an ``observe_degree`` method is told ``|N(v, r)|``.
    The paper shows this minimal extra knowledge collapses the counting
    time of restricted ``G(PD)_2`` networks from ``Ω(log |V|)`` to
    ``O(1)`` -- the gap measured by ``benchmarks/bench_oracle.py``.
    """

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        # Resolve the observers once: the set of processes is fixed for
        # the engine's lifetime, so the per-round ``getattr`` over every
        # process was pure hot-path overhead.  Processes that grow an
        # ``observe_degree`` attribute after construction are not seen.
        self._observers: list[tuple[int, Callable[[int, int], None]]] = [
            (index, observe)
            for index, process in enumerate(self.processes)
            if (observe := getattr(process, "observe_degree", None)) is not None
        ]

    def _before_send(self, round_no: int, graph: nx.Graph) -> None:
        for index, observe in self._observers:
            observe(round_no, graph.degree(index))
