"""Synchronous anonymous message-passing simulation engine.

This package implements the computation model of Di Luna & Baldoni
(PODC 2015): a finite static set of processes that execute deterministic
round-based computations and communicate through an *anonymous broadcast*
primitive over a dynamic communication graph chosen by an adversary.

Every round is divided in a *send phase* -- each process composes one
broadcast payload -- and a *receive phase* -- each process is delivered
the payloads broadcast by its current neighbours, with no sender
information attached.  A process does not learn its degree at round ``r``
before the receive phase of ``r`` (unless explicitly given a degree
oracle, see :mod:`repro.core.counting.degree_oracle`).

Main entry points:

* :class:`repro.simulation.engine.SynchronousEngine` -- run a protocol on
  a dynamic graph.
* :class:`repro.simulation.labeled.LabeledStarEngine` -- run a protocol on
  a dynamic bipartite labeled multigraph (the ``M(DBL)_k`` model).
* :class:`repro.simulation.node.Process` -- base class for protocols.
* :class:`repro.simulation.fast.FastEngine` -- vectorized batch backend
  for protocols implementing
  :class:`repro.simulation.fast.VectorizedProtocol`.
"""

from repro.simulation.engine import EngineConfig, SimulationResult, SynchronousEngine
from repro.simulation.errors import (
    ProtocolViolationError,
    ReproError,
    SimulationError,
    TerminationError,
    TopologyError,
)
from repro.simulation.labeled import LabeledStarEngine
from repro.simulation.messages import Inbox, LabeledInbox
from repro.simulation.node import LeaderAware, Process
from repro.simulation.trace import RoundRecord, SimulationTrace, TraceLevel

__all__ = [
    "EngineConfig",
    "FastEngine",
    "FastLane",
    "Inbox",
    "LabeledInbox",
    "LabeledStarEngine",
    "LaneLayout",
    "LeaderAware",
    "Process",
    "ProtocolViolationError",
    "ReproError",
    "RoundRecord",
    "SimulationError",
    "SimulationResult",
    "SimulationTrace",
    "SynchronousEngine",
    "TerminationError",
    "TopologyError",
    "TraceLevel",
    "VectorizedProtocol",
]

# The fast backend pulls in repro.networks (CSR lowering), which itself
# depends back on simulation errors and core state modules; importing it
# eagerly here would close an import cycle during package init.  Resolve
# the fast-backend names lazily instead (PEP 562).
_FAST_EXPORTS = {"FastEngine", "FastLane", "LaneLayout", "VectorizedProtocol"}


def __getattr__(name: str):
    if name in _FAST_EXPORTS:
        from repro.simulation import fast

        return getattr(fast, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
