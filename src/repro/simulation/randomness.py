"""Coin sources: adversary-controlled vs fair randomness.

Footnote 2 of the paper dismisses randomised counting: "Solutions
exploiting randomness (i.e. tossing coins hoping for different
outcomes) are not viable, since we assume the source of randomness
available to processes is governed by the worst case adversary."

This module makes that assumption executable.  A randomised protocol
draws its bits from a :class:`CoinSource`; the engine experiments can
then plug in

* :class:`FairCoins` -- every process gets an independent stream (the
  usual randomised-algorithms model), or
* :class:`AdversarialCoins` -- the worst-case adversary answers every
  draw, and its optimal strategy against anonymous processes is
  simply to answer *identically everywhere*: identical coins plus
  identical deterministic code means the symmetry that anonymity
  creates is never broken.

The ``tab-adversarial-randomness`` experiment runs the same randomised
counting protocol under both sources: near-certain success under fair
coins, guaranteed failure under adversarial ones.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

__all__ = ["CoinSource", "FairCoins", "AdversarialCoins"]


@runtime_checkable
class CoinSource(Protocol):
    """A stream of bits available to one process."""

    def draw_bits(self, count: int) -> tuple[int, ...]:
        """Return the next ``count`` bits of this process's stream."""
        ...


class FairCoins:
    """Independent unbiased coins, seeded per process stream.

    ``stream`` must differ between processes for the coins to be
    independent -- which is exactly the resource anonymous processes
    are *not* guaranteed to have; handing each process a distinct
    stream id is the modelling step the worst-case adversary refuses.
    """

    def __init__(self, seed: int, stream: int) -> None:
        self._rng = np.random.default_rng([seed, stream])

    def draw_bits(self, count: int) -> tuple[int, ...]:
        return tuple(int(bit) for bit in self._rng.integers(0, 2, size=count))


class AdversarialCoins:
    """Worst-case coins: every process receives the same answers.

    The adversary may answer with any fixed function of the draw index;
    answering all-zeros is already optimal against anonymous processes
    (any common function preserves symmetry equally well), so that is
    what this implementation does.  Distinct processes constructed from
    this class are *indistinguishable by their randomness*.
    """

    def draw_bits(self, count: int) -> tuple[int, ...]:
        return (0,) * count
