"""The vectorized batch simulation backend.

:class:`~repro.simulation.engine.SynchronousEngine` executes one Python
``compose``/``deliver`` call per process per round -- full protocol
fidelity, but the interpreter loop dominates wall-clock time on large
sweeps.  This module provides the *fast backend*: a second execution
path that compiles a round into array operations.

* Topologies are lowered once to CSR adjacency
  (:mod:`repro.networks.csr`), with the model checks (node set,
  self-loops, connectivity) memoized per graph object instead of
  recomputed every round.  CSR-native topologies
  (:class:`~repro.networks.CSRDynamicGraph` and anything exposing
  ``to_csr(round_no)``) skip the networkx lowering entirely: the lane
  adjacency comes straight from per-round edge arrays.  The per-lane
  adjacency caches and the lane-stack cache are LRU-bounded
  (``adjacency.cache_evictions`` / ``adjacency.stack_evictions``), so
  fresh-graph-per-round workloads hold O(1) adjacency memory instead of
  leaking one lowered graph per round.
* Protocols whose per-round receive phase is an aggregation over the
  multiset of received values implement :class:`VectorizedProtocol`:
  state lives in NumPy arrays over a flat node axis and one ``step``
  performs the whole receive phase as a sparse matvec / histogram.
* Many independent runs (seeds x sizes of a sweep point) are stacked
  block-diagonally into *lanes* of one :class:`FastEngine`, so a batch
  advances with a single fused matvec per round.
* Batches larger than a node budget *stream*: with ``max_lane_nodes``
  set (engine argument, :func:`lane_budget_enabled` context, or the
  ``--max-lane-nodes`` CLI flag), lanes are partitioned into contiguous
  chunks under the budget, each chunk runs to completion through the
  same matvec loop, and results, ``engine.*`` counters, and telemetry
  trajectories fold losslessly -- a chunked run is indistinguishable
  from the monolithic single-stack run except in peak memory, which is
  bounded by the chunk budget instead of the whole grid.  Chunking
  requires the protocol to implement
  :meth:`VectorizedProtocol.subset` / :meth:`~VectorizedProtocol.absorb`
  (all built-in protocols do).

The object engine remains the semantics oracle: round counts, outputs,
stop-criterion behaviour, and the ``engine.*`` counters of a fast run
are defined to equal the object engine's on the same workload, and the
test suite differential-tests exactly that (floating-point protocols
match to within accumulation order).  The fast path intentionally does
not support tracing -- re-run on the object engine to inspect a
round-by-round trace.

Known chunking caveats (documented divergences, both outside the
differential contract): ``round_hook`` fires once per chunk per round
rather than once per global round, and a lane's topology is only
evaluated for the rounds its chunk executes (plus sampled telemetry
rounds), so a graph that turns invalid *after* every lane of its chunk
terminated is not observed the way the monolithic stack -- which keeps
stacking finished lanes -- would observe it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Sequence

import numpy as np

from repro.networks.csr import (
    AdjacencyCache,
    CSRAdjacency,
    StackCache,
    index_dtype_for,
)
from repro.obs import telemetry as telemetry_mod
from repro.obs.logger import get_logger
from repro.obs.metrics import counter
from repro.obs.spans import span
from repro.simulation.engine import EngineConfig, SimulationResult
from repro.simulation.errors import TerminationError, TopologyError
from repro.simulation.trace import SimulationTrace, TraceLevel

_log = get_logger("simulation.fast")

__all__ = [
    "BACKENDS",
    "FastEngine",
    "FastLane",
    "LaneLayout",
    "VectorizedProtocol",
    "active_lane_budget",
    "lane_budget_enabled",
    "partition_lanes",
    "resolve_backend",
]

BACKENDS = ("object", "fast")
"""The two execution backends: ``"object"`` is the per-process oracle
engine, ``"fast"`` the vectorized batch engine of this module."""


def resolve_backend(backend: str) -> str:
    """Validate a ``backend=`` argument, returning it unchanged."""
    if backend not in BACKENDS:
        raise ValueError(
            f"backend must be one of {BACKENDS}, got {backend!r}"
        )
    return backend


# -- ambient lane budget -----------------------------------------------

#: Process-wide default for ``FastEngine(max_lane_nodes=...)``; set by
#: the ``--max-lane-nodes`` CLI flag through :func:`lane_budget_enabled`.
#: Sweep workers inherit it through process forking on POSIX start
#: methods, so one flag bounds every engine of a sweep.
_lane_budget: int | None = None


def active_lane_budget() -> int | None:
    """The ambient streaming budget (nodes per chunk), if any."""
    return _lane_budget


def _validate_budget(max_lane_nodes: int) -> int:
    value = int(max_lane_nodes)
    if value < 1:
        raise ValueError(
            f"max_lane_nodes must be at least 1, got {max_lane_nodes!r}"
        )
    return value


@contextmanager
def lane_budget_enabled(max_lane_nodes: int) -> Iterator[int]:
    """Scoped ambient lane budget; restores the previous value."""
    global _lane_budget
    previous = _lane_budget
    _lane_budget = _validate_budget(max_lane_nodes)
    try:
        yield _lane_budget
    finally:
        _lane_budget = previous


def partition_lanes(
    sizes: Sequence[int], max_lane_nodes: int | None
) -> list[tuple[int, int]]:
    """Greedy contiguous ``[start, stop)`` chunks under the node budget.

    Each chunk's total node count stays at or below ``max_lane_nodes``
    except when a single lane alone exceeds the budget, in which case
    that lane forms its own (oversized) chunk -- the partition is always
    exhaustive and order-preserving.  ``None`` means no budget: one
    chunk covering everything (the monolithic stack).
    """
    if max_lane_nodes is None:
        return [(0, len(sizes))]
    budget = _validate_budget(max_lane_nodes)
    chunks: list[tuple[int, int]] = []
    start = 0
    load = 0
    for index, size in enumerate(sizes):
        if index > start and load + int(size) > budget:
            chunks.append((start, index))
            start, load = index, 0
        load += int(size)
    chunks.append((start, len(sizes)))
    return chunks


@dataclass(frozen=True)
class FastLane:
    """One independent run inside a batched fast execution.

    Attributes:
        topology: The lane's adversary -- anything the object engine
            accepts: a :class:`~repro.networks.DynamicGraph` (its
            ``to_csr`` memoization is used directly), an object with a
            ``graph(round_no, processes)`` method, or a plain
            ``f(round_no) -> nx.Graph`` callable.
        n: Number of nodes of this lane.
        leader: Leader index within the lane (``None`` for leaderless
            protocols), mirroring the object engine's argument.
    """

    topology: Any
    n: int
    leader: int | None = 0


@dataclass(frozen=True)
class LaneLayout:
    """Where a lane's nodes live on the stacked node axis.

    Attributes:
        index: Lane position in the batch (chunk-local under streaming).
        offset: First stacked node index of the lane.
        n: Lane size; the lane spans ``[offset, offset + n)``.
        leader: Stacked index of the lane's leader (``None`` if
            leaderless).
    """

    index: int
    offset: int
    n: int
    leader: int | None

    @property
    def stop(self) -> int:
        """One past the lane's last stacked node index."""
        return self.offset + self.n


class VectorizedProtocol(ABC):
    """A protocol whose rounds execute as array operations.

    Implementations hold all state as arrays over the *stacked* node
    axis (all lanes concatenated).  The engine drives:

    1. :meth:`allocate` once, with the lane layouts;
    2. :meth:`step` once per round with the stacked adjacency -- the
       whole send+receive phase, returning the round's traffic so the
       engine can keep the object engine's message counters exact;
    3. :meth:`output_mask` after each round for the stop criterion.

    Because lanes of a batch may stop at different rounds while the
    batch keeps stepping, ``step`` must be *stable after termination*:
    once a lane's stop criterion holds, further steps must not change
    that lane's outputs (every protocol here is monotone or commits its
    output exactly once, so this holds by construction).

    Under a streaming budget (``max_lane_nodes``) the engine runs lane
    chunks through *fresh sub-protocols*: :meth:`subset` builds an
    unallocated clone covering a contiguous slice of lanes, the chunk
    runs to completion, lane results are extracted from the clone, and
    :meth:`absorb` folds any per-lane side products (push-sum estimate
    trails, dissemination message totals) back into the parent.  The
    defaults make chunking opt-in per protocol: ``subset`` raises, and
    ``absorb`` is a no-op.
    """

    @abstractmethod
    def allocate(self, layouts: Sequence[LaneLayout]) -> None:
        """Allocate state arrays for the given lane layouts."""

    @abstractmethod
    def step(
        self, round_no: int, adjacency: CSRAdjacency, active: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Execute one synchronous round over all lanes at once.

        Args:
            round_no: The global round number.
            adjacency: Block-diagonal stacked adjacency of this round.
            active: Boolean per *node*: does the node belong to a lane
                whose stop criterion has not yet been met?  Protocols
                that account per-round traffic of their own (message
                totals) must restrict that accounting to active nodes;
                state updates always cover all nodes.

        Returns:
            ``(sending, delivered)``: per-node boolean "broadcast a
            non-``None`` payload this round" and per-node count of
            payloads received.  The engine reduces these per lane into
            the ``engine.messages_sent`` / ``engine.messages_delivered``
            counters so fast-vs-object metric equality is checkable.
        """

    @abstractmethod
    def output_mask(self) -> np.ndarray:
        """Boolean per node: has the node committed an output?"""

    def informed_mask(self) -> np.ndarray:
        """Boolean per node: is the node informed? (round telemetry).

        Protocols with an explicit informed-set notion (flooding,
        dissemination) override this; the default equates "informed"
        with "committed an output", mirroring the object engine's
        fallback for processes without an ``informed`` attribute.
        """
        return self.output_mask()

    @abstractmethod
    def outputs_for(self, layout: LaneLayout) -> dict[int, Any]:
        """Outputs of one lane, keyed by lane-local node index."""

    def subset(self, indices: Sequence[int]) -> "VectorizedProtocol":
        """A fresh, unallocated protocol covering lanes ``indices``.

        ``indices`` is a contiguous ascending slice of the batch's lane
        indices.  The engine allocates the returned protocol with
        chunk-local layouts, so implementations only re-slice their
        per-lane constructor arguments.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support streaming chunks; "
            "implement subset()/absorb() or run without max_lane_nodes"
        )

    def absorb(self, sub: "VectorizedProtocol", indices: Sequence[int]) -> None:
        """Fold a finished chunk's per-lane side products back in.

        Called once per chunk, in ascending chunk order, with the
        sub-protocol returned by :meth:`subset` after its lanes ran to
        completion.  The default is a no-op: protocols whose entire
        observable output flows through :meth:`outputs_for` need
        nothing here.
        """


@dataclass
class _BlockOutcome:
    """What one streamed chunk reports back to the engine."""

    stats: dict[str, int]
    rounds_done: np.ndarray
    stuck: list[int]
    rounds_executed: int
    records: dict[int, dict[str, int]] = field(default_factory=dict)
    final_informed: int = 0
    final_terminated: int = 0


#: Additive telemetry fields merged across chunks (``round`` keys the
#: record, ``engine``/``nodes`` are batch-level).
_TELEMETRY_KEYS = (
    "edges",
    "sent",
    "delivered",
    "informed",
    "terminated",
    "lanes_active",
)


class _LaneBlock:
    """One contiguous chunk of lanes, executed to completion.

    Owns the chunk-local layouts (rebased to offset 0), adjacency
    caches, and the matvec loop.  The monolithic run is the one-block
    special case, so chunked and single-stack executions share every
    line of the hot loop.
    """

    def __init__(
        self, lanes: Sequence[FastLane], config: EngineConfig
    ) -> None:
        self.lanes = list(lanes)
        self.config = config
        offsets = np.concatenate(
            ([0], np.cumsum([lane.n for lane in self.lanes]))
        )
        self.total_nodes = int(offsets[-1])
        # Dtype policy: lane offsets and per-lane sent counts fit the
        # node-count dtype; per-lane delivered counts can reach ~n^2
        # (dense rounds deliver degree-many payloads per node).
        self._offsets = offsets.astype(index_dtype_for(self.total_nodes))
        self._count_dtype = index_dtype_for(self.total_nodes)
        self._acc_dtype = index_dtype_for(self.total_nodes**2)
        self.layouts: list[LaneLayout] = []
        for index, lane in enumerate(self.lanes):
            offset = int(self._offsets[index])
            leader = None if lane.leader is None else offset + lane.leader
            self.layouts.append(LaneLayout(index, offset, lane.n, leader))
        self._caches = [AdjacencyCache() for _ in self.lanes]
        self._stack = StackCache()

    # -- adjacency ----------------------------------------------------

    def _lane_adjacency(self, lane_index: int, round_no: int) -> CSRAdjacency:
        lane = self.lanes[lane_index]
        to_csr = getattr(lane.topology, "to_csr", None)
        if to_csr is not None:
            adjacency = to_csr(round_no)
        else:
            graph_of = getattr(lane.topology, "graph", None)
            graph = (
                graph_of(round_no, None)
                if graph_of is not None
                else lane.topology(round_no)
            )
            adjacency = self._caches[lane_index].lower(graph, n=lane.n)
        if adjacency.n != lane.n:
            raise TopologyError(
                f"round {round_no}: lane {lane_index} produced {adjacency.n} "
                f"nodes, expected {lane.n}"
            )
        if (
            self.config.require_connected
            and lane.n > 1
            and not adjacency.connected
        ):
            raise TopologyError(
                f"round {round_no}: lane {lane_index} graph is disconnected "
                "but 1-interval connectivity is required"
            )
        return adjacency

    def _stacked_adjacency(self, round_no: int) -> CSRAdjacency:
        parts = [
            self._lane_adjacency(index, round_no)
            for index in range(len(self.lanes))
        ]
        return self._stack.stack(parts)

    def edges_at(self, round_no: int) -> int:
        """Total edge count of the chunk's lanes at ``round_no``.

        Used to extend a finished chunk's telemetry over the rounds the
        batch keeps running: the monolithic stack still counts finished
        lanes' edges every round, and a block-diagonal's edge count is
        exactly the sum of its parts.
        """
        return sum(
            self._lane_adjacency(index, round_no).edges
            for index in range(len(self.lanes))
        )

    # -- stop criteria ------------------------------------------------

    def _lane_done(self, mask: np.ndarray) -> np.ndarray:
        """Per-lane boolean: stop criterion met, given the output mask."""
        stop_when = self.config.stop_when
        if stop_when == "budget":
            return np.zeros(len(self.lanes), dtype=bool)
        if stop_when == "leader":
            return np.array(
                [mask[layout.leader] for layout in self.layouts], dtype=bool
            )
        per_lane = np.add.reduceat(
            mask.astype(self._count_dtype), self._offsets[:-1]
        )
        if stop_when == "all":
            sizes = np.diff(self._offsets)
            return per_lane == sizes
        return per_lane > 0  # "any"

    # -- execution ----------------------------------------------------

    def run(
        self,
        protocol: VectorizedProtocol,
        round_hook: Callable[[int], None] | None,
        telemetry,
        *,
        stream: bool,
        batch_nodes: int,
    ) -> _BlockOutcome:
        """Run the chunk's lanes to completion (or the round budget).

        With ``stream`` the chunk covers the whole batch and telemetry
        records are emitted directly (the monolithic path); otherwise
        sampled records are collected for cross-chunk merging.
        """
        config = self.config
        protocol.allocate(self.layouts)
        rounds_done = np.full(
            len(self.lanes), -1, dtype=index_dtype_for(config.max_rounds)
        )
        lane_active = np.ones(len(self.lanes), dtype=bool)
        sizes = np.diff(self._offsets)
        stats = {"rounds": 0, "graphs": 0, "sent": 0, "delivered": 0}
        records: dict[int, dict[str, int]] = {}
        rounds_executed = 0
        for round_no in range(config.max_rounds):
            adjacency = self._stacked_adjacency(round_no)
            active_nodes = np.repeat(lane_active, sizes)
            sending, delivered = protocol.step(
                round_no, adjacency, active_nodes
            )
            rounds_executed = round_no + 1
            # Per-lane traffic, counted exactly like the object
            # engine: only lanes still running execute the round.
            sent_by_lane = np.add.reduceat(
                sending.astype(self._count_dtype), self._offsets[:-1]
            )
            delivered_by_lane = np.add.reduceat(
                np.asarray(delivered, dtype=self._acc_dtype),
                self._offsets[:-1],
            )
            active_count = int(lane_active.sum())
            round_sent = int(sent_by_lane[lane_active].sum())
            round_delivered = int(delivered_by_lane[lane_active].sum())
            stats["rounds"] += active_count
            stats["graphs"] += active_count
            stats["sent"] += round_sent
            stats["delivered"] += round_delivered
            if round_hook is not None:
                round_hook(round_no)
            mask = protocol.output_mask()
            if telemetry is not None and telemetry.wants(round_no):
                # Same post-round semantics as the object engine's
                # record; traffic covers the lanes that executed
                # the round, edges the whole stacked adjacency.
                record = {
                    "edges": adjacency.edges,
                    "sent": round_sent,
                    "delivered": round_delivered,
                    "informed": int(
                        np.count_nonzero(protocol.informed_mask())
                    ),
                    "terminated": int(np.count_nonzero(mask)),
                    "lanes_active": active_count,
                }
                if stream:
                    telemetry.emit(
                        {
                            "engine": "fast",
                            "round": round_no,
                            **record,
                            "nodes": batch_nodes,
                        }
                    )
                else:
                    records[round_no] = record
            newly_done = lane_active & self._lane_done(mask)
            rounds_done[newly_done] = round_no + 1
            lane_active &= ~newly_done
            if not lane_active.any():
                break
        if config.stop_when == "budget":
            rounds_done[lane_active] = config.max_rounds
            lane_active[:] = False
        outcome = _BlockOutcome(
            stats=stats,
            rounds_done=rounds_done,
            stuck=[int(i) for i in np.flatnonzero(lane_active)],
            rounds_executed=rounds_executed,
            records=records,
        )
        if telemetry is not None and not stream:
            # Frozen end-state, reused verbatim for the rounds the rest
            # of the batch keeps running (terminated lanes' informed and
            # terminated counts never change; traffic stops).
            outcome.final_informed = int(
                np.count_nonzero(protocol.informed_mask())
            )
            outcome.final_terminated = int(
                np.count_nonzero(protocol.output_mask())
            )
        return outcome


class FastEngine:
    """Drive a :class:`VectorizedProtocol` over batched lanes.

    Semantics mirror :class:`~repro.simulation.engine.SynchronousEngine`
    per lane: the same stop criteria (``leader``/``all``/``any``/
    ``budget``), the same round accounting (a lane's terminal round is
    executed in full), the same :class:`TerminationError` on budget
    exhaustion, and the same per-round validation rules -- performed
    once per distinct graph object through the adjacency cache.

    Args:
        protocol: The vectorized protocol instance (one per engine).
        lanes: The independent runs to stack; a single lane is the
            un-batched case.
        config: Engine configuration (``trace_level`` must be ``NONE``:
            the fast path records no traces).
        max_lane_nodes: Streaming budget -- the maximum number of nodes
            stacked into one block-diagonal chunk.  ``None`` (default)
            adopts the ambient budget (:func:`lane_budget_enabled`,
            set by ``--max-lane-nodes``); with no budget anywhere the
            whole batch runs as one monolithic stack.  Chunked and
            monolithic executions produce identical results, counters,
            and telemetry trajectories; only peak memory differs.

    Example:
        >>> from repro.core.counting.star import VectorizedStar
        >>> from repro.networks.generators.stars import star_network
        >>> engine = FastEngine(
        ...     VectorizedStar(),
        ...     [FastLane(star_network(5), 5, leader=0)],
        ...     config=EngineConfig(max_rounds=4),
        ... )
        >>> engine.run()[0].leader_output
        5
    """

    def __init__(
        self,
        protocol: VectorizedProtocol,
        lanes: Sequence[FastLane],
        *,
        config: EngineConfig | None = None,
        round_hook: Callable[[int], None] | None = None,
        max_lane_nodes: int | None = None,
    ) -> None:
        if not lanes:
            raise ValueError("need at least one lane")
        self.config = config or EngineConfig()
        if self.config.trace_level != TraceLevel.NONE:
            raise ValueError(
                "the fast backend does not record traces; run the object "
                "engine (backend='object') to trace an execution"
            )
        self.protocol = protocol
        self.lanes = list(lanes)
        self.round_hook = round_hook
        sizes = []
        for index, lane in enumerate(self.lanes):
            if lane.n < 1:
                raise ValueError("every lane needs at least one node")
            if lane.leader is not None and not 0 <= lane.leader < lane.n:
                raise ValueError(
                    f"lane {index}: leader index {lane.leader} out of range"
                )
            if self.config.stop_when == "leader" and lane.leader is None:
                raise ValueError("stop_when='leader' requires a leader index")
            sizes.append(lane.n)
        self.total_nodes = int(sum(sizes))
        # Engine-wide dtype policy (chunk-local loops re-derive their
        # own, smaller dtypes from the chunk totals).
        self._index_dtype = index_dtype_for(self.total_nodes)
        self._acc_dtype = index_dtype_for(self.total_nodes**2)
        offsets = np.concatenate(([0], np.cumsum(sizes))).astype(
            self._index_dtype
        )
        self._offsets = offsets
        self.layouts = [
            LaneLayout(
                index,
                int(offsets[index]),
                lane.n,
                None
                if lane.leader is None
                else int(offsets[index]) + lane.leader,
            )
            for index, lane in enumerate(self.lanes)
        ]
        if max_lane_nodes is None:
            max_lane_nodes = active_lane_budget()
        if max_lane_nodes is not None:
            max_lane_nodes = _validate_budget(max_lane_nodes)
        self.max_lane_nodes = max_lane_nodes
        self._chunks = partition_lanes(sizes, max_lane_nodes)

    def _chunk_protocol(
        self, start: int, stop: int
    ) -> VectorizedProtocol:
        try:
            return self.protocol.subset(range(start, stop))
        except NotImplementedError as exc:
            raise TypeError(
                f"max_lane_nodes={self.max_lane_nodes} splits "
                f"{len(self.lanes)} lanes into {len(self._chunks)} chunks, "
                f"but {type(self.protocol).__name__} does not implement "
                "subset()/absorb(); raise the budget or add chunking "
                "support to the protocol"
            ) from exc

    # -- execution ----------------------------------------------------

    def run(self) -> list[SimulationResult]:
        """Execute all lanes; one :class:`SimulationResult` per lane.

        Raises:
            TerminationError: Some lane did not meet the stop criterion
                within ``config.max_rounds`` (never for ``"budget"``).
            TopologyError: A lane produced an invalid graph.
        """
        config = self.config
        counter("engine.fast.batches")
        counter("engine.runs", len(self.lanes))
        telemetry = telemetry_mod.active()
        streaming = len(self._chunks) > 1
        stats = {"rounds": 0, "graphs": 0, "sent": 0, "delivered": 0}
        results: list[SimulationResult] = []
        stuck: list[int] = []
        fused_rounds = 0
        max_lane_rounds = 0
        # (outcome, block) per finished chunk, for telemetry merging.
        chunk_telemetry: list[tuple[_BlockOutcome, _LaneBlock]] = []
        with span(
            "engine.fast.run",
            lanes=len(self.lanes),
            nodes=self.total_nodes,
            stop_when=config.stop_when,
            chunks=len(self._chunks),
        ):
            for start, stop in self._chunks:
                protocol = (
                    self._chunk_protocol(start, stop)
                    if streaming
                    else self.protocol
                )
                block = _LaneBlock(self.lanes[start:stop], config)
                outcome = block.run(
                    protocol,
                    self.round_hook,
                    telemetry,
                    stream=not streaming,
                    batch_nodes=self.total_nodes,
                )
                # Extract lane results while the chunk's state is live,
                # then release it before the next chunk allocates.
                for local, layout in enumerate(block.layouts):
                    results.append(
                        self._lane_result(
                            protocol,
                            block.lanes[local],
                            layout,
                            int(outcome.rounds_done[local]),
                        )
                    )
                if streaming:
                    self.protocol.absorb(protocol, range(start, stop))
                for key in stats:
                    stats[key] += outcome.stats[key]
                stuck.extend(start + local for local in outcome.stuck)
                fused_rounds = max(fused_rounds, outcome.rounds_executed)
                max_lane_rounds = max(
                    max_lane_rounds, int(outcome.rounds_done.max(initial=0))
                )
                if telemetry is not None and streaming:
                    chunk_telemetry.append((outcome, block))
                del protocol, block, outcome
            # One value emission per batch: the monolithic loop executes
            # max-over-lanes rounds, and so does the slowest chunk.
            counter("engine.fast.fused_rounds", fused_rounds)
            if telemetry is not None and streaming:
                self._emit_merged_telemetry(
                    telemetry, chunk_telemetry, fused_rounds
                )
            if stuck:
                shown = sorted(stuck)[:10]
                raise TerminationError(
                    f"stop criterion {config.stop_when!r} not met within "
                    f"{config.max_rounds} rounds (lanes {shown})"
                )
        counter("engine.rounds", stats["rounds"])
        counter("engine.graphs", stats["graphs"])
        counter("engine.messages_sent", stats["sent"])
        counter("engine.messages_delivered", stats["delivered"])
        _log.debug(
            "fast batch finished",
            extra={
                "lanes": len(self.lanes),
                "nodes": self.total_nodes,
                "chunks": len(self._chunks),
                "lane_rounds": max_lane_rounds,
            },
        )
        return results

    def _emit_merged_telemetry(
        self,
        telemetry,
        chunk_telemetry: list[tuple[_BlockOutcome, _LaneBlock]],
        total_rounds: int,
    ) -> None:
        """Fold per-chunk telemetry into the monolithic trajectory.

        The monolithic stack emits one record per sampled round until
        the *last* lane finishes, with finished lanes' edges still
        counted and their informed/terminated tallies frozen.  A chunk
        that finished early therefore contributes its frozen end-state
        (and per-round edge counts) to every later sampled round.
        """
        merged: dict[int, dict[str, int]] = {}

        def slot(round_no: int) -> dict[str, int]:
            return merged.setdefault(
                round_no, dict.fromkeys(_TELEMETRY_KEYS, 0)
            )

        for outcome, block in chunk_telemetry:
            for round_no, record in outcome.records.items():
                entry = slot(round_no)
                for key in _TELEMETRY_KEYS:
                    entry[key] += record[key]
            for round_no in range(outcome.rounds_executed, total_rounds):
                if not telemetry.wants(round_no):
                    continue
                entry = slot(round_no)
                entry["edges"] += block.edges_at(round_no)
                entry["informed"] += outcome.final_informed
                entry["terminated"] += outcome.final_terminated
        for round_no in sorted(merged):
            record = merged[round_no]
            telemetry.emit(
                {
                    "engine": "fast",
                    "round": round_no,
                    **record,
                    "nodes": self.total_nodes,
                }
            )

    def _lane_result(
        self,
        protocol: VectorizedProtocol,
        lane: FastLane,
        layout: LaneLayout,
        rounds: int,
    ) -> SimulationResult:
        outputs = protocol.outputs_for(layout)
        leader_output = (
            outputs.get(lane.leader) if lane.leader is not None else None
        )
        return SimulationResult(
            rounds=rounds,
            outputs=outputs,
            leader_output=leader_output,
            terminated=True,
            trace=SimulationTrace(level=TraceLevel.NONE),
        )
