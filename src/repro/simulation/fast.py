"""The vectorized batch simulation backend.

:class:`~repro.simulation.engine.SynchronousEngine` executes one Python
``compose``/``deliver`` call per process per round -- full protocol
fidelity, but the interpreter loop dominates wall-clock time on large
sweeps.  This module provides the *fast backend*: a second execution
path that compiles a round into array operations.

* Topologies are lowered once to CSR adjacency
  (:mod:`repro.networks.csr`), with the model checks (node set,
  self-loops, connectivity) memoized per graph object instead of
  recomputed every round.  CSR-native topologies
  (:class:`~repro.networks.CSRDynamicGraph` and anything exposing
  ``to_csr(round_no)``) skip the networkx lowering entirely: the lane
  adjacency comes straight from per-round edge arrays.  The per-lane
  adjacency caches and the lane-stack cache are LRU-bounded
  (``adjacency.cache_evictions`` / ``adjacency.stack_evictions``), so
  fresh-graph-per-round workloads hold O(1) adjacency memory instead of
  leaking one lowered graph per round.
* Protocols whose per-round receive phase is an aggregation over the
  multiset of received values implement :class:`VectorizedProtocol`:
  state lives in NumPy arrays over a flat node axis and one ``step``
  performs the whole receive phase as a sparse matvec / histogram.
* Many independent runs (seeds x sizes of a sweep point) are stacked
  block-diagonally into *lanes* of one :class:`FastEngine`, so a batch
  advances with a single fused matvec per round.

The object engine remains the semantics oracle: round counts, outputs,
stop-criterion behaviour, and the ``engine.*`` counters of a fast run
are defined to equal the object engine's on the same workload, and the
test suite differential-tests exactly that (floating-point protocols
match to within accumulation order).  The fast path intentionally does
not support tracing -- re-run on the object engine to inspect a
round-by-round trace.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.networks.csr import AdjacencyCache, CSRAdjacency, StackCache
from repro.obs import telemetry as telemetry_mod
from repro.obs.logger import get_logger
from repro.obs.metrics import counter
from repro.obs.spans import span
from repro.simulation.engine import EngineConfig, SimulationResult
from repro.simulation.errors import TerminationError, TopologyError
from repro.simulation.trace import SimulationTrace, TraceLevel

_log = get_logger("simulation.fast")

__all__ = [
    "BACKENDS",
    "FastEngine",
    "FastLane",
    "LaneLayout",
    "VectorizedProtocol",
    "resolve_backend",
]

BACKENDS = ("object", "fast")
"""The two execution backends: ``"object"`` is the per-process oracle
engine, ``"fast"`` the vectorized batch engine of this module."""


def resolve_backend(backend: str) -> str:
    """Validate a ``backend=`` argument, returning it unchanged."""
    if backend not in BACKENDS:
        raise ValueError(
            f"backend must be one of {BACKENDS}, got {backend!r}"
        )
    return backend


@dataclass(frozen=True)
class FastLane:
    """One independent run inside a batched fast execution.

    Attributes:
        topology: The lane's adversary -- anything the object engine
            accepts: a :class:`~repro.networks.DynamicGraph` (its
            ``to_csr`` memoization is used directly), an object with a
            ``graph(round_no, processes)`` method, or a plain
            ``f(round_no) -> nx.Graph`` callable.
        n: Number of nodes of this lane.
        leader: Leader index within the lane (``None`` for leaderless
            protocols), mirroring the object engine's argument.
    """

    topology: Any
    n: int
    leader: int | None = 0


@dataclass(frozen=True)
class LaneLayout:
    """Where a lane's nodes live on the stacked node axis.

    Attributes:
        index: Lane position in the batch.
        offset: First global node index of the lane.
        n: Lane size; the lane spans ``[offset, offset + n)``.
        leader: Global index of the lane's leader (``None`` if leaderless).
    """

    index: int
    offset: int
    n: int
    leader: int | None

    @property
    def stop(self) -> int:
        """One past the lane's last global node index."""
        return self.offset + self.n


class VectorizedProtocol(ABC):
    """A protocol whose rounds execute as array operations.

    Implementations hold all state as arrays over the *stacked* node
    axis (all lanes concatenated).  The engine drives:

    1. :meth:`allocate` once, with the lane layouts;
    2. :meth:`step` once per round with the stacked adjacency -- the
       whole send+receive phase, returning the round's traffic so the
       engine can keep the object engine's message counters exact;
    3. :meth:`output_mask` after each round for the stop criterion.

    Because lanes of a batch may stop at different rounds while the
    batch keeps stepping, ``step`` must be *stable after termination*:
    once a lane's stop criterion holds, further steps must not change
    that lane's outputs (every protocol here is monotone or commits its
    output exactly once, so this holds by construction).
    """

    @abstractmethod
    def allocate(self, layouts: Sequence[LaneLayout]) -> None:
        """Allocate state arrays for the given lane layouts."""

    @abstractmethod
    def step(
        self, round_no: int, adjacency: CSRAdjacency, active: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Execute one synchronous round over all lanes at once.

        Args:
            round_no: The global round number.
            adjacency: Block-diagonal stacked adjacency of this round.
            active: Boolean per *node*: does the node belong to a lane
                whose stop criterion has not yet been met?  Protocols
                that account per-round traffic of their own (message
                totals) must restrict that accounting to active nodes;
                state updates always cover all nodes.

        Returns:
            ``(sending, delivered)``: per-node boolean "broadcast a
            non-``None`` payload this round" and per-node count of
            payloads received.  The engine reduces these per lane into
            the ``engine.messages_sent`` / ``engine.messages_delivered``
            counters so fast-vs-object metric equality is checkable.
        """

    @abstractmethod
    def output_mask(self) -> np.ndarray:
        """Boolean per node: has the node committed an output?"""

    def informed_mask(self) -> np.ndarray:
        """Boolean per node: is the node informed? (round telemetry).

        Protocols with an explicit informed-set notion (flooding,
        dissemination) override this; the default equates "informed"
        with "committed an output", mirroring the object engine's
        fallback for processes without an ``informed`` attribute.
        """
        return self.output_mask()

    @abstractmethod
    def outputs_for(self, layout: LaneLayout) -> dict[int, Any]:
        """Outputs of one lane, keyed by lane-local node index."""


class FastEngine:
    """Drive a :class:`VectorizedProtocol` over batched lanes.

    Semantics mirror :class:`~repro.simulation.engine.SynchronousEngine`
    per lane: the same stop criteria (``leader``/``all``/``any``/
    ``budget``), the same round accounting (a lane's terminal round is
    executed in full), the same :class:`TerminationError` on budget
    exhaustion, and the same per-round validation rules -- performed
    once per distinct graph object through the adjacency cache.

    Args:
        protocol: The vectorized protocol instance (one per engine).
        lanes: The independent runs to stack; a single lane is the
            un-batched case.
        config: Engine configuration (``trace_level`` must be ``NONE``:
            the fast path records no traces).

    Example:
        >>> from repro.core.counting.star import VectorizedStar
        >>> from repro.networks.generators.stars import star_network
        >>> engine = FastEngine(
        ...     VectorizedStar(),
        ...     [FastLane(star_network(5), 5, leader=0)],
        ...     config=EngineConfig(max_rounds=4),
        ... )
        >>> engine.run()[0].leader_output
        5
    """

    def __init__(
        self,
        protocol: VectorizedProtocol,
        lanes: Sequence[FastLane],
        *,
        config: EngineConfig | None = None,
        round_hook: Callable[[int], None] | None = None,
    ) -> None:
        if not lanes:
            raise ValueError("need at least one lane")
        self.config = config or EngineConfig()
        if self.config.trace_level != TraceLevel.NONE:
            raise ValueError(
                "the fast backend does not record traces; run the object "
                "engine (backend='object') to trace an execution"
            )
        self.protocol = protocol
        self.lanes = list(lanes)
        self.round_hook = round_hook
        offsets = np.concatenate(
            ([0], np.cumsum([lane.n for lane in self.lanes]))
        ).astype(np.int64)
        self.layouts: list[LaneLayout] = []
        for index, lane in enumerate(self.lanes):
            if lane.n < 1:
                raise ValueError("every lane needs at least one node")
            if lane.leader is not None and not 0 <= lane.leader < lane.n:
                raise ValueError(
                    f"lane {index}: leader index {lane.leader} out of range"
                )
            if self.config.stop_when == "leader" and lane.leader is None:
                raise ValueError("stop_when='leader' requires a leader index")
            offset = int(offsets[index])
            leader = None if lane.leader is None else offset + lane.leader
            self.layouts.append(LaneLayout(index, offset, lane.n, leader))
        self._offsets = offsets
        self.total_nodes = int(offsets[-1])
        self._caches = [AdjacencyCache() for _ in self.lanes]
        self._stack = StackCache()

    # -- adjacency ----------------------------------------------------

    def _lane_adjacency(self, lane_index: int, round_no: int) -> CSRAdjacency:
        lane = self.lanes[lane_index]
        to_csr = getattr(lane.topology, "to_csr", None)
        if to_csr is not None:
            adjacency = to_csr(round_no)
        else:
            graph_of = getattr(lane.topology, "graph", None)
            graph = (
                graph_of(round_no, None)
                if graph_of is not None
                else lane.topology(round_no)
            )
            adjacency = self._caches[lane_index].lower(graph, n=lane.n)
        if adjacency.n != lane.n:
            raise TopologyError(
                f"round {round_no}: lane {lane_index} produced {adjacency.n} "
                f"nodes, expected {lane.n}"
            )
        if (
            self.config.require_connected
            and lane.n > 1
            and not adjacency.connected
        ):
            raise TopologyError(
                f"round {round_no}: lane {lane_index} graph is disconnected "
                "but 1-interval connectivity is required"
            )
        return adjacency

    def _stacked_adjacency(self, round_no: int) -> CSRAdjacency:
        parts = [
            self._lane_adjacency(index, round_no)
            for index in range(len(self.lanes))
        ]
        return self._stack.stack(parts)

    # -- stop criteria ------------------------------------------------

    def _lane_done(self, mask: np.ndarray) -> np.ndarray:
        """Per-lane boolean: stop criterion met, given the output mask."""
        stop_when = self.config.stop_when
        if stop_when == "budget":
            return np.zeros(len(self.lanes), dtype=bool)
        if stop_when == "leader":
            return np.array(
                [mask[layout.leader] for layout in self.layouts], dtype=bool
            )
        per_lane = np.add.reduceat(mask.astype(np.int64), self._offsets[:-1])
        if stop_when == "all":
            sizes = np.diff(self._offsets)
            return per_lane == sizes
        return per_lane > 0  # "any"

    # -- execution ----------------------------------------------------

    def run(self) -> list[SimulationResult]:
        """Execute all lanes; one :class:`SimulationResult` per lane.

        Raises:
            TerminationError: Some lane did not meet the stop criterion
                within ``config.max_rounds`` (never for ``"budget"``).
            TopologyError: A lane produced an invalid graph.
        """
        config = self.config
        counter("engine.fast.batches")
        counter("engine.runs", len(self.lanes))
        telemetry = telemetry_mod.active()
        self.protocol.allocate(self.layouts)
        rounds_done = np.full(len(self.lanes), -1, dtype=np.int64)
        lane_active = np.ones(len(self.lanes), dtype=bool)
        sizes = np.diff(self._offsets)
        stats = {"rounds": 0, "graphs": 0, "sent": 0, "delivered": 0}
        with span(
            "engine.fast.run",
            lanes=len(self.lanes),
            nodes=self.total_nodes,
            stop_when=config.stop_when,
        ):
            for round_no in range(config.max_rounds):
                adjacency = self._stacked_adjacency(round_no)
                active_nodes = np.repeat(lane_active, sizes)
                sending, delivered = self.protocol.step(
                    round_no, adjacency, active_nodes
                )
                counter("engine.fast.fused_rounds")
                # Per-lane traffic, counted exactly like the object
                # engine: only lanes still running execute the round.
                sent_by_lane = np.add.reduceat(
                    sending.astype(np.int64), self._offsets[:-1]
                )
                delivered_by_lane = np.add.reduceat(
                    np.asarray(delivered, dtype=np.int64), self._offsets[:-1]
                )
                active_count = int(lane_active.sum())
                round_sent = int(sent_by_lane[lane_active].sum())
                round_delivered = int(delivered_by_lane[lane_active].sum())
                stats["rounds"] += active_count
                stats["graphs"] += active_count
                stats["sent"] += round_sent
                stats["delivered"] += round_delivered
                if self.round_hook is not None:
                    self.round_hook(round_no)
                mask = self.protocol.output_mask()
                if telemetry is not None and telemetry.wants(round_no):
                    # Same post-round semantics as the object engine's
                    # record; traffic covers the lanes that executed
                    # the round, edges the whole stacked adjacency.
                    telemetry.emit(
                        {
                            "engine": "fast",
                            "round": round_no,
                            "edges": adjacency.edges,
                            "sent": round_sent,
                            "delivered": round_delivered,
                            "informed": int(
                                np.count_nonzero(
                                    self.protocol.informed_mask()
                                )
                            ),
                            "terminated": int(np.count_nonzero(mask)),
                            "nodes": self.total_nodes,
                            "lanes_active": active_count,
                        }
                    )
                newly_done = lane_active & self._lane_done(mask)
                rounds_done[newly_done] = round_no + 1
                lane_active &= ~newly_done
                if not lane_active.any():
                    break
            if config.stop_when == "budget":
                rounds_done[lane_active] = config.max_rounds
                lane_active[:] = False
            if lane_active.any():
                stuck = [int(i) for i in np.flatnonzero(lane_active)[:10]]
                raise TerminationError(
                    f"stop criterion {config.stop_when!r} not met within "
                    f"{config.max_rounds} rounds (lanes {stuck})"
                )
        counter("engine.rounds", stats["rounds"])
        counter("engine.graphs", stats["graphs"])
        counter("engine.messages_sent", stats["sent"])
        counter("engine.messages_delivered", stats["delivered"])
        _log.debug(
            "fast batch finished",
            extra={
                "lanes": len(self.lanes),
                "nodes": self.total_nodes,
                "lane_rounds": int(rounds_done.max(initial=0)),
            },
        )
        return [self._lane_result(layout, rounds_done) for layout in self.layouts]

    def _lane_result(
        self, layout: LaneLayout, rounds_done: np.ndarray
    ) -> SimulationResult:
        outputs = self.protocol.outputs_for(layout)
        leader_local = self.lanes[layout.index].leader
        leader_output = (
            outputs.get(leader_local) if leader_local is not None else None
        )
        return SimulationResult(
            rounds=int(rounds_done[layout.index]),
            outputs=outputs,
            leader_output=leader_output,
            terminated=True,
            trace=SimulationTrace(level=TraceLevel.NONE),
        )
