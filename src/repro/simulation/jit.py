"""Optional compiled receive-phase kernel for the fast backend.

The fast backend's hot loop is one sparse matvec per round
(:meth:`repro.networks.csr.CSRAdjacency.matvec`).  scipy's CSR matvec
is already C, but it multiplies by the (unit) edge weights and routes
through the generic sparse machinery; a `numba <https://numba.pydata.org>`_
``@njit`` kernel over the raw ``indptr``/``indices`` arrays skips both,
summing neighbour values directly.

numba is an *optional* dependency: this module import-guards it and
degrades to the scipy matvec with a logged reason.  Selection is the
``--jit auto|on|off`` CLI flag (or :func:`jit_enabled` in code):

========  ==============  =================================================
mode      numba present   behaviour
========  ==============  =================================================
auto      yes             compiled kernel installed
auto      no              scipy matvec, reason logged at DEBUG
on        yes             compiled kernel installed
on        no              scipy matvec, reason logged at WARNING
off       --              scipy matvec (kernel never consulted)
========  ==============  =================================================

The kernel is installed *process-wide* through
:func:`repro.networks.csr.set_matvec_kernel`; both paths sum neighbour
values in CSR index order over unit weights, so results are
bit-identical and the object==fast differential suite holds either way.
Sweep workers inherit the installation through process forking on
POSIX start methods.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.networks import csr as csr_mod
from repro.obs.logger import get_logger

_log = get_logger("simulation.jit")

__all__ = [
    "HAVE_NUMBA",
    "JIT_MODES",
    "enable",
    "disable",
    "jit_enabled",
    "jit_status",
    "resolve_jit",
]

JIT_MODES = ("auto", "on", "off")
"""Valid ``--jit`` selections."""

try:
    import numba

    HAVE_NUMBA = True
    _IMPORT_ERROR: str | None = None
except ImportError as exc:  # pragma: no cover - depends on environment
    numba = None
    HAVE_NUMBA = False
    _IMPORT_ERROR = str(exc)

#: The compiled kernel, built once per process on first use.
_compiled_kernel = None

#: ``(backend, reason)`` of the most recent :func:`enable` call:
#: backend is ``"numba"`` or ``"scipy"``, reason explains a fallback
#: (``None`` when the compiled kernel is active or jit was never
#: enabled).
_status: tuple[str, str | None] = ("scipy", "jit not enabled")


def resolve_jit(mode: str) -> str:
    """Validate a ``--jit`` mode argument, returning it unchanged."""
    if mode not in JIT_MODES:
        raise ValueError(f"jit mode must be one of {JIT_MODES}, got {mode!r}")
    return mode


def _build_kernel():
    """Compile (lazily, once) the CSR receive-phase kernel."""
    global _compiled_kernel
    if _compiled_kernel is None:
        # Lazy signatures: numba specializes per index dtype, so the
        # same kernel serves int32 and int64 CSR matrices.
        @numba.njit(cache=False)
        def _receive(indptr, indices, x, out):  # pragma: no cover - jit
            for row in range(out.shape[0]):
                acc = 0.0
                for k in range(indptr[row], indptr[row + 1]):
                    acc += x[indices[k]]
                out[row] = acc

        _compiled_kernel = _receive
    return _compiled_kernel


def jit_status() -> tuple[str, str | None]:
    """``(backend, reason)`` of the current receive-phase selection."""
    return _status


def enable(mode: str = "auto") -> str:
    """Select the receive-phase backend; returns ``"numba"`` or ``"scipy"``.

    Installs the compiled kernel process-wide when available, otherwise
    clears any installed kernel and records the fallback reason
    (queryable through :func:`jit_status`).
    """
    global _status
    resolve_jit(mode)
    if mode == "off":
        csr_mod.set_matvec_kernel(None)
        _status = ("scipy", "jit disabled (--jit off)")
        return "scipy"
    if not HAVE_NUMBA:
        reason = (
            f"numba not importable ({_IMPORT_ERROR}); "
            "falling back to the scipy matvec"
        )
        if mode == "on":
            _log.warning("jit requested but unavailable: %s", reason)
        else:
            _log.debug("jit unavailable: %s", reason)
        csr_mod.set_matvec_kernel(None)
        _status = ("scipy", reason)
        return "scipy"
    csr_mod.set_matvec_kernel(_build_kernel())
    _status = ("numba", None)
    _log.debug("compiled receive-phase kernel installed (jit=%s)", mode)
    return "numba"


def disable() -> None:
    """Clear any installed kernel; the scipy matvec takes over."""
    global _status
    csr_mod.set_matvec_kernel(None)
    _status = ("scipy", "jit not enabled")


@contextmanager
def jit_enabled(mode: str = "auto") -> Iterator[str]:
    """Scoped receive-phase selection; restores the previous kernel."""
    global _status
    previous_kernel = csr_mod.matvec_kernel()
    previous_status = _status
    backend = enable(mode)
    try:
        yield backend
    finally:
        csr_mod.set_matvec_kernel(previous_kernel)
        _status = previous_status
