"""Round engine for dynamic bipartite labeled multigraphs (``M(DBL)_k``).

In the multigraph model of Section 4.1, every non-leader node ``v`` in
``W`` is connected to the leader by between 1 and ``k`` parallel edges
carrying pairwise distinct labels from ``{1, ..., k}``; the label
assignment may change every round.  When a payload travels over an edge
``e``, the receiver also observes the label ``l_r(e)``.

This engine is the executable form of that model.  An adversary supplies
the per-round label sets (see :class:`LabelSetProvider`); each round the
leader broadcasts, every node in ``W`` broadcasts, and payloads are
delivered as ``(label, payload)`` pairs -- one pair per parallel edge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Protocol, Sequence, runtime_checkable

from repro.simulation.errors import (
    ProtocolViolationError,
    TerminationError,
    TopologyError,
)
from repro.simulation.messages import LabeledInbox
from repro.simulation.node import Process
from repro.simulation.trace import SimulationTrace

__all__ = ["LabelSetProvider", "LabeledStarEngine", "LabeledRunResult"]


@runtime_checkable
class LabelSetProvider(Protocol):
    """Adversary interface for the ``M(DBL)_k`` model.

    ``label_sets(round_no, processes)`` returns, for every node of ``W``
    (indexed ``0..|W|-1``), the set of edge labels connecting it to the
    leader in this round.  Each set must be a non-empty subset of
    ``{1, ..., k}`` -- the defining constraint of ``M(DBL)_k``.

    Like :class:`repro.simulation.engine.TopologyProvider`, the provider
    sees the live process objects, so worst-case omniscient adversaries
    are expressible.
    """

    @property
    def k(self) -> int:
        """Maximum number of parallel edges (the ``k`` of ``M(DBL)_k``)."""
        ...

    def label_sets(
        self, round_no: int, processes: Sequence[Process]
    ) -> Sequence[frozenset[int]]:
        """Return the label set of every ``W`` node for ``round_no``."""
        ...


@dataclass
class LabeledRunResult:
    """Outcome of a :class:`LabeledStarEngine` execution."""

    rounds: int
    leader_output: Any
    outputs: dict[int, Any]
    terminated: bool
    trace: SimulationTrace = field(default_factory=SimulationTrace)


class LabeledStarEngine:
    """Drive a leader and ``|W|`` anonymous nodes over an ``M(DBL)_k``.

    Args:
        leader_process: The leader.  Its ``deliver`` receives a
            :class:`LabeledInbox` with one ``(label, payload)`` pair per
            incident edge.
        w_processes: The anonymous non-leader processes, one per node of
            ``W`` (indices are engine bookkeeping only).
        labels: The adversary supplying per-round label sets.
        max_rounds: Round budget.
        stop_when: ``"leader"`` (default) stops when the leader outputs;
            ``"budget"`` runs exactly ``max_rounds`` rounds.
    """

    def __init__(
        self,
        leader_process: Process,
        w_processes: Sequence[Process],
        labels: LabelSetProvider,
        *,
        max_rounds: int = 10_000,
        stop_when: str = "leader",
    ) -> None:
        if stop_when not in {"leader", "budget"}:
            raise ValueError("stop_when must be 'leader' or 'budget'")
        self.leader_process = leader_process
        self.w_processes = list(w_processes)
        self.labels = labels
        self.max_rounds = max_rounds
        self.stop_when = stop_when

    def run(self) -> LabeledRunResult:
        """Execute rounds until the leader outputs or the budget is hit."""
        rounds_executed = 0
        for round_no in range(self.max_rounds):
            label_sets = self._validated_label_sets(round_no)
            self._execute_round(round_no, label_sets)
            rounds_executed = round_no + 1
            if self.stop_when == "leader" and self.leader_process.output() is not None:
                return self._result(rounds_executed, terminated=True)
        if self.stop_when == "budget":
            return self._result(rounds_executed, terminated=True)
        raise TerminationError(
            f"leader did not output within {self.max_rounds} rounds"
        )

    def _validated_label_sets(self, round_no: int) -> list[frozenset[int]]:
        processes: list[Process] = [self.leader_process, *self.w_processes]
        label_sets = [
            frozenset(labels)
            for labels in self.labels.label_sets(round_no, processes)
        ]
        if len(label_sets) != len(self.w_processes):
            raise TopologyError(
                f"round {round_no}: adversary returned {len(label_sets)} label "
                f"sets for {len(self.w_processes)} W nodes"
            )
        valid_labels = frozenset(range(1, self.labels.k + 1))
        for index, labels in enumerate(label_sets):
            if not labels or not labels <= valid_labels:
                raise TopologyError(
                    f"round {round_no}: node {index} has label set "
                    f"{set(labels)!r}, expected a non-empty subset of "
                    f"{{1..{self.labels.k}}}"
                )
        return label_sets

    def _execute_round(
        self, round_no: int, label_sets: list[frozenset[int]]
    ) -> None:
        leader_payload = self._composed(self.leader_process, round_no)
        w_payloads = [
            self._composed(process, round_no) for process in self.w_processes
        ]

        # The leader observes every parallel edge separately: one
        # (label, payload) pair per edge, per Definition 7.
        leader_inbox = LabeledInbox(
            (label, payload)
            for labels, payload in zip(label_sets, w_payloads)
            if payload is not None
            for label in sorted(labels)
        )
        self.leader_process.deliver(round_no, leader_inbox)

        # Each W node observes the leader payload once per incident edge,
        # tagged with that edge's label -- this is how a node learns its
        # own label set L(v, r) during the receive phase.
        for process, labels in zip(self.w_processes, label_sets):
            pairs = (
                ((label, leader_payload) for label in sorted(labels))
                if leader_payload is not None
                else ()
            )
            process.deliver(round_no, LabeledInbox(pairs))

    @staticmethod
    def _composed(process: Process, round_no: int) -> Any:
        payload = process.compose(round_no)
        if payload is not None:
            try:
                hash(payload)
            except TypeError as exc:
                raise ProtocolViolationError(
                    f"round {round_no}: unhashable broadcast payload "
                    f"{payload!r} from {type(process).__name__}"
                ) from exc
        return payload

    def _result(self, rounds: int, *, terminated: bool) -> LabeledRunResult:
        outputs = {
            index: output
            for index, process in enumerate(self.w_processes)
            if (output := process.output()) is not None
        }
        return LabeledRunResult(
            rounds=rounds,
            leader_output=self.leader_process.output(),
            outputs=outputs,
            terminated=terminated,
        )
