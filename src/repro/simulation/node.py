"""Process base classes for round-based anonymous protocols.

A protocol is written by subclassing :class:`Process` and implementing
the two phases of a synchronous round:

* :meth:`Process.compose` -- the *send phase*: return the payload this
  process broadcasts in the given round (or ``None`` to stay silent).
* :meth:`Process.deliver` -- the *receive phase*: consume the inbox of
  payloads broadcast by the current neighbours.

Processes are anonymous.  The engine never exposes a node identity to the
process; the only initial asymmetry permitted by the model is the leader
flag (the leader starts "with a different unique state w.r.t. all the
other nodes", Section 3 of the paper), conveyed at construction time via
:class:`LeaderAware`.

A process signals termination by returning a value from
:meth:`Process.output`; the engine polls it after every receive phase.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

from repro.simulation.messages import Inbox

__all__ = ["Process", "LeaderAware"]


class Process(ABC):
    """A deterministic, anonymous, round-based process.

    Subclasses hold all protocol state as instance attributes.  The
    engine drives each round as ``compose`` (send) then ``deliver``
    (receive), and checks :meth:`output` after the receive phase.
    """

    @abstractmethod
    def compose(self, round_no: int) -> Any:
        """Return the payload to broadcast in round ``round_no``.

        Returning ``None`` broadcasts nothing this round.  Payloads must
        be hashable and should be immutable; the same object is delivered
        to every neighbour.
        """

    @abstractmethod
    def deliver(self, round_no: int, inbox: Inbox) -> None:
        """Process the payloads received in round ``round_no``.

        ``inbox`` holds one payload per neighbour that broadcast a
        non-``None`` payload this round, with no sender information.
        ``len(inbox)`` therefore reveals the node degree only *after*
        the receive phase, as the model prescribes.
        """

    def output(self) -> Any:
        """Return this process's final output, or ``None`` if still running.

        The default implementation reads ``self._output`` if the subclass
        has set it, so most protocols simply assign
        ``self._output = value`` when they decide.
        """
        return getattr(self, "_output", None)


class LeaderAware(Process, ABC):
    """A process that knows at start-up whether it is the leader.

    This is the only admissible initial asymmetry in the model: counting
    is impossible in fully anonymous dynamic networks without a leader
    (Michail, Chatzigiannakis & Spirakis, DISC 2012), so every counting
    protocol in this library starts from a distinguished leader state.
    """

    def __init__(self, is_leader: bool) -> None:
        self.is_leader = bool(is_leader)
