"""Inbox containers delivered to processes during the receive phase.

The model is anonymous: a delivered payload carries no sender identity.
To make this hard to get wrong, the engine hands processes an
:class:`Inbox` -- an immutable multiset-like container whose iteration
order is deterministic (payloads are sorted by a canonical key) so that a
protocol cannot accidentally extract information from delivery order.

In the labeled multigraph model (``M(DBL)_k``) an edge label *is*
observable: the leader receives a :class:`LabeledInbox` of
``(label, payload)`` pairs, matching Definition 7 of the paper (the
leader state is built from ``(j, S(v, r))`` pairs).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Iterator
from typing import Any, Hashable

__all__ = ["Inbox", "LabeledInbox", "canonical_sort_key"]


def canonical_sort_key(payload: Any) -> str:
    """Return a deterministic, content-only ordering key for a payload.

    The key is ``repr``-based: payloads used by the protocols in this
    library (tuples, frozensets, ints, Fractions) all have deterministic
    ``repr`` once frozensets are converted through :func:`repr` of their
    sorted contents.  Frozensets are special-cased because their native
    ``repr`` order follows hash randomisation.
    """
    return _canonical_repr(payload)


def _canonical_repr(payload: Any) -> str:
    if isinstance(payload, frozenset):
        inner = ", ".join(sorted(_canonical_repr(item) for item in payload))
        return f"frozenset({{{inner}}})"
    if isinstance(payload, tuple):
        inner = ", ".join(_canonical_repr(item) for item in payload)
        return f"({inner})"
    if isinstance(payload, dict):
        inner = ", ".join(
            f"{_canonical_repr(key)}: {_canonical_repr(value)}"
            for key, value in sorted(
                payload.items(), key=lambda kv: _canonical_repr(kv[0])
            )
        )
        return f"{{{inner}}}"
    return repr(payload)


class Inbox:
    """An immutable multiset of anonymous payloads.

    Iteration yields payloads in canonical (content-sorted) order, so two
    inboxes holding the same multiset of payloads are indistinguishable
    -- exactly the guarantee the anonymous broadcast model provides.
    """

    __slots__ = ("_payloads",)

    def __init__(self, payloads: Iterable[Any]) -> None:
        self._payloads: tuple[Any, ...] = tuple(
            sorted(payloads, key=canonical_sort_key)
        )

    def __iter__(self) -> Iterator[Any]:
        return iter(self._payloads)

    def __len__(self) -> int:
        return len(self._payloads)

    def __bool__(self) -> bool:
        return bool(self._payloads)

    def __contains__(self, payload: Any) -> bool:
        return payload in self._payloads

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Inbox):
            return NotImplemented
        return self._payloads == other._payloads

    def __hash__(self) -> int:
        return hash(self._payloads)

    def __repr__(self) -> str:
        return f"Inbox({list(self._payloads)!r})"

    def counts(self) -> Counter:
        """Return the multiset of payloads as a :class:`collections.Counter`.

        Payloads must be hashable for this view.
        """
        return Counter(self._payloads)

    def as_tuple(self) -> tuple[Any, ...]:
        """Return the payloads as a canonical-ordered tuple."""
        return self._payloads


class LabeledInbox:
    """An immutable multiset of ``(label, payload)`` pairs.

    Used by the ``M(DBL)_k`` engine: the receiver observes, for every
    incident edge, the edge label together with the payload carried over
    that edge.  Pairs are canonically ordered by ``(label, payload)``.
    """

    __slots__ = ("_pairs",)

    def __init__(self, pairs: Iterable[tuple[int, Any]]) -> None:
        self._pairs: tuple[tuple[int, Any], ...] = tuple(
            sorted(pairs, key=lambda pair: (pair[0], canonical_sort_key(pair[1])))
        )

    def __iter__(self) -> Iterator[tuple[int, Any]]:
        return iter(self._pairs)

    def __len__(self) -> int:
        return len(self._pairs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LabeledInbox):
            return NotImplemented
        return self._pairs == other._pairs

    def __hash__(self) -> int:
        return hash(self._pairs)

    def __repr__(self) -> str:
        return f"LabeledInbox({list(self._pairs)!r})"

    def labels(self) -> tuple[int, ...]:
        """Return the multiset of labels, canonically ordered."""
        return tuple(label for label, _payload in self._pairs)

    def counts(self) -> Counter:
        """Return the multiset of pairs as a :class:`collections.Counter`."""
        return Counter(self._pairs)

    def payloads(self) -> tuple[Any, ...]:
        """Return just the payloads, in canonical pair order."""
        return tuple(payload for _label, payload in self._pairs)


def ensure_hashable(payload: Any) -> Hashable:
    """Validate that ``payload`` is hashable, returning it unchanged.

    The engines require hashable broadcast payloads so that leader states
    can be compared as multisets.
    """
    hash(payload)
    return payload
