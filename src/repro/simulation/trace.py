"""Round-by-round traces of simulation executions.

Traces are the primary debugging and measurement artifact of the engine:
every round records the communication graph actually used, aggregate
message statistics, and (at the highest trace level) the full payload
delivered to every process.  Experiments use traces to measure flood
completion times and to check model properties post hoc.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

import networkx as nx

__all__ = ["TraceLevel", "RoundRecord", "SimulationTrace"]


class TraceLevel(enum.IntEnum):
    """How much detail a simulation trace records.

    * ``NONE`` -- record nothing (fastest; used by large sweeps).
    * ``TOPOLOGY`` -- record the per-round graphs and message counts.
    * ``FULL`` -- additionally record every delivered payload.
    """

    NONE = 0
    TOPOLOGY = 1
    FULL = 2


@dataclass
class RoundRecord:
    """Everything recorded about a single synchronous round."""

    round_no: int
    graph: nx.Graph | None = None
    messages_sent: int = 0
    messages_delivered: int = 0
    deliveries: dict[int, Any] | None = None

    def __repr__(self) -> str:
        edges = self.graph.number_of_edges() if self.graph is not None else "?"
        return (
            f"RoundRecord(round={self.round_no}, edges={edges}, "
            f"sent={self.messages_sent}, delivered={self.messages_delivered})"
        )


@dataclass
class SimulationTrace:
    """An ordered collection of :class:`RoundRecord` objects."""

    level: TraceLevel = TraceLevel.TOPOLOGY
    records: list[RoundRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def __getitem__(self, round_no: int) -> RoundRecord:
        return self.records[round_no]

    def __iter__(self):
        return iter(self.records)

    def append(self, record: RoundRecord) -> None:
        """Append a round record (engine-internal)."""
        self.records.append(record)

    @property
    def rounds(self) -> int:
        """Number of rounds recorded."""
        return len(self.records)

    @property
    def total_messages(self) -> int:
        """Total payload deliveries across all recorded rounds."""
        return sum(record.messages_delivered for record in self.records)

    def graphs(self) -> list[nx.Graph]:
        """Return the recorded per-round graphs (``TOPOLOGY`` level or above)."""
        return [record.graph for record in self.records if record.graph is not None]
