"""Counting-zoo oracles: ``count == n`` plus object-vs-fast drains.

The algorithm zoo (:mod:`repro.core.counting`) implements four
published anonymous counting upper bounds.  Their correctness contract
is unusually crisp -- a counting algorithm must output *exactly* the
network size, and Theorem 1 forbids it from doing so before round
``floor(log3(2n+1)) - 1`` -- which makes every generated network a
free oracle:

* **Correctness** -- every algorithm's outcome must report
  ``count == n`` and an output round at or above the Theorem 1
  horizon, on every generated family (``G(PD)_h``, T-interval,
  edge-markov).
* **Differential** -- the drain-based algorithms (Milani-Mosteiro,
  Chakraborty-Milani-Mosteiro) ship a vectorized fast backend; the
  object engine and the fast batch (including chunked streaming via
  ``max_lane_nodes``) must agree on the full
  :class:`~repro.core.counting.base.CountingOutcome` *and* on the
  ``engine.*`` observability counters, exactly like the backend suite.

The history-tree algorithms (Di Luna-Viglietta, Kowalski-Mosteiro) do
not vectorize, so they run correctness-only on the object engine.
"""

from __future__ import annotations

from repro.core.counting.base import CountingOutcome
from repro.core.counting.diluna_viglietta import count_diluna_viglietta
from repro.core.counting.drain import (
    count_chakraborty_mm,
    count_chakraborty_mm_batch,
    count_milani_mosteiro,
    count_milani_mosteiro_batch,
)
from repro.core.counting.kowalski_mosteiro import count_kowalski_mosteiro
from repro.core.lowerbound.bounds import theorem1_bound
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.verify.drivers import ENGINE_COUNTERS
from repro.verify.strategies import Case, build_network

__all__ = ["case_population", "check_counting_case"]

_DRAIN_SINGLE = {
    "milani-mosteiro": count_milani_mosteiro,
    "chakraborty-mm": count_chakraborty_mm,
}
_DRAIN_BATCH = {
    "milani-mosteiro": count_milani_mosteiro_batch,
    "chakraborty-mm": count_chakraborty_mm_batch,
}


def case_population(case: Case) -> int:
    """The true node count of a counting case's network."""
    params = case.params
    if "n" in params:
        return int(params["n"])
    # G(PD)_h networks are described by layer sizes plus the center.
    return 1 + sum(int(size) for size in params["layers"])


def _correctness(outcome: CountingOutcome, n: int, label: str) -> list[str]:
    violations: list[str] = []
    if outcome.count != n:
        violations.append(
            f"{label}: counted {outcome.count} on a {n}-node network"
        )
    horizon = theorem1_bound(n)
    if outcome.output_round < horizon:
        violations.append(
            f"{label}: output at round {outcome.output_round}, below "
            f"the Theorem 1 horizon {horizon} for n={n}"
        )
    return violations


def _lane_networks(case: Case) -> list:
    """One deterministic network per lane, all from the case seed."""
    return [
        build_network(
            Case(case.suite, case.kind, case.seed + lane, case.params)
        )
        for lane in range(int(case.params.get("lanes", 1)))
    ]


def _check_drain_case(case: Case, n: int) -> list[str]:
    legs: dict[str, list[CountingOutcome]] = {}
    counters: dict[str, dict[str, float]] = {}
    for backend in ("object", "fast"):
        # Fresh networks per leg (identical by construction) so neither
        # leg can leak state through the per-round graph cache.
        networks = _lane_networks(case)
        registry = MetricsRegistry()
        with use_registry(registry):
            if backend == "fast":
                legs[backend] = _DRAIN_BATCH[case.kind](
                    networks,
                    max_lane_nodes=case.params.get("max_lane_nodes"),
                )
            else:
                legs[backend] = [
                    _DRAIN_SINGLE[case.kind](network, backend="object")
                    for network in networks
                ]
        snapshot = registry.snapshot()["counters"]
        counters[backend] = {
            name: snapshot.get(name, 0) for name in ENGINE_COUNTERS
        }

    violations: list[str] = []
    for lane, outcome in enumerate(legs["object"]):
        violations.extend(
            _correctness(outcome, n, f"{case.kind}[lane {lane}]")
        )
    if legs["object"] != legs["fast"]:
        violations.append(
            f"{case.kind}: object backend returned {legs['object']!r} "
            f"but fast backend returned {legs['fast']!r}"
        )
    for name in ENGINE_COUNTERS:
        if counters["object"][name] != counters["fast"][name]:
            violations.append(
                f"{case.kind}: counter {name} = {counters['object'][name]} "
                f"(object) vs {counters['fast'][name]} (fast)"
            )
    return violations


def check_counting_case(case: Case) -> list[str]:
    """Run the counting-suite oracle on one generated case."""
    n = case_population(case)
    if case.kind == "diluna-viglietta":
        outcome = count_diluna_viglietta(build_network(case))
        return _correctness(outcome, n, case.kind)
    if case.kind == "kowalski-mosteiro":
        outcome = count_kowalski_mosteiro(
            build_network(case),
            supervisors=int(case.params.get("supervisors", 1)),
        )
        return _correctness(outcome, n, case.kind)
    return _check_drain_case(case, n)
