"""Seeded mutants: deliberate violations the harness must catch.

A verification harness that never fires is indistinguishable from one
that checks nothing, so :mod:`repro.verify` ships a self-test
(``repro verify --self-test``) that *arms a mutant* -- a deliberate,
deterministic corruption injected at a known oracle boundary -- and
asserts that the fuzz loop detects it, shrinks the failing case to the
global minimum, and emits a replayable fixture.

Mutants are inert unless armed through the :func:`armed` context
manager; production code never arms them.  Each mutant corrupts the
*data under test* (a kernel vector, a round graph) rather than the
oracle itself, so a detection proves the oracle actually inspects that
data.

Registered mutants:

* ``kernel-sign-flip`` -- negates the last component of every kernel
  vector ``k_r`` before the Lemma 2-4 identity checks run.  Breaks
  ``Σ k_r = 1``, the ``Σ⁻`` magnitude, the closed-form/recursion
  agreement, and ``M_r k_r = 0`` for every ``r``.
* ``model-self-loop`` -- adds the self-loop ``(0, 0)`` to every round
  graph handed to the model oracles.  Violates the "a process is never
  its own neighbour" rule for every generated dynamic graph.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

import networkx as nx
import numpy as np

__all__ = ["MUTANTS", "armed", "is_armed", "mutated_graph", "mutated_kernel"]

MUTANTS = ("kernel-sign-flip", "model-self-loop")
"""All registered mutant names (see module docstring)."""

_armed: set[str] = set()


def is_armed(name: str) -> bool:
    """Whether mutant ``name`` is currently armed."""
    return name in _armed


@contextmanager
def armed(name: str) -> Iterator[None]:
    """Arm mutant ``name`` for the duration of the ``with`` block."""
    if name not in MUTANTS:
        raise ValueError(
            f"unknown mutant {name!r}; registered mutants: {MUTANTS}"
        )
    _armed.add(name)
    try:
        yield
    finally:
        _armed.discard(name)


def mutated_kernel(kernel: np.ndarray) -> np.ndarray:
    """The kernel vector under test (corrupted iff the mutant is armed)."""
    if not is_armed("kernel-sign-flip"):
        return kernel
    corrupted = kernel.copy()
    corrupted[-1] = -corrupted[-1]
    return corrupted


def mutated_graph(graph: nx.Graph) -> nx.Graph:
    """The round graph under test (corrupted iff the mutant is armed)."""
    if not is_armed("model-self-loop"):
        return graph
    corrupted = graph.copy()
    corrupted.add_edge(0, 0)
    return corrupted
