"""The verification harness: fuzz, shrink, persist, self-test.

This module wires the three layers of :mod:`repro.verify` together:

1. :func:`run_verify` generates cases per suite
   (:mod:`~repro.verify.strategies`), runs the matching oracle or
   differential driver on each, and collects violations into a
   :class:`VerifyReport`.
2. Every failing case is **shrunk** to a locally minimal counterexample
   and written to the fixtures directory as a replayable JSON fixture
   (:func:`write_fixture` / :func:`replay_fixture`).
3. :func:`run_self_test` arms each registered mutant
   (:mod:`~repro.verify.mutation`), proving the harness detects an
   injected violation, shrinks it to the *global* minimum of the
   parameter lattice, and emits a fixture that reproduces the failure
   under the mutant and passes without it.

Observability: each suite runs inside a ``verify.suite`` span and the
harness maintains ``verify.cases`` / ``verify.violations`` /
``verify.shrink_steps`` counters on the current metrics registry.
"""

from __future__ import annotations

import contextlib
import json
import tempfile
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping, Sequence

from repro.obs.logger import get_logger
from repro.obs.metrics import counter
from repro.obs.spans import span
from repro.verify import mutation
from repro.verify.counting import check_counting_case
from repro.verify.drivers import check_backend_case, check_runtime_case
from repro.verify.oracles import check_kernel_case, check_model_case
from repro.verify.strategies import (
    SUITES,
    Case,
    generate_cases,
    shrink,
    shrink_candidates,
)

__all__ = [
    "SuiteReport",
    "VerifyReport",
    "Violation",
    "replay_fixture",
    "run_case",
    "run_self_test",
    "run_verify",
    "write_fixture",
]

_log = get_logger("verify")

CHECKERS: dict[str, Callable[[Case], list[str]]] = {
    "model": check_model_case,
    "kernel": check_kernel_case,
    "backend": check_backend_case,
    "runtime": check_runtime_case,
    "counting": check_counting_case,
}

#: The runtime suite runs every workload three full times (serial,
#: pooled, resumed), so it draws one case per this many fuzz units --
#: ``--fuzz 200`` means 200 cases for the cheap suites and 5 sweeps.
RUNTIME_CASE_DIVISOR = 40

#: Counting cases run whole algorithm executions (the drain kinds run
#: one per backend per lane), so the suite draws one case per this
#: many fuzz units -- ``--fuzz 50`` means 10 counting cases.
COUNTING_CASE_DIVISOR = 5


@dataclass
class Violation:
    """One failing case, after shrinking.

    Attributes:
        case: The original generated case that failed.
        shrunk: The locally minimal failing case (equals ``case`` when
            shrinking is disabled or no smaller case still fails).
        messages: Violation strings from the *shrunk* case.
        fixture: Path of the persisted regression fixture, if written.
    """

    case: Case
    shrunk: Case
    messages: list[str]
    fixture: Path | None = None


@dataclass
class SuiteReport:
    """Outcome of one suite's fuzz run."""

    suite: str
    cases: int = 0
    violations: list[Violation] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.violations


@dataclass
class VerifyReport:
    """Outcome of one full ``repro verify`` invocation."""

    seed: int
    fuzz: int
    suites: dict[str, SuiteReport] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return all(report.passed for report in self.suites.values())

    @property
    def total_cases(self) -> int:
        return sum(report.cases for report in self.suites.values())

    @property
    def total_violations(self) -> int:
        return sum(len(report.violations) for report in self.suites.values())

    def render(self) -> str:
        """Human-readable summary for the CLI."""
        lines = []
        for suite, report in self.suites.items():
            status = "PASS" if report.passed else "FAIL"
            lines.append(
                f"suite {suite}: {report.cases} cases, "
                f"{len(report.violations)} violations -- {status}"
            )
            for violation in report.violations:
                lines.append(f"  counterexample: {violation.shrunk.describe()}")
                lines.extend(f"    {msg}" for msg in violation.messages)
                if violation.fixture is not None:
                    lines.append(f"    fixture: {violation.fixture}")
        lines.append(
            f"verify: {self.total_cases} cases, "
            f"{self.total_violations} violations -- "
            f"{'PASS' if self.passed else 'FAIL'}"
        )
        return "\n".join(lines)


def run_case(case: Case) -> list[str]:
    """Run the suite's checker on one case; crashes become violations.

    An exception escaping a checker is itself a verification failure
    (the invariant "oracles can evaluate every generated case" broke),
    so it is reported as a violation string -- which also lets the
    shrinker minimise crashing cases.
    """
    checker = CHECKERS[case.suite]
    try:
        return checker(case)
    except Exception as error:  # noqa: BLE001 -- crash = reportable violation
        frame = traceback.extract_tb(error.__traceback__)[-1]
        return [
            f"checker crashed: {type(error).__name__}: {error} "
            f"(at {frame.filename}:{frame.lineno})"
        ]


def _suite_case_count(suite: str, fuzz: int) -> int:
    if suite == "runtime":
        return max(1, fuzz // RUNTIME_CASE_DIVISOR)
    if suite == "counting":
        return max(1, fuzz // COUNTING_CASE_DIVISOR)
    return fuzz


def _handle_failure(
    case: Case,
    messages: list[str],
    *,
    fixtures_dir: Path | None,
    do_shrink: bool,
) -> Violation:
    counter("verify.violations")
    shrunk = case
    if do_shrink:

        def fails(candidate: Case) -> bool:
            counter("verify.shrink_steps")
            return bool(run_case(candidate))

        shrunk = shrink(case, fails)
        if shrunk is not case:
            messages = run_case(shrunk) or messages
    violation = Violation(case=case, shrunk=shrunk, messages=messages)
    if fixtures_dir is not None:
        violation.fixture = write_fixture(fixtures_dir, shrunk, messages)
    _log.warning(
        "invariant violation in %s (shrunk to %s)",
        case.describe(),
        shrunk.describe(),
        extra={"messages": messages},
    )
    return violation


def run_verify(
    *,
    fuzz: int = 50,
    seed: int = 0,
    suites: Sequence[str] | None = None,
    fixtures_dir: str | Path | None = None,
    do_shrink: bool = True,
) -> VerifyReport:
    """Fuzz the selected suites and report every invariant violation.

    Args:
        fuzz: Cases per suite (the runtime suite draws ``fuzz // 40``,
            each case being three full sweeps -- documented, not silent).
        seed: Master seed; the full case list is a pure function of it.
        suites: Subset of :data:`~repro.verify.strategies.SUITES` to
            run (default: all, in canonical order).
        fixtures_dir: Where shrunk counterexamples are persisted as
            replayable JSON fixtures (``None`` disables persistence).
        do_shrink: Minimise failing cases before reporting.

    Returns:
        A :class:`VerifyReport`; ``report.passed`` is the exit status.
    """
    selected = list(suites) if suites else list(SUITES)
    for suite in selected:
        if suite not in SUITES:
            raise ValueError(
                f"unknown suite {suite!r}; expected one of {SUITES}"
            )
    fixtures = Path(fixtures_dir) if fixtures_dir is not None else None
    report = VerifyReport(seed=seed, fuzz=fuzz)
    for suite in selected:
        suite_report = SuiteReport(suite=suite)
        cases = generate_cases(suite, _suite_case_count(suite, fuzz), seed)
        with span("verify.suite", suite=suite, cases=len(cases)):
            for case in cases:
                counter("verify.cases")
                messages = run_case(case)
                suite_report.cases += 1
                if messages:
                    suite_report.violations.append(
                        _handle_failure(
                            case,
                            messages,
                            fixtures_dir=fixtures,
                            do_shrink=do_shrink,
                        )
                    )
        report.suites[suite] = suite_report
        _log.info(
            "suite finished",
            extra={
                "suite": suite,
                "cases": suite_report.cases,
                "violations": len(suite_report.violations),
            },
        )
    return report


# -- fixtures ---------------------------------------------------------


def write_fixture(
    fixtures_dir: str | Path, case: Case, messages: list[str]
) -> Path:
    """Persist a shrunk counterexample as a replayable JSON fixture."""
    fixtures = Path(fixtures_dir)
    fixtures.mkdir(parents=True, exist_ok=True)
    payload = {
        "format": "repro-verify-fixture-v1",
        "case": case.to_dict(),
        "violations": list(messages),
    }
    path = fixtures / f"{case.suite}-{case.kind}-{case.seed}.json"
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return path


def replay_fixture(path: str | Path) -> list[str]:
    """Re-run the case stored in a fixture; returns current violations.

    An empty list means the underlying bug is fixed (or was never
    reproducible in this tree); promote the fixture to a permanent
    regression test before deleting it.
    """
    payload = json.loads(Path(path).read_text())
    return run_case(Case.from_dict(payload["case"]))


# -- the seeded-mutant self-test --------------------------------------

#: Which suite each registered mutant corrupts.
_MUTANT_SUITES: Mapping[str, str] = {
    "kernel-sign-flip": "kernel",
    "model-self-loop": "model",
}

_SELF_TEST_FUZZ = 4


def run_self_test(
    *, seed: int = 0, fixtures_dir: str | Path | None = None
) -> list[str]:
    """Prove the harness catches, shrinks, and replays injected bugs.

    For every registered mutant: arm it, fuzz its suite, and check that
    (1) a violation is detected, (2) the shrinker reaches the global
    minimum of the parameter lattice (no smaller candidate exists),
    (3) the emitted fixture reproduces the violation while the mutant
    is armed, and (4) the same fixture passes clean once disarmed --
    i.e. the failure was the injected bug, not harness noise.

    Returns:
        Problems found with the harness itself (empty = self-test
        passed).
    """
    with contextlib.ExitStack() as stack:
        if fixtures_dir is None:
            fixtures_dir = stack.enter_context(
                tempfile.TemporaryDirectory(prefix="repro-verify-selftest-")
            )
        problems = _self_test_problems(seed, Path(fixtures_dir))
    if not problems:
        _log.info(
            "self-test passed", extra={"mutants": list(mutation.MUTANTS)}
        )
    return problems


def _self_test_problems(seed: int, fixtures_dir: Path) -> list[str]:
    problems: list[str] = []
    for mutant in mutation.MUTANTS:
        suite = _MUTANT_SUITES[mutant]
        with mutation.armed(mutant):
            sub_report = run_verify(
                fuzz=_SELF_TEST_FUZZ,
                seed=seed,
                suites=[suite],
                fixtures_dir=fixtures_dir,
                do_shrink=True,
            )
            violations = sub_report.suites[suite].violations
            if not violations:
                problems.append(
                    f"mutant {mutant}: armed but the {suite} suite "
                    f"reported no violation"
                )
                continue
            shrunk = violations[0].shrunk
            remaining = list(shrink_candidates(shrunk))
            if remaining:
                problems.append(
                    f"mutant {mutant}: shrunk case {shrunk.describe()} "
                    f"is not minimal ({len(remaining)} smaller "
                    f"candidates remain)"
                )
            fixture = violations[0].fixture
            if not replay_fixture(fixture):
                problems.append(
                    f"mutant {mutant}: fixture {fixture} does not "
                    f"reproduce the violation while armed"
                )
        clean = replay_fixture(fixture)
        if clean:
            problems.append(
                f"mutant {mutant}: fixture {fixture} still fails with "
                f"the mutant disarmed: {clean}"
            )
    return problems
