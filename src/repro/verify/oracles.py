"""Invariant oracles: model invariants and the paper's exact identities.

Each oracle takes a generated :class:`~repro.verify.strategies.Case`
and returns a list of human-readable violation strings (empty = the
case passes).  Oracles never raise on an invariant breach -- a breach
is data, not an error -- but they do surface unexpected exceptions as
violations so the shrinker can minimise crashing cases too (the harness
wraps every oracle call).

Two suites live here:

* **model** (:func:`check_model_case`) -- structural invariants every
  generated :class:`~repro.networks.DynamicGraph` must satisfy: the
  node set is ``{0..n-1}`` in every round, no round graph has a
  self-loop, every round is connected (1-interval connectivity), the
  ``to_csr`` lowering agrees entry-by-entry with the networkx
  adjacency matrix, and -- for CSR-native families, where ``to_csr``
  is built directly from edge arrays without touching networkx -- the
  native CSR view agrees with the networkx view built from the same
  arrays (the two independent code paths must coincide).
  Family-specific contracts ride along: ``G(PD)_h``
  instances keep persistent distances ``<= h``
  (:func:`~repro.networks.properties.verify_pd`) and ``T``-interval
  instances pass :func:`~repro.networks.properties.is_t_interval_connected`.
* **kernel** (:func:`check_kernel_case`) -- the paper's combinatorial
  identities (Lemmas 2-4 and Theorem 1): the closed-form and recursive
  kernels agree, ``Σ k_r = 1``, ``Σ⁻ k_r = (3^{r+1}-1)/2``,
  ``Σ⁺ k_r = (3^{r+1}+1)/2``, ``M_r k_r = 0`` exactly, per-history
  components match :func:`~repro.core.lowerbound.kernel.kernel_component`,
  and the measured ambiguity curve of the worst-case adversary is
  positive through ``⌊log₃(2n+1)⌋ - 1`` and pinned right after
  (counting is impossible before the Theorem 1 bound, possible at it).

Checks read the data under test through :mod:`repro.verify.mutation`
hooks, so the self-test can corrupt it and prove the oracles look.
"""

from __future__ import annotations

import itertools
import random

import networkx as nx
import numpy as np

from repro.adversaries.worst_case import (
    max_ambiguity_multigraph,
    measured_ambiguity_curve,
)
from repro.core.lowerbound.bounds import ambiguity_horizon, rounds_to_count
from repro.core.lowerbound.kernel import (
    closed_form_kernel,
    kernel_component,
    recursive_kernel,
    sum_negative,
    sum_positive,
)
from repro.core.lowerbound.matrices import build_matrix
from repro.core.states import all_histories
from repro.networks.csr import lower_graph
from repro.networks.properties import (
    is_t_interval_connected,
    verify_pd,
)
from repro.simulation.errors import ModelError
from repro.verify import mutation
from repro.verify.strategies import Case, build_network

__all__ = ["check_kernel_case", "check_model_case"]

#: Largest round for which the dense ``M_r`` is built to check
#: ``M_r k_r = 0`` (``3^{r+1}`` columns; beyond this the identity is
#: still covered indirectly via the recursion/closed-form agreement).
_DENSE_MATRIX_MAX_R = 3

#: Histories spot-checked against :func:`kernel_component` per case.
_COMPONENT_SAMPLES = 32


# -- model suite ------------------------------------------------------


def check_model_case(case: Case) -> list[str]:
    """Structural invariants of one generated dynamic graph."""
    violations: list[str] = []
    network = build_network(case)
    n = network.n
    expected_nodes = set(range(n))
    rounds = int(case.params.get("rounds", 1))

    for round_no in range(rounds):
        graph = mutation.mutated_graph(network.at(round_no))
        label = f"round {round_no}"
        nodes = set(graph.nodes)
        if nodes != expected_nodes:
            violations.append(
                f"{label}: node set is not {{0..{n - 1}}} "
                f"(unexpected {sorted(nodes - expected_nodes)}, "
                f"missing {sorted(expected_nodes - nodes)})"
            )
            continue
        loops = sorted(nx.nodes_with_selfloops(graph))
        if loops:
            violations.append(f"{label}: self-loops at nodes {loops}")
            continue
        if not nx.is_connected(graph):
            violations.append(
                f"{label}: disconnected (1-interval connectivity broken)"
            )
            continue
        violations.extend(_check_lowering(graph, n, label))
        violations.extend(_check_native_csr(network, round_no, graph, n, label))

    if violations:
        return violations
    violations.extend(_check_family_contract(case, network, rounds))
    return violations


def _check_lowering(graph: nx.Graph, n: int, label: str) -> list[str]:
    """``to_csr`` lowering must equal the networkx adjacency matrix."""
    violations: list[str] = []
    adjacency = lower_graph(graph, n=n)
    dense = adjacency.matrix.toarray()
    reference = nx.to_numpy_array(graph, nodelist=range(n))
    if not np.array_equal(dense, reference):
        rows, cols = np.nonzero(dense != reference)
        where = sorted(zip(rows.tolist(), cols.tolist()))[:5]
        violations.append(
            f"{label}: CSR lowering disagrees with networkx adjacency "
            f"at entries {where}"
        )
    if adjacency.connected != nx.is_connected(graph):
        violations.append(
            f"{label}: CSR connectivity flag {adjacency.connected} but "
            f"networkx says {nx.is_connected(graph)}"
        )
    expected_degrees = reference.sum(axis=1)
    if not np.array_equal(adjacency.degrees, expected_degrees):
        violations.append(f"{label}: CSR degree vector disagrees")
    return violations


def _check_native_csr(
    network, round_no: int, graph: nx.Graph, n: int, label: str
) -> list[str]:
    """``network.to_csr`` must equal the round's networkx view.

    For CSR-native families (:class:`~repro.networks.CSRDynamicGraph`)
    the CSR adjacency is built straight from the edge arrays while the
    graph handed in came through ``at()`` -- two independent lowerings
    of the same arrays; for plain providers ``to_csr`` goes through
    :func:`~repro.networks.csr.lower_graph` and the check still pins the
    cache path.  Only runs once the round graph itself passed the
    structural checks, so a mutated (corrupted) graph never reaches it.
    """
    violations: list[str] = []
    adjacency = network.to_csr(round_no)
    dense = adjacency.matrix.toarray()
    reference = nx.to_numpy_array(graph, nodelist=range(n))
    if not np.array_equal(dense, reference):
        rows, cols = np.nonzero(dense != reference)
        where = sorted(zip(rows.tolist(), cols.tolist()))[:5]
        violations.append(
            f"{label}: native CSR view disagrees with the networkx view "
            f"at entries {where}"
        )
    if adjacency.connected != nx.is_connected(graph):
        violations.append(
            f"{label}: native CSR connectivity flag {adjacency.connected} "
            f"but networkx says {nx.is_connected(graph)}"
        )
    if not np.array_equal(adjacency.degrees, reference.sum(axis=1)):
        violations.append(f"{label}: native CSR degree vector disagrees")
    return violations


def _check_family_contract(
    case: Case, network, rounds: int
) -> list[str]:
    """Contracts specific to the generated network family."""
    violations: list[str] = []
    if case.kind == "pd":
        h = len(case.params["layers"])
        try:
            distances = verify_pd(network, 0, h, rounds)
        except ModelError as error:
            violations.append(f"G(PD)_{h} contract violated: {error}")
        else:
            worst = max(distances.values())
            if worst > h:
                violations.append(
                    f"persistent distance {worst} exceeds h={h}"
                )
    elif case.kind == "t-interval":
        t = int(case.params["t"])
        if not is_t_interval_connected(network, t, rounds):
            violations.append(
                f"{t}-interval connectivity fails over {rounds} rounds"
            )
    return violations


# -- kernel suite -----------------------------------------------------


def check_kernel_case(case: Case) -> list[str]:
    """The paper's exact identities at one ``(r, n)`` draw."""
    violations: list[str] = []
    r = int(case.params["r"])
    n = int(case.params["n"])

    kernel = mutation.mutated_kernel(closed_form_kernel(r))
    reference = recursive_kernel(r)
    if not np.array_equal(kernel, reference):
        where = np.nonzero(kernel != reference)[0][:5].tolist()
        violations.append(
            f"closed-form and recursive k_{r} disagree at columns {where}"
        )
    total = int(kernel.sum())
    if total != 1:
        violations.append(f"Σ k_{r} = {total}, expected 1 (Lemma 4)")
    negative = int(-kernel[kernel < 0].sum())
    if negative != sum_negative(r):
        violations.append(
            f"Σ⁻ k_{r} = {negative}, expected (3^{r + 1}-1)/2 = "
            f"{sum_negative(r)} (Lemma 4)"
        )
    positive = int(kernel[kernel > 0].sum())
    if positive != sum_positive(r):
        violations.append(
            f"Σ⁺ k_{r} = {positive}, expected (3^{r + 1}+1)/2 = "
            f"{sum_positive(r)} (Lemma 4)"
        )
    violations.extend(_check_components(kernel, r, case.seed))
    if r <= _DENSE_MATRIX_MAX_R:
        product = build_matrix(r) @ kernel
        if np.any(product):
            violations.append(
                f"M_{r} k_{r} != 0 (max residual {np.abs(product).max()})"
            )
    violations.extend(_check_theorem1(n))
    return violations


def _check_components(
    kernel: np.ndarray, r: int, seed: int
) -> list[str]:
    """Spot-check sampled components against the Lemma 3 closed form."""
    histories = list(itertools.islice(all_histories(2, r + 1), len(kernel)))
    rng = random.Random(f"verify:components:{seed}")
    count = min(_COMPONENT_SAMPLES, len(histories))
    for column in rng.sample(range(len(histories)), count):
        expected = kernel_component(histories[column])
        if int(kernel[column]) != expected:
            return [
                f"k_{r}[{column}] = {int(kernel[column])} but "
                f"kernel_component says {expected} (Lemma 3)"
            ]
    return []


def _check_theorem1(n: int) -> list[str]:
    """Counting impossible through the horizon, possible right after."""
    violations: list[str] = []
    horizon = ambiguity_horizon(n)
    widths = measured_ambiguity_curve(max_ambiguity_multigraph(n))
    ambiguous = widths[: horizon + 1]
    if not all(width > 0 for width in ambiguous):
        violations.append(
            f"n={n}: leader can pin the size at a round <= the "
            f"Theorem 1 horizon {horizon} (widths {widths})"
        )
    if len(widths) <= horizon + 1 or widths[horizon + 1] != 0:
        violations.append(
            f"n={n}: size not pinned at round {horizon + 1}, one past "
            f"the horizon (widths {widths})"
        )
    if len(widths) != rounds_to_count(n):
        violations.append(
            f"n={n}: ambiguity curve has length {len(widths)}, expected "
            f"rounds_to_count = {rounds_to_count(n)}"
        )
    return violations
