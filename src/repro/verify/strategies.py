"""Generative strategies: seeded random cases and the shrinker.

A *case* (:class:`Case`) is a fully self-describing, JSON-clean record
of one generated scenario: which suite it belongs to, which kind of
object it exercises (a dynamic-network family, a kernel round, a
protocol, a sweep workload), the parameters, and the seed every random
draw derives from.  Because a case is pure data, any failure is
replayable: persist the case, load it later, re-run the same property.

Three pieces live here:

* **Generators** -- :func:`generate_cases` draws ``count`` cases for a
  suite from a master seed.  Case ``i`` of suite ``s`` under seed ``S``
  is a pure function of ``(S, s, i)``, so two runs with the same seed
  fuzz the identical case list.
* **Builders** -- :func:`build_network` turns a network-shaped case into
  a live :class:`~repro.networks.DynamicGraph` (the oracles and
  differential drivers run on the built object).
* **The shrinker** -- :func:`shrink_candidates` proposes strictly
  smaller neighbours of a case (fewer nodes, fewer rounds, fewer edge
  changes, shorter workloads); :func:`shrink` walks greedily to a case
  that still fails but whose every neighbour passes -- a locally minimal
  counterexample, which the harness emits as a regression fixture.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping

import networkx as nx
import numpy as np

from repro.networks.csr_native import CSRDynamicGraph, precompile_schedule
from repro.networks.dynamic_graph import DynamicGraph
from repro.networks.generators import (
    edge_markov_network,
    random_pd_network,
    t_interval_network,
)
from repro.networks.generators.random_dynamic import (
    random_connected_edges,
    random_connected_graph,
)

__all__ = [
    "COUNTING_KINDS",
    "Case",
    "MODEL_KINDS",
    "SUITES",
    "build_network",
    "generate_cases",
    "shrink",
    "shrink_candidates",
]

SUITES = ("model", "kernel", "backend", "runtime", "counting")
"""The five verification suites (see :mod:`repro.verify.harness`)."""

MODEL_KINDS = (
    "pd",
    "t-interval",
    "markov",
    "arbitrary",
    "precompiled",
    "explicit-hold",
    "explicit-cycle",
)
"""Dynamic-network families the model suite draws from."""

_BACKEND_FAMILIES = ("arbitrary", "markov", "t-interval", "precompiled")
_BACKEND_PROTOCOLS = ("flood", "token-ids", "dissemination")

COUNTING_KINDS = (
    "diluna-viglietta",
    "kowalski-mosteiro",
    "milani-mosteiro",
    "chakraborty-mm",
)
"""The algorithm zoo the counting suite fuzzes (``count == n``)."""

_COUNTING_FAMILIES = ("pd", "t-interval", "markov")

#: Cheap experiments the runtime suite composes into sweep workloads,
#: with per-experiment parameter draws (kept tiny: every workload runs
#: three times -- serial, parallel, resumed).
_RUNTIME_POOL: tuple[tuple[str, Callable[[random.Random], dict]], ...] = (
    ("fig1-pd2-example", lambda rng: {"rounds": rng.randint(3, 6)}),
    ("fig2-transformation", lambda rng: {}),
    ("fig3-indistinguishable-r0", lambda rng: {}),
    ("fig4-indistinguishable-r1", lambda rng: {}),
    (
        "tab-star-pd1",
        lambda rng: {"sizes": [rng.randint(2, 4), rng.randint(5, 9)]},
    ),
)


@dataclass(frozen=True)
class Case:
    """One generated verification scenario (pure, JSON-clean data).

    Attributes:
        suite: Owning suite (one of :data:`SUITES`).
        kind: Scenario family within the suite (e.g. ``"pd"``,
            ``"kernel-identities"``, ``"flood"``).
        seed: Seed every random draw inside the case derives from.
        params: JSON-clean parameters (sizes, rounds, probabilities).
    """

    suite: str
    kind: str
    seed: int
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", dict(self.params))

    def with_params(self, **updates: Any) -> "Case":
        """A copy of this case with some parameters replaced."""
        params = dict(self.params)
        params.update(updates)
        return Case(self.suite, self.kind, self.seed, params)

    def describe(self) -> str:
        """One-line human-readable description."""
        inner = ", ".join(
            f"{key}={value!r}" for key, value in sorted(self.params.items())
        )
        return f"{self.suite}/{self.kind}(seed={self.seed}, {inner})"

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form (the fixture wire format)."""
        return {
            "suite": self.suite,
            "kind": self.kind,
            "seed": self.seed,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Case":
        """Inverse of :meth:`to_dict` (tolerates extra fixture keys)."""
        return cls(
            suite=payload["suite"],
            kind=payload["kind"],
            seed=int(payload["seed"]),
            params=dict(payload.get("params", {})),
        )


# -- generators -------------------------------------------------------


def _case_rng(master_seed: int, suite: str, index: int) -> random.Random:
    # random.Random only seeds on scalars; fold the triple into a string
    # (the same trick RetryPolicy.delay_s uses) so each case gets an
    # independent, reproducible stream.
    return random.Random(f"verify:{master_seed}:{suite}:{index}")


def _model_case(rng: random.Random) -> Case:
    kind = rng.choice(MODEL_KINDS)
    seed = rng.randrange(2**31)
    rounds = rng.randint(1, 8)
    if kind == "pd":
        layers = [rng.randint(1, 4) for _ in range(rng.randint(1, 3))]
        params = {
            "layers": layers,
            "rounds": rounds,
            "extra_edge_p": rng.choice([0.0, 0.2, 0.5]),
            "intra_layer_p": rng.choice([0.0, 0.3]),
        }
    elif kind == "t-interval":
        t = rng.randint(1, 4)
        params = {
            "n": rng.randint(2, 12),
            "t": t,
            "rounds": max(rounds, t),
            "extra_edge_p": rng.choice([0.0, 0.15, 0.4]),
        }
    elif kind == "markov":
        params = {
            "n": rng.randint(2, 10),
            "rounds": rounds,
            "p_up": rng.choice([0.0, 0.05, 0.3]),
            "p_down": rng.choice([0.0, 0.3, 0.8]),
            "initial_p": rng.choice([0.0, 0.2, 0.6]),
        }
    elif kind == "arbitrary":
        params = {
            "n": rng.randint(1, 12),
            "rounds": rounds,
            "extra_edge_p": rng.choice([0.0, 0.1, 0.5]),
        }
    elif kind == "precompiled":
        params = {
            "n": rng.randint(1, 10),
            "prefix": rng.randint(1, 4),
            "rounds": rounds,
            "extend": rng.choice(["hold", "cycle"]),
            "extra_edge_p": rng.choice([0.0, 0.2]),
        }
    else:  # explicit-hold / explicit-cycle
        params = {
            "n": rng.randint(1, 8),
            "prefix": rng.randint(1, 4),
            "rounds": rounds,
            "extra_edge_p": rng.choice([0.0, 0.2]),
        }
    return Case("model", kind, seed, params)


def _kernel_case(rng: random.Random) -> Case:
    return Case(
        "kernel",
        "kernel-identities",
        rng.randrange(2**31),
        {"r": rng.randint(0, 5), "n": rng.randint(1, 40)},
    )


def _backend_case(rng: random.Random) -> Case:
    protocol = rng.choice(_BACKEND_PROTOCOLS)
    # Fuzzing the streaming chunk budget makes every backend case a
    # free chunked-vs-monolithic differential oracle: a tiny budget
    # forces multi-chunk execution, which must match the object engine
    # (and hence the unchunked fast path) exactly.
    budget = rng.randint(1, 12)
    return Case(
        "backend",
        protocol,
        rng.randrange(2**31),
        {
            "family": rng.choice(_BACKEND_FAMILIES),
            "n": rng.randint(2, 10),
            "lanes": rng.randint(1, 3),
            "max_lane_nodes": rng.choice([None, budget]),
        },
    )


def _runtime_case(rng: random.Random) -> Case:
    chosen = rng.sample(_RUNTIME_POOL, rng.randint(2, 3))
    workload = [[name, draw(rng)] for name, draw in chosen]
    return Case(
        "runtime",
        "sweep-equivalence",
        rng.randrange(2**31),
        {"workload": workload},
    )


def _counting_case(rng: random.Random) -> Case:
    kind = rng.choice(COUNTING_KINDS)
    family = rng.choice(_COUNTING_FAMILIES)
    params: dict[str, Any] = {"family": family}
    if family == "pd":
        # n = 1 + sum(layers), so every pd draw has n >= 2.
        params["layers"] = [
            rng.randint(1, 3) for _ in range(rng.randint(1, 2))
        ]
    else:
        params["n"] = rng.randint(2, 8)
    if kind == "kowalski-mosteiro":
        params["supervisors"] = rng.randint(1, 2)
    if kind in ("milani-mosteiro", "chakraborty-mm"):
        # The drain algorithms have a vectorized backend: fuzz the lane
        # count and the streaming chunk budget so every case doubles as
        # an object-vs-fast (and chunked-vs-monolithic) differential.
        params["lanes"] = rng.randint(1, 2)
        params["max_lane_nodes"] = rng.choice([None, rng.randint(1, 4)])
    return Case("counting", kind, rng.randrange(2**31), params)


_GENERATORS: dict[str, Callable[[random.Random], Case]] = {
    "model": _model_case,
    "kernel": _kernel_case,
    "backend": _backend_case,
    "runtime": _runtime_case,
    "counting": _counting_case,
}


def generate_cases(suite: str, count: int, master_seed: int) -> list[Case]:
    """Draw ``count`` cases for ``suite`` from ``master_seed``.

    Case ``i`` is a pure function of ``(master_seed, suite, i)``:
    re-running with the same seed reproduces the identical case list
    regardless of how many cases other suites drew.
    """
    if suite not in SUITES:
        raise ValueError(f"unknown suite {suite!r}; expected one of {SUITES}")
    generator = _GENERATORS[suite]
    return [
        generator(_case_rng(master_seed, suite, index))
        for index in range(count)
    ]


# -- builders ---------------------------------------------------------


def _arbitrary_network(
    n: int, seed: int, extra_edge_p: float
) -> CSRDynamicGraph:
    """A CSR-native memoryless random family keyed by ``(seed, round)``."""

    def provider(round_no: int) -> tuple[np.ndarray, np.ndarray]:
        rng = np.random.default_rng([seed, round_no])
        return random_connected_edges(n, rng, extra_edge_p=extra_edge_p)

    return CSRDynamicGraph(
        n, provider, name=f"verify-arbitrary(n={n}, seed={seed})"
    )


def _explicit_prefix(
    n: int, prefix: int, seed: int, extra_edge_p: float
) -> list[nx.Graph]:
    return [
        random_connected_graph(
            n,
            np.random.default_rng([seed, index]),
            extra_edge_p=extra_edge_p,
        )
        for index in range(prefix)
    ]


def build_network(case: Case) -> DynamicGraph:
    """Materialise a network-shaped case as a :class:`DynamicGraph`.

    Accepts model-suite cases and backend-suite cases (whose ``family``
    parameter names one of the model kinds).
    """
    params = dict(case.params)
    kind = params.pop("family", case.kind)
    seed = case.seed
    if kind == "pd":
        network, _layers = random_pd_network(
            list(params["layers"]),
            seed=seed,
            extra_edge_p=params.get("extra_edge_p", 0.0),
            intra_layer_p=params.get("intra_layer_p", 0.0),
        )
        return network
    if kind == "t-interval":
        return t_interval_network(
            params["n"],
            params.get("t", 1 + seed % 3),
            seed=seed,
            extra_edge_p=params.get("extra_edge_p", 0.15),
        )
    if kind == "markov":
        return edge_markov_network(
            params["n"],
            seed=seed,
            p_up=params.get("p_up", 0.05),
            p_down=params.get("p_down", 0.3),
            initial_p=params.get("initial_p", 0.2),
        )
    if kind == "arbitrary":
        return _arbitrary_network(
            params["n"], seed, params.get("extra_edge_p", 0.1)
        )
    if kind == "precompiled":
        source = _arbitrary_network(
            params["n"], seed, params.get("extra_edge_p", 0.1)
        )
        return precompile_schedule(
            source,
            params.get("prefix", 2),
            extend=params.get("extend", "hold"),
            name=f"verify-precompiled(n={params['n']}, seed={seed})",
        )
    if kind in ("explicit-hold", "explicit-cycle"):
        graphs = _explicit_prefix(
            params["n"],
            params.get("prefix", 2),
            seed,
            params.get("extra_edge_p", 0.0),
        )
        return DynamicGraph.from_graphs(
            graphs,
            extend="hold" if kind == "explicit-hold" else "cycle",
            name=f"verify-{kind}(n={params['n']}, seed={seed})",
        )
    raise ValueError(f"cannot build a network for case kind {kind!r}")


# -- the shrinker -----------------------------------------------------

#: Lower bounds for integer parameters, by name.  Kind-specific bounds
#: (``(kind, name)`` keys) override the generic ``(None, name)`` ones.
_INT_MINS: dict[tuple[str | None, str], int] = {
    (None, "rounds"): 1,
    (None, "n"): 1,
    ("t-interval", "n"): 2,
    ("markov", "n"): 2,
    # Counting cases may carry any family in params, including the
    # two-node-minimum markov family, so n never shrinks below 2.
    ("diluna-viglietta", "n"): 2,
    ("kowalski-mosteiro", "n"): 2,
    ("milani-mosteiro", "n"): 2,
    ("chakraborty-mm", "n"): 2,
    (None, "t"): 1,
    (None, "prefix"): 1,
    (None, "r"): 0,
    (None, "lanes"): 1,
    (None, "max_lane_nodes"): 1,
    (None, "supervisors"): 1,
}


def _int_min(kind: str, name: str) -> int | None:
    if (kind, name) in _INT_MINS:
        return _INT_MINS[(kind, name)]
    return _INT_MINS.get((None, name))


def _clamp(case: Case) -> Case:
    """Re-establish cross-parameter invariants after a shrink step."""
    params = case.params
    if case.kind == "t-interval" and params.get("rounds", 1) < params.get(
        "t", 1
    ):
        # A T-interval window needs at least T rounds to be checkable.
        return case.with_params(rounds=params["t"])
    if case.kind == "kowalski-mosteiro" and "supervisors" in params:
        # Supervisors are node indices, so there can be at most n.
        n = params.get("n", 1 + sum(params.get("layers", [])))
        if params["supervisors"] > n:
            return case.with_params(supervisors=n)
    return case


def shrink_candidates(case: Case) -> Iterator[Case]:
    """Strictly smaller neighbours of ``case``, most aggressive first.

    Integer parameters step toward their lower bound (jump to the
    bound, halve the distance, decrement); float probabilities drop to
    0; integer lists (layer sizes, star sizes) lose their last element
    and decrement entries; workloads lose their last experiment.  A
    case whose every parameter sits at its bound yields nothing -- the
    fixed point the greedy :func:`shrink` loop terminates on.
    """
    emitted: set[str] = set()

    def emit(candidate: Case) -> Iterator[Case]:
        candidate = _clamp(candidate)
        key = json.dumps(candidate.params, sort_keys=True)
        if candidate.params != case.params and key not in emitted:
            emitted.add(key)
            yield candidate

    for name, value in sorted(case.params.items()):
        if isinstance(value, bool):
            continue
        if isinstance(value, int):
            lo = _int_min(case.kind, name)
            if lo is None or value <= lo:
                continue
            for target in (lo, lo + (value - lo) // 2, value - 1):
                if lo <= target < value:
                    yield from emit(case.with_params(**{name: target}))
        elif isinstance(value, float):
            if value > 0.0:
                yield from emit(case.with_params(**{name: 0.0}))
        elif isinstance(value, list) and value:
            if name == "workload":
                if len(value) > 1:
                    yield from emit(case.with_params(workload=value[:-1]))
                continue
            if len(value) > 1:
                yield from emit(case.with_params(**{name: value[:-1]}))
            if all(isinstance(item, int) for item in value):
                for index, item in enumerate(value):
                    if item > 1:
                        smaller = list(value)
                        smaller[index] = item - 1
                        yield from emit(case.with_params(**{name: smaller}))


def shrink(
    case: Case,
    fails: Callable[[Case], bool],
    *,
    max_attempts: int = 500,
) -> Case:
    """Greedily minimise a failing case while it keeps failing.

    Args:
        case: A case for which ``fails(case)`` is true.
        fails: The property under test (true = still a counterexample).
        max_attempts: Budget of candidate evaluations (a safety net; the
            parameter lattice is shallow, so real shrinks finish in tens
            of steps).

    Returns:
        A locally minimal failing case: every candidate produced by
        :func:`shrink_candidates` for it passes (or the budget ran out).
    """
    attempts = 0
    progressed = True
    while progressed and attempts < max_attempts:
        progressed = False
        for candidate in shrink_candidates(case):
            attempts += 1
            if fails(candidate):
                case = candidate
                progressed = True
                break
            if attempts >= max_attempts:
                break
    return case
