"""Property-based differential verification for the whole repro stack.

The paper's results are exact combinatorial identities, which makes
them unusually strong machine-checkable oracles; this package fuzzes
the implementation against them (and against itself) instead of
relying only on hand-picked examples.  Three layers:

* :mod:`repro.verify.strategies` -- seeded generators for dynamic
  graphs, kernel rounds, protocol runs, and sweep workloads, plus the
  shrinker that minimises failing cases.
* :mod:`repro.verify.oracles` -- invariant oracles: model invariants
  (static node set, no self-loops, 1-interval connectivity, CSR
  lowering ≡ networkx adjacency, ``G(PD)_h`` / ``T``-interval
  contracts) and the paper's Lemma 2-4 / Theorem 1 identities.
* :mod:`repro.verify.drivers` -- differential drivers: object engine
  vs fast backend (outputs, rounds, ``engine.*`` counters) and serial
  vs pooled vs resumed sweeps.
* :mod:`repro.verify.counting` -- the algorithm-zoo oracle: every
  counting algorithm must output ``count == n`` at or above the
  Theorem 1 horizon, and the vectorized drains must match the object
  engine exactly.

:mod:`repro.verify.harness` orchestrates them (``repro verify`` on the
command line), and :mod:`repro.verify.mutation` holds the seeded
mutants behind the ``--self-test`` proof that the harness detects
injected violations.  See ``docs/VERIFICATION.md``.
"""

from repro.verify import mutation
from repro.verify.harness import (
    SuiteReport,
    VerifyReport,
    Violation,
    replay_fixture,
    run_case,
    run_self_test,
    run_verify,
    write_fixture,
)
from repro.verify.strategies import (
    COUNTING_KINDS,
    SUITES,
    Case,
    generate_cases,
    shrink,
    shrink_candidates,
)

__all__ = [
    "COUNTING_KINDS",
    "SUITES",
    "Case",
    "SuiteReport",
    "VerifyReport",
    "Violation",
    "generate_cases",
    "mutation",
    "replay_fixture",
    "run_case",
    "run_self_test",
    "run_verify",
    "shrink",
    "shrink_candidates",
    "write_fixture",
]
