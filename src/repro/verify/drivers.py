"""Differential drivers: two implementations, one answer.

Where the oracles in :mod:`repro.verify.oracles` check a single
implementation against closed-form truth, the drivers here run *two
independent execution paths* on the same generated input and demand
byte-identical answers:

* **backend** (:func:`check_backend_case`) -- the object engine
  (:class:`~repro.simulation.engine.SynchronousEngine`, the semantics
  oracle) versus the vectorized fast backend
  (:mod:`repro.simulation.fast`) on the same dynamic graphs, for each
  of the three protocol entry points (flooding, counting with IDs,
  token dissemination).  Outputs, round counts *and* the ``engine.*``
  observability counters (runs, rounds, graphs, messages sent and
  delivered) must agree -- the counters are part of the backend
  contract, not a best-effort extra.
* **runtime** (:func:`check_runtime_case`) -- the sweep runtime run
  three ways over a generated workload: serially in-process, in a
  worker pool with cache + journal, and resumed from that journal.
  All three must produce equal results (modulo runtime bookkeeping
  notes), the resume leg must satisfy every task from the journal, and
  the merged ``engine.*`` counters of the serial and pooled legs must
  match.

Both drivers return violation strings (empty = pass), like the oracles.
"""

from __future__ import annotations

import random
import tempfile
from pathlib import Path
from typing import Any

from repro.analysis.registry import ExperimentRequest, ExperimentResult
from repro.analysis.runtime import Journal, ResultCache, run_sweep
from repro.core.counting.flooding import (
    flood_time_via_protocol,
    flood_times_batch,
)
from repro.core.counting.token_ids import count_with_ids, count_with_ids_batch
from repro.core.dissemination import (
    disseminate_by_flooding,
    disseminate_by_flooding_batch,
)
from repro.networks.dynamic_graph import DynamicGraph
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.verify.strategies import Case, build_network

__all__ = ["check_backend_case", "check_runtime_case"]

#: The observability counters both backends must report identically.
ENGINE_COUNTERS = (
    "engine.runs",
    "engine.rounds",
    "engine.graphs",
    "engine.messages_sent",
    "engine.messages_delivered",
)

#: Notes that record *how* a result was produced rather than *what* it
#: is; stripped before cross-leg result comparison.
_BOOKKEEPING_PREFIXES = ("timing:", "cache:", "runtime:")


# -- backend suite ----------------------------------------------------


def _lane_networks(case: Case) -> list[DynamicGraph]:
    """One deterministic network per lane, all from the case seed."""
    return [
        build_network(
            Case(case.suite, case.kind, case.seed + lane, case.params)
        )
        for lane in range(int(case.params.get("lanes", 1)))
    ]


def _run_flood(networks, case, backend: str):
    n = int(case.params["n"])
    source = case.seed % n
    budget = 4 * n + 8
    if backend == "fast":
        return flood_times_batch(
            [(network, source) for network in networks],
            max_rounds=budget,
            max_lane_nodes=case.params.get("max_lane_nodes"),
        )
    return [
        flood_time_via_protocol(
            network, source, max_rounds=budget, backend="object"
        )
        for network in networks
    ]


def _run_token_ids(networks, case, backend: str):
    horizon = int(case.params["n"])
    if backend == "fast":
        outcomes = count_with_ids_batch(
            [(network, horizon) for network in networks],
            max_lane_nodes=case.params.get("max_lane_nodes"),
        )
    else:
        outcomes = [
            count_with_ids(network, horizon, backend="object")
            for network in networks
        ]
    return [
        (outcome.count, outcome.output_round, outcome.rounds)
        for outcome in outcomes
    ]


def _run_dissemination(networks, case, backend: str):
    n = int(case.params["n"])
    rng = random.Random(f"verify:tokens:{case.seed}")
    holders = rng.sample(range(n), rng.randint(1, n))
    assignment = {node: rng.randint(0, 3) for node in holders}
    budget = 4 * n + 8
    if backend == "fast":
        results = disseminate_by_flooding_batch(
            [(network, assignment) for network in networks],
            max_rounds=budget,
            max_lane_nodes=case.params.get("max_lane_nodes"),
        )
    else:
        results = [
            disseminate_by_flooding(
                network, assignment, max_rounds=budget, backend="object"
            )
            for network in networks
        ]
    return [
        (result.rounds, result.tokens, result.messages)
        for result in results
    ]


_PROTOCOL_RUNNERS = {
    "flood": _run_flood,
    "token-ids": _run_token_ids,
    "dissemination": _run_dissemination,
}


def check_backend_case(case: Case) -> list[str]:
    """Object engine vs fast backend on one generated protocol run."""
    runner = _PROTOCOL_RUNNERS[case.kind]
    legs: dict[str, Any] = {}
    counters: dict[str, dict[str, float]] = {}
    for backend in ("object", "fast"):
        # Fresh networks per leg: identical by construction (seeded
        # providers), but never shared, so neither leg can leak state
        # to the other through the per-round graph cache.
        networks = _lane_networks(case)
        registry = MetricsRegistry()
        with use_registry(registry):
            legs[backend] = runner(networks, case, backend)
        snapshot = registry.snapshot()["counters"]
        counters[backend] = {
            name: snapshot.get(name, 0) for name in ENGINE_COUNTERS
        }

    violations: list[str] = []
    if legs["object"] != legs["fast"]:
        violations.append(
            f"{case.kind}: object backend returned {legs['object']!r} "
            f"but fast backend returned {legs['fast']!r}"
        )
    for name in ENGINE_COUNTERS:
        if counters["object"][name] != counters["fast"][name]:
            violations.append(
                f"{case.kind}: counter {name} = {counters['object'][name]} "
                f"(object) vs {counters['fast'][name]} (fast)"
            )
    return violations


# -- runtime suite ----------------------------------------------------


def _requests(case: Case) -> list[ExperimentRequest]:
    return [
        ExperimentRequest(experiment=name, params=dict(params))
        for name, params in case.params["workload"]
    ]


def _comparable(result: ExperimentResult) -> dict[str, Any]:
    payload = result.to_dict()
    payload["notes"] = [
        note
        for note in payload["notes"]
        if not note.startswith(_BOOKKEEPING_PREFIXES)
    ]
    return payload


def check_runtime_case(case: Case) -> list[str]:
    """Serial vs pooled vs resumed sweeps over a generated workload."""
    violations: list[str] = []
    workload_size = len(case.params["workload"])

    serial_registry = MetricsRegistry()
    with use_registry(serial_registry):
        serial = run_sweep(_requests(case), jobs=1)

    with tempfile.TemporaryDirectory(prefix="repro-verify-") as tmp:
        cache = ResultCache(Path(tmp) / "cache")
        journal = Journal(Path(tmp) / "journal.jsonl")
        pool_registry = MetricsRegistry()
        with use_registry(pool_registry):
            pooled = run_sweep(
                _requests(case), jobs=2, cache=cache, journal=journal
            )
        resumed = run_sweep(
            _requests(case),
            jobs=2,
            cache=cache,
            journal=journal,
            resume=True,
        )

    for label, outcome in (("pooled", pooled), ("resumed", resumed)):
        for serial_result, other in zip(serial.results, outcome.results):
            if _comparable(serial_result) != _comparable(other):
                violations.append(
                    f"{serial_result.experiment}: serial and {label} "
                    f"sweeps disagree"
                )
    if resumed.skipped != workload_size:
        violations.append(
            f"resume replayed {resumed.skipped}/{workload_size} tasks "
            f"from the journal (expected all of them)"
        )
    serial_counters = serial_registry.snapshot()["counters"]
    pool_counters = pool_registry.snapshot()["counters"]
    for name in ENGINE_COUNTERS:
        if serial_counters.get(name, 0) != pool_counters.get(name, 0):
            violations.append(
                f"counter {name} = {serial_counters.get(name, 0)} "
                f"(serial) vs {pool_counters.get(name, 0)} (pool of 2)"
            )
    return violations
