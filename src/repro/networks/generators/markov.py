"""Edge-Markov dynamic graphs (Clementi et al. style fair adversary).

A standard model of gradually evolving networks: every potential edge
is an independent two-state Markov chain -- an absent edge appears with
probability ``p_up`` per round, a present edge disappears with
probability ``p_down`` -- patched with a connectivity repair step
(random inter-component edges) so 1-interval connectivity holds, as the
paper's model requires.  Unlike the memoryless
:class:`repro.networks.generators.random_dynamic.RandomConnectedAdversary`,
consecutive rounds are correlated, which is the regime where gossip
baselines are usually studied.

CSR-native: the chain state is one boolean vector over the ``n(n-1)/2``
node pairs, advanced with vectorized draws and stored bit-packed
(``np.packbits``: one byte per eight pairs per round), and rounds are
served as ``(u, v)`` edge arrays.  Repair edges join the chain state, so
-- as before -- a repaired edge persists with probability ``1 - p_down``.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import connected_components

from repro.networks.csr import graph_from_edges
from repro.networks.csr_native import CSRDynamicGraph

__all__ = ["EdgeMarkovDynamicGraph", "edge_markov_network"]


class EdgeMarkovDynamicGraph:
    """Lazy, seeded edge-Markov evolution over ``{0..n-1}``.

    Rounds are built sequentially and cached as bit-packed pair-state
    vectors, so access through the :class:`repro.networks.DynamicGraph`
    wrapper is deterministic and repeatable for a given seed.
    """

    def __init__(
        self,
        n: int,
        *,
        p_up: float = 0.05,
        p_down: float = 0.3,
        initial_p: float = 0.2,
        seed: int = 0,
    ) -> None:
        if n < 2:
            raise ValueError("need at least two nodes")
        for name, value in (
            ("p_up", p_up),
            ("p_down", p_down),
            ("initial_p", initial_p),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        self.n = n
        self.p_up = p_up
        self.p_down = p_down
        self.initial_p = initial_p
        self.seed = seed
        pair_u, pair_v = np.triu_indices(n, 1)
        self._pair_u = pair_u.astype(np.int64)
        self._pair_v = pair_v.astype(np.int64)
        self._states: list[np.ndarray] = []  # packbits per round

    def _pair_index(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        # Row-major triu position of pair (u, v) with u < v.
        n = np.int64(self.n)
        return u * n - u * (u + 1) // 2 + (v - u - 1)

    def _repair_connectivity(
        self, present: np.ndarray, rng: np.random.Generator
    ) -> None:
        """Chain-connect the components with random edges (in place)."""
        n = self.n
        u, v = self._pair_u[present], self._pair_v[present]
        adjacency = sp.coo_array(
            (np.ones(u.size, dtype=np.int8), (u, v)), shape=(n, n)
        )
        count, labels = connected_components(
            adjacency, directed=False, return_labels=True
        )
        if count <= 1:
            return
        # One random representative per component (first hit in a random
        # node order), components chained in random order: count-1 new
        # edges, connectivity guaranteed.
        order = rng.permutation(n)
        _, first_positions = np.unique(labels[order], return_index=True)
        representatives = order[first_positions]
        chain = representatives[rng.permutation(count)]
        a = np.minimum(chain[:-1], chain[1:])
        b = np.maximum(chain[:-1], chain[1:])
        present[self._pair_index(a, b)] = True

    def _build_round(self, round_no: int) -> np.ndarray:
        rng = np.random.default_rng([self.seed, round_no])
        m = self._pair_u.size
        if round_no == 0:
            present = rng.random(m) < self.initial_p
        else:
            previous = (
                np.unpackbits(self._states[round_no - 1], count=m)
                .astype(bool)
            )
            draws = rng.random(m)
            present = np.where(
                previous, draws >= self.p_down, draws < self.p_up
            )
        self._repair_connectivity(present, rng)
        return np.packbits(present)

    def _present(self, round_no: int) -> np.ndarray:
        while len(self._states) <= round_no:
            self._states.append(self._build_round(len(self._states)))
        return (
            np.unpackbits(self._states[round_no], count=self._pair_u.size)
            .astype(bool)
        )

    def edges(self, round_no: int) -> tuple[np.ndarray, np.ndarray]:
        """The round's ``(u, v)`` edge arrays (chain advanced on demand)."""
        present = self._present(round_no)
        return self._pair_u[present], self._pair_v[present]

    def at(self, round_no: int) -> nx.Graph:
        """The round's graph as ``networkx``."""
        return graph_from_edges(self.n, *self.edges(round_no))


def edge_markov_network(
    n: int,
    *,
    p_up: float = 0.05,
    p_down: float = 0.3,
    initial_p: float = 0.2,
    seed: int = 0,
) -> CSRDynamicGraph:
    """An edge-Markov dynamic graph as a CSR-native :class:`DynamicGraph`."""
    chain = EdgeMarkovDynamicGraph(
        n, p_up=p_up, p_down=p_down, initial_p=initial_p, seed=seed
    )
    return CSRDynamicGraph(
        n, chain.edges, name=f"edge-markov(n={n}, seed={seed})"
    )
