"""Edge-Markov dynamic graphs (Clementi et al. style fair adversary).

A standard model of gradually evolving networks: every potential edge
is an independent two-state Markov chain -- an absent edge appears with
probability ``p_up`` per round, a present edge disappears with
probability ``p_down`` -- patched with a connectivity repair step
(random inter-component edges) so 1-interval connectivity holds, as the
paper's model requires.  Unlike the memoryless
:class:`repro.networks.generators.random_dynamic.RandomConnectedAdversary`,
consecutive rounds are correlated, which is the regime where gossip
baselines are usually studied.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.networks.dynamic_graph import DynamicGraph

__all__ = ["EdgeMarkovDynamicGraph", "edge_markov_network"]


class EdgeMarkovDynamicGraph:
    """Lazy, seeded edge-Markov evolution over ``{0..n-1}``.

    Rounds are built sequentially and cached, so access through the
    :class:`repro.networks.DynamicGraph` wrapper is deterministic and
    repeatable for a given seed.
    """

    def __init__(
        self,
        n: int,
        *,
        p_up: float = 0.05,
        p_down: float = 0.3,
        initial_p: float = 0.2,
        seed: int = 0,
    ) -> None:
        if n < 2:
            raise ValueError("need at least two nodes")
        for name, value in (
            ("p_up", p_up),
            ("p_down", p_down),
            ("initial_p", initial_p),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        self.n = n
        self.p_up = p_up
        self.p_down = p_down
        self.initial_p = initial_p
        self.seed = seed
        self._rounds: list[nx.Graph] = []

    def _pairs(self):
        for u in range(self.n):
            for v in range(u + 1, self.n):
                yield u, v

    def _repair_connectivity(self, graph: nx.Graph, rng) -> None:
        components = [sorted(c) for c in nx.connected_components(graph)]
        while len(components) > 1:
            a = components.pop(int(rng.integers(len(components))))
            b = components[int(rng.integers(len(components)))]
            graph.add_edge(
                a[int(rng.integers(len(a)))], b[int(rng.integers(len(b)))]
            )
            components = [sorted(c) for c in nx.connected_components(graph)]

    def _build_round(self, round_no: int) -> nx.Graph:
        rng = np.random.default_rng([self.seed, round_no])
        graph = nx.Graph()
        graph.add_nodes_from(range(self.n))
        if round_no == 0:
            for u, v in self._pairs():
                if rng.random() < self.initial_p:
                    graph.add_edge(u, v)
        else:
            previous = self._rounds[round_no - 1]
            for u, v in self._pairs():
                if previous.has_edge(u, v):
                    if rng.random() >= self.p_down:
                        graph.add_edge(u, v)
                elif rng.random() < self.p_up:
                    graph.add_edge(u, v)
        self._repair_connectivity(graph, rng)
        return graph

    def at(self, round_no: int) -> nx.Graph:
        while len(self._rounds) <= round_no:
            self._rounds.append(self._build_round(len(self._rounds)))
        return self._rounds[round_no]


def edge_markov_network(
    n: int,
    *,
    p_up: float = 0.05,
    p_down: float = 0.3,
    initial_p: float = 0.2,
    seed: int = 0,
) -> DynamicGraph:
    """An edge-Markov dynamic graph as a :class:`DynamicGraph`."""
    chain = EdgeMarkovDynamicGraph(
        n, p_up=p_up, p_down=p_down, initial_p=initial_p, seed=seed
    )
    return DynamicGraph(
        n, chain.at, name=f"edge-markov(n={n}, seed={seed})"
    )
