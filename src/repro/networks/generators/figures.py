"""Concrete instances of the paper's worked figures.

* **Figure 1** shows a ``G(PD)_2`` graph along three rounds with dynamic
  diameter ``D = 4`` in which a flood started by an outer node ``v_0`` at
  round 0 reaches the outer node ``v_3`` at round 3.
* **Figure 2** shows an ``M(DBL)_3`` round in which a node ``v`` is
  connected to the leader by edges labeled ``{1, 2, 3}``, together with
  its Lemma 1 transformation.

The figures in the paper are drawings; the builders here return concrete
executable instances with exactly the stated properties, which the test
suite and ``benchmarks/bench_figures.py`` verify mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.networks.dynamic_graph import DynamicGraph
from repro.networks.multigraph import DynamicMultigraph
from repro.networks.transform import PD2Layout, mdbl_to_pd2

__all__ = ["Figure1", "paper_figure1", "paper_figure2_multigraph"]


@dataclass(frozen=True)
class Figure1:
    """The Figure 1 instance and the names used in the paper's text.

    Attributes:
        graph: The periodic dynamic graph (period 3: rounds 0, 1, 2 as
            drawn, then cycling).
        layout: Node layout of the underlying ``G(PD)_2`` structure.
        v0: The outer node whose flood the text follows.
        v3: The outer node reached at round 3.
    """

    graph: DynamicGraph
    layout: PD2Layout
    v0: int
    v3: int


def paper_figure1() -> Figure1:
    """Build a ``G(PD)_2`` instance realising Figure 1.

    The instance has a leader, two middle nodes (persistent distance 1)
    and three outer nodes (persistent distance 2).  Outer node ``v_0``
    stays attached to the first middle node, ``v_3`` to the second, and a
    third outer node switches sides every round -- the topology changes
    each round yet all distances are persistent.  The resulting dynamic
    diameter is 4 (= ``2h`` for ``h = 2``) and a flood from ``v_0``
    started at round 0 reaches ``v_3`` exactly at round 3:

    * round 0 -- ``v_0`` informs its middle node ``m_1``;
    * round 1 -- ``m_1`` informs the leader;
    * round 2 -- the leader informs the other middle node ``m_2``;
    * round 3 -- ``m_2`` informs ``v_3``.
    """
    # Schedules over the period of 3 rounds: v0 on label 1, the switcher
    # alternates 1 -> 2 -> 1, v3 on label 2.
    one, two = frozenset({1}), frozenset({2})
    schedules = [
        [one, one, one],  # v0
        [one, two, one],  # the switching node
        [two, two, two],  # v3
    ]
    mdbl = DynamicMultigraph(2, schedules, extend="hold", name="figure1-core")
    pd2_graph, layout = mdbl_to_pd2(mdbl, name="figure1")
    periodic = DynamicGraph.from_graphs(
        [pd2_graph.at(round_no) for round_no in range(3)],
        extend="cycle",
        name="figure1",
    )
    return Figure1(
        graph=periodic,
        layout=layout,
        v0=layout.outer[0],
        v3=layout.outer[2],
    )


def paper_figure2_multigraph() -> DynamicMultigraph:
    """Build an ``M(DBL)_3`` round matching Figure 2.

    The figure shows a leader connected to four nodes of ``W``; the
    highlighted node ``v`` (index 3 here) has edge label set
    ``{1, 2, 3}`` -- the maximal example of parallel labeled edges.  The
    companion transformation (Figure 2's right half) is obtained by
    passing the result to :func:`repro.networks.transform.mdbl_to_pd2`.
    """
    schedules = [
        [frozenset({1})],
        [frozenset({2})],
        [frozenset({2, 3})],
        [frozenset({1, 2, 3})],  # the node v of the figure
    ]
    return DynamicMultigraph(3, schedules, name="figure2")
