"""The Corollary 1 gadget: a static chain feeding a ``G(PD)_2`` core.

Corollary 1 lifts the ``G(PD)_2`` lower bound to any constant dynamic
diameter ``D``: the leader ``v_l`` is connected "to two nodes
``v_1, v_2`` by a static chain"; ``v_1, v_2`` then play the role of the
middle layer of a ``G(PD)_2`` network over the remaining nodes.  Any
counting algorithm first pays the chain's dissemination cost and then
still faces the anonymity ambiguity of the core, giving
``D + Ω(log |V|)`` rounds in total.

The construction here takes an ``M(DBL)_2`` instance (typically a
worst-case schedule from :mod:`repro.adversaries.worst_case`) as the
specification of the core's dynamics and prepends a static chain of a
chosen length.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.networks.dynamic_graph import DynamicGraph
from repro.networks.multigraph import DynamicMultigraph
from repro.simulation.errors import ModelError

__all__ = ["ChainPD2Layout", "chain_pd2_network"]


@dataclass(frozen=True)
class ChainPD2Layout:
    """Node-index layout of a chain + ``G(PD)_2``-core network.

    Attributes:
        leader: The leader node, index 0.
        chain: The static chain nodes, ordered from the leader outward.
        hubs: The two nodes ``(v_1, v_2)`` acting as the core's middle
            layer; both are adjacent to the last chain node (or to the
            leader when the chain is empty).
        outer: The anonymous core nodes, one per multigraph ``W`` node.
    """

    leader: int
    chain: tuple[int, ...]
    hubs: tuple[int, int]
    outer: tuple[int, ...]

    @property
    def n(self) -> int:
        """Total node count."""
        return 1 + len(self.chain) + len(self.hubs) + len(self.outer)

    def hub_for_label(self, label: int) -> int:
        """The hub node standing in for multigraph edge label ``label``."""
        if label not in (1, 2):
            raise ValueError("the core is an M(DBL)_2: labels are 1 and 2")
        return self.hubs[label - 1]


def chain_pd2_network(
    multigraph: DynamicMultigraph,
    chain_length: int,
    *,
    name: str | None = None,
) -> tuple[DynamicGraph, ChainPD2Layout]:
    """Build the Corollary 1 network from a core schedule.

    Args:
        multigraph: An ``M(DBL)_2`` instance; its label schedule drives
            the dynamic edges between the hubs and the outer nodes.
        chain_length: Number of static chain nodes between the leader and
            the hubs.  ``chain_length = 0`` degenerates to the plain
            Lemma 1 transformation (hubs adjacent to the leader).

    Returns:
        ``(graph, layout)``.  The distance from the leader to every outer
        node is ``chain_length + 2`` at every round, so the network's
        dynamic diameter grows linearly with ``chain_length`` while the
        core's ambiguity structure is untouched.
    """
    if multigraph.k != 2:
        raise ModelError("the Corollary 1 core must be an M(DBL)_2 instance")
    if chain_length < 0:
        raise ValueError("chain_length must be non-negative")

    chain = tuple(range(1, 1 + chain_length))
    hub_base = 1 + chain_length
    hubs = (hub_base, hub_base + 1)
    outer = tuple(range(hub_base + 2, hub_base + 2 + multigraph.n))
    layout = ChainPD2Layout(leader=0, chain=chain, hubs=hubs, outer=outer)

    static_edges: list[tuple[int, int]] = []
    anchor = 0
    for link in chain:
        static_edges.append((anchor, link))
        anchor = link
    static_edges.append((anchor, hubs[0]))
    static_edges.append((anchor, hubs[1]))

    def provider(round_no: int) -> nx.Graph:
        graph = nx.Graph()
        graph.add_nodes_from(range(layout.n))
        graph.add_edges_from(static_edges)
        for w, node in enumerate(outer):
            for label in multigraph.labels(w, round_no):
                graph.add_edge(layout.hub_for_label(label), node)
        return graph

    label = (
        name
        if name is not None
        else f"chain{chain_length}+pd2({multigraph.name})"
    )
    return DynamicGraph(layout.n, provider, name=label), layout
