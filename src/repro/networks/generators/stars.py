"""Star networks -- the ``G(PD)_1`` family.

A graph in ``G(PD)_1`` has every non-leader node at persistent distance
1 from the leader, which forces the star with the leader at the centre
at every round: the adversary "cannot change any of such graphs without
compromising the connectivity of the graph itself" (Section 1).  The
leader counts a star in a single round regardless of anonymity, which is
the paper's baseline observation before moving to ``G(PD)_2``.
"""

from __future__ import annotations

import networkx as nx

from repro.networks.dynamic_graph import DynamicGraph

__all__ = ["star_network"]


def star_network(n: int, *, leader: int = 0) -> DynamicGraph:
    """The ``G(PD)_1`` star on ``n`` nodes with the leader at the centre.

    Args:
        n: Total number of nodes (leader included); must be at least 2.
        leader: Index of the centre node.

    Returns:
        A :class:`DynamicGraph` that is the same star at every round.
    """
    if n < 2:
        raise ValueError("a star needs at least 2 nodes")
    if not 0 <= leader < n:
        raise ValueError(f"leader index {leader} out of range for n={n}")
    star = nx.Graph()
    star.add_nodes_from(range(n))
    star.add_edges_from((leader, node) for node in range(n) if node != leader)
    return DynamicGraph(n, lambda round_no: star, name=f"star({n})")
