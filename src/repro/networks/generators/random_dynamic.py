"""Fair (non-worst-case) dynamic network adversaries.

The paper contrasts the worst-case adversary with a *fair* one that
"creates or removes edges ... following a strategy that does not aim to
violate the correctness of the distributed algorithm (e.g., random
strategy)" -- the typical behaviour of peer-to-peer overlays.  These
generators produce 1-interval-connected random dynamics used by the
baseline experiments (gossip size estimation, ID-based counting).
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.networks.dynamic_graph import DynamicGraph

__all__ = ["random_connected_graph", "RandomConnectedAdversary"]


def random_connected_graph(
    n: int, rng: np.random.Generator, *, extra_edge_p: float = 0.1
) -> nx.Graph:
    """Sample a connected graph: a uniform random tree plus noise edges.

    The tree guarantees connectivity (1-interval connectivity must hold
    round by round); every non-tree pair is added independently with
    probability ``extra_edge_p``.
    """
    if n < 1:
        raise ValueError("need at least one node")
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    if n == 1:
        return graph
    # Uniform random labeled tree via a random attachment permutation:
    # attach each node (in random order) to a uniformly chosen earlier one.
    order = rng.permutation(n)
    for position in range(1, n):
        parent = order[int(rng.integers(position))]
        graph.add_edge(int(order[position]), int(parent))
    if extra_edge_p > 0.0:
        for u in range(n):
            for v in range(u + 1, n):
                if not graph.has_edge(u, v) and rng.random() < extra_edge_p:
                    graph.add_edge(u, v)
    return graph


class RandomConnectedAdversary:
    """A fair adversary producing a fresh random connected graph per round.

    Usable both as an engine topology provider and as a
    :class:`repro.networks.DynamicGraph` factory (:meth:`as_dynamic_graph`).
    Rounds are keyed by ``(seed, round)`` so executions are reproducible.
    """

    def __init__(self, n: int, *, seed: int = 0, extra_edge_p: float = 0.1) -> None:
        if n < 1:
            raise ValueError("need at least one node")
        if not 0.0 <= extra_edge_p <= 1.0:
            raise ValueError("extra_edge_p must be in [0, 1]")
        self.n = n
        self.seed = seed
        self.extra_edge_p = extra_edge_p

    def graph(self, round_no: int, processes: object = None) -> nx.Graph:
        """Topology-provider interface: the round's random graph."""
        rng = np.random.default_rng([self.seed, round_no])
        return random_connected_graph(
            self.n, rng, extra_edge_p=self.extra_edge_p
        )

    def as_dynamic_graph(self) -> DynamicGraph:
        """Wrap this adversary as a cached :class:`DynamicGraph`."""
        return DynamicGraph(
            self.n,
            lambda round_no: self.graph(round_no),
            name=f"random-connected(n={self.n}, seed={self.seed})",
        )
