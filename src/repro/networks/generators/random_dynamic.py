"""Fair (non-worst-case) dynamic network adversaries.

The paper contrasts the worst-case adversary with a *fair* one that
"creates or removes edges ... following a strategy that does not aim to
violate the correctness of the distributed algorithm (e.g., random
strategy)" -- the typical behaviour of peer-to-peer overlays.  These
generators produce 1-interval-connected random dynamics used by the
baseline experiments (gossip size estimation, ID-based counting).

The family is CSR-native: rounds are sampled as ``(u, v)`` edge index
arrays with vectorized NumPy draws, and both the ``networkx`` view (the
object engine's oracle) and the CSR adjacency (the fast backend's hot
path) are derived from the same arrays.  A fresh graph per round
therefore costs O(n) array work on the fast path instead of a Python
tree-building loop plus a networkx -> CSR lowering.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.networks.csr import CSRAdjacency, graph_from_edges
from repro.networks.csr_native import CSRDynamicGraph

__all__ = [
    "RandomConnectedAdversary",
    "bernoulli_pair_edges",
    "random_connected_edges",
    "random_connected_graph",
    "random_tree_edges",
]

#: Cached ``np.triu_indices`` per node count -- the all-pairs index
#: template used by vectorized Bernoulli edge sampling.  Bounded: only
#: the sizes actually swept are materialised, and entries are O(n^2)
#: ints, the same asymptotics the per-pair Python loops had.
_PAIR_TEMPLATES: dict[int, tuple[np.ndarray, np.ndarray]] = {}
_PAIR_TEMPLATE_LIMIT = 8


def _all_pairs(n: int) -> tuple[np.ndarray, np.ndarray]:
    cached = _PAIR_TEMPLATES.get(n)
    if cached is None:
        if len(_PAIR_TEMPLATES) >= _PAIR_TEMPLATE_LIMIT:
            _PAIR_TEMPLATES.pop(next(iter(_PAIR_TEMPLATES)))
        cached = np.triu_indices(n, 1)
        cached = (cached[0].astype(np.int64), cached[1].astype(np.int64))
        _PAIR_TEMPLATES[n] = cached
    return cached


def random_tree_edges(
    n: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Sample a uniform random labeled tree as edge arrays (vectorized).

    The attachment construction: nodes join in a random order, each
    attaching to a uniformly chosen earlier node -- the same family the
    object-path sampler always used, drawn with two vectorized calls
    instead of ``n`` Python-level ones.
    """
    if n < 1:
        raise ValueError("need at least one node")
    if n == 1:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    order = rng.permutation(n).astype(np.int64)
    positions = np.arange(1, n, dtype=np.int64)
    # floor(uniform[0,1) * position) is uniform over {0..position-1}.
    parents = np.floor(rng.random(n - 1) * positions).astype(np.int64)
    return order[positions], order[parents]


def bernoulli_pair_edges(
    n: int, rng: np.random.Generator, p: float
) -> tuple[np.ndarray, np.ndarray]:
    """Each of the ``n(n-1)/2`` node pairs independently with prob ``p``."""
    empty = np.empty(0, dtype=np.int64)
    if p <= 0.0 or n < 2:
        return empty, empty
    u, v = _all_pairs(n)
    mask = rng.random(u.size) < p
    return u[mask], v[mask]


def random_connected_edges(
    n: int, rng: np.random.Generator, *, extra_edge_p: float = 0.1
) -> tuple[np.ndarray, np.ndarray]:
    """Sample a connected graph as edge arrays: a tree plus noise pairs.

    The tree guarantees connectivity (1-interval connectivity must hold
    round by round); every pair is additionally present independently
    with probability ``extra_edge_p`` (duplicates against tree edges
    collapse at adjacency construction, so the resulting simple graph
    has the same distribution as the historical has-edge-checking loop).
    """
    if n < 1:
        raise ValueError("need at least one node")
    tree_u, tree_v = random_tree_edges(n, rng)
    extra_u, extra_v = bernoulli_pair_edges(n, rng, extra_edge_p)
    if extra_u.size == 0:
        return tree_u, tree_v
    return (
        np.concatenate([tree_u, extra_u]),
        np.concatenate([tree_v, extra_v]),
    )


def random_connected_graph(
    n: int, rng: np.random.Generator, *, extra_edge_p: float = 0.1
) -> nx.Graph:
    """Sample a connected graph: a uniform random tree plus noise edges.

    The ``networkx`` view of :func:`random_connected_edges` -- same
    sampler, object representation.
    """
    return graph_from_edges(
        n, *random_connected_edges(n, rng, extra_edge_p=extra_edge_p)
    )


class RandomConnectedAdversary:
    """A fair adversary producing a fresh random connected graph per round.

    Usable as an engine topology provider (``graph``), as a CSR-native
    fast-backend provider (``edges``/``to_csr``), and as a
    :class:`repro.networks.DynamicGraph` factory (:meth:`as_dynamic_graph`).
    Rounds are keyed by ``(seed, round)`` so executions are reproducible
    and both backends see the identical graph sequence.
    """

    def __init__(self, n: int, *, seed: int = 0, extra_edge_p: float = 0.1) -> None:
        if n < 1:
            raise ValueError("need at least one node")
        if not 0.0 <= extra_edge_p <= 1.0:
            raise ValueError("extra_edge_p must be in [0, 1]")
        self.n = n
        self.seed = seed
        self.extra_edge_p = extra_edge_p
        self._native: CSRDynamicGraph | None = None

    def edges(self, round_no: int) -> tuple[np.ndarray, np.ndarray]:
        """The round's edge arrays (pure function of ``(seed, round)``)."""
        rng = np.random.default_rng([self.seed, round_no])
        return random_connected_edges(
            self.n, rng, extra_edge_p=self.extra_edge_p
        )

    def graph(self, round_no: int, processes: object = None) -> nx.Graph:
        """Topology-provider interface: the round's random graph."""
        return graph_from_edges(self.n, *self.edges(round_no))

    def to_csr(self, round_no: int) -> CSRAdjacency:
        """CSR-native provider interface for the fast backend."""
        return self.as_dynamic_graph().to_csr(round_no)

    def as_dynamic_graph(self) -> CSRDynamicGraph:
        """This adversary as a cached CSR-native dynamic graph.

        Repeated calls return one shared instance so the bounded
        per-round caches are shared across every consumer of this
        adversary object.
        """
        if self._native is None:
            self._native = CSRDynamicGraph(
                self.n,
                self.edges,
                name=f"random-connected(n={self.n}, seed={self.seed})",
            )
        return self._native
