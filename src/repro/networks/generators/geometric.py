"""Random-waypoint geometric dynamic graphs (mobile sensor flavour).

The introduction motivates dynamic networks with "the capillary
distribution of mobile devices and growing impact of sensors networks";
this generator provides that flavour of dynamics concretely: nodes move
in the unit square by a random-waypoint walk, two nodes are linked when
within the connection radius, and connectivity is repaired with the
minimum number of shortcut edges (nearest components first) so the
model's 1-interval connectivity holds.

Positions evolve sequentially (lazy and cached like
:class:`repro.networks.generators.markov.EdgeMarkovDynamicGraph`), so a
seed pins an entire trajectory.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.networks.dynamic_graph import DynamicGraph

__all__ = ["RandomWaypointDynamicGraph", "random_waypoint_network"]


class RandomWaypointDynamicGraph:
    """Lazy random-waypoint mobility with disc connectivity."""

    def __init__(
        self,
        n: int,
        *,
        radius: float = 0.35,
        step: float = 0.1,
        seed: int = 0,
    ) -> None:
        if n < 2:
            raise ValueError("need at least two nodes")
        if radius <= 0 or step < 0:
            raise ValueError("radius must be positive and step non-negative")
        self.n = n
        self.radius = radius
        self.step = step
        self.seed = seed
        self._positions: list[np.ndarray] = []
        self._rounds: list[nx.Graph] = []

    def positions(self, round_no: int) -> np.ndarray:
        """Node positions at a round (n x 2 array, lazily advanced)."""
        while len(self._positions) <= round_no:
            self._advance()
        return self._positions[round_no]

    def _advance(self) -> None:
        round_no = len(self._positions)
        rng = np.random.default_rng([self.seed, round_no])
        if round_no == 0:
            current = rng.random((self.n, 2))
        else:
            angles = rng.random(self.n) * 2 * np.pi
            lengths = rng.random(self.n) * self.step
            delta = np.stack(
                [np.cos(angles) * lengths, np.sin(angles) * lengths], axis=1
            )
            current = np.clip(self._positions[-1] + delta, 0.0, 1.0)
        self._positions.append(current)

    def at(self, round_no: int) -> nx.Graph:
        while len(self._rounds) <= round_no:
            index = len(self._rounds)
            self._rounds.append(self._build(index))
        return self._rounds[round_no]

    def _build(self, round_no: int) -> nx.Graph:
        points = self.positions(round_no)
        graph = nx.Graph()
        graph.add_nodes_from(range(self.n))
        deltas = points[:, None, :] - points[None, :, :]
        distances = np.sqrt((deltas**2).sum(axis=2))
        for u in range(self.n):
            for v in range(u + 1, self.n):
                if distances[u, v] <= self.radius:
                    graph.add_edge(u, v)
        self._repair(graph, distances)
        return graph

    @staticmethod
    def _repair(graph: nx.Graph, distances: np.ndarray) -> None:
        """Join components along their closest node pairs."""
        while True:
            components = [sorted(c) for c in nx.connected_components(graph)]
            if len(components) == 1:
                return
            base = components[0]
            best = None
            for other in components[1:]:
                for u in base:
                    for v in other:
                        candidate = distances[u, v]
                        if best is None or candidate < best[0]:
                            best = (candidate, u, v)
            graph.add_edge(best[1], best[2])


def random_waypoint_network(
    n: int,
    *,
    radius: float = 0.35,
    step: float = 0.1,
    seed: int = 0,
) -> DynamicGraph:
    """A random-waypoint geometric dynamic graph as a :class:`DynamicGraph`."""
    walk = RandomWaypointDynamicGraph(
        n, radius=radius, step=step, seed=seed
    )
    return DynamicGraph(
        n, walk.at, name=f"waypoint(n={n}, r={radius}, seed={seed})"
    )
