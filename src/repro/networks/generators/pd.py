"""Random layered ``G(PD)_h`` dynamic networks.

A ``G(PD)_h`` graph partitions nodes into layers ``V_0 = {leader},
V_1, ..., V_h`` by persistent distance (Section 3).  Distances stay
persistent across arbitrary rewiring as long as

* every edge joins nodes in the same layer or in adjacent layers, and
* every node in layer ``i >= 1`` keeps at least one edge into layer
  ``i - 1``.

The generator below rewires the graph randomly every round under exactly
those constraints, which makes it a *fair* adversary over the ``G(PD)_h``
family.  Rounds are sampled from a per-round seed derived from the
master seed, so the produced dynamic graph is a pure function of
``(seed, round)`` and runs are reproducible.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.networks.dynamic_graph import DynamicGraph

__all__ = ["random_pd_network"]


def random_pd_network(
    layer_sizes: list[int],
    *,
    seed: int = 0,
    extra_edge_p: float = 0.2,
    intra_layer_p: float = 0.0,
    name: str | None = None,
) -> tuple[DynamicGraph, list[list[int]]]:
    """Generate a random ``G(PD)_h`` dynamic graph.

    Args:
        layer_sizes: Sizes of layers ``V_1..V_h`` (``h = len(layer_sizes)``);
            every entry must be positive.  ``V_0`` is the leader, node 0.
        seed: Master seed; each round is an independent sample keyed by
            ``(seed, round)``.
        extra_edge_p: Probability of each optional extra edge between
            adjacent layers (beyond the mandatory one per node).
        intra_layer_p: Probability of each optional intra-layer edge.
            The paper's *restricted* model (Discussion, Section 4.2)
            corresponds to ``intra_layer_p = 0``.
        name: Optional description.

    Returns:
        ``(graph, layers)`` where ``layers[i]`` lists the node indices of
        ``V_i`` (``layers[0] == [0]``).
    """
    if not layer_sizes:
        raise ValueError("need at least one layer")
    if any(size < 1 for size in layer_sizes):
        raise ValueError("every layer must have at least one node")
    if not 0.0 <= extra_edge_p <= 1.0 or not 0.0 <= intra_layer_p <= 1.0:
        raise ValueError("probabilities must be in [0, 1]")

    layers: list[list[int]] = [[0]]
    next_index = 1
    for size in layer_sizes:
        layers.append(list(range(next_index, next_index + size)))
        next_index += size
    n = next_index

    def provider(round_no: int) -> nx.Graph:
        rng = np.random.default_rng([seed, round_no])
        graph = nx.Graph()
        graph.add_nodes_from(range(n))
        for depth in range(1, len(layers)):
            above = layers[depth - 1]
            current = layers[depth]
            for node in current:
                # Mandatory edge keeping the persistent distance exact.
                graph.add_edge(node, above[int(rng.integers(len(above)))])
            if extra_edge_p > 0.0:
                for node in current:
                    for parent in above:
                        if rng.random() < extra_edge_p:
                            graph.add_edge(node, parent)
            if intra_layer_p > 0.0:
                for i, node in enumerate(current):
                    for other in current[i + 1 :]:
                        if rng.random() < intra_layer_p:
                            graph.add_edge(node, other)
        return graph

    label = name if name is not None else f"pd{len(layer_sizes)}({layer_sizes})"
    return DynamicGraph(n, provider, name=label), layers
