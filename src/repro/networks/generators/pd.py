"""Random layered ``G(PD)_h`` dynamic networks.

A ``G(PD)_h`` graph partitions nodes into layers ``V_0 = {leader},
V_1, ..., V_h`` by persistent distance (Section 3).  Distances stay
persistent across arbitrary rewiring as long as

* every edge joins nodes in the same layer or in adjacent layers, and
* every node in layer ``i >= 1`` keeps at least one edge into layer
  ``i - 1``.

The generator below rewires the graph randomly every round under exactly
those constraints, which makes it a *fair* adversary over the ``G(PD)_h``
family.  Rounds are sampled from a per-round seed derived from the
master seed, so the produced dynamic graph is a pure function of
``(seed, round)`` and runs are reproducible.  Rounds are emitted
CSR-natively as ``(u, v)`` edge arrays: mandatory parent edges are one
vectorized draw per layer, optional inter/intra-layer extras one
Bernoulli mask over the precomputed pair template.
"""

from __future__ import annotations

import numpy as np

from repro.networks.csr_native import CSRDynamicGraph

__all__ = ["random_pd_network"]


def random_pd_network(
    layer_sizes: list[int],
    *,
    seed: int = 0,
    extra_edge_p: float = 0.2,
    intra_layer_p: float = 0.0,
    name: str | None = None,
) -> tuple[CSRDynamicGraph, list[list[int]]]:
    """Generate a random ``G(PD)_h`` dynamic graph (CSR-native).

    Args:
        layer_sizes: Sizes of layers ``V_1..V_h`` (``h = len(layer_sizes)``);
            every entry must be positive.  ``V_0`` is the leader, node 0.
        seed: Master seed; each round is an independent sample keyed by
            ``(seed, round)``.
        extra_edge_p: Probability of each optional extra edge between
            adjacent layers (beyond the mandatory one per node).
        intra_layer_p: Probability of each optional intra-layer edge.
            The paper's *restricted* model (Discussion, Section 4.2)
            corresponds to ``intra_layer_p = 0``.
        name: Optional description.

    Returns:
        ``(graph, layers)`` where ``layers[i]`` lists the node indices of
        ``V_i`` (``layers[0] == [0]``).
    """
    if not layer_sizes:
        raise ValueError("need at least one layer")
    if any(size < 1 for size in layer_sizes):
        raise ValueError("every layer must have at least one node")
    if not 0.0 <= extra_edge_p <= 1.0 or not 0.0 <= intra_layer_p <= 1.0:
        raise ValueError("probabilities must be in [0, 1]")

    layers: list[list[int]] = [[0]]
    next_index = 1
    for size in layer_sizes:
        layers.append(list(range(next_index, next_index + size)))
        next_index += size
    n = next_index

    layer_arrays = [np.array(layer, dtype=np.int64) for layer in layers]

    # Pair templates are fixed by the layer structure, so precompute the
    # candidate (node, parent) and intra-layer (node, node) index arrays
    # once; per round only the Bernoulli masks are redrawn.
    cross_u: list[np.ndarray] = []
    cross_v: list[np.ndarray] = []
    intra_u: list[np.ndarray] = []
    intra_v: list[np.ndarray] = []
    for depth in range(1, len(layer_arrays)):
        above, current = layer_arrays[depth - 1], layer_arrays[depth]
        if extra_edge_p > 0.0:
            grid_node, grid_parent = np.meshgrid(current, above, indexing="ij")
            cross_u.append(grid_node.ravel())
            cross_v.append(grid_parent.ravel())
        if intra_layer_p > 0.0 and current.size > 1:
            pair_i, pair_j = np.triu_indices(current.size, 1)
            intra_u.append(current[pair_i])
            intra_v.append(current[pair_j])
    cross_pairs = (
        (np.concatenate(cross_u), np.concatenate(cross_v))
        if cross_u
        else (np.empty(0, dtype=np.int64),) * 2
    )
    intra_pairs = (
        (np.concatenate(intra_u), np.concatenate(intra_v))
        if intra_u
        else (np.empty(0, dtype=np.int64),) * 2
    )

    def provider(round_no: int) -> tuple[np.ndarray, np.ndarray]:
        rng = np.random.default_rng([seed, round_no])
        parts_u: list[np.ndarray] = []
        parts_v: list[np.ndarray] = []
        for depth in range(1, len(layer_arrays)):
            above, current = layer_arrays[depth - 1], layer_arrays[depth]
            # Mandatory edge keeping the persistent distance exact.
            parents = above[rng.integers(above.size, size=current.size)]
            parts_u.append(current)
            parts_v.append(parents)
        if cross_pairs[0].size:
            mask = rng.random(cross_pairs[0].size) < extra_edge_p
            parts_u.append(cross_pairs[0][mask])
            parts_v.append(cross_pairs[1][mask])
        if intra_pairs[0].size:
            mask = rng.random(intra_pairs[0].size) < intra_layer_p
            parts_u.append(intra_pairs[0][mask])
            parts_v.append(intra_pairs[1][mask])
        return np.concatenate(parts_u), np.concatenate(parts_v)

    label = name if name is not None else f"pd{len(layer_sizes)}({layer_sizes})"
    return CSRDynamicGraph(n, provider, name=label), layers
