"""T-interval connected dynamic graphs (Kuhn, Lynch & Oshman).

The paper's model assumes 1-interval connectivity; the stronger
``T``-interval connectivity of Kuhn et al. requires a *common* connected
spanning subgraph across every window of ``T`` consecutive rounds.
This generator draws one spanning tree per ``T``-round block and keeps
each block's tree alive through the *next* block as well, so any window
of ``T`` consecutive rounds -- including windows straddling a block
boundary -- fully contains at least one tree; volatile extra edges are
redrawn every round on top.

Used by the baseline experiments to show the library's substrate covers
the standard dynamic-network taxonomy, not only the paper's ``T = 1``.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.networks.dynamic_graph import DynamicGraph

__all__ = ["t_interval_network"]


def _random_tree(n: int, rng: np.random.Generator) -> nx.Graph:
    tree = nx.Graph()
    tree.add_nodes_from(range(n))
    order = rng.permutation(n)
    for position in range(1, n):
        parent = order[int(rng.integers(position))]
        tree.add_edge(int(order[position]), int(parent))
    return tree


def t_interval_network(
    n: int,
    t: int,
    *,
    extra_edge_p: float = 0.15,
    seed: int = 0,
) -> DynamicGraph:
    """A ``T``-interval connected dynamic graph.

    Args:
        n: Number of nodes.
        t: Stability window: one spanning tree persists through rounds
            ``[m·t, (m+1)·t)`` for each block ``m``.
        extra_edge_p: Probability of each volatile extra edge, redrawn
            every round.
        seed: Master seed (per-block trees and per-round extras are
            pure functions of it).
    """
    if n < 2:
        raise ValueError("need at least two nodes")
    if t < 1:
        raise ValueError("the window T must be at least 1")
    if not 0.0 <= extra_edge_p <= 1.0:
        raise ValueError("extra_edge_p must be in [0, 1]")

    def provider(round_no: int) -> nx.Graph:
        block = round_no // t
        # Seed streams: tag 0 = per-block trees, tag 1 = per-round extras.
        graph = _random_tree(n, np.random.default_rng([seed, 0, block]))
        if block > 0:
            # The previous block's tree overlaps into this block, so
            # windows straddling the boundary still share a whole tree.
            previous = _random_tree(
                n, np.random.default_rng([seed, 0, block - 1])
            )
            graph.add_edges_from(previous.edges())
        rng = np.random.default_rng([seed, 1, round_no])
        for u in range(n):
            for v in range(u + 1, n):
                if not graph.has_edge(u, v) and rng.random() < extra_edge_p:
                    graph.add_edge(u, v)
        return graph

    return DynamicGraph(
        n, provider, name=f"{t}-interval(n={n}, seed={seed})"
    )
