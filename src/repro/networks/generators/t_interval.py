"""T-interval connected dynamic graphs (Kuhn, Lynch & Oshman).

The paper's model assumes 1-interval connectivity; the stronger
``T``-interval connectivity of Kuhn et al. requires a *common* connected
spanning subgraph across every window of ``T`` consecutive rounds.
This generator draws one spanning tree per ``T``-round block and keeps
each block's tree alive through the *next* block as well, so any window
of ``T`` consecutive rounds -- including windows straddling a block
boundary -- fully contains at least one tree; volatile extra edges are
redrawn every round on top.

CSR-native and incremental: rounds are emitted as ``(u, v)`` edge
arrays, and the stable component (the per-block spanning trees, which
change only every ``T`` rounds) is cached separately from the volatile
per-round extras, so consecutive rounds re-derive only the delta.

Used by the baseline experiments to show the library's substrate covers
the standard dynamic-network taxonomy, not only the paper's ``T = 1``.
"""

from __future__ import annotations

import numpy as np

from repro.networks.csr import LRUCache
from repro.networks.csr_native import CSRDynamicGraph
from repro.networks.generators.random_dynamic import (
    bernoulli_pair_edges,
    random_tree_edges,
)

__all__ = ["t_interval_network"]

#: Block trees live for two blocks (current + overlap into the next),
#: so a tiny LRU already makes the stable component's resampling cost
#: amortise to once per block instead of once per round.
_BLOCK_TREE_CACHE_SIZE = 4


def t_interval_network(
    n: int,
    t: int,
    *,
    extra_edge_p: float = 0.15,
    seed: int = 0,
) -> CSRDynamicGraph:
    """A ``T``-interval connected dynamic graph (CSR-native).

    Args:
        n: Number of nodes.
        t: Stability window: one spanning tree persists through rounds
            ``[m·t, (m+1)·t)`` for each block ``m``.
        extra_edge_p: Probability of each volatile extra edge, redrawn
            every round.
        seed: Master seed (per-block trees and per-round extras are
            pure functions of it).
    """
    if n < 2:
        raise ValueError("need at least two nodes")
    if t < 1:
        raise ValueError("the window T must be at least 1")
    if not 0.0 <= extra_edge_p <= 1.0:
        raise ValueError("extra_edge_p must be in [0, 1]")

    block_trees = LRUCache(_BLOCK_TREE_CACHE_SIZE, "adjacency.cache_evictions")

    def tree_for_block(block: int) -> tuple[np.ndarray, np.ndarray]:
        cached = block_trees.get(block)
        if cached is None:
            # Seed streams: tag 0 = per-block trees, tag 1 = extras.
            rng = np.random.default_rng([seed, 0, block])
            cached = random_tree_edges(n, rng)
            block_trees.put(block, cached)
        return cached

    def provider(round_no: int) -> tuple[np.ndarray, np.ndarray]:
        block = round_no // t
        parts = [tree_for_block(block)]
        if block > 0:
            # The previous block's tree overlaps into this block, so
            # windows straddling the boundary still share a whole tree.
            parts.append(tree_for_block(block - 1))
        extras = bernoulli_pair_edges(
            n, np.random.default_rng([seed, 1, round_no]), extra_edge_p
        )
        if extras[0].size:
            parts.append(extras)
        return (
            np.concatenate([u for u, _ in parts]),
            np.concatenate([v for _, v in parts]),
        )

    return CSRDynamicGraph(
        n, provider, name=f"{t}-interval(n={n}, seed={seed})"
    )
