"""Generators for the dynamic network families studied in the paper.

* :mod:`repro.networks.generators.stars` -- ``G(PD)_1`` star graphs.
* :mod:`repro.networks.generators.pd` -- random layered ``G(PD)_h``
  dynamic graphs (adversary rewires inter-layer edges every round while
  distances stay persistent).
* :mod:`repro.networks.generators.chains` -- the Corollary 1 gadget: a
  static chain from the leader feeding a ``G(PD)_2`` core, giving
  arbitrary constant dynamic diameter ``D``.
* :mod:`repro.networks.generators.random_dynamic` -- fair (non-worst-case)
  adversaries: random connected graphs per round.
* :mod:`repro.networks.generators.figures` -- the concrete worked
  examples drawn in the paper's figures.
"""

from repro.networks.generators.chains import chain_pd2_network
from repro.networks.generators.figures import paper_figure1, paper_figure2_multigraph
from repro.networks.generators.geometric import random_waypoint_network
from repro.networks.generators.markov import edge_markov_network
from repro.networks.generators.pd import random_pd_network
from repro.networks.generators.random_dynamic import (
    RandomConnectedAdversary,
    random_connected_graph,
)
from repro.networks.generators.stars import star_network
from repro.networks.generators.t_interval import t_interval_network

__all__ = [
    "RandomConnectedAdversary",
    "chain_pd2_network",
    "edge_markov_network",
    "paper_figure1",
    "paper_figure2_multigraph",
    "random_connected_graph",
    "random_pd_network",
    "random_waypoint_network",
    "star_network",
    "t_interval_network",
]
