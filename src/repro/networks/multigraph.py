"""Dynamic bipartite labeled multigraphs -- the ``M(DBL)_k`` family.

Section 4.1 of the paper: a dynamic multigraph
``M = ∪_r ({v_l} ∪ W, E(r), f_r, l_r)`` where every node ``v ∈ W`` is
joined to the leader ``v_l`` by between 1 and ``k`` parallel edges, and
edges sharing an endpoint in ``W`` carry pairwise distinct labels from
``{1..k}``.  A round of ``M`` is therefore fully described by one label
set per ``W`` node, so an instance is just a per-node *schedule* of label
sets -- which is also exactly the shape of a worst-case adversary's
strategy.

:class:`DynamicMultigraph` stores such schedules, serves as the
:class:`repro.simulation.labeled.LabelSetProvider` for the labeled
engine, and produces the ground-truth leader observations
(:class:`repro.core.states.ObservationSequence`) that the solver and the
lower-bound experiments consume.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Mapping, Sequence

import numpy as np

from repro.core.states import (
    ObservationSequence,
    all_label_sets,
    leader_observation,
    validate_label_set,
)
from repro.simulation.errors import ModelError, TopologyError

__all__ = ["DynamicMultigraph"]

_EXTEND_RULES = ("full", "hold", "strict")


class DynamicMultigraph:
    """An ``M(DBL)_k`` instance defined by per-node label schedules.

    Args:
        k: Maximum number of parallel edges per ``W`` node.
        schedules: For each node of ``W``, the finite prefix of its label
            set history: ``schedules[v][r]`` is ``L(v, r)``.  All
            prefixes must have equal length (possibly zero).
        extend: Label sets for rounds past the prefix -- ``"full"``
            (default) connects every node by all ``k`` edges (the
            "everything visible" continuation used after an adversary's
            ambiguity horizon), ``"hold"`` repeats the last round,
            ``"strict"`` raises on access past the prefix.
        name: Optional description for reports.
    """

    def __init__(
        self,
        k: int,
        schedules: Sequence[Sequence[frozenset]],
        *,
        extend: str = "full",
        name: str = "mdbl",
    ) -> None:
        if k < 1:
            raise ValueError("k must be at least 1")
        if extend not in _EXTEND_RULES:
            raise ValueError(f"extend must be one of {_EXTEND_RULES}")
        self.k = k
        self.extend = extend
        self.name = name
        self._schedules: list[list[frozenset]] = []
        lengths = {len(schedule) for schedule in schedules}
        if len(lengths) > 1:
            raise ModelError(
                f"all schedules must have equal length, got lengths {lengths}"
            )
        self.prefix_rounds = lengths.pop() if lengths else 0
        if extend == "hold" and self.prefix_rounds == 0:
            raise ModelError("extend='hold' requires a non-empty prefix")
        for node, schedule in enumerate(schedules):
            validated = [
                validate_label_set(frozenset(labels), k) for labels in schedule
            ]
            self._schedules.append(validated)
        if not self._schedules:
            raise ModelError("W must be non-empty")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_solution(
        cls,
        k: int,
        counts: Mapping[tuple, int],
        *,
        extend: str = "full",
        name: str = "mdbl-from-solution",
    ) -> "DynamicMultigraph":
        """Build an instance from a configuration/solution vector.

        ``counts`` maps a full history (tuple of label sets, all of one
        common length) to the number of ``W`` nodes following it -- the
        combinatorial meaning of the paper's solution vectors ``s_r``.
        """
        lengths = {len(history) for history in counts}
        if len(lengths) > 1:
            raise ModelError(f"histories must share one length, got {lengths}")
        schedules: list[list[frozenset]] = []
        for history in sorted(
            counts, key=lambda hist: [sorted(labels) for labels in hist]
        ):
            multiplicity = counts[history]
            if multiplicity < 0:
                raise ModelError(
                    f"negative multiplicity {multiplicity} for {history!r}"
                )
            validated = [
                validate_label_set(frozenset(labels), k) for labels in history
            ]
            schedules.extend([list(validated)] * multiplicity)
        return cls(k, schedules, extend=extend, name=name)

    @classmethod
    def random(
        cls,
        k: int,
        n: int,
        rounds: int,
        rng: np.random.Generator,
        *,
        name: str = "mdbl-random",
    ) -> "DynamicMultigraph":
        """Sample a uniform random instance (for fuzzing and fair baselines)."""
        choices = all_label_sets(k)
        schedules = [
            [choices[rng.integers(len(choices))] for _ in range(rounds)]
            for _ in range(n)
        ]
        return cls(k, schedules, name=name)

    # ------------------------------------------------------------------
    # Round access
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of non-leader nodes, ``|W|``."""
        return len(self._schedules)

    def labels(self, node: int, round_no: int) -> frozenset:
        """The label set ``L(node, round_no)``."""
        schedule = self._schedules[node]
        if round_no < len(schedule):
            return schedule[round_no]
        if self.extend == "full":
            return frozenset(range(1, self.k + 1))
        if self.extend == "hold":
            return schedule[-1]
        raise TopologyError(
            f"round {round_no} requested but schedules cover only rounds "
            f"0..{self.prefix_rounds - 1} (extend='strict')"
        )

    def label_sets(
        self, round_no: int, processes: object = None
    ) -> list[frozenset]:
        """All nodes' label sets for a round (labeled-engine interface)."""
        return [self.labels(node, round_no) for node in range(self.n)]

    def history(self, node: int, round_no: int) -> tuple:
        """The node state ``S(node, round_no)``: label sets of rounds ``< round_no``."""
        return tuple(self.labels(node, r) for r in range(round_no))

    # ------------------------------------------------------------------
    # Ground-truth leader views
    # ------------------------------------------------------------------

    def observation(self, round_no: int) -> Counter:
        """The leader observation ``C(v_l, round_no)`` of this instance."""
        return leader_observation(
            self.label_sets(round_no),
            (self.history(node, round_no) for node in range(self.n)),
        )

    def observations(self, rounds: int) -> ObservationSequence:
        """The leader state after ``rounds`` rounds (observations ``0..rounds-1``)."""
        sequence = ObservationSequence(self.k)
        for round_no in range(rounds):
            sequence.append(self.observation(round_no))
        return sequence

    def configuration(self, rounds: int) -> Counter:
        """The multiset of node histories over the first ``rounds`` rounds.

        This is the combinatorial content of the paper's solution vector
        ``s_{rounds-1}``: it maps each full history of length ``rounds``
        to the number of nodes following it.
        """
        return Counter(self.history(node, rounds) for node in range(self.n))

    def __repr__(self) -> str:
        return (
            f"DynamicMultigraph(k={self.k}, n={self.n}, "
            f"prefix_rounds={self.prefix_rounds}, extend={self.extend!r}, "
            f"name={self.name!r})"
        )
