"""CSR adjacency lowering for the vectorized simulation backend.

The object engine (:class:`repro.simulation.engine.SynchronousEngine`)
walks ``networkx`` neighbour lists per process per round -- fine for
protocol fidelity, but the Python-level loop dominates wall-clock time
on large sweeps.  The fast backend (:mod:`repro.simulation.fast`)
instead *lowers* each round's graph once into a compressed-sparse-row
adjacency matrix so the whole receive phase becomes a single sparse
matvec (or a dense matmul for set-valued states).

This module owns that lowering:

* :class:`CSRAdjacency` -- an immutable CSR view of one round's graph
  (degrees, matvec, matmul), validated at construction;
* :func:`lower_graph` -- ``nx.Graph`` -> :class:`CSRAdjacency` with the
  engine's model checks (node set ``{0..n-1}``, no self-loops,
  connectivity);
* :func:`csr_from_edges` / :func:`graph_from_edges` -- the CSR-native
  path: build a validated adjacency (or its ``networkx`` oracle view)
  straight from ``(u, v)`` edge index arrays, with no ``nx.Graph`` on
  the hot path -- the substrate of
  :class:`repro.networks.csr_native.CSRDynamicGraph`;
* :class:`AdjacencyCache` -- memoizes the lowering *per graph object*,
  so a :class:`~repro.networks.dynamic_graph.DynamicGraph` that serves
  the same cached graph under ``extend="hold"``/``"cycle"`` is lowered
  and validated exactly once instead of once per round;
* :func:`stack_adjacencies` / :class:`StackCache` -- block-diagonal
  stacking of independent lanes, so a batch of runs (seeds x sizes of a
  sweep point) executes as one fused matvec per round.

Both caches are *bounded* (LRU): a fresh-graph-per-round workload used
to retain one lowered graph + CSR matrix per executed round for the
cache's lifetime; evictions are observable through the
``adjacency.cache_evictions`` / ``adjacency.stack_evictions`` counters.

Index dtype policy: every adjacency built here routes its CSR index
arrays through :func:`index_dtype_for` -- ``int32`` while every index
value (node count *and* stored entry count) fits, ``int64`` otherwise.
On mega-scale lanes this halves the adjacency index memory; the dedup
key arithmetic in :func:`csr_from_edges` always runs in ``int64`` so
the narrower storage dtype can never overflow intermediate products.

A compiled receive-phase kernel may be installed process-wide with
:func:`set_matvec_kernel` (see :mod:`repro.simulation.jit`);
:meth:`CSRAdjacency.matvec` consults it for the 1-D float64 hot path
and otherwise falls back to the scipy matvec.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Iterable, Sequence

import networkx as nx
import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import connected_components

from repro.obs.metrics import counter
from repro.simulation.errors import TopologyError

__all__ = [
    "CSRAdjacency",
    "AdjacencyCache",
    "StackCache",
    "LRUCache",
    "csr_from_edges",
    "graph_from_edges",
    "index_dtype_for",
    "lower_graph",
    "matvec_kernel",
    "set_matvec_kernel",
    "stack_adjacencies",
    "validate_edge_arrays",
]

#: Default LRU capacity of :class:`AdjacencyCache`.  Large enough that
#: every realistic batch of held/cycled topologies stays fully cached,
#: small enough that a fresh-graph-per-round run holds O(1) memory.
DEFAULT_ADJACENCY_CACHE_SIZE = 128

#: Default LRU capacity of :class:`StackCache`.  Lane combinations
#: change at most once per round, so a handful of entries suffice.
DEFAULT_STACK_CACHE_SIZE = 32

#: First value that no longer fits an ``int32`` index.
INT32_LIMIT = 2**31


def index_dtype_for(n: int) -> np.dtype:
    """The narrowest index dtype able to hold values in ``[-1, n]``.

    The single dtype-policy chokepoint for every CSR index array,
    lane-offset array, and engine accumulator: ``int32`` while ``n``
    fits (halving index memory on mega-scale lanes), ``int64`` past
    ``2**31 - 1``.  Callers must size ``n`` to the *largest value
    stored* -- for a CSR matrix that is ``max(n_nodes, nnz)`` because
    ``indptr`` ends at ``nnz``.
    """
    return np.dtype(np.int32 if n < INT32_LIMIT else np.int64)


def _with_index_dtype(matrix: sp.csr_array) -> sp.csr_array:
    """Normalize a CSR matrix's index arrays to the policy dtype."""
    dtype = index_dtype_for(max(int(matrix.shape[0]), int(matrix.nnz)))
    if matrix.indices.dtype == dtype and matrix.indptr.dtype == dtype:
        return matrix
    return sp.csr_array(
        (
            matrix.data,
            matrix.indices.astype(dtype),
            matrix.indptr.astype(dtype),
        ),
        shape=matrix.shape,
    )


#: Optional compiled receive-phase kernel, installed process-wide by
#: :mod:`repro.simulation.jit`.  Signature:
#: ``kernel(indptr, indices, x, out)`` summing ``x`` over each row's
#: neighbours into ``out`` (unit edge weights are a class invariant of
#: every adjacency built by this module).
_MATVEC_KERNEL = None


def set_matvec_kernel(kernel) -> None:
    """Install (or clear, with ``None``) the compiled matvec kernel."""
    global _MATVEC_KERNEL
    _MATVEC_KERNEL = kernel


def matvec_kernel():
    """The currently installed compiled matvec kernel, if any."""
    return _MATVEC_KERNEL


class CSRAdjacency:
    """One round's communication graph in CSR form.

    Wraps a symmetric ``scipy.sparse`` CSR matrix with unit weights.
    Instances are produced by :func:`lower_graph` (validated) or
    :func:`stack_adjacencies` (block-diagonal batch) and treated as
    immutable.

    Attributes:
        n: Number of nodes (the matrix is ``n x n``).
        matrix: The underlying ``scipy.sparse`` CSR array (float64).
        connected: Whether the graph is connected; ``None`` for stacked
            batches (a block-diagonal never is, by construction).
    """

    __slots__ = ("n", "matrix", "connected", "_degrees")

    def __init__(
        self, matrix: sp.csr_array, *, connected: bool | None
    ) -> None:
        self.n = int(matrix.shape[0])
        self.matrix = matrix
        self.connected = connected
        self._degrees: np.ndarray | None = None

    @property
    def degrees(self) -> np.ndarray:
        """Per-node degree vector (cached)."""
        if self._degrees is None:
            self._degrees = np.diff(self.matrix.indptr).astype(np.int64)
        return self._degrees

    @property
    def edges(self) -> int:
        """Number of undirected edges."""
        return int(self.matrix.nnz) // 2

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``A @ x``: per-node sum of the neighbours' values.

        Dispatches to the compiled receive-phase kernel when one is
        installed (:func:`set_matvec_kernel`) and ``x`` is the 1-D
        float64 hot path; otherwise the scipy matvec.  Both paths sum
        neighbour values in CSR index order, so results are identical.
        """
        kernel = _MATVEC_KERNEL
        if kernel is not None and x.ndim == 1 and x.dtype == np.float64:
            out = np.empty(self.n, dtype=np.float64)
            kernel(
                self.matrix.indptr,
                self.matrix.indices,
                np.ascontiguousarray(x),
                out,
            )
            counter("adjacency.jit_matvecs")
            return out
        return self.matrix @ x

    def matmul(self, X: np.ndarray) -> np.ndarray:
        """``A @ X`` for a dense per-node state matrix ``X``."""
        return self.matrix @ X

    def neighbor_any(self, mask: np.ndarray) -> np.ndarray:
        """Boolean per node: does any neighbour have ``mask`` set?"""
        return (self.matrix @ mask.astype(np.float64)) > 0.0

    def __repr__(self) -> str:
        return (
            f"CSRAdjacency(n={self.n}, edges={self.edges}, "
            f"connected={self.connected})"
        )


def lower_graph(graph: nx.Graph, *, n: int | None = None) -> CSRAdjacency:
    """Lower one ``nx.Graph`` to a validated :class:`CSRAdjacency`.

    Performs the engine's model checks once, at lowering time:

    * the node set must be exactly ``{0, ..., n-1}``,
    * self-loops are rejected (a process is never its own neighbour),
    * connectivity is computed and recorded (callers enforce the
      1-interval connectivity assumption against ``.connected``).

    Args:
        graph: The round's communication graph.
        n: Expected node count; defaults to ``graph.number_of_nodes()``.

    Raises:
        TopologyError: Node set mismatch or self-loop.
    """
    expected = graph.number_of_nodes() if n is None else n
    if graph.number_of_nodes() != expected or set(graph.nodes) != set(
        range(expected)
    ):
        raise TopologyError(
            f"graph nodes {sorted(graph.nodes)[:10]}... do not match the "
            f"process indices 0..{expected - 1}"
        )
    loops = [node for node, _ in nx.selfloop_edges(graph)]
    if loops:
        raise TopologyError(
            f"self-loop at node(s) {sorted(loops)[:10]}; a process is "
            "never its own neighbour"
        )
    matrix = _with_index_dtype(
        nx.to_scipy_sparse_array(
            graph, nodelist=range(expected), dtype=np.float64, format="csr"
        )
    )
    if expected <= 1:
        connected = True
    else:
        connected = (
            connected_components(
                matrix, directed=False, return_labels=False
            )
            == 1
        )
    counter("adjacency.builds")
    return CSRAdjacency(matrix, connected=bool(connected))


def validate_edge_arrays(
    n: int, u: np.ndarray, v: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Validate ``(u, v)`` edge index arrays against the engine's model.

    The array analogue of the checks :func:`lower_graph` performs on an
    ``nx.Graph``: endpoints must lie in ``{0..n-1}`` and no edge may be
    a self-loop.  Returns the arrays coerced to 1-D
    ``index_dtype_for(n)`` (``int32`` for every realistic ``n``).

    Raises:
        TopologyError: Endpoint out of range, self-loop, or shape
            mismatch between the two arrays.
    """
    # Validate in int64 (narrowing first would wrap out-of-range
    # endpoints past the range check), store in the policy dtype.
    u = np.asarray(u, dtype=np.int64).reshape(-1)
    v = np.asarray(v, dtype=np.int64).reshape(-1)
    if u.shape != v.shape:
        raise TopologyError(
            f"edge arrays disagree in length ({u.size} vs {v.size})"
        )
    if u.size:
        lo = min(int(u.min()), int(v.min()))
        hi = max(int(u.max()), int(v.max()))
        if lo < 0 or hi >= n:
            raise TopologyError(
                f"edge endpoint {lo if lo < 0 else hi} outside the "
                f"process indices 0..{n - 1}"
            )
        loops = np.flatnonzero(u == v)
        if loops.size:
            where = sorted(set(u[loops][:10].tolist()))
            raise TopologyError(
                f"self-loop at node(s) {where}; a process is never its "
                "own neighbour"
            )
    dtype = index_dtype_for(n)
    return u.astype(dtype, copy=False), v.astype(dtype, copy=False)


def csr_from_edges(n: int, u: np.ndarray, v: np.ndarray) -> CSRAdjacency:
    """Build a validated :class:`CSRAdjacency` straight from edge arrays.

    The CSR-native fast path: no ``nx.Graph`` is constructed.  Edges
    are undirected; duplicates (in either orientation) collapse to one
    edge, matching ``nx.Graph`` semantics, so generators may emit a
    mandatory backbone plus independently sampled extras without
    deduplicating first.

    Args:
        n: Number of nodes (the matrix is ``n x n``).
        u: Edge source indices (any integer array).
        v: Edge target indices, same length as ``u``.

    Raises:
        TopologyError: Endpoint out of range or self-loop.
    """
    u, v = validate_edge_arrays(n, u, v)
    # Canonicalize to (min, max) pairs, dedupe via the scalar pair key.
    # Key arithmetic stays in int64 regardless of the storage dtype:
    # ``a * n + b`` reaches ~n^2, which overflows int32 from n ~ 46341.
    a = np.minimum(u, v).astype(np.int64, copy=False)
    b = np.maximum(u, v).astype(np.int64, copy=False)
    keys = np.unique(a * np.int64(n) + b)
    a = keys // n
    b = keys % n
    dtype = index_dtype_for(n)
    rows = np.concatenate([a, b]).astype(dtype, copy=False)
    cols = np.concatenate([b, a]).astype(dtype, copy=False)
    matrix = _with_index_dtype(
        sp.csr_array(
            (np.ones(rows.size, dtype=np.float64), (rows, cols)),
            shape=(n, n),
        )
    )
    if n <= 1:
        connected = True
    else:
        connected = (
            connected_components(matrix, directed=False, return_labels=False)
            == 1
        )
    counter("adjacency.builds")
    counter("adjacency.native_builds")
    return CSRAdjacency(matrix, connected=bool(connected))


def graph_from_edges(n: int, u: np.ndarray, v: np.ndarray) -> nx.Graph:
    """The ``networkx`` oracle view of the same ``(u, v)`` edge arrays.

    Used by the object engine and the verification oracles; the fast
    backend never calls this.  Runs the same validation as
    :func:`csr_from_edges`, so the two views are built from identical
    inputs through independent code paths.
    """
    u, v = validate_edge_arrays(n, u, v)
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    graph.add_edges_from(zip(u.tolist(), v.tolist()))
    return graph


class LRUCache:
    """A small bounded mapping with LRU eviction and an eviction counter.

    The shared bounding mechanism of :class:`AdjacencyCache`,
    :class:`StackCache`, and the per-round caches of
    :class:`repro.networks.csr_native.CSRDynamicGraph`.  Every eviction
    increments ``evict_metric`` so unbounded-growth regressions are
    observable in any metrics snapshot.
    """

    def __init__(self, maxsize: int, evict_metric: str) -> None:
        if maxsize < 1:
            raise ValueError("cache maxsize must be at least 1")
        self.maxsize = maxsize
        self._evict_metric = evict_metric
        self._data: OrderedDict[Hashable, object] = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: Hashable) -> object | None:
        value = self._data.get(key)
        if value is not None:
            self._data.move_to_end(key)
        return value

    def put(self, key: Hashable, value: object) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            counter(self._evict_metric)

    def clear(self) -> None:
        self._data.clear()


class AdjacencyCache:
    """Memoize :func:`lower_graph` per graph *object*, LRU-bounded.

    Keys are object identities; each live entry holds a strong reference
    to its lowered graph, so an id can never be reused while its entry
    is still in the cache (the id-stability contract).  Once an entry is
    *evicted* its graph may be collected and its id reused -- which is
    safe: the entry is gone, so a reused id is a plain miss and the new
    graph is lowered afresh (the ``cached[0] is graph`` guard keeps
    same-slot overwrites honest).

    A provider that serves the same cached graph for many rounds
    (``extend="hold"``, ``"cycle"``, any static topology) pays for
    validation and lowering exactly once; a fresh-graph-per-round run
    now holds at most ``maxsize`` lowered rounds instead of all of them
    (evictions are counted in ``adjacency.cache_evictions``).

    Mutating a graph after it has been lowered is unsupported (the
    memoized adjacency would go stale) -- the same contract the object
    engine's per-round validation memo has.
    """

    def __init__(self, maxsize: int = DEFAULT_ADJACENCY_CACHE_SIZE) -> None:
        self._lru = LRUCache(maxsize, "adjacency.cache_evictions")

    def __len__(self) -> int:
        return len(self._lru)

    def clear(self) -> None:
        """Drop every entry (per-run scoping for long-lived caches)."""
        self._lru.clear()

    def lower(self, graph: nx.Graph, *, n: int | None = None) -> CSRAdjacency:
        """The memoized CSR adjacency of ``graph``."""
        cached = self._lru.get(id(graph))
        if cached is not None and cached[0] is graph:
            counter("adjacency.cache_hits")
            return cached[1]
        adjacency = lower_graph(graph, n=n)
        self._lru.put(id(graph), (graph, adjacency))
        return adjacency


def stack_adjacencies(parts: Sequence[CSRAdjacency]) -> CSRAdjacency:
    """Block-diagonally stack independent lanes into one adjacency.

    The stacked matrix never mixes nodes across lanes, so one matvec on
    it is exactly the per-lane matvecs fused -- the batched execution
    primitive of the fast backend.
    """
    if not parts:
        raise ValueError("need at least one adjacency to stack")
    if len(parts) == 1:
        return parts[0]
    matrix = sp.block_diag([part.matrix for part in parts], format="csr")
    counter("adjacency.stack_builds")
    return CSRAdjacency(
        _with_index_dtype(sp.csr_array(matrix)), connected=None
    )


class StackCache:
    """Memoize :func:`stack_adjacencies` per tuple of part identities,
    LRU-bounded.

    On static or ``hold``-extended dynamics every round stacks the same
    per-lane adjacencies, so the fused matrix is built once per distinct
    combination instead of once per round; on dynamic workloads where
    lane identities change every round, old ``(parts, stacked)`` tuples
    are evicted instead of retained forever (counted in
    ``adjacency.stack_evictions``).
    """

    def __init__(self, maxsize: int = DEFAULT_STACK_CACHE_SIZE) -> None:
        self._lru = LRUCache(maxsize, "adjacency.stack_evictions")

    def __len__(self) -> int:
        return len(self._lru)

    def clear(self) -> None:
        """Drop every entry (per-run scoping for long-lived caches)."""
        self._lru.clear()

    def stack(self, parts: Iterable[CSRAdjacency]) -> CSRAdjacency:
        parts = tuple(parts)
        key = tuple(id(part) for part in parts)
        cached = self._lru.get(key)
        if cached is not None:
            kept, stacked = cached
            # A hit's key is an id-tuple equal to ours, so the lengths
            # must match by construction; a changed-length lane list can
            # therefore never masquerade as an id-reuse collision.
            assert len(kept) == len(parts), (
                f"stack cache key of length {len(parts)} hit an entry "
                f"with {len(kept)} parts"
            )
            if all(a is b for a, b in zip(kept, parts)):
                counter("adjacency.stack_hits")
                return stacked
        stacked = stack_adjacencies(parts)
        self._lru.put(key, (parts, stacked))
        return stacked
