"""CSR adjacency lowering for the vectorized simulation backend.

The object engine (:class:`repro.simulation.engine.SynchronousEngine`)
walks ``networkx`` neighbour lists per process per round -- fine for
protocol fidelity, but the Python-level loop dominates wall-clock time
on large sweeps.  The fast backend (:mod:`repro.simulation.fast`)
instead *lowers* each round's graph once into a compressed-sparse-row
adjacency matrix so the whole receive phase becomes a single sparse
matvec (or a dense matmul for set-valued states).

This module owns that lowering:

* :class:`CSRAdjacency` -- an immutable CSR view of one round's graph
  (degrees, matvec, matmul), validated at construction;
* :func:`lower_graph` -- ``nx.Graph`` -> :class:`CSRAdjacency` with the
  engine's model checks (node set ``{0..n-1}``, no self-loops,
  connectivity);
* :class:`AdjacencyCache` -- memoizes the lowering *per graph object*,
  so a :class:`~repro.networks.dynamic_graph.DynamicGraph` that serves
  the same cached graph under ``extend="hold"``/``"cycle"`` is lowered
  and validated exactly once instead of once per round;
* :func:`stack_adjacencies` / :class:`StackCache` -- block-diagonal
  stacking of independent lanes, so a batch of runs (seeds x sizes of a
  sweep point) executes as one fused matvec per round.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import networkx as nx
import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import connected_components

from repro.obs.metrics import counter
from repro.simulation.errors import TopologyError

__all__ = [
    "CSRAdjacency",
    "AdjacencyCache",
    "StackCache",
    "lower_graph",
    "stack_adjacencies",
]


class CSRAdjacency:
    """One round's communication graph in CSR form.

    Wraps a symmetric ``scipy.sparse`` CSR matrix with unit weights.
    Instances are produced by :func:`lower_graph` (validated) or
    :func:`stack_adjacencies` (block-diagonal batch) and treated as
    immutable.

    Attributes:
        n: Number of nodes (the matrix is ``n x n``).
        matrix: The underlying ``scipy.sparse`` CSR array (float64).
        connected: Whether the graph is connected; ``None`` for stacked
            batches (a block-diagonal never is, by construction).
    """

    __slots__ = ("n", "matrix", "connected", "_degrees")

    def __init__(
        self, matrix: sp.csr_array, *, connected: bool | None
    ) -> None:
        self.n = int(matrix.shape[0])
        self.matrix = matrix
        self.connected = connected
        self._degrees: np.ndarray | None = None

    @property
    def degrees(self) -> np.ndarray:
        """Per-node degree vector (cached)."""
        if self._degrees is None:
            self._degrees = np.diff(self.matrix.indptr).astype(np.int64)
        return self._degrees

    @property
    def edges(self) -> int:
        """Number of undirected edges."""
        return int(self.matrix.nnz) // 2

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``A @ x``: per-node sum of the neighbours' values."""
        return self.matrix @ x

    def matmul(self, X: np.ndarray) -> np.ndarray:
        """``A @ X`` for a dense per-node state matrix ``X``."""
        return self.matrix @ X

    def neighbor_any(self, mask: np.ndarray) -> np.ndarray:
        """Boolean per node: does any neighbour have ``mask`` set?"""
        return (self.matrix @ mask.astype(np.float64)) > 0.0

    def __repr__(self) -> str:
        return (
            f"CSRAdjacency(n={self.n}, edges={self.edges}, "
            f"connected={self.connected})"
        )


def lower_graph(graph: nx.Graph, *, n: int | None = None) -> CSRAdjacency:
    """Lower one ``nx.Graph`` to a validated :class:`CSRAdjacency`.

    Performs the engine's model checks once, at lowering time:

    * the node set must be exactly ``{0, ..., n-1}``,
    * self-loops are rejected (a process is never its own neighbour),
    * connectivity is computed and recorded (callers enforce the
      1-interval connectivity assumption against ``.connected``).

    Args:
        graph: The round's communication graph.
        n: Expected node count; defaults to ``graph.number_of_nodes()``.

    Raises:
        TopologyError: Node set mismatch or self-loop.
    """
    expected = graph.number_of_nodes() if n is None else n
    if graph.number_of_nodes() != expected or set(graph.nodes) != set(
        range(expected)
    ):
        raise TopologyError(
            f"graph nodes {sorted(graph.nodes)[:10]}... do not match the "
            f"process indices 0..{expected - 1}"
        )
    loops = [node for node, _ in nx.selfloop_edges(graph)]
    if loops:
        raise TopologyError(
            f"self-loop at node(s) {sorted(loops)[:10]}; a process is "
            "never its own neighbour"
        )
    matrix = nx.to_scipy_sparse_array(
        graph, nodelist=range(expected), dtype=np.float64, format="csr"
    )
    if expected <= 1:
        connected = True
    else:
        connected = (
            connected_components(
                matrix, directed=False, return_labels=False
            )
            == 1
        )
    counter("adjacency.builds")
    return CSRAdjacency(matrix, connected=bool(connected))


class AdjacencyCache:
    """Memoize :func:`lower_graph` per graph *object*.

    Keys are object identities; the cache holds a strong reference to
    each lowered graph so identities stay stable for the cache's
    lifetime.  A provider that serves the same cached graph for many
    rounds (``extend="hold"``, ``"cycle"``, any static topology) pays
    for validation and lowering exactly once.

    Mutating a graph after it has been lowered is unsupported (the
    memoized adjacency would go stale) -- the same contract the object
    engine's per-round validation memo has.
    """

    def __init__(self) -> None:
        self._by_id: dict[int, tuple[nx.Graph, CSRAdjacency]] = {}

    def __len__(self) -> int:
        return len(self._by_id)

    def lower(self, graph: nx.Graph, *, n: int | None = None) -> CSRAdjacency:
        """The memoized CSR adjacency of ``graph``."""
        cached = self._by_id.get(id(graph))
        if cached is not None and cached[0] is graph:
            counter("adjacency.cache_hits")
            return cached[1]
        adjacency = lower_graph(graph, n=n)
        self._by_id[id(graph)] = (graph, adjacency)
        return adjacency


def stack_adjacencies(parts: Sequence[CSRAdjacency]) -> CSRAdjacency:
    """Block-diagonally stack independent lanes into one adjacency.

    The stacked matrix never mixes nodes across lanes, so one matvec on
    it is exactly the per-lane matvecs fused -- the batched execution
    primitive of the fast backend.
    """
    if not parts:
        raise ValueError("need at least one adjacency to stack")
    if len(parts) == 1:
        return parts[0]
    matrix = sp.block_diag([part.matrix for part in parts], format="csr")
    counter("adjacency.stack_builds")
    return CSRAdjacency(sp.csr_array(matrix), connected=None)


class StackCache:
    """Memoize :func:`stack_adjacencies` per tuple of part identities.

    On static or ``hold``-extended dynamics every round stacks the same
    per-lane adjacencies, so the fused matrix is built once per distinct
    combination instead of once per round.
    """

    def __init__(self) -> None:
        self._by_ids: dict[
            tuple[int, ...], tuple[tuple[CSRAdjacency, ...], CSRAdjacency]
        ] = {}

    def stack(self, parts: Iterable[CSRAdjacency]) -> CSRAdjacency:
        parts = tuple(parts)
        key = tuple(id(part) for part in parts)
        cached = self._by_ids.get(key)
        if cached is not None and all(
            kept is part for kept, part in zip(cached[0], parts)
        ):
            counter("adjacency.stack_hits")
            return cached[1]
        stacked = stack_adjacencies(parts)
        self._by_ids[key] = (parts, stacked)
        return stacked
