"""CSR-native dynamic topologies: edge arrays first, objects at the edges.

The fast backend used to pay a networkx -> CSR *lowering tax* on every
round of a dynamic workload: generators built an ``nx.Graph`` per round
and :func:`repro.networks.csr.lower_graph` immediately tore it apart
again.  On fresh-graph-per-round workloads that tax ate the entire
vectorized-engine win (``BENCH_engine.json`` showed ~0.5-1.0x where
static graphs reach 5-50x).

This module inverts the representation, following the matrix-first
design of connectivity models in network simulators: a dynamic topology
is a function ``round -> (u, v)`` *edge index arrays*, and both views
are derived from those arrays --

* the CSR adjacency (:func:`repro.networks.csr.csr_from_edges`) feeds
  the fast backend directly, no ``nx.Graph`` per round;
* the ``networkx`` view (:func:`repro.networks.csr.graph_from_edges`)
  feeds the object engine and the verification oracles.

Because the two views are built from identical arrays through
independent code paths, ``object == fast`` differential testing keeps
its teeth, and :mod:`repro.verify` checks the equivalence as a model
oracle (CSR-native lowering == networkx adjacency, every family).

Pieces:

* :class:`CSRDynamicGraph` -- a :class:`~repro.networks.DynamicGraph`
  built from an edge provider; ``to_csr`` never touches networkx, and
  its per-round caches are LRU-bounded so fresh-graph-per-round runs
  hold O(1) adjacency memory.
* :func:`precompile_schedule` -- lower a finite schedule prefix (e.g. a
  worst-case adversary instance) once into stacked per-round index
  arrays; every subsequent ``to_csr`` is an O(1) lookup.

Edge providers must be *pure per round* (the same round always yields
the same edges), the convention every built-in family already follows;
purity is what makes bounded caching safe -- an evicted round can
simply be recomputed.
"""

from __future__ import annotations

from typing import Callable

import networkx as nx
import numpy as np

from repro.networks.csr import (
    CSRAdjacency,
    LRUCache,
    csr_from_edges,
    graph_from_edges,
    index_dtype_for,
    validate_edge_arrays,
)
from repro.networks.dynamic_graph import DynamicGraph
from repro.obs.metrics import counter
from repro.simulation.errors import TopologyError

__all__ = [
    "CSRDynamicGraph",
    "EdgeArrays",
    "EdgeProvider",
    "precompile_schedule",
]

EdgeArrays = tuple[np.ndarray, np.ndarray]
"""Type alias: a ``(u, v)`` pair of edge index arrays."""

EdgeProvider = Callable[[int], tuple[np.ndarray, np.ndarray]]
"""An edge-array provider: ``round_no -> (u, v)`` index arrays."""

#: Default LRU capacity of the per-round edge/CSR caches.  Must cover
#: at least the working set of one batched execution (all lanes touch
#: the same round number before moving on), which one entry already
#: does; the slack keeps short hold/cycle prefixes fully resident.
DEFAULT_ROUND_CACHE_SIZE = 64


class CSRDynamicGraph(DynamicGraph):
    """A dynamic graph whose source of truth is per-round edge arrays.

    Drop-in :class:`~repro.networks.DynamicGraph`: the object engine
    uses the ``graph``/``at`` view (networkx graphs built lazily from
    the arrays), the fast backend uses ``to_csr`` (validated CSR built
    directly from the arrays, no ``nx.Graph`` on the hot path).

    Args:
        n: Number of nodes; every edge endpoint must lie in ``{0..n-1}``.
        edge_provider: Pure function ``round -> (u, v)`` edge arrays.
            Isolated nodes need no mention -- the node set is always
            exactly ``{0..n-1}``.
        name: Human-readable description (used in reports).
        round_key: Optional canonicalisation of round numbers before the
            provider and the caches see them -- ``hold``/``cycle``
            extension rules compress an infinite round axis onto a
            finite prefix, so repeated rounds share one cache entry
            (and, for the object view, one graph object, which keeps the
            engines' per-object validation memos effective).
        cache_rounds: LRU capacity of the per-round edge and CSR caches
            (evictions are counted in ``adjacency.cache_evictions``).
    """

    def __init__(
        self,
        n: int,
        edge_provider: EdgeProvider,
        *,
        name: str = "csr-dynamic-graph",
        round_key: Callable[[int], int] | None = None,
        cache_rounds: int = DEFAULT_ROUND_CACHE_SIZE,
    ) -> None:
        super().__init__(
            n, self._nx_provider, name=name, copy_on_cache=False
        )
        self._edge_provider = edge_provider
        self._round_key = round_key
        self._edge_lru = LRUCache(cache_rounds, "adjacency.cache_evictions")
        self._csr_lru = LRUCache(cache_rounds, "adjacency.cache_evictions")
        self._nx_lru = LRUCache(cache_rounds, "adjacency.cache_evictions")

    def cache_sizes(self) -> dict[str, int]:
        """Resident entries per internal cache (diagnostics, leak tests)."""
        return {
            "edges": len(self._edge_lru),
            "csr": len(self._csr_lru),
            "graphs": len(self._nx_lru),
        }

    # -- round canonicalisation ---------------------------------------

    def _key(self, round_no: int) -> int:
        if round_no < 0:
            raise ValueError("round numbers start at 0")
        if self._round_key is None:
            return round_no
        return self._round_key(round_no)

    # -- the edge-array view ------------------------------------------

    def edges(self, round_no: int) -> tuple[np.ndarray, np.ndarray]:
        """The round's validated ``(u, v)`` edge arrays (cached, LRU)."""
        key = self._key(round_no)
        cached = self._edge_lru.get(key)
        if cached is None:
            u, v = self._edge_provider(key)
            cached = validate_edge_arrays(self.n, u, v)
            self._edge_lru.put(key, cached)
        return cached

    # -- the CSR view (fast backend) ----------------------------------

    def to_csr(self, round_no: int) -> CSRAdjacency:
        """The round's CSR adjacency, built directly from edge arrays.

        Never constructs an ``nx.Graph``; validation (index range,
        self-loops, connectivity) runs on the arrays.  Memoized per
        canonical round in a bounded LRU, so held/cycled rounds lower
        once while fresh-per-round runs stay O(1) in memory.
        """
        key = self._key(round_no)
        cached = self._csr_lru.get(key)
        if cached is None:
            u, v = self.edges(round_no)
            cached = csr_from_edges(self.n, u, v)
            self._csr_lru.put(key, cached)
        else:
            counter("adjacency.cache_hits")
        return cached

    # -- the networkx view (object engine, oracles) -------------------

    def _nx_provider(self, round_no: int) -> nx.Graph:
        u, v = self.edges(round_no)
        return graph_from_edges(self.n, u, v)

    def at(self, round_no: int) -> nx.Graph:
        """The round's graph as ``networkx`` (cached per canonical round).

        Rounds that canonicalise to the same key (``hold``/``cycle``
        extensions) share one graph *object* while resident, so the
        engines' identity-keyed validation memos fire exactly as they do
        for :meth:`DynamicGraph.from_graphs` prefixes.  Unlike the base
        class, the cache is LRU-bounded: the edge provider is pure per
        round, so an evicted round rebuilds bit-identically and long
        fresh-graph-per-round runs hold O(1) graph memory on the object
        path too.
        """
        key = self._key(round_no)
        cached = self._nx_lru.get(key)
        if cached is None:
            cached = self._nx_provider(round_no)
            self._nx_lru.put(key, cached)
        return cached


def precompile_schedule(
    source: DynamicGraph,
    rounds: int,
    *,
    extend: str = "hold",
    name: str | None = None,
) -> CSRDynamicGraph:
    """Precompile a schedule prefix into stacked per-round index arrays.

    For schedule-driven instances -- above all the worst-case adversary,
    whose entire point is a fixed finite schedule realising the
    ``Omega(log n)`` bound -- the prefix is lowered *once*, eagerly, into
    one pair of stacked ``(u, v)`` arrays plus per-round offsets; every
    later ``to_csr`` call is an O(1) lookup, every later ``at`` call
    reuses one graph object per prefix round.

    Args:
        source: The dynamic graph to compile.  Its first ``rounds``
            rounds are read through ``edges()`` when available (CSR
            native sources) and through ``at()`` otherwise.
        rounds: Prefix length to compile (must be >= 1).
        extend: What happens past the prefix: ``"hold"`` repeats the
            last compiled round, ``"cycle"`` wraps to round 0,
            ``"strict"`` raises :class:`TopologyError`.
        name: Optional description; defaults to the source's name with
            a ``:precompiled`` suffix.

    Returns:
        A :class:`CSRDynamicGraph` over the same node set, serving the
        compiled prefix under the chosen extension rule.
    """
    if rounds < 1:
        raise ValueError("need at least one round to precompile")
    if extend not in ("hold", "cycle", "strict"):
        raise ValueError("extend must be one of ('hold', 'cycle', 'strict')")
    n = source.n
    per_round: list[tuple[np.ndarray, np.ndarray]] = []
    native_edges = getattr(source, "edges", None)
    for round_no in range(rounds):
        if native_edges is not None:
            u, v = native_edges(round_no)
        else:
            pairs = np.array(
                source.at(round_no).edges, dtype=np.int64
            ).reshape(-1, 2)
            u, v = pairs[:, 0], pairs[:, 1]
        per_round.append(validate_edge_arrays(n, u, v))

    # One stacked edge store: contiguous (u, v) arrays sliced per round,
    # held in the policy index dtype (int32 until n reaches 2**31, with
    # offsets sized to the *total* stacked edge count).
    offsets = np.concatenate(
        ([0], np.cumsum([u.size for u, _ in per_round]))
    )
    offsets = offsets.astype(index_dtype_for(int(offsets[-1])))
    edge_dtype = index_dtype_for(n)
    u_all = (
        np.concatenate([u for u, _ in per_round]).astype(
            edge_dtype, copy=False
        )
        if offsets[-1]
        else np.empty(0, dtype=edge_dtype)
    )
    v_all = (
        np.concatenate([v for _, v in per_round]).astype(
            edge_dtype, copy=False
        )
        if offsets[-1]
        else np.empty(0, dtype=edge_dtype)
    )

    def round_key(round_no: int) -> int:
        if round_no < rounds:
            return round_no
        if extend == "hold":
            return rounds - 1
        if extend == "cycle":
            return round_no % rounds
        raise TopologyError(
            f"round {round_no} requested but only rounds 0..{rounds - 1} "
            "are precompiled (extend='strict')"
        )

    def provider(key: int) -> tuple[np.ndarray, np.ndarray]:
        lo, hi = int(offsets[key]), int(offsets[key + 1])
        return u_all[lo:hi], v_all[lo:hi]

    compiled = CSRDynamicGraph(
        n,
        provider,
        name=name if name is not None else f"{source.name}:precompiled",
        round_key=round_key,
        cache_rounds=max(rounds, DEFAULT_ROUND_CACHE_SIZE),
    )
    # Eager lowering: the whole prefix is validated and CSR-built here,
    # so the simulation loop never pays construction or validation.
    for round_no in range(rounds):
        compiled.to_csr(round_no)
    counter("adjacency.precompiled_schedules")
    return compiled
