"""Plain-text rendering of dynamic graphs and multigraph rounds.

Round-by-round ASCII views used by the examples and handy in a REPL:

* :func:`render_round` -- adjacency view of one round's graph;
* :func:`render_dynamic_graph` -- several rounds side by side in time;
* :func:`render_multigraph_round` -- an ``M(DBL)_k`` round as a
  label table (which labels connect each ``W`` node to the leader);
* :func:`render_ambiguity_curve` -- a bar chart of interval widths.
"""

from __future__ import annotations

import networkx as nx

from repro.networks.dynamic_graph import DynamicGraph
from repro.networks.multigraph import DynamicMultigraph

__all__ = [
    "render_round",
    "render_dynamic_graph",
    "render_multigraph_round",
    "render_ambiguity_curve",
]


def render_round(
    graph: nx.Graph, *, labels: dict[int, str] | None = None
) -> str:
    """Adjacency-list view of one communication round."""
    labels = labels or {}
    lines = []
    for node in sorted(graph.nodes):
        name = labels.get(node, str(node))
        neighbours = ", ".join(
            labels.get(other, str(other))
            for other in sorted(graph.neighbors(node))
        )
        lines.append(f"  {name}: {neighbours}")
    return "\n".join(lines)


def render_dynamic_graph(
    dynamic_graph: DynamicGraph,
    rounds: int,
    *,
    labels: dict[int, str] | None = None,
) -> str:
    """Rounds ``0..rounds-1`` as stacked adjacency views."""
    blocks = []
    for round_no in range(rounds):
        graph = dynamic_graph.at(round_no)
        blocks.append(
            f"round {round_no} "
            f"({graph.number_of_edges()} edges):\n"
            + render_round(graph, labels=labels)
        )
    return "\n".join(blocks)


def render_multigraph_round(
    multigraph: DynamicMultigraph, round_no: int
) -> str:
    """One ``M(DBL)_k`` round as a per-node label table."""
    width = len(str(multigraph.n - 1))
    lines = [f"round {round_no} (k = {multigraph.k}):"]
    for node in range(multigraph.n):
        labels = ",".join(
            str(label) for label in sorted(multigraph.labels(node, round_no))
        )
        lines.append(f"  w{node:<{width}} --[{labels}]-- leader")
    return "\n".join(lines)


def render_ambiguity_curve(widths: list[int], *, max_bar: int = 40) -> str:
    """Interval widths per round as a horizontal bar chart."""
    if not widths:
        return "(no rounds)"
    peak = max(max(widths), 1)
    scale = min(1.0, max_bar / peak)
    lines = []
    for round_no, width in enumerate(widths):
        bar = "#" * max(1 if width else 0, int(round(width * scale)))
        lines.append(f"  round {round_no:>2}: {bar} {width}")
    return "\n".join(lines)
