"""The :class:`DynamicGraph` abstraction (Definition 1 of the paper).

A dynamic graph is an infinite sequence ``G = {G_0, G_1, ...}`` of graphs
over a fixed node set ``V = {0, ..., n-1}``.  This module wraps that idea
in a small class that

* is directly usable as a topology provider for
  :class:`repro.simulation.engine.SynchronousEngine` (it exposes the
  ``graph(round_no, processes)`` method),
* can be built either from a generator function (possibly infinite) or
  from an explicit finite list of graphs with a chosen extension rule,
* validates that every produced graph spans exactly the declared node
  set, per the model's "stable set of processes" assumption.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import networkx as nx

from repro.networks.csr import AdjacencyCache, CSRAdjacency
from repro.simulation.errors import ModelError, TopologyError

__all__ = ["DynamicGraph"]

_EXTEND_RULES = ("hold", "cycle", "strict")


class DynamicGraph:
    """An infinite sequence of graphs over the node set ``{0..n-1}``.

    Args:
        n: Number of nodes; every round's graph must span ``{0..n-1}``.
        provider: Function mapping a round number to that round's graph.
        name: Optional human-readable description (used in reports).
        copy_on_cache: Snapshot (``graph.copy()``) each provider-built
            graph before caching it.  On by default: a provider that
            keeps a live reference to the graph it returned (and later
            mutates it) must not silently corrupt the cached round.
            :meth:`from_graphs` disables it -- the prefix is already a
            private snapshot, and reusing the *same* object across
            rounds is what lets ``to_csr`` memoize lowering for
            ``extend="hold"``/``"cycle"`` by object identity.

    The per-round graphs are cached, so a stochastic ``provider`` is
    sampled once per round and every later inspection (property checks,
    re-runs at a different trace level) sees the same execution.
    """

    def __init__(
        self,
        n: int,
        provider: Callable[[int], nx.Graph],
        *,
        name: str = "dynamic-graph",
        copy_on_cache: bool = True,
    ) -> None:
        if n < 1:
            raise ValueError("a dynamic graph needs at least one node")
        self.n = n
        self.name = name
        self._provider = provider
        self._copy_on_cache = copy_on_cache
        self._cache: dict[int, nx.Graph] = {}
        self._adjacency = AdjacencyCache()

    @classmethod
    def from_graphs(
        cls,
        graphs: Sequence[nx.Graph],
        *,
        extend: str = "hold",
        name: str = "explicit-dynamic-graph",
    ) -> "DynamicGraph":
        """Build a dynamic graph from an explicit finite prefix.

        Args:
            graphs: The graphs of rounds ``0..len(graphs)-1``.  Every
                graph must span exactly ``{0..n-1}`` for one shared
                ``n``; anything else raises :class:`ModelError` here,
                eagerly, rather than :class:`TopologyError` at the
                first ``at()`` call.
            extend: What happens after the prefix -- ``"hold"`` repeats
                the last graph forever, ``"cycle"`` loops back to round
                0, ``"strict"`` raises :class:`TopologyError` if a round
                past the prefix is requested.
        """
        if not graphs:
            raise ModelError("need at least one graph")
        if extend not in _EXTEND_RULES:
            raise ValueError(f"extend must be one of {_EXTEND_RULES}")
        node_sets = {frozenset(graph.nodes) for graph in graphs}
        if len(node_sets) != 1:
            raise ModelError(
                "all graphs of a dynamic graph must share one node set "
                "(the process set V is static); got "
                f"{len(node_sets)} distinct node sets"
            )
        nodes = node_sets.pop()
        expected = frozenset(range(len(nodes)))
        if nodes != expected:
            raise ModelError(
                f"graph nodes must be exactly {{0..{len(nodes) - 1}}}; "
                f"unexpected labels {sorted(nodes - expected)}"
            )
        snapshot = [graph.copy() for graph in graphs]
        prefix_len = len(snapshot)

        def provider(round_no: int) -> nx.Graph:
            if round_no < prefix_len:
                return snapshot[round_no]
            if extend == "hold":
                return snapshot[-1]
            if extend == "cycle":
                return snapshot[round_no % prefix_len]
            raise TopologyError(
                f"round {round_no} requested but only rounds "
                f"0..{prefix_len - 1} are defined (extend='strict')"
            )

        return cls(len(nodes), provider, name=name, copy_on_cache=False)

    def at(self, round_no: int) -> nx.Graph:
        """Return the graph of round ``round_no`` (cached, validated)."""
        if round_no < 0:
            raise ValueError("round numbers start at 0")
        if round_no not in self._cache:
            graph = self._provider(round_no)
            nodes = set(graph.nodes)
            expected = set(range(self.n))
            if nodes != expected:
                raise TopologyError(
                    f"round {round_no}: provider produced node set of "
                    f"size {graph.number_of_nodes()}, expected "
                    f"{{0..{self.n - 1}}} (unexpected labels "
                    f"{sorted(nodes - expected)}, missing "
                    f"{sorted(expected - nodes)})"
                )
            if self._copy_on_cache:
                graph = graph.copy()
            self._cache[round_no] = graph
        return self._cache[round_no]

    def graph(self, round_no: int, processes: object = None) -> nx.Graph:
        """Topology-provider interface for the simulation engine."""
        return self.at(round_no)

    def to_csr(self, round_no: int) -> CSRAdjacency:
        """The round's graph lowered to CSR adjacency (fast backend).

        Lowering runs the model checks (node set, self-loops,
        connectivity) and is memoized per cached graph object: a
        provider that serves the same graph for many rounds (static
        topologies, ``extend="hold"``/``"cycle"``) is validated and
        lowered once, not once per round.
        """
        return self._adjacency.lower(self.at(round_no), n=self.n)

    def window(self, rounds: int) -> list[nx.Graph]:
        """Return the graphs of rounds ``0..rounds-1``."""
        return [self.at(round_no) for round_no in range(rounds)]

    def __repr__(self) -> str:
        return f"DynamicGraph(n={self.n}, name={self.name!r})"
