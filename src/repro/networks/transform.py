"""The Lemma 1 transformation: ``M(DBL)_k`` to ``G(PD)_2``.

Lemma 1 turns a dynamic multigraph ``M_r = ({v_l} ∪ W, E(r), f_r, l_r)``
into a two-layer persistent-distance graph ``G_r``: a middle layer
``V_1`` gets one node per edge label, and an outer node ``w ∈ V_2 = W``
is adjacent to middle node ``j`` at round ``r`` exactly when ``M`` has an
edge ``(v_l, w)`` labeled ``j`` at round ``r``.  The leader is adjacent
to all of ``V_1`` at every round, so ``V_1`` sits at persistent distance
1 and ``V_2`` at persistent distance 2 (every ``W`` node always has at
least one label).

The construction is what carries the multigraph lower bound over to
``G(PD)_2``: counting in the transformed graph is at least as hard as in
the multigraph, because the leader of ``M`` corresponds to the *merged
memories* of ``{v_l} ∪ V_1`` in ``G`` -- strictly more information than
the anonymous ``G`` leader has.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.networks.dynamic_graph import DynamicGraph
from repro.networks.multigraph import DynamicMultigraph

__all__ = ["PD2Layout", "mdbl_to_pd2"]


@dataclass(frozen=True)
class PD2Layout:
    """Node-index layout of a transformed ``G(PD)_2`` graph.

    Attributes:
        leader: Index of the leader node (``V_0``), always 0.
        middle: Indices of the ``V_1`` nodes; ``middle[j - 1]`` is the
            node standing in for edge label ``j``.
        outer: Indices of the ``V_2`` nodes; ``outer[w]`` corresponds to
            node ``w`` of the multigraph's ``W``.
    """

    leader: int
    middle: tuple[int, ...]
    outer: tuple[int, ...]

    @property
    def n(self) -> int:
        """Total number of nodes, ``1 + |V_1| + |V_2|``."""
        return 1 + len(self.middle) + len(self.outer)

    def middle_for_label(self, label: int) -> int:
        """The ``V_1`` node that stands in for edge label ``label``."""
        return self.middle[label - 1]

    def label_for_middle(self, node: int) -> int:
        """Inverse of :meth:`middle_for_label`."""
        return self.middle.index(node) + 1


def mdbl_to_pd2(
    multigraph: DynamicMultigraph, *, name: str | None = None
) -> tuple[DynamicGraph, PD2Layout]:
    """Transform an ``M(DBL)_k`` instance into a ``G(PD)_2`` dynamic graph.

    Returns the dynamic graph together with its :class:`PD2Layout`.  The
    graph's rounds mirror the multigraph's rounds one to one: outer node
    ``layout.outer[w]`` is adjacent to ``layout.middle_for_label(j)`` at
    round ``r`` iff ``j in multigraph.labels(w, r)``.

    Example:
        >>> from repro.networks import DynamicMultigraph, mdbl_to_pd2
        >>> mdbl = DynamicMultigraph(
        ...     2, [[frozenset({1})], [frozenset({1, 2})]]
        ... )
        >>> graph, layout = mdbl_to_pd2(mdbl)
        >>> sorted(graph.at(0).edges())
        [(0, 1), (0, 2), (1, 3), (1, 4), (2, 4)]
    """
    k = multigraph.k
    layout = PD2Layout(
        leader=0,
        middle=tuple(range(1, k + 1)),
        outer=tuple(range(k + 1, k + 1 + multigraph.n)),
    )

    def provider(round_no: int) -> nx.Graph:
        graph = nx.Graph()
        graph.add_nodes_from(range(layout.n))
        graph.add_edges_from(
            (layout.leader, middle) for middle in layout.middle
        )
        for w, outer in enumerate(layout.outer):
            for label in multigraph.labels(w, round_no):
                graph.add_edge(layout.middle_for_label(label), outer)
        return graph

    graph_name = name if name is not None else f"pd2({multigraph.name})"
    return DynamicGraph(layout.n, provider, name=graph_name), layout
