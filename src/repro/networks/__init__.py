"""Dynamic graph substrate: graphs, multigraphs, properties, generators.

* :mod:`repro.networks.dynamic_graph` -- the :class:`DynamicGraph`
  abstraction (Definition 1: an infinite sequence of graphs over a fixed
  node set) usable directly as an engine topology provider.
* :mod:`repro.networks.properties` -- verifiers for 1-interval
  connectivity, persistent distance (Definitions 3-4), and the dynamic
  diameter ``D`` measured by exhaustive flooding.
* :mod:`repro.networks.csr_native` -- CSR-native dynamic topologies:
  :class:`CSRDynamicGraph` serves both a ``networkx`` view (object
  engine, oracles) and a direct CSR view (fast backend) from one set of
  per-round edge arrays; :func:`precompile_schedule` compiles finite
  schedules (worst-case instances) into stacked index arrays.
* :mod:`repro.networks.multigraph` -- dynamic bipartite labeled
  multigraphs ``M(DBL)_k`` (Section 4.1).
* :mod:`repro.networks.transform` -- the Lemma 1 transformation
  ``M(DBL)_k -> G(PD)_2``.
* :mod:`repro.networks.generators` -- network families: stars
  (``G(PD)_1``), layered ``G(PD)_h`` graphs, Corollary-1 chain gadgets,
  random fair-adversary dynamics.
"""

from repro.networks.csr_native import CSRDynamicGraph, precompile_schedule
from repro.networks.dynamic_graph import DynamicGraph
from repro.networks.multigraph import DynamicMultigraph
from repro.networks.properties import (
    dynamic_diameter,
    flood_completion_time,
    is_interval_connected,
    persistent_distances,
    verify_pd,
)
from repro.networks.transform import PD2Layout, mdbl_to_pd2

__all__ = [
    "CSRDynamicGraph",
    "DynamicGraph",
    "DynamicMultigraph",
    "PD2Layout",
    "dynamic_diameter",
    "flood_completion_time",
    "is_interval_connected",
    "mdbl_to_pd2",
    "persistent_distances",
    "precompile_schedule",
    "verify_pd",
]
