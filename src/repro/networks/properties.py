"""Verifiers for the structural properties the paper's model relies on.

* **1-interval connectivity** (Kuhn, Lynch & Oshman, STOC 2010): every
  round's graph is connected.
* **Persistent distance** (Definitions 3-4): a node's distance from the
  leader is the same at every round; ``G(PD)_h`` additionally bounds that
  distance by ``h``.
* **Dynamic diameter** ``D`` (Section 3): the maximum, over start nodes
  and start rounds, of the number of rounds a flood needs to reach every
  node.  Computed here by exhaustive simulated flooding, which is the
  definition itself.

These functions operate directly on :class:`repro.networks.DynamicGraph`
objects (graph level).  Protocol-level flooding through the actual
message-passing engine lives in :mod:`repro.core.counting.flooding` and
is checked against these graph-level results in the test suite.
"""

from __future__ import annotations

import networkx as nx

from repro.networks.dynamic_graph import DynamicGraph
from repro.simulation.errors import ModelError

__all__ = [
    "is_interval_connected",
    "is_t_interval_connected",
    "persistent_distances",
    "verify_pd",
    "pd_layers",
    "flood_completion_time",
    "dynamic_diameter",
]


def is_interval_connected(dynamic_graph: DynamicGraph, rounds: int) -> bool:
    """Check 1-interval connectivity over rounds ``0..rounds-1``."""
    return all(
        nx.is_connected(dynamic_graph.at(round_no)) for round_no in range(rounds)
    )


def is_t_interval_connected(
    dynamic_graph: DynamicGraph, t: int, rounds: int
) -> bool:
    """Check ``T``-interval connectivity (Kuhn, Lynch & Oshman).

    True when for every window of ``t`` consecutive rounds inside
    ``0..rounds-1`` the *intersection* of the window's edge sets is a
    connected spanning subgraph.  ``t = 1`` reduces to
    :func:`is_interval_connected`.
    """
    if t < 1:
        raise ValueError("the window T must be at least 1")
    if rounds < t:
        raise ValueError("need at least T rounds to check a window")
    for start in range(rounds - t + 1):
        edges = set(map(frozenset, dynamic_graph.at(start).edges()))
        for offset in range(1, t):
            edges &= set(
                map(frozenset, dynamic_graph.at(start + offset).edges())
            )
        stable = nx.Graph()
        stable.add_nodes_from(range(dynamic_graph.n))
        stable.add_edges_from(tuple(edge) for edge in edges)
        if dynamic_graph.n > 1 and not nx.is_connected(stable):
            return False
    return True


def persistent_distances(
    dynamic_graph: DynamicGraph, leader: int, rounds: int
) -> dict | None:
    """Distances from the leader if they are persistent, else ``None``.

    Returns a mapping ``node -> d`` such that ``d_r(node, leader) = d``
    for every ``r < rounds`` (Definition 3), or ``None`` if any node's
    distance changes across the window or any node is ever unreachable.
    """
    reference: dict | None = None
    for round_no in range(rounds):
        distances = nx.single_source_shortest_path_length(
            dynamic_graph.at(round_no), leader
        )
        if len(distances) != dynamic_graph.n:
            return None
        if reference is None:
            reference = dict(distances)
        elif distances != reference:
            return None
    return reference


def verify_pd(
    dynamic_graph: DynamicGraph,
    leader: int,
    h: int,
    rounds: int,
) -> dict:
    """Assert that the graph is in ``G(PD)_h`` over the given window.

    Returns:
        The persistent distance of every node from the leader.

    Raises:
        ModelError: Distances are not persistent, or exceed ``h``.
    """
    distances = persistent_distances(dynamic_graph, leader, rounds)
    if distances is None:
        raise ModelError(
            f"{dynamic_graph!r} does not have persistent distances from "
            f"node {leader} over {rounds} rounds"
        )
    worst = max(distances.values())
    if worst > h:
        raise ModelError(
            f"{dynamic_graph!r} has a node at persistent distance {worst} "
            f"> h = {h}"
        )
    return distances


def pd_layers(
    dynamic_graph: DynamicGraph, leader: int, h: int, rounds: int
) -> list[list[int]]:
    """Partition nodes into layers ``V_0..V_h`` by persistent distance.

    ``V_0`` is ``[leader]``; ``V_i`` holds the nodes at persistent
    distance ``i``.  Raises :class:`ModelError` via :func:`verify_pd` if
    the graph is not in ``G(PD)_h``.
    """
    distances = verify_pd(dynamic_graph, leader, h, rounds)
    layers: list[list[int]] = [[] for _ in range(h + 1)]
    for node, distance in sorted(distances.items()):
        layers[distance].append(node)
    return layers


def flood_completion_time(
    dynamic_graph: DynamicGraph,
    source: int,
    start_round: int = 0,
    *,
    horizon: int = 10_000,
) -> int:
    """Rounds needed for a flood from ``source`` to inform every node.

    A flood started at ``start_round`` means: ``source`` broadcasts at
    ``start_round`` and every informed node re-broadcasts at every later
    round.  The returned value ``t`` is the smallest number of rounds
    such that all nodes are informed after the receive phase of round
    ``start_round + t - 1`` (so a star completes in 1).

    Raises:
        ModelError: The flood does not complete within ``horizon`` rounds
            (possible only if connectivity is violated).
    """
    informed = {source}
    n = dynamic_graph.n
    for elapsed in range(1, horizon + 1):
        graph = dynamic_graph.at(start_round + elapsed - 1)
        newly = {
            neighbour
            for node in informed
            for neighbour in graph.neighbors(node)
        }
        informed |= newly
        if len(informed) == n:
            return elapsed
    raise ModelError(
        f"flood from node {source} at round {start_round} did not complete "
        f"within {horizon} rounds"
    )


def dynamic_diameter(
    dynamic_graph: DynamicGraph,
    *,
    start_rounds: int = 1,
    sources: list[int] | None = None,
    horizon: int = 10_000,
) -> int:
    """Measure the dynamic diameter ``D`` by exhaustive flooding.

    ``D`` is the maximum of :func:`flood_completion_time` over all
    sources and all start rounds in ``0..start_rounds-1``.  For graphs
    with a finite period (or static suffix), choosing ``start_rounds``
    to cover the period makes this the exact dynamic diameter.
    """
    if sources is None:
        sources = list(range(dynamic_graph.n))
    return max(
        flood_completion_time(
            dynamic_graph, source, start_round, horizon=horizon
        )
        for source in sources
        for start_round in range(start_rounds)
    )
