# Standard targets for the repro project.

PYTHON ?= python

.PHONY: install test check bench bench-smoke bench-dynamic-smoke bench-scale-smoke shard-smoke trace-smoke verify-smoke zoo-smoke serve-smoke experiments report examples all

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# Experiments exercised by the fault/resume smoke (small, fast ones).
SMOKE_EXPERIMENTS = --experiment tab-star-pd1 --experiment tab-kernel-structure \
	--experiment fig1-pd2-example --experiment fig2-transformation

# Tier-1 gate: lint, the full test suite, plus CLI smoke runs
# exercising the sparse backend, the parallel experiment runner, the
# observability layer (metrics snapshot must parse), and the
# fault-tolerant runtime (injected faults, checkpoint resume).
check:
	@if command -v ruff >/dev/null 2>&1; then ruff check src tests benchmarks; \
	else echo "ruff not installed; skipping lint"; fi
	$(PYTHON) -m pytest -x -q tests/
	$(PYTHON) -m repro run tab-kernel-structure --metrics-out .check-metrics.json
	$(PYTHON) -c "import json; s = json.load(open('.check-metrics.json')); \
	assert s['counters']['experiments.run'] == 1, s"
	@rm -f .check-metrics.json
	$(PYTHON) -m repro all --jobs 2
	# Fault-tolerance smoke: a transient fault is retried away; a killed
	# worker aborts the sweep; --resume finishes it from the journal
	# without re-running completed tasks (see docs/ROBUSTNESS.md).
	$(PYTHON) -m repro run tab-kernel-structure --inject-fault raise@0 --retries 2
	@rm -rf .check-cache .check-report.md
	! $(PYTHON) -m repro report .check-report.md $(SMOKE_EXPERIMENTS) \
		--jobs 2 --cache-dir .check-cache --inject-fault kill@2 --retries 0 \
		2> /dev/null
	test -s .check-cache/journal.jsonl
	$(PYTHON) -m repro report .check-report.md $(SMOKE_EXPERIMENTS) \
		--jobs 2 --cache-dir .check-cache --resume
	grep -q "all experiments passed" .check-report.md
	@rm -rf .check-cache .check-report.md

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Fast-backend regression gate: object vs vectorized engine on a small
# sweep, asserting the speedup floor recorded in BENCH_engine.json.
bench-smoke:
	$(PYTHON) benchmarks/bench_engine.py --quick

# Dynamic-topology regression gate: just the fresh-graph-per-round
# workload (the CSR-native pipeline's raison d'etre), floor-checked in
# quick mode.  Results land in benchmarks/results/engine-backend-only.*.
bench-dynamic-smoke:
	$(PYTHON) benchmarks/bench_engine.py --quick --only "fresh graph"

# Streaming-scale gate: the quick grid plus the tracemalloc proof that
# a chunked run's peak allocation tracks --max-lane-nodes, not the
# grid ("Scaling past one machine" in docs/PERFORMANCE.md).
bench-scale-smoke:
	$(PYTHON) benchmarks/bench_scale.py --quick

# Sharded-sweep smoke: the same report split as two disjoint shards
# with separate caches, journals folded by `repro merge-journals`,
# then a combined --resume that must re-execute nothing.
shard-smoke:
	@rm -rf .shard-a .shard-b .shard-merged .shard-report.md .shard-metrics.json
	$(PYTHON) -m repro report .shard-report.md $(SMOKE_EXPERIMENTS) \
		--cache-dir .shard-a --shard 0/2
	$(PYTHON) -m repro report .shard-report.md $(SMOKE_EXPERIMENTS) \
		--cache-dir .shard-b --shard 1/2
	@mkdir -p .shard-merged
	@cp .shard-a/*.json .shard-merged/ 2>/dev/null; \
	cp .shard-b/*.json .shard-merged/ 2>/dev/null; true
	$(PYTHON) -m repro merge-journals .shard-merged/journal.jsonl \
		.shard-a/journal.jsonl .shard-b/journal.jsonl
	$(PYTHON) -m repro report .shard-report.md $(SMOKE_EXPERIMENTS) \
		--cache-dir .shard-merged --resume --metrics-out .shard-metrics.json
	grep -q "all experiments passed" .shard-report.md
	$(PYTHON) -c "import json; c = json.load(open('.shard-metrics.json'))['counters']; \
	assert c['runtime.resume.skipped'] == 4, c; \
	assert 'experiments.run' not in c, c"
	@rm -rf .shard-a .shard-b .shard-merged .shard-report.md .shard-metrics.json

# Observability smoke: a --jobs 2 sweep with an injected crash, round
# telemetry, and a shared JSONL event log must stitch into a single
# span tree (`repro trace`), render as a feed (`repro tail`), and merge
# with the metrics snapshot (`repro stats`).  Artifacts stay in
# .trace-smoke/ for CI to upload.
trace-smoke:
	@rm -rf .trace-smoke && mkdir -p .trace-smoke
	$(PYTHON) -m repro report .trace-smoke/report.md $(SMOKE_EXPERIMENTS) \
		--jobs 2 --retries 2 --inject-fault kill@1 --telemetry every=2 \
		--log-json .trace-smoke/events.jsonl \
		--metrics-out .trace-smoke/metrics.json
	$(PYTHON) -m repro trace .trace-smoke/events.jsonl \
		> .trace-smoke/trace.txt
	grep -q "1 root(s)" .trace-smoke/trace.txt
	grep -q "sweep.run" .trace-smoke/trace.txt
	$(PYTHON) -m repro trace .trace-smoke/events.jsonl --flame \
		> .trace-smoke/folded.txt
	test -s .trace-smoke/folded.txt
	$(PYTHON) -m repro tail .trace-smoke/events.jsonl > .trace-smoke/feed.txt
	grep -q "telemetry" .trace-smoke/feed.txt
	$(PYTHON) -m repro stats .trace-smoke/metrics.json \
		.trace-smoke/events.jsonl > /dev/null

# Property-based verification gate: fixed-seed fuzz over all five
# suites, then the seeded-mutant self-test proving the harness detects,
# shrinks, and replays injected violations (docs/VERIFICATION.md).
# Shrunk counterexamples land in .repro-verify/ for CI to archive.
verify-smoke:
	$(PYTHON) -m repro verify --fuzz 50 --seed 0 --fixtures-dir .repro-verify
	$(PYTHON) -m repro verify --self-test --fixtures-dir .repro-verify-selftest
	@rm -rf .repro-verify-selftest

# Algorithm-zoo gate: a small upper-vs-lower sweep on both backends
# (every check must pass: count == n exactly, never below the
# Theorem 1 horizon) plus a fixed-seed run of the counting suite
# (correctness + object-vs-fast drain differentials).  Counterexample
# fixtures land in .repro-zoo-verify/ for CI to archive on failure.
zoo-smoke:
	@rm -rf .repro-zoo-verify .zoo-smoke.out
	$(PYTHON) -m repro run upper-vs-lower --param "sizes=(3,5)" \
		| tee .zoo-smoke.out
	grep -q "memoryless_random_dv_exact: PASS" .zoo-smoke.out
	! grep -q "FAIL" .zoo-smoke.out
	$(PYTHON) -m repro run upper-vs-lower --param "sizes=(3,5)" \
		--backend fast > /dev/null
	$(PYTHON) -m repro verify --suite counting --fuzz 40 --seed 0 \
		--fixtures-dir .repro-zoo-verify
	@rm -f .zoo-smoke.out

# Experiment-service smoke: validate the example scenarios, start the
# HTTP service, submit the same scenario twice, and prove the second
# submission is served from the result cache with zero engine work
# (engine.*/runtime.* counters byte-equal) while the first job's
# streamed JSONL stitches to a single service.job trace root.
# Artifacts stay in .serve-smoke/ for CI to upload on failure.
serve-smoke:
	@rm -rf .serve-smoke
	$(PYTHON) benchmarks/serve_smoke.py scenarios/star-smoke.json

experiments:
	$(PYTHON) -m repro all

report:
	$(PYTHON) -m repro report experiment-report.md

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) $$script > /dev/null && echo OK || exit 1; \
	done

all: test bench experiments examples
