# Standard targets for the repro project.

PYTHON ?= python

.PHONY: install test check bench experiments report examples all

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# Tier-1 gate: the full test suite plus CLI smoke runs exercising the
# sparse backend and the parallel experiment runner.
check:
	$(PYTHON) -m pytest -x -q tests/
	$(PYTHON) -m repro run tab-kernel-structure
	$(PYTHON) -m repro all --jobs 2

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

experiments:
	$(PYTHON) -m repro all

report:
	$(PYTHON) -m repro report experiment-report.md

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) $$script > /dev/null && echo OK || exit 1; \
	done

all: test bench experiments examples
