"""Benchmark for the IDs / gossip baseline experiment.

Experiment id: ``tab-baselines``.
"""

from __future__ import annotations

from conftest import run_and_record

from repro.adversaries.worst_case import worst_case_pd2_network
from repro.core.counting.gossip import gossip_size_estimates
from repro.core.counting.token_ids import count_with_ids
from repro.networks.generators.random_dynamic import RandomConnectedAdversary
from repro.networks.properties import dynamic_diameter


def test_baselines_table(results_dir, benchmark):
    result = benchmark.pedantic(
        run_and_record,
        args=(results_dir, "tab-baselines"),
        rounds=1,
        iterations=1,
    )
    assert result.passed


def test_token_ids_n124(benchmark):
    network, layout = worst_case_pd2_network(121)
    horizon = dynamic_diameter(network, start_rounds=2)

    outcome = benchmark(count_with_ids, network, horizon)
    assert outcome.count == layout.n


def test_gossip_n128_40_rounds(benchmark):
    adversary = RandomConnectedAdversary(128, seed=3)

    estimates = benchmark(gossip_size_estimates, adversary, 128, 40)
    assert abs(estimates[-1] - 128) / 128 < 0.05
