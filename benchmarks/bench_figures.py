"""Benchmarks regenerating the paper's Figures 1-4.

Experiment ids: ``fig1-pd2-example``, ``fig2-transformation``,
``fig3-indistinguishable-r0``, ``fig4-indistinguishable-r1``.
"""

from __future__ import annotations

from conftest import run_and_record

from repro.core.counting.optimal import count_mdbl2_abstract
from repro.core.lowerbound.pairs import paper_figure4_pair
from repro.networks.generators.figures import paper_figure1
from repro.networks.properties import dynamic_diameter


def test_fig1_pd2_example(benchmark, results_dir):
    result = run_and_record(results_dir, "fig1-pd2-example")
    assert result.passed

    figure = paper_figure1()

    def measure_diameter():
        return dynamic_diameter(figure.graph, start_rounds=3)

    assert benchmark(measure_diameter) == 4


def test_fig2_transformation(benchmark, results_dir):
    run_and_record(results_dir, "fig2-transformation")

    from repro.networks.generators.figures import paper_figure2_multigraph
    from repro.networks.transform import mdbl_to_pd2

    multigraph = paper_figure2_multigraph()

    def transform_round():
        graph, _layout = mdbl_to_pd2(multigraph)
        return graph.at(0).number_of_edges()

    assert benchmark(transform_round) == 10


def test_fig3_indistinguishable_r0(benchmark, results_dir):
    result = benchmark(run_and_record, results_dir, "fig3-indistinguishable-r0")
    assert result.passed


def test_fig4_indistinguishable_r1(benchmark, results_dir):
    run_and_record(results_dir, "fig4-indistinguishable-r1")

    smaller, _larger = paper_figure4_pair()

    def count_twin():
        return count_mdbl2_abstract(smaller).count

    assert benchmark(count_twin) == 4
