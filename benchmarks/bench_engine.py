"""Object engine vs vectorized fast backend: rounds-vs-n sweep benchmark.

Runs the same flooding and push-sum gossip workloads through both
simulation backends, asserts the outputs are identical, and records the
wall-clock speedups:

* ``benchmarks/results/engine-backend.txt`` -- human-readable table.
* ``benchmarks/results/engine-backend.json`` -- raw measurements.
* ``benchmarks/BENCH_engine.json`` -- the committed baseline; the run
  fails (exit 1) if a floor-checked workload's speedup at the largest
  size drops below the baseline's ``min_speedup`` for the chosen mode.

For static workloads topology construction is hoisted out of the timed
region: sampling a random tree is identical Python work for both
backends, so leaving it in would only dilute the engine comparison.
The fresh-graph-per-round workload *includes* per-round topology work
on purpose -- it is the regime the CSR-native pipeline
(:mod:`repro.networks.csr_native`) exists for, where the fast backend
consumes vectorized edge arrays directly while the object engine builds
a networkx graph per round -- and it is floor-checked like the static
workloads.

Usage::

    python benchmarks/bench_engine.py             # full sweep (n <= 2048)
    python benchmarks/bench_engine.py --quick     # CI smoke (n <= 256)
    python benchmarks/bench_engine.py --only dynamic   # workload filter
    python benchmarks/bench_engine.py --update-baseline

Not a pytest module on purpose: ``make bench-smoke`` invokes it as a
script, so it owns its argument parsing and exit code.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

import trajectory
from repro.analysis.sweep import chunked, log_spaced_sizes
from repro.core.counting.flooding import (
    flood_time_via_protocol,
    flood_times_batch,
)
from repro.core.counting.gossip import (
    gossip_size_estimates,
    gossip_size_estimates_batch,
)
from repro.networks.dynamic_graph import DynamicGraph
from repro.networks.generators.random_dynamic import (
    RandomConnectedAdversary,
    random_connected_graph,
)

HERE = Path(__file__).parent
BASELINE_PATH = HERE / "BENCH_engine.json"
RESULTS_DIR = HERE / "results"

SEEDS = (3, 5, 11)
GOSSIP_ROUNDS = 30
# One fused execution per chunk of seeds: bounds the stacked matrix while
# amortising the per-round Python overhead across lanes.
LANE_CHUNK = 8

# Random trees (extra_edge_p=0) keep topology sampling O(n); the default
# noise edges would make sampling O(n^2) and swamp the timings at the
# largest sizes.
EXTRA_EDGE_P = 0.0


def _static_network(n: int, seed: int) -> DynamicGraph:
    """A connected random tree held for every round.

    Each call returns a fresh ``DynamicGraph`` so neither backend can
    reuse the other's validation or CSR memo.
    """
    rng = np.random.default_rng([seed, 0])
    tree = random_connected_graph(n, rng, extra_edge_p=EXTRA_EDGE_P)
    return DynamicGraph.from_graphs([tree])


def _dynamic_adversary(n: int, seed: int) -> RandomConnectedAdversary:
    return RandomConnectedAdversary(n, seed=seed, extra_edge_p=EXTRA_EDGE_P)


def bench_flooding_static(sizes: list[int], seeds: tuple[int, ...]) -> list[dict]:
    """Rounds-vs-n flooding sweep on held topologies (engine-bound)."""
    rows = []
    for n in sizes:
        object_nets = [_static_network(n, seed) for seed in seeds]
        fast_nets = [_static_network(n, seed) for seed in seeds]

        start = time.perf_counter()
        object_rounds = [
            flood_time_via_protocol(net, 0) for net in object_nets
        ]
        object_wall = time.perf_counter() - start

        start = time.perf_counter()
        fast_rounds: list[int] = []
        for chunk in chunked(fast_nets, LANE_CHUNK):
            fast_rounds.extend(flood_times_batch([(net, 0) for net in chunk]))
        fast_wall = time.perf_counter() - start

        assert object_rounds == fast_rounds, (
            f"flooding backend divergence at n={n}: "
            f"{object_rounds} != {fast_rounds}"
        )
        rows.append(
            {
                "n": n,
                "runs": len(seeds),
                "rounds": object_rounds,
                "object_s": object_wall,
                "fast_s": fast_wall,
                "speedup": object_wall / fast_wall,
            }
        )
    return rows


def bench_gossip_static(sizes: list[int], seeds: tuple[int, ...]) -> list[dict]:
    """Fixed-budget push-sum sweep on held topologies (engine-bound)."""
    rows = []
    for n in sizes:
        object_nets = [_static_network(n, seed) for seed in seeds]
        fast_nets = [_static_network(n, seed) for seed in seeds]

        start = time.perf_counter()
        object_curves = [
            gossip_size_estimates(net, n, GOSSIP_ROUNDS)
            for net in object_nets
        ]
        object_wall = time.perf_counter() - start

        start = time.perf_counter()
        fast_curves: list[list[float]] = []
        for chunk in chunked(fast_nets, LANE_CHUNK):
            fast_curves.extend(
                gossip_size_estimates_batch(
                    [(net, n) for net in chunk], GOSSIP_ROUNDS
                )
            )
        fast_wall = time.perf_counter() - start

        assert np.allclose(object_curves, fast_curves, rtol=1e-9), (
            f"gossip backend divergence at n={n}"
        )
        rows.append(
            {
                "n": n,
                "runs": len(seeds),
                "gossip_rounds": GOSSIP_ROUNDS,
                "object_s": object_wall,
                "fast_s": fast_wall,
                "speedup": object_wall / fast_wall,
            }
        )
    return rows


def bench_flooding_dynamic(
    sizes: list[int], seeds: tuple[int, ...]
) -> list[dict]:
    """Flooding with a fresh random graph every round.

    The headline dynamic workload: every round is a new random tree.
    The object engine builds a networkx graph per round; the fast
    backend consumes the CSR-native edge arrays directly
    (vectorized sampling + direct CSR assembly, no per-round lowering),
    so this regime is floor-checked alongside the static workloads.
    """
    rows = []
    for n in sizes:
        start = time.perf_counter()
        object_rounds = [
            flood_time_via_protocol(
                _dynamic_adversary(n, seed).as_dynamic_graph(), 0
            )
            for seed in seeds
        ]
        object_wall = time.perf_counter() - start

        start = time.perf_counter()
        fast_rounds: list[int] = []
        for chunk in chunked(seeds, LANE_CHUNK):
            jobs = [
                (_dynamic_adversary(n, seed).as_dynamic_graph(), 0)
                for seed in chunk
            ]
            fast_rounds.extend(flood_times_batch(jobs))
        fast_wall = time.perf_counter() - start

        assert object_rounds == fast_rounds, (
            f"dynamic flooding backend divergence at n={n}"
        )
        rows.append(
            {
                "n": n,
                "runs": len(seeds),
                "rounds": object_rounds,
                "object_s": object_wall,
                "fast_s": fast_wall,
                "speedup": object_wall / fast_wall,
            }
        )
    return rows


# (name, bench function, floor-checked?)
WORKLOADS = (
    ("flooding rounds-vs-n (static)", bench_flooding_static, True),
    (f"gossip {GOSSIP_ROUNDS} rounds (static)", bench_gossip_static, True),
    ("flooding rounds-vs-n (fresh graph per round)", bench_flooding_dynamic, True),
)


def render(workloads: dict[str, list[dict]], mode: str) -> str:
    lines = [
        f"object engine vs fast backend ({mode} mode, "
        f"{platform.python_implementation()} {platform.python_version()})",
        "",
    ]
    for name, rows in workloads.items():
        lines.append(f"{name}:")
        for row in rows:
            lines.append(
                f"  n={row['n']:>5}  object {row['object_s']:8.3f}s  "
                f"fast {row['fast_s']:8.3f}s  speedup {row['speedup']:6.2f}x"
            )
        lines.append("")
    return "\n".join(lines)


def check_baseline(workloads: dict[str, list[dict]], mode: str) -> int:
    """Compare largest-size speedups against the committed floor."""
    if not BASELINE_PATH.exists():
        print(f"no baseline at {BASELINE_PATH}; run with --update-baseline")
        return 1
    baseline = json.loads(BASELINE_PATH.read_text())
    floor = baseline["min_speedup"][mode]
    checked = {name for name, _, floored in WORKLOADS if floored}
    status = 0
    for name, rows in workloads.items():
        measured = rows[-1]["speedup"]
        if name not in checked:
            print(f"{name}: {measured:.2f}x at n={rows[-1]['n']} (not checked)")
            continue
        verdict = "ok" if measured >= floor else "REGRESSION"
        print(
            f"{name}: {measured:.2f}x at n={rows[-1]['n']} "
            f"(floor {floor:.1f}x) {verdict}"
        )
        if measured < floor:
            status = 1
    return status


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small sizes / fewer seeds; used by `make bench-smoke`",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help=f"record this run's measurements into {BASELINE_PATH.name}",
    )
    parser.add_argument(
        "--only",
        metavar="SUBSTRING",
        help=(
            "run only workloads whose name contains SUBSTRING "
            "(e.g. 'fresh graph' for `make bench-dynamic-smoke`)"
        ),
    )
    args = parser.parse_args(argv)

    selected = WORKLOADS
    if args.only:
        selected = tuple(
            workload for workload in WORKLOADS if args.only in workload[0]
        )
        if not selected:
            names = ", ".join(repr(name) for name, _, _ in WORKLOADS)
            print(f"--only {args.only!r} matches no workload (have: {names})")
            return 2

    mode = "quick" if args.quick else "full"
    if args.quick:
        # Top size 512: large enough that every floor-checked workload
        # (the fresh-graph-per-round one included) clears its floor with
        # a stable margin; 256 left the dynamic check noise-bound.
        sizes = log_spaced_sizes(16, 512, per_decade=2)
        seeds = SEEDS[:2]
    else:
        sizes = log_spaced_sizes(32, 2048, per_decade=2)
        seeds = SEEDS

    sweep_start = time.perf_counter()
    workloads = {
        name: bench(sizes, seeds) for name, bench, _ in selected
    }
    sweep_wall = time.perf_counter() - sweep_start

    table = render(workloads, mode)
    print(table)
    RESULTS_DIR.mkdir(exist_ok=True)
    suffix = "-only" if args.only else ""
    (RESULTS_DIR / f"engine-backend{suffix}.txt").write_text(table + "\n")
    measurement = {
        "mode": mode,
        "python": platform.python_version(),
        "workloads": workloads,
    }
    (RESULTS_DIR / f"engine-backend{suffix}.json").write_text(
        json.dumps(measurement, indent=1) + "\n"
    )
    if not args.only:
        # Partial sweeps would record misleadingly sparse trajectory
        # entries, so only full workload sets join the history.
        trajectory.append_run(
            mode=mode, workloads=workloads, wall_s=sweep_wall
        )
        print(f"trajectory updated: {trajectory.TRAJECTORY_PATH}")

    if args.update_baseline and args.only:
        print("--update-baseline needs the full workload set; drop --only")
        return 2
    if args.update_baseline:
        baseline = (
            json.loads(BASELINE_PATH.read_text())
            if BASELINE_PATH.exists()
            else {
                "description": (
                    "Fast-backend speedup baseline; bench_engine.py fails "
                    "if a floor-checked workload's largest-size speedup "
                    "drops below min_speedup."
                ),
                "min_speedup": {"quick": 2.0, "full": 5.0},
                "recorded": {},
            }
        )
        baseline["recorded"][mode] = measurement
        BASELINE_PATH.write_text(json.dumps(baseline, indent=1) + "\n")
        print(f"baseline updated: {BASELINE_PATH}")

    return check_baseline(workloads, mode)


if __name__ == "__main__":
    sys.exit(main())
