"""Streaming mega-scale bench: memory-bounded lane chunking at 10^6 nodes.

Where ``bench_engine.py`` measures the fast backend *against the object
engine*, this bench measures the fast backend *against the machine*: it
runs one chunked flooding invocation per grid row with a fixed
``max_lane_nodes`` budget and records wall-clock and peak RSS as the
total node count grows past what a monolithic block-diagonal stack
would want to allocate.  The headline full-mode row simulates
``8 x 131072 = 1,048,576`` nodes in ONE ``flood_times_batch`` call
streamed through four 262144-node chunks.

* ``benchmarks/results/scale.json`` -- raw per-row measurements.
* ``benchmarks/BENCH_scale.json`` -- the committed scale trajectory
  (:mod:`repro.obs.bench` schema; the per-workload ``speedup`` field
  carries throughput in Mnode-rounds/s, so ``repro bench-report
  benchmarks/BENCH_scale.json`` flags throughput regressions).

Quick mode (``--quick``, used by ``make bench-scale-smoke``) shrinks
the grid and *proves the memory bound* instead of chasing scale: it
runs the same grid monolithically and chunked under ``tracemalloc``
and asserts the chunked peak stays well below the monolithic peak (and
below an absolute per-chunk byte budget), with identical results.

Peak RSS is process-lifetime-monotone (``getrusage``), so rows run in
ascending size order and each row's ``peak_rss_mib`` reads "peak so
far" -- the last row is the run's true peak.

Not a pytest module on purpose: ``make bench-scale-smoke`` invokes it
as a script, so it owns its argument parsing and exit code.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import tracemalloc
from pathlib import Path

from repro.core.counting.flooding import flood_times_batch
from repro.networks.generators.random_dynamic import RandomConnectedAdversary
from repro.obs.bench import append_record, make_record
from repro.obs.spans import peak_rss_mib
from repro.simulation.fast import partition_lanes

HERE = Path(__file__).parent
SCALE_PATH = HERE / "BENCH_scale.json"
RESULTS_DIR = HERE / "results"

# Random trees (extra_edge_p=0) keep per-round topology sampling O(n);
# noise edges would swamp the engine at the largest sizes.
EXTRA_EDGE_P = 0.0
MAX_ROUNDS = 10_000

#: Full mode: 8 lanes per row, fixed chunk budget, ascending totals up
#: to 2**20 stacked nodes (1, 2, then 4 chunks).
FULL_LANES = 8
FULL_SIZES = (32_768, 65_536, 131_072)
FULL_BUDGET = 262_144

#: Quick mode: the same shape in miniature (4 chunks at the top row).
QUICK_LANES = 4
QUICK_SIZES = (1_024, 4_096)
QUICK_BUDGET = 4_096

#: Quick-mode absolute allocation ceiling per stacked node in a chunk.
#: The engine's working set per chunk is a handful of float64/int
#: vectors plus the CSR round matrices (~2 edges per tree node); 2000
#: bytes/node is an order-of-magnitude slack above that, tight enough
#: to catch an accidental full-grid allocation (which would blow the
#: budget by the chunk count).
QUICK_BYTES_PER_NODE = 2_000
QUICK_BYTES_OVERHEAD = 8 * 2**20


def _jobs(n: int, lanes: int) -> list[tuple]:
    return [
        (
            RandomConnectedAdversary(
                n, seed=seed, extra_edge_p=EXTRA_EDGE_P
            ).as_dynamic_graph(),
            0,
        )
        for seed in range(lanes)
    ]


def bench_scale(
    sizes: tuple[int, ...], lanes: int, budget: int
) -> list[dict]:
    """One chunked flooding invocation per row, ascending totals."""
    rows = []
    for n in sizes:
        total = n * lanes
        chunks = len(partition_lanes([n] * lanes, budget))
        jobs = _jobs(n, lanes)
        start = time.perf_counter()
        rounds = flood_times_batch(
            jobs, max_rounds=MAX_ROUNDS, max_lane_nodes=budget
        )
        wall = time.perf_counter() - start
        rss = peak_rss_mib()
        node_rounds = total * max(rounds)
        rows.append(
            {
                "n": total,
                "lane_nodes": n,
                "runs": lanes,
                "max_lane_nodes": budget,
                "chunks": chunks,
                "rounds": max(rounds),
                "fast_s": round(wall, 3),
                "peak_rss_mib": rss and round(rss, 1),
                # Throughput doubles as the trajectory's regression
                # metric (see module docstring).
                "speedup": round(node_rounds / wall / 1e6, 3),
            }
        )
        print(
            f"  total={total:>9,}  lanes={lanes}  budget={budget:,}  "
            f"chunks={chunks}  rounds={max(rounds):>3}  "
            f"wall {wall:7.2f}s  peak RSS "
            f"{rss and round(rss, 1)} MiB"
        )
    return rows


def prove_memory_bound(n: int, lanes: int, budget: int) -> None:
    """Quick mode's teeth: chunked peak allocation << monolithic peak."""
    chunks = len(partition_lanes([n] * lanes, budget))
    assert chunks > 1, "smoke grid must actually chunk"

    def _measure(max_lane_nodes):
        jobs = _jobs(n, lanes)
        tracemalloc.start()
        rounds = flood_times_batch(
            jobs, max_rounds=MAX_ROUNDS, max_lane_nodes=max_lane_nodes
        )
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return rounds, peak

    mono_rounds, mono_peak = _measure(None)
    chunk_rounds, chunk_peak = _measure(budget)
    assert chunk_rounds == mono_rounds, (
        f"chunked flooding diverged: {chunk_rounds} != {mono_rounds}"
    )
    ceiling = budget * QUICK_BYTES_PER_NODE + QUICK_BYTES_OVERHEAD
    print(
        f"  memory bound: monolithic peak {mono_peak / 2**20:.1f} MiB, "
        f"chunked peak {chunk_peak / 2**20:.1f} MiB "
        f"({chunks} chunks, ceiling {ceiling / 2**20:.1f} MiB)"
    )
    assert chunk_peak < 0.7 * mono_peak, (
        f"chunked peak {chunk_peak} not meaningfully below monolithic "
        f"{mono_peak}; is the budget being ignored?"
    )
    assert chunk_peak < ceiling, (
        f"chunked peak {chunk_peak} exceeds the per-chunk allocation "
        f"ceiling {ceiling}; a grid-sized array is leaking into the "
        f"chunked path"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help=(
            "small grid + tracemalloc memory-bound proof; used by "
            "`make bench-scale-smoke` (does not touch BENCH_scale.json)"
        ),
    )
    args = parser.parse_args(argv)
    mode = "quick" if args.quick else "full"
    if args.quick:
        sizes, lanes, budget = QUICK_SIZES, QUICK_LANES, QUICK_BUDGET
    else:
        sizes, lanes, budget = FULL_SIZES, FULL_LANES, FULL_BUDGET

    print(f"streaming scale bench ({mode} mode):")
    sweep_start = time.perf_counter()
    rows = bench_scale(sizes, lanes, budget)
    sweep_wall = time.perf_counter() - sweep_start
    if args.quick:
        prove_memory_bound(QUICK_SIZES[-1], QUICK_LANES, QUICK_BUDGET)

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "scale.json").write_text(
        json.dumps({"mode": mode, "rows": rows}, indent=1) + "\n"
    )
    if not args.quick:
        # Only full runs join the committed trajectory: quick grids
        # would record misleadingly tiny "scale" records.
        record = make_record(
            mode=mode,
            workloads={"flooding chunked scale": rows},
            wall_s=sweep_wall,
            cwd=HERE,
        )
        record["scale_rows"] = rows
        length = append_record(record, SCALE_PATH)
        print(f"scale trajectory updated: {SCALE_PATH} ({length} run(s))")
    assert rows[-1]["n"] >= 10**6 or args.quick, (
        "full mode must simulate at least 10^6 stacked nodes"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
