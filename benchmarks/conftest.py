"""Shared helpers for the benchmark suite.

Every benchmark regenerates one experiment from DESIGN.md's index,
asserts all of its verification checks, writes the rendered table to
``benchmarks/results/<experiment>.txt``, and times a representative
workload with pytest-benchmark.  Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.registry import ExperimentResult, run_experiment

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def record_result(results_dir: Path, result: ExperimentResult) -> None:
    """Persist the rendered experiment table and assert every check."""
    (results_dir / f"{result.experiment}.txt").write_text(
        result.render() + "\n"
    )
    assert result.passed, (
        f"{result.experiment} failed checks: {result.failed_checks()}"
    )


def run_and_record(
    results_dir: Path, experiment: str, **params
) -> ExperimentResult:
    """Run an experiment, persist its table, assert its checks."""
    result = run_experiment(experiment, **params)
    record_result(results_dir, result)
    return result
