"""Benchmarks for the degree-oracle gap and the G(PD)_1 star table.

Experiment ids: ``tab-oracle-gap``, ``tab-star-pd1``.
"""

from __future__ import annotations

from conftest import run_and_record

from repro.adversaries.worst_case import worst_case_pd2_network
from repro.core.counting.degree_oracle import count_pd2_with_degree_oracle
from repro.core.counting.star import count_star


def test_oracle_gap_table(results_dir, benchmark):
    result = benchmark.pedantic(
        run_and_record,
        args=(results_dir, "tab-oracle-gap"),
        rounds=1,
        iterations=1,
    )
    assert result.passed


def test_star_pd1_table(results_dir, benchmark):
    result = benchmark(run_and_record, results_dir, "tab-star-pd1")
    assert result.passed


def test_degree_oracle_n364(benchmark):
    network, layout = worst_case_pd2_network(364)
    outcome = benchmark(count_pd2_with_degree_oracle, network)
    assert outcome.count == layout.n
    assert outcome.rounds == 3


def test_star_counter_n1025(benchmark):
    outcome = benchmark(count_star, 1025)
    assert outcome.count == 1025
    assert outcome.rounds == 1
