"""Benchmark regenerating the kernel structure table (Lemmas 2-4).

Experiment id: ``tab-kernel-structure``.
"""

from __future__ import annotations

from conftest import run_and_record

from repro.core.lowerbound.kernel import (
    closed_form_kernel,
    nullspace_dimension,
)
from repro.core.lowerbound.matrices import build_matrix


def test_kernel_structure_table(results_dir, benchmark):
    # Full-depth run: Lemma 2 certified exactly through r = 6
    # (a 2186 x 2187 modular elimination).
    run_and_record(results_dir, "tab-kernel-structure", max_round=6)

    # Benchmark the r = 4 certificate (242 x 243) as the repeatable
    # timing probe.
    assert benchmark(nullspace_dimension, 4) == 1


def test_dense_matrix_construction(benchmark):
    matrix = benchmark(build_matrix, 4)
    assert matrix.shape == (242, 243)


def test_closed_form_kernel_large_round(benchmark):
    kernel = benchmark(closed_form_kernel, 10)
    assert len(kernel) == 3**11
    assert int(kernel.sum()) == 1
