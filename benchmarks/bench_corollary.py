"""Benchmark for the Corollary 1 chain-network experiment.

Experiment id: ``tab-corollary1-diameter``.
"""

from __future__ import annotations

from conftest import run_and_record

from repro.adversaries.worst_case import max_ambiguity_multigraph
from repro.core.counting.chain import count_chain_pd2
from repro.core.lowerbound.bounds import corollary1_bound


def test_corollary1_table(results_dir, benchmark):
    result = benchmark.pedantic(
        run_and_record,
        args=(results_dir, "tab-corollary1-diameter"),
        rounds=1,
        iterations=1,
    )
    assert result.passed


def test_chain_protocol_n40_chain8(benchmark):
    core = max_ambiguity_multigraph(40)
    outcome = benchmark(count_chain_pd2, core, 8)
    assert outcome.count == 40
    assert outcome.rounds == corollary1_bound(40, 8)
