"""Ablation benchmarks for DESIGN.md's key design choices.

* the tree interval solver vs the dense reference solver vs brute-force
  enumeration (why interval propagation is the production path);
* the abstract observation path vs the full message-passing engine;
* the bandwidth experiment (``tab-bandwidth``).
"""

from __future__ import annotations

import numpy as np
from conftest import run_and_record

from repro.adversaries.worst_case import max_ambiguity_multigraph
from repro.core.counting.optimal import count_mdbl2, count_mdbl2_abstract
from repro.core.solver import (
    feasible_size_interval,
    feasible_size_set_bruteforce,
)
from repro.core.solver_dense import feasible_size_interval_dense
from repro.networks.multigraph import DynamicMultigraph

ROUNDS = 4
N_NODES = 12


def _observations():
    multigraph = DynamicMultigraph.random(
        2, N_NODES, ROUNDS, np.random.default_rng(23)
    )
    return multigraph.observations(ROUNDS)


def test_tree_solver(benchmark):
    observations = _observations()
    interval = benchmark(feasible_size_interval, observations)
    assert N_NODES in interval


def test_dense_solver(benchmark):
    observations = _observations()
    interval = benchmark(feasible_size_interval_dense, observations)
    assert N_NODES in interval


def test_bruteforce_solver(benchmark):
    observations = _observations()
    sizes = benchmark(feasible_size_set_bruteforce, observations)
    assert N_NODES in sizes
    # The three implementations agree on this instance (the test suite
    # fuzzes this property; here it guards the benchmark's inputs).
    assert sizes == set(feasible_size_interval(observations))
    assert sizes == set(feasible_size_interval_dense(observations))


def test_abstract_path_n364(benchmark):
    adversary = max_ambiguity_multigraph(364)
    outcome = benchmark(count_mdbl2_abstract, adversary)
    assert outcome.count == 364


def test_engine_path_n364(benchmark):
    adversary = max_ambiguity_multigraph(364)
    outcome = benchmark(count_mdbl2, adversary)
    assert outcome.count == 364


def test_bandwidth_table(results_dir, benchmark):
    result = benchmark(run_and_record, results_dir, "tab-bandwidth")
    assert result.passed
