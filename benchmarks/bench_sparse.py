"""Benchmarks for the sparse M_r backend and the parallel runner.

Records the two headline wins of the performance layer into
``benchmarks/results/``:

* ``sparse-backend.txt`` -- dense vs sparse construction/certification
  times where both exist, and sparse-only times past the dense cap.
* ``parallel-runner.txt`` -- serial vs 2-job wall clock for a bundle of
  registry experiments, with the outputs asserted identical.
"""

from __future__ import annotations

import os
import time

from conftest import run_and_record

from repro.analysis.parallel import run_experiments
from repro.core.lowerbound.kernel import nullspace_dimension
from repro.core.lowerbound.matrices import build_matrix
from repro.core.lowerbound.sparse import (
    build_sparse_matrix,
    sparse_nullspace_dimension,
)

PARALLEL_BUNDLE = [
    "tab-ambiguity-horizon",
    "fig-counting-rounds-vs-n",
    "tab-kernel-structure",
    "tab-corollary1-diameter",
]


def test_kernel_structure_sparse_rounds(results_dir):
    # Acceptance: the kernel-structure experiment at r >= 8, which the
    # dense-only seed could not run at all.
    run_and_record(
        results_dir, "tab-kernel-structure", max_round=5, sparse_max_round=8
    )


def test_sparse_vs_dense_construction(results_dir):
    lines = ["sparse M_r backend vs dense (seconds)", ""]
    for r in (4, 5, 6):
        start = time.perf_counter()
        build_matrix(r)
        dense_build = time.perf_counter() - start
        start = time.perf_counter()
        build_sparse_matrix(r)
        sparse_build = time.perf_counter() - start
        start = time.perf_counter()
        assert nullspace_dimension(r) == 1
        dense_nullity = time.perf_counter() - start
        start = time.perf_counter()
        assert sparse_nullspace_dimension(r) == 1
        sparse_nullity = time.perf_counter() - start
        lines.append(
            f"r={r}: build dense {dense_build:.4f}s vs sparse "
            f"{sparse_build:.4f}s; nullity dense {dense_nullity:.4f}s vs "
            f"sparse {sparse_nullity:.4f}s"
        )
    for r in (8, 10):  # past MAX_DENSE_ROUND: sparse-only regime
        start = time.perf_counter()
        matrix = build_sparse_matrix(r)
        sparse_build = time.perf_counter() - start
        start = time.perf_counter()
        assert sparse_nullspace_dimension(r) == 1
        sparse_nullity = time.perf_counter() - start
        lines.append(
            f"r={r}: dense impossible; sparse build {sparse_build:.4f}s "
            f"({matrix.nnz} nnz), nullity certificate {sparse_nullity:.4f}s"
        )
    (results_dir / "sparse-backend.txt").write_text("\n".join(lines) + "\n")


def test_sparse_build_benchmark(benchmark):
    matrix = benchmark(build_sparse_matrix, 8)
    assert matrix.shape == (19682, 19683)


def test_sparse_nullity_benchmark(benchmark):
    assert benchmark(sparse_nullspace_dimension, 8) == 1


def test_parallel_vs_serial_runner(results_dir):
    start = time.perf_counter()
    serial = run_experiments(PARALLEL_BUNDLE, jobs=1)
    serial_wall = time.perf_counter() - start
    start = time.perf_counter()
    parallel = run_experiments(PARALLEL_BUNDLE, jobs=2)
    parallel_wall = time.perf_counter() - start
    for a, b in zip(serial, parallel):
        assert a.rows == b.rows, a.experiment
        assert a.checks == b.checks, a.experiment
        assert a.passed, f"{a.experiment}: {a.failed_checks()}"
    # Speedup needs real cores: record the measurement with its context
    # rather than asserting it (CI runners and laptops differ).
    (results_dir / "parallel-runner.txt").write_text(
        f"experiments: {', '.join(PARALLEL_BUNDLE)}\n"
        f"cpu cores available: {os.cpu_count()}\n"
        f"serial (--jobs 1): {serial_wall:.3f}s wall\n"
        f"parallel (--jobs 2): {parallel_wall:.3f}s wall\n"
        f"speedup: {serial_wall / parallel_wall:.2f}x\n"
    )
