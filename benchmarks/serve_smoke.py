"""Serve smoke: the experiment service's two load-bearing guarantees.

Starts an in-process :class:`ReproService` on an ephemeral port,
submits the same scenario twice over real HTTP, and asserts:

1. **Cache-served resubmission.**  The second submission answers
   ``state == "cached"`` with results inline, and the server's
   ``engine.*`` / ``runtime.*`` counters are *byte-equal* before and
   after -- zero engine work, proved by the metrics endpoint, not by
   timing.
2. **One trace root.**  The first job's streamed JSONL events stitch
   (``repro trace`` machinery) into exactly one trace whose single
   root is the ``service.job`` span -- worker processes included.

It also strict-validates every example scenario under ``scenarios/``
(TOML ones only on Python >= 3.11, where stdlib ``tomllib`` exists).

Artifacts -- the streamed events, both submission responses, and the
metrics snapshots -- land in ``.serve-smoke/`` for CI to upload on
failure.  Exit code 0 iff every assertion holds.

Usage::

    python benchmarks/serve_smoke.py [scenarios/star-smoke.json]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.obs.trace import stitch  # noqa: E402
from repro.scenarios import load_scenario  # noqa: E402
from repro.service import ReproService, ServiceClient  # noqa: E402

OUT = REPO / ".serve-smoke"


def engine_counters(snapshot: dict) -> dict[str, float]:
    return {
        name: value
        for name, value in snapshot["counters"].items()
        if name.startswith(("engine.", "runtime."))
    }


def fail(message: str) -> int:
    print(f"serve-smoke: FAIL: {message}", file=sys.stderr)
    print(f"serve-smoke: artifacts in {OUT}", file=sys.stderr)
    return 1


def validate_examples() -> list[str]:
    """Strict-validate every example scenario; returns problem strings."""
    problems = []
    try:
        import tomllib  # noqa: F401
        toml_ok = True
    except ModuleNotFoundError:
        toml_ok = False
    for path in sorted((REPO / "scenarios").glob("*")):
        if path.suffix == ".toml" and not toml_ok:
            print(f"  (skipping {path.name}: no stdlib tomllib)")
            continue
        if path.suffix not in (".json", ".toml"):
            continue
        try:
            scenario = load_scenario(path)
            scenario.validate()
            print(
                f"  {path.name}: ok (digest {scenario.digest()}, "
                f"{len(scenario.task_keys())} task(s))"
            )
        except Exception as exc:  # noqa: BLE001 -- collecting, not dying
            problems.append(f"{path.name}: {exc}")
    return problems


def main(argv: list[str]) -> int:
    scenario_path = Path(argv[1]) if len(argv) > 1 else (
        REPO / "scenarios" / "star-smoke.json"
    )
    OUT.mkdir(parents=True, exist_ok=True)

    print("validating example scenarios:")
    problems = validate_examples()
    if problems:
        return fail("example scenario(s) invalid: " + "; ".join(problems))

    document = load_scenario(scenario_path).to_dict()
    service = ReproService(OUT / "state", port=0).start()
    try:
        client = ServiceClient(service.url, timeout_s=300.0)
        print(f"service up at {service.url}")

        first = client.submit(document)
        (OUT / "first-submit.json").write_text(json.dumps(first, indent=1))
        if first["state"] != "queued":
            return fail(f"first submission not queued: {first['state']}")
        job_id = first["job"]

        # Stream the full JSONL progress; ends when the job finishes.
        events = list(client.stream_events(job_id, follow=True))
        (OUT / "events.jsonl").write_text(
            "".join(json.dumps(event) + "\n" for event in events)
        )
        final = client.wait(job_id)
        if final["state"] != "completed" or not final.get("passed"):
            return fail(f"job did not pass: {final}")
        print(f"{job_id} completed, {len(events)} streamed event(s)")

        before = client.metrics()
        (OUT / "metrics-before.json").write_text(json.dumps(before, indent=1))
        second = client.submit(document)
        (OUT / "second-submit.json").write_text(json.dumps(second, indent=1))
        after = client.metrics()
        (OUT / "metrics-after.json").write_text(json.dumps(after, indent=1))

        if second["state"] != "cached":
            return fail(f"second submission not cache-served: {second['state']}")
        if engine_counters(after) != engine_counters(before):
            return fail(
                "engine counters moved on a cache-served submission: "
                f"{engine_counters(before)} -> {engine_counters(after)}"
            )
        served = after["counters"].get("service.cache_served", 0)
        if served < 1:
            return fail(f"service.cache_served counter is {served}")
        print(
            f"resubmission cache-served with zero engine work "
            f"({len(engine_counters(after))} engine/runtime counters "
            f"byte-equal)"
        )

        traces = stitch(events)
        roots = [root.name for trace in traces for root in trace.roots]
        if len(traces) != 1 or roots != ["service.job"]:
            return fail(
                f"stream did not stitch to a single service.job root: "
                f"{len(traces)} trace(s), roots {roots}"
            )
        print("streamed JSONL stitches to a single service.job trace root")
    finally:
        service.close()

    print("serve-smoke: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
