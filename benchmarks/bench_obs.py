"""Benchmarks for the observability layer's overhead.

The acceptance bar for the layer is that *default-level* observability
(counters always on, per-round logging gated on ``isEnabledFor``, no
handlers installed) costs < 5% on the instrumented hot paths.  This
suite measures the primitives and an instrumented engine run, and
records the numbers into ``benchmarks/results/observability.txt`` so
regressions are visible across PRs.
"""

from __future__ import annotations

import logging
import time

import networkx as nx
from conftest import run_and_record

from repro.core.counting.flooding import FloodProcess
from repro.obs.logger import get_logger
from repro.obs.metrics import MetricsRegistry, counter, use_registry
from repro.obs.spans import span
from repro.simulation import EngineConfig, SynchronousEngine


def _flooded_run(n: int = 40, rounds: int = 30) -> int:
    processes = [FloodProcess(index == 0) for index in range(n)]
    engine = SynchronousEngine(
        processes,
        lambda r: nx.cycle_graph(n),
        leader=None,
        config=EngineConfig(max_rounds=rounds, stop_when="budget"),
    )
    return engine.run().rounds


def test_counter_benchmark(benchmark):
    with use_registry(MetricsRegistry()):
        benchmark(counter, "bench.counter")


def test_span_benchmark(benchmark):
    def traced() -> None:
        with span("bench.span", record_rss=False):
            pass

    with use_registry(MetricsRegistry()):
        benchmark(traced)


def test_engine_run_with_default_observability(benchmark):
    with use_registry(MetricsRegistry()):
        assert benchmark(_flooded_run) == 30


def test_observability_overhead(results_dir):
    """Record primitive costs and debug-logging amplification."""
    reps = 100_000
    with use_registry(MetricsRegistry()):
        start = time.perf_counter()
        for _ in range(reps):
            counter("bench.counter")
        counter_ns = (time.perf_counter() - start) / reps * 1e9

        start = time.perf_counter()
        for _ in range(reps // 10):
            with span("bench.span", record_rss=False):
                pass
        span_us = (time.perf_counter() - start) / (reps // 10) * 1e6

        # Engine run with per-round debug events disabled (the default)
        # vs enabled-but-unhandled (the worst case a --log-level debug
        # user opts into).
        start = time.perf_counter()
        _flooded_run()
        silent = time.perf_counter() - start
        root = get_logger()
        handler = logging.NullHandler()
        root.addHandler(handler)
        root.setLevel(logging.DEBUG)
        try:
            start = time.perf_counter()
            _flooded_run()
            debug = time.perf_counter() - start
        finally:
            root.removeHandler(handler)
            root.setLevel(logging.WARNING)
    (results_dir / "observability.txt").write_text(
        "observability primitive costs\n\n"
        f"counter increment: {counter_ns:.0f} ns\n"
        f"span enter+exit (no RSS): {span_us:.2f} us\n"
        f"engine run (40 nodes, 30 rounds), default logging: {silent:.4f}s\n"
        f"engine run, debug round events enabled: {debug:.4f}s "
        f"({debug / silent:.2f}x)\n"
    )


def test_telemetry_overhead_gate(results_dir):
    """Acceptance: disabled telemetry costs within noise on the engine.

    The disabled path is one ``is not None`` check per round (the
    engine captures :func:`telemetry.active` once per run), so the
    flooding workload must run at the same speed with the subsystem
    merely importable.  Sampling enabled-but-never-firing (a huge
    ``every``) must also stay near-free; ``every=1`` into a discard
    sink is recorded for scale but not gated (it does real work).
    """
    import io

    from repro.obs import telemetry
    from repro.obs.spans import JsonlSink, add_sink, remove_sink

    def timed() -> float:
        start = time.perf_counter()
        _flooded_run()
        return time.perf_counter() - start

    # Interleave the configurations so clock-frequency drift and cache
    # warming hit all three equally; best-of defeats scheduler spikes.
    off = guard_only = every_round = float("inf")
    with use_registry(MetricsRegistry()):
        for _ in range(3):
            _flooded_run()  # warm caches before any timed pass
        sink = JsonlSink(io.StringIO())
        for _ in range(15):
            off = min(off, timed())
            with telemetry.telemetry_enabled(every=10_000_000):
                guard_only = min(guard_only, timed())
            add_sink(sink)
            try:
                with telemetry.telemetry_enabled(every=1):
                    every_round = min(every_round, timed())
            finally:
                remove_sink(sink)

    guard_ratio = guard_only / off
    every_ratio = every_round / off
    with open(results_dir / "observability.txt", "a") as out:
        out.write(
            "\ntelemetry overhead (flooding, 40 nodes, 30 rounds; "
            "interleaved best of 15)\n"
            f"telemetry off:             {off:.4f}s\n"
            f"enabled, never sampling:   {guard_only:.4f}s "
            f"({guard_ratio:.3f}x)\n"
            f"every round into a sink:   {every_round:.4f}s "
            f"({every_ratio:.3f}x)\n"
        )
    # The acceptance bar is <2%; gate at 10% so scheduler noise on a
    # shared CI box cannot flake the build, with the measured ratio
    # recorded above for the humans tracking the real margin.
    assert guard_ratio < 1.10, (
        f"armed-but-not-sampling telemetry cost {guard_ratio:.3f}x "
        f"(off {off:.4f}s, enabled {guard_only:.4f}s)"
    )


def test_instrumented_kernel_experiment(results_dir):
    # The sparse rounds of the kernel-structure experiment now run
    # under sparse.build / sparse.rank spans; the checks must be
    # unaffected by the instrumentation.
    with use_registry(MetricsRegistry()) as registry:
        run_and_record(
            results_dir, "tab-kernel-structure", max_round=4, sparse_max_round=6
        )
    counters = registry.snapshot()["counters"]
    assert counters["sparse.builds"] > 0
    assert registry.snapshot()["histograms"]["span.sparse.rank.s"]["count"] > 0
