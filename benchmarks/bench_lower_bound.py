"""Benchmarks for the headline lower-bound experiments.

Experiment ids: ``tab-ambiguity-horizon``, ``fig-counting-rounds-vs-n``.
"""

from __future__ import annotations

from conftest import run_and_record

from repro.adversaries.worst_case import max_ambiguity_multigraph
from repro.core.counting.optimal import count_mdbl2, count_mdbl2_abstract
from repro.core.lowerbound.bounds import rounds_to_count


def test_ambiguity_horizon_table(results_dir, benchmark):
    result = benchmark(run_and_record, results_dir, "tab-ambiguity-horizon")
    assert result.passed


def test_counting_rounds_vs_n_table(results_dir, benchmark):
    # The full table (n up to 1000, three fair seeds per size) is the
    # reproduction's headline artifact; benchmark one regeneration.
    result = benchmark.pedantic(
        run_and_record,
        args=(results_dir, "fig-counting-rounds-vs-n"),
        kwargs={"max_n": 1000},
        rounds=1,
        iterations=1,
    )
    assert result.passed


def test_optimal_counter_abstract_n1000(benchmark):
    adversary = max_ambiguity_multigraph(1000)
    outcome = benchmark(count_mdbl2_abstract, adversary)
    assert outcome.count == 1000
    assert outcome.rounds == rounds_to_count(1000)


def test_optimal_counter_engine_n121(benchmark):
    adversary = max_ambiguity_multigraph(121)
    outcome = benchmark(count_mdbl2, adversary)
    assert outcome.count == 121
    assert outcome.rounds == rounds_to_count(121)
