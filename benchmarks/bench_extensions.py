"""Benchmarks for the extension experiments.

Experiment ids: ``tab-general-k``, ``tab-adaptive-adversary``,
``tab-adversarial-randomness``.
"""

from __future__ import annotations

from conftest import run_and_record

from repro.adversaries.exhaustive import exhaustive_max_rounds
from repro.core.lowerbound.bounds import rounds_to_count
from repro.core.lowerbound.general import min_negative_mass
from repro.core.solver_general import count_mdblk_abstract
from repro.networks.multigraph import DynamicMultigraph

import numpy as np


def test_general_k_table(results_dir, benchmark):
    result = benchmark.pedantic(
        run_and_record,
        args=(results_dir, "tab-general-k"),
        rounds=1,
        iterations=1,
    )
    assert result.passed


def test_adaptive_adversary_table(results_dir, benchmark):
    result = benchmark.pedantic(
        run_and_record,
        args=(results_dir, "tab-adaptive-adversary"),
        rounds=1,
        iterations=1,
    )
    assert result.passed


def test_adversarial_randomness_table(results_dir, benchmark):
    result = benchmark(
        run_and_record, results_dir, "tab-adversarial-randomness"
    )
    assert result.passed


def test_milp_min_negative_mass_k3_r1(benchmark):
    assert benchmark(min_negative_mass, 3, 1) == 4


def test_exhaustive_adversary_n5(benchmark):
    assert benchmark(exhaustive_max_rounds, 5) == rounds_to_count(5)


def test_general_counter_k3_n10(benchmark):
    multigraph = DynamicMultigraph.random(
        3, 10, 8, np.random.default_rng(17)
    )
    outcome = benchmark(count_mdblk_abstract, multigraph)
    assert outcome.count == 10


def test_naming_vs_counting_table(results_dir, benchmark):
    result = benchmark(run_and_record, results_dir, "tab-naming-vs-counting")
    assert result.passed


def test_dynamics_families_table(results_dir, benchmark):
    result = benchmark.pedantic(
        run_and_record,
        args=(results_dir, "tab-dynamics-families"),
        rounds=1,
        iterations=1,
    )
    assert result.passed


def test_token_dissemination_table(results_dir, benchmark):
    result = benchmark.pedantic(
        run_and_record,
        args=(results_dir, "tab-token-dissemination"),
        rounds=1,
        iterations=1,
    )
    assert result.passed
