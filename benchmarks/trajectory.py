"""Append a benchmark run to the repo's performance trajectory.

Thin benchmark-side wrapper over :mod:`repro.obs.bench`: builds the
standardized record (git rev, python, mode, per-workload largest-size
speedups, wall-clock, peak RSS) and appends it to
``benchmarks/BENCH_trajectory.json``.  ``bench_engine.py`` calls
:func:`append_run` after every sweep; ``repro bench-report`` reads the
result back and diffs the latest run against its same-mode baseline.

Also runnable directly to inspect the trajectory::

    python benchmarks/trajectory.py          # print the report
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.obs.bench import append_record, make_record, render_report

HERE = Path(__file__).parent
TRAJECTORY_PATH = HERE / "BENCH_trajectory.json"


def append_run(
    *,
    mode: str,
    workloads: Mapping[str, Sequence[Mapping[str, Any]]],
    wall_s: float,
    path: Path = TRAJECTORY_PATH,
) -> int:
    """Record one bench run; returns the trajectory's new length."""
    record = make_record(
        mode=mode, workloads=workloads, wall_s=wall_s, cwd=HERE
    )
    return append_record(record, path)


def main(argv: list[str] | None = None) -> int:
    path = Path(argv[0]) if argv else TRAJECTORY_PATH
    text, status = render_report(path)
    print(text)
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
