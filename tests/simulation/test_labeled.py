"""Tests for the M(DBL)_k labeled star engine."""

from __future__ import annotations

import pytest

from repro.networks.multigraph import DynamicMultigraph
from repro.simulation.errors import TerminationError, TopologyError
from repro.simulation.labeled import LabeledStarEngine
from repro.simulation.messages import LabeledInbox
from repro.simulation.node import Process


class RecordingLeader(Process):
    def __init__(self, output_after=None):
        self.inboxes: list[LabeledInbox] = []
        self.output_after = output_after

    def compose(self, round_no):
        return "beacon"

    def deliver(self, round_no, inbox):
        self.inboxes.append(inbox)
        if self.output_after is not None and round_no + 1 >= self.output_after:
            self._output = "done"


class RecordingNode(Process):
    def __init__(self):
        self.inboxes: list[LabeledInbox] = []

    def compose(self, round_no):
        return "node"

    def deliver(self, round_no, inbox):
        self.inboxes.append(inbox)


def mdbl(schedules, k=2, **kwargs):
    return DynamicMultigraph(
        k, [[frozenset(s) for s in sched] for sched in schedules], **kwargs
    )


class TestLabeledStarEngine:
    def test_leader_sees_one_pair_per_edge(self):
        multigraph = mdbl([[{1, 2}], [{2}]])
        leader = RecordingLeader(output_after=1)
        nodes = [RecordingNode(), RecordingNode()]
        LabeledStarEngine(leader, nodes, multigraph).run()
        assert leader.inboxes[0].counts() == {
            (1, "node"): 1,
            (2, "node"): 2,
        }

    def test_nodes_learn_their_labels(self):
        multigraph = mdbl([[{1, 2}], [{2}]])
        leader = RecordingLeader(output_after=1)
        nodes = [RecordingNode(), RecordingNode()]
        LabeledStarEngine(leader, nodes, multigraph).run()
        assert nodes[0].inboxes[0].labels() == (1, 2)
        assert nodes[1].inboxes[0].labels() == (2,)
        assert nodes[1].inboxes[0].payloads() == ("beacon",)

    def test_silent_leader_sends_nothing(self):
        class SilentLeader(RecordingLeader):
            def compose(self, round_no):
                return None

        multigraph = mdbl([[{1}]])
        leader = SilentLeader(output_after=1)
        node = RecordingNode()
        LabeledStarEngine(leader, [node], multigraph).run()
        assert len(node.inboxes[0]) == 0

    def test_budget_stop(self):
        multigraph = mdbl([[{1}]], extend="full")
        leader = RecordingLeader()
        engine = LabeledStarEngine(
            leader, [RecordingNode()], multigraph, max_rounds=5, stop_when="budget"
        )
        result = engine.run()
        assert result.rounds == 5
        assert len(leader.inboxes) == 5

    def test_leader_never_outputs_raises(self):
        multigraph = mdbl([[{1}]])
        engine = LabeledStarEngine(
            RecordingLeader(), [RecordingNode()], multigraph, max_rounds=3
        )
        with pytest.raises(TerminationError):
            engine.run()

    def test_invalid_stop_when(self):
        multigraph = mdbl([[{1}]])
        with pytest.raises(ValueError):
            LabeledStarEngine(
                RecordingLeader(), [RecordingNode()], multigraph, stop_when="all"
            )

    def test_wrong_label_set_count_raises(self):
        class BadProvider:
            k = 2

            def label_sets(self, round_no, processes):
                return [frozenset({1})]  # two nodes expected

        engine = LabeledStarEngine(
            RecordingLeader(output_after=1),
            [RecordingNode(), RecordingNode()],
            BadProvider(),
        )
        with pytest.raises(TopologyError, match="label sets"):
            engine.run()

    def test_empty_label_set_raises(self):
        class BadProvider:
            k = 2

            def label_sets(self, round_no, processes):
                return [frozenset()]

        engine = LabeledStarEngine(
            RecordingLeader(output_after=1), [RecordingNode()], BadProvider()
        )
        with pytest.raises(TopologyError, match="non-empty subset"):
            engine.run()

    def test_out_of_range_label_raises(self):
        class BadProvider:
            k = 2

            def label_sets(self, round_no, processes):
                return [frozenset({3})]

        engine = LabeledStarEngine(
            RecordingLeader(output_after=1), [RecordingNode()], BadProvider()
        )
        with pytest.raises(TopologyError):
            engine.run()

    def test_schedule_extension_full(self):
        multigraph = mdbl([[{1}]], extend="full")
        leader = RecordingLeader(output_after=3)
        LabeledStarEngine(leader, [RecordingNode()], multigraph).run()
        # Round 0 uses the schedule; rounds 1-2 extend with all labels.
        assert leader.inboxes[0].labels() == (1,)
        assert leader.inboxes[1].labels() == (1, 2)
        assert leader.inboxes[2].labels() == (1, 2)
