"""Tests for the anonymous inbox containers."""

from __future__ import annotations

from collections import Counter
from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simulation.messages import (
    Inbox,
    LabeledInbox,
    canonical_sort_key,
    ensure_hashable,
)


class TestInbox:
    def test_iteration_is_content_sorted(self):
        inbox = Inbox(["b", "a", "c"])
        assert list(inbox) == ["a", "b", "c"]

    def test_length_and_truthiness(self):
        assert len(Inbox([1, 2])) == 2
        assert not Inbox([])
        assert Inbox([0])  # non-empty inbox is truthy even with falsy payload

    def test_contains(self):
        assert "x" in Inbox(["x", "y"])
        assert "z" not in Inbox(["x", "y"])

    def test_multiset_equality_ignores_order(self):
        assert Inbox([1, 2, 2]) == Inbox([2, 1, 2])
        assert Inbox([1, 2]) != Inbox([1, 2, 2])

    def test_counts_view(self):
        assert Inbox(["a", "a", "b"]).counts() == Counter({"a": 2, "b": 1})

    def test_hashable(self):
        assert hash(Inbox([1, 2])) == hash(Inbox([2, 1]))

    def test_mixed_payload_types_sort_deterministically(self):
        inbox1 = Inbox([("x", 1), "plain", 3])
        inbox2 = Inbox([3, "plain", ("x", 1)])
        assert list(inbox1) == list(inbox2)

    @given(st.lists(st.integers()))
    def test_order_insensitivity_property(self, payloads):
        assert Inbox(payloads) == Inbox(list(reversed(payloads)))

    def test_frozenset_payloads_compare_canonically(self):
        # frozenset repr order is hash-dependent; the canonical key must
        # not be.
        inbox1 = Inbox([frozenset({1, 2}), frozenset({3})])
        inbox2 = Inbox([frozenset({3}), frozenset({2, 1})])
        assert inbox1 == inbox2


class TestLabeledInbox:
    def test_pairs_sorted_by_label_then_payload(self):
        inbox = LabeledInbox([(2, "a"), (1, "b"), (1, "a")])
        assert list(inbox) == [(1, "a"), (1, "b"), (2, "a")]

    def test_labels_multiset(self):
        inbox = LabeledInbox([(2, "x"), (1, "x"), (2, "y")])
        assert inbox.labels() == (1, 2, 2)

    def test_payloads(self):
        inbox = LabeledInbox([(2, "b"), (1, "a")])
        assert inbox.payloads() == ("a", "b")

    def test_equality_is_multiset(self):
        assert LabeledInbox([(1, "a"), (2, "b")]) == LabeledInbox(
            [(2, "b"), (1, "a")]
        )

    def test_counts(self):
        inbox = LabeledInbox([(1, "a"), (1, "a")])
        assert inbox.counts() == Counter({(1, "a"): 2})


class TestCanonicalSortKey:
    def test_nested_structures(self):
        key1 = canonical_sort_key((frozenset({2, 1}), "x"))
        key2 = canonical_sort_key((frozenset({1, 2}), "x"))
        assert key1 == key2

    def test_dict_payloads(self):
        assert canonical_sort_key({"b": 1, "a": 2}) == canonical_sort_key(
            {"a": 2, "b": 1}
        )

    def test_distinct_payloads_distinct_keys(self):
        assert canonical_sort_key((1, 2)) != canonical_sort_key((2, 1))


class TestEnsureHashable:
    def test_accepts_hashable(self):
        assert ensure_hashable((1, Fraction(1, 3))) == (1, Fraction(1, 3))

    def test_rejects_unhashable(self):
        with pytest.raises(TypeError):
            ensure_hashable([1, 2])
